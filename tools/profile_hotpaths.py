#!/usr/bin/env python
"""Profile the simulator's hot paths: one representative GEMM per mode.

Runs ``compress`` plus ``SystolicArray.run_gemm`` in each of the four
execution modes (and the two raw sparse kernels), the three baseline
functional engines (SparTen bitmask inner-join, Eyeriss v2 CSC
row-stationary mesh, SCNN Cartesian-product array), operand synthesis
(``blocked_density_operand`` — the functional tier's other hot path),
and the memory-hierarchy DMA tile-timeline walker under cProfile,
printing the top-15 functions by cumulative time, so perf PRs can
measure before/after instead of guessing where the time goes.

Usage::

    PYTHONPATH=src python tools/profile_hotpaths.py [--size M K N] [--top N]

The workload defaults to the Fig. 9 microbench layer (1024x1152x256,
4/8 weights, 50% activations) fetched through the shared
``repro.eval.functional_operands`` memo; the baseline engines and the
walker run the same shape through an equivalent conv layer spec.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def _profile(label: str, func, *args, top: int = 15, **kwargs) -> None:
    print(f"\n=== {label} " + "=" * max(1, 68 - len(label)))
    profiler = cProfile.Profile()
    profiler.enable()
    func(*args, **kwargs)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", nargs=3, type=int, default=[1024, 1152, 256],
                        metavar=("M", "K", "N"),
                        help="GEMM shape (default: fig. 9 microbench layer)")
    parser.add_argument("--top", type=int, default=15,
                        help="rows of profile output per section")
    args = parser.parse_args(argv)
    m, k, n = args.size

    from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
    from repro.core.dap import dap_prune
    from repro.core.dbb import DBBSpec, compress
    from repro.core.gemm import (
        clear_compress_cache,
        compress_operands,
        dbb_gemm,
        joint_dbb_gemm,
    )
    from repro.eval import functional_operands

    spec = DBBSpec(8, 4)
    a, w = functional_operands(m, k, n, w_nnz=4, a_density=0.5)
    print(f"workload: {m}x{k}x{n}, 4/8 weights, 50% dense activations")

    _profile("compress (W)", compress, w.T, spec, top=args.top)

    w_dbb = compress(w.T, spec)
    _profile("dbb_gemm (S2TA-W kernel)", dbb_gemm, a, w_dbb, top=args.top)

    a_ok = dap_prune(a, spec).pruned
    a_dbb, w_dbb2 = compress_operands(a_ok, w, spec, spec)
    _profile("joint_dbb_gemm (S2TA-AW kernel)", joint_dbb_gemm,
             a_dbb, w_dbb2, top=args.top)

    configs = {
        "DENSE": SystolicConfig(rows=32, cols=64, mode=Mode.DENSE),
        "ZVCG": SystolicConfig(rows=32, cols=64, mode=Mode.ZVCG),
        "WDBB": SystolicConfig(rows=4, cols=8, mode=Mode.WDBB,
                               w_spec=spec, tpe_a=4, tpe_c=4),
        "AWDBB": SystolicConfig(rows=8, cols=8, mode=Mode.AWDBB,
                                w_spec=spec, a_spec=spec, tpe_a=8, tpe_c=4),
    }
    for name, config in configs.items():
        clear_compress_cache()  # profile the cold path, not the memo hit
        sim = SystolicArray(config)
        _profile(f"run_gemm {name}", sim.run_gemm, a, w, top=args.top)

    # --- the three baseline functional engines (PR-4 code) ---
    from repro.arch.eyeriss import EyerissV2Engine
    from repro.arch.scnn import SCNNEngine
    from repro.arch.sparten import SparTenEngine

    for name, engine in (
        ("SparTenEngine.run_gemm", SparTenEngine()),
        ("EyerissV2Engine.run_gemm", EyerissV2Engine()),
        ("SCNNEngine.run_gemm", SCNNEngine()),
    ):
        _profile(name, engine.run_gemm, a, w, top=args.top)

    # --- operand synthesis (the functional tier's other hot path) ---
    from repro.models.specs import LayerKind, LayerSpec
    from repro.workloads.from_spec import spec_operands

    layer = LayerSpec("profile", LayerKind.CONV, m=m, k=k, n=n,
                      w_nnz=4, a_nnz=8, weight_density=0.5,
                      act_density=0.5)
    _profile("spec_operands (synthesis)", spec_operands, layer, top=args.top)

    # --- memory-hierarchy DMA tile-timeline walker (PR-3 code) ---
    from repro.accel import S2TAAW

    accel = S2TAAW()
    result = accel.run_layer(layer)

    def walk_dma_timeline(repeats: int = 200) -> None:
        for _ in range(repeats):
            profile = accel.memory.profile(
                accel.layer_traffic(layer, result.events),
                result.compute_cycles, name=layer.name)
            profile.overlapped_cycles  # forces the lazy walker

    _profile("memory DMA timeline walker (x200)", walk_dma_timeline,
             top=args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
