#!/usr/bin/env python3
"""Fail CI when the newest benchmark run regresses on throughput.

Diffs the two most recent ``BENCH_*.json`` files (pytest-benchmark
``--benchmark-json`` output, as produced by ``make nightly``) and exits
non-zero when any benchmark's throughput dropped by more than the
threshold (default 10%).

Throughput metric per benchmark, in order of preference:

- ``extra_info.macs_per_s`` (the kernel benchmarks record simulated
  MACs per wall-clock second — higher is better), else
- ``extra_info.configs_per_s`` (the DSE benchmarks record design
  configurations evaluated per wall-clock second — higher is
  better), else
- ``extra_info.spans_per_s`` (the observability-overhead benchmarks
  record disabled-tracing span guards per second — higher is better),
  else
- ``extra_info.jobs_per_s`` (the serve benchmarks record queue jobs
  completed per wall-clock second, HTTP admission included — higher is
  better), else
- ``extra_info.guards_per_s`` (the fault-injection-overhead benchmarks
  record disabled ``faults.inject`` guards per second — higher is
  better), else
- ``1 / extra_info.wallclock_s`` (the experiment-wallclock benchmarks
  record end-to-end seconds per experiment run — lower is better, so
  the gate diffs the inverse), else
- ``1 / stats.mean`` (plain call rate — higher is better).

Usage::

    python tools/check_bench_regression.py [--dir DIR] [--threshold 0.10]
    python tools/check_bench_regression.py --candidate RUN.json.tmp

Without ``--candidate`` the newest two promoted BENCH_*.json files are
diffed (both necessarily passed their own gate). With ``--candidate``
the given un-promoted run is diffed against the newest promoted
baseline — the ``make bench`` flow, which only promotes the candidate
to BENCH_*.json after this check passes, so a regressed run can never
become the baseline that masks its own regression.

Benchmarks present in only one of the two files are reported but never
fail the check (suites grow across PRs).
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
from typing import Dict, List, Optional, Tuple

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.logs import configure_logging, output_logger  # noqa: E402

DEFAULT_THRESHOLD = 0.10


def _say(message: str) -> None:
    """Report through the shared stdout payload channel (``-q``-able
    and uniformly configured with the rest of the repo's tooling)."""
    output_logger().info("%s", message)


class BenchFileError(RuntimeError):
    """An unparsable BENCH_*.json would disturb the newest-pair diff."""


def find_bench_files(
    directory: pathlib.Path,
) -> Tuple[List[Tuple[pathlib.Path, dict]], List[pathlib.Path]]:
    """``(readable, unreadable)`` BENCH_*.json files.

    Readable entries are ``(path, parsed payload)`` pairs, oldest first
    (by recorded datetime, then mtime as the tiebreaker for hand-copied
    files) — the payload is returned so the comparison does not re-read
    the files."""
    entries = []
    unreadable = []
    for path in directory.glob("BENCH_*.json"):
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            unreadable.append(path)
            continue
        mtime = path.stat().st_mtime
        # A missing/null datetime (schema drift, hand-edited file) falls
        # back to an ISO stamp derived from mtime, so the file still
        # ranks chronologically against properly stamped ones instead of
        # silently sorting oldest (or crashing the sort on None).
        stamp = (payload.get("datetime")
                 or datetime.datetime.fromtimestamp(mtime).isoformat())
        entries.append((stamp, mtime, path, payload))
    entries.sort(key=lambda e: e[:2])
    return [(path, payload) for _, _, path, payload in entries], unreadable


def check_unreadable(readable: List[Tuple[pathlib.Path, dict]],
                     unreadable: List[pathlib.Path],
                     strict: bool = True) -> None:
    """Hard-fail only when a corrupt file could belong to the compared
    newest pair: a truncated latest artifact must fail the gate, but a
    months-old damaged file should not block it forever (it is reported
    as a warning instead).

    ``strict=False`` (candidate mode) always downgrades to warnings:
    the candidate comparison runs against the newest *readable*
    baseline regardless, and failing would wedge the gate permanently —
    promotions are the only thing that ages a damaged promoted file
    out of relevance.

    A corrupt file carries no readable ``datetime``, so its age is
    judged by filesystem mtime against the baseline file's mtime — a
    best-effort heuristic. Tooling that rewrites mtimes (fresh
    checkouts, cp without -p) can mis-age files either way; when in
    doubt the nightly log's warning/error line names the file to
    inspect."""
    if not unreadable:
        return
    # Anything newer than the comparison baseline (second-newest
    # readable file) could have displaced the compared pair; with a
    # single readable file the baseline is that file, and with none at
    # all every unreadable artifact is suspect.
    if len(readable) >= 2:
        cutoff = readable[-2][0].stat().st_mtime
    elif readable:
        cutoff = readable[-1][0].stat().st_mtime
    else:
        cutoff = float("-inf")
    fresh = [p for p in unreadable if p.stat().st_mtime >= cutoff]
    if fresh and strict:
        names = ", ".join(p.name for p in fresh)
        raise BenchFileError(
            f"unreadable benchmark file(s) newer than the comparison "
            f"baseline: {names}")
    for path in unreadable:
        age = "" if path in fresh else "stale "
        _say(f"warning: ignoring {age}unreadable benchmark file "
             f"{path.name}")


def throughput_of(record: dict) -> Optional[Tuple[float, str]]:
    """(higher-is-better throughput, metric label) of one benchmark."""
    extra = record.get("extra_info") or {}
    macs = extra.get("macs_per_s")
    if isinstance(macs, (int, float)) and macs > 0:
        return float(macs), "macs/s"
    configs = extra.get("configs_per_s")
    if isinstance(configs, (int, float)) and configs > 0:
        return float(configs), "configs/s"
    spans = extra.get("spans_per_s")
    if isinstance(spans, (int, float)) and spans > 0:
        return float(spans), "spans/s"
    jobs = extra.get("jobs_per_s")
    if isinstance(jobs, (int, float)) and jobs > 0:
        return float(jobs), "jobs/s"
    guards = extra.get("guards_per_s")
    if isinstance(guards, (int, float)) and guards > 0:
        return float(guards), "guards/s"
    wallclock = extra.get("wallclock_s")
    if isinstance(wallclock, (int, float)) and wallclock > 0:
        return 1.0 / float(wallclock), "runs/s (wall-clock)"
    mean = (record.get("stats") or {}).get("mean")
    if isinstance(mean, (int, float)) and mean > 0:
        return 1.0 / float(mean), "runs/s"
    return None


def load_throughputs(data: dict) -> Dict[str, Tuple[float, str]]:
    out: Dict[str, Tuple[float, str]] = {}
    for record in data.get("benchmarks", []):
        name = record.get("fullname") or record.get("name")
        metric = throughput_of(record)
        if name and metric:
            out[name] = metric
    return out


def compare(old: Dict[str, Tuple[float, str]],
            new: Dict[str, Tuple[float, str]],
            threshold: float) -> Tuple[List[str], List[str], int]:
    """(report lines, regression lines, compared count) for the shared
    benchmark set."""
    lines: List[str] = []
    regressions: List[str] = []
    compared = 0
    for name in sorted(set(old) | set(new)):
        if name not in old:
            lines.append(f"  NEW      {name}")
            continue
        if name not in new:
            lines.append(f"  REMOVED  {name}")
            continue
        old_tp, label = old[name]
        new_tp, new_label = new[name]
        if label != new_label:
            # e.g. a benchmark gained/lost macs_per_s extra_info; the
            # units are incomparable, so treat it like a fresh baseline.
            lines.append(f"  METRIC-CHANGED  {name}  "
                         f"({label} -> {new_label}, not compared)")
            continue
        compared += 1
        delta = (new_tp - old_tp) / old_tp
        tag = "ok"
        if delta < -threshold:
            tag = "REGRESSION"
            regressions.append(
                f"{name}: {old_tp:.4g} -> {new_tp:.4g} {label} "
                f"({delta * 100:+.1f}%)")
        lines.append(f"  {tag:<10} {name}  {old_tp:.4g} -> {new_tp:.4g} "
                     f"{label} ({delta * 100:+.1f}%)")
    return lines, regressions, compared


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff the newest two BENCH_*.json files for "
                    "throughput regressions")
    parser.add_argument("--dir", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="directory holding BENCH_*.json "
                             "(default: repo root)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="relative throughput drop that fails the "
                             "check (default 0.10 = 10%%)")
    parser.add_argument("--candidate", type=pathlib.Path, default=None,
                        help="un-promoted benchmark json to gate against "
                             "the newest promoted baseline (make bench "
                             "promotes it only if this check passes)")
    args = parser.parse_args(argv)
    configure_logging()
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be in (0, 1)")

    files, unreadable = find_bench_files(args.dir)
    try:
        check_unreadable(files, unreadable, strict=args.candidate is None)
    except BenchFileError as exc:
        _say(f"error: {exc}")
        return 2
    if args.candidate is not None:
        try:
            new_data = json.loads(args.candidate.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            _say(f"error: unreadable candidate {args.candidate.name}: "
                 f"{exc}")
            return 2
        if not files:
            if unreadable:
                # Baselines exist but none is readable: accepting the
                # candidate unchecked could promote a regressed run as
                # the new baseline — exactly what this gate prevents.
                _say("error: no readable promoted baseline (all "
                     f"{len(unreadable)} BENCH file(s) are corrupt); "
                     "repair or remove them before promoting "
                     f"{args.candidate.name}")
                return 2
            if not load_throughputs(new_data):
                # An empty first baseline would wedge every later run
                # on the compared-nothing check.
                _say(f"error: candidate {args.candidate.name} has no "
                     "usable benchmark records; refusing to promote "
                     "it as the first baseline")
                return 2
            _say(f"no promoted baseline under {args.dir}; accepting "
                 f"{args.candidate.name} as the first one")
            return 0
        old_path, old_data = files[-1]
        new_path = args.candidate
    else:
        if len(files) < 2:
            _say(f"need two BENCH_*.json files under {args.dir} to "
                 f"compare; found {len(files)} — nothing to check")
            return 0
        (old_path, old_data), (new_path, new_data) = files[-2], files[-1]
    old = load_throughputs(old_data)
    new = load_throughputs(new_data)
    _say(f"comparing {old_path.name} (old) vs {new_path.name} (new), "
         f"threshold {args.threshold * 100:.0f}%")
    lines, regressions, compared = compare(old, new, args.threshold)
    _say("\n".join(lines))
    if compared == 0:
        # Two artifacts but nothing comparable (empty/filtered newest
        # run, schema drift): a green exit here would mean the gate
        # checked nothing while looking like it passed.
        _say("\nerror: no comparable benchmarks between "
             f"{old_path.name} and {new_path.name} — the gate "
             "compared nothing")
        return 2
    if regressions:
        _say(f"\n{len(regressions)} throughput regression(s) beyond "
             f"{args.threshold * 100:.0f}%:")
        for line in regressions:
            _say(f"  {line}")
        return 1
    _say("\nno throughput regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
