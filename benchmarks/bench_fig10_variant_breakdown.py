"""Figure 10: per-component energy and speedup across all variants."""

from repro.eval import fig10_variant_breakdown


def test_bench_fig10(benchmark, save_result):
    result = benchmark(fig10_variant_breakdown)
    save_result(result)
    total = {row[0]: row[6] for row in result.rows}
    speedup = {row[0]: row[7] for row in result.rows}
    # Fig. 10 energy ordering: AW < W < ZVCG < SMT variants < SA.
    assert total["S2TA-AW"] < total["S2TA-W"] < 1.0
    assert total["SMT-T2Q2"] > 1.0
    assert total["SA"] > 1.0
    # Speedups: ~1.7/1.9 (SMT), 2.0 (W), ~2.7 (AW).
    assert speedup["S2TA-W"] == 2.0
    assert 2.3 < speedup["S2TA-AW"] < 3.0
