"""Freeze the cost of the observability layer into BENCH_*.json.

Two promises from the obs design, made falsifiable:

- **Disabled tracing is free.** Every instrumentation point in the hot
  paths is one module-global load plus a shared no-op context manager
  (:func:`repro.obs.trace.span` with no tracer installed). This file
  measures that guard in a tight loop and records ``spans_per_s`` (the
  regression gate's metric) plus the per-guard nanosecond cost, then
  projects it against the instrumented span count of a real fig12
  functional run to bound the whole-experiment overhead far under the
  1% acceptance budget.
- **Enabled tracing is cheap enough to leave on when needed.** A
  fig12-quick functional run is timed back-to-back with tracing off
  and on (same seed, same cold caches) and both wall-clocks land in
  ``extra_info``, so the *enabled* cost is tracked release over
  release too — it has no hard gate (it is opt-in), but a silent 10x
  jump would surface in the BENCH diff.

Like the other benchmarks this is nightly-tier only: the filenames do
not match tier-1's ``test_*.py`` collection pattern, and ``make bench``
promotes the JSON only when ``tools/check_bench_regression.py`` passes.
"""

import time

from repro.core.gemm import clear_compress_cache
from repro.eval.experiments import fig12_alexnet_per_layer
from repro.obs import trace as obs_trace
from repro.workloads.from_spec import default_operand_cache

#: Guard evaluations per timing rep. Large enough that loop/timer
#: overhead amortizes below the per-guard cost being measured.
GUARDS_PER_REP = 200_000

#: Ceiling on the disabled guard, generous against CI-box noise: the
#: measured cost is ~100ns; a layer simulation behind each guard is
#: milliseconds, so even this bound keeps instrumented hot paths'
#: overhead around one part in ten thousand.
MAX_DISABLED_SPAN_NS = 3_000

#: Spans a full-size fig12 functional run emits (5 accelerators x 5
#: layers x ~4 nested phase spans plus experiment/model/pool framing) —
#: the projection multiplier for the <1% whole-run bound.
FIG12_SPAN_ESTIMATE = 200


def _disabled_guard_loop(n: int) -> float:
    """Seconds to enter/exit ``n`` disabled spans."""
    span = obs_trace.span
    start = time.perf_counter()
    for _ in range(n):
        with span("layer", "bench"):
            pass
    return time.perf_counter() - start


def test_bench_disabled_span_guard(benchmark):
    assert not obs_trace.tracing_enabled(), \
        "benchmark must run with tracing off"
    elapsed = benchmark.pedantic(
        lambda: _disabled_guard_loop(GUARDS_PER_REP),
        rounds=5, iterations=1, warmup_rounds=1)
    per_span_ns = elapsed / GUARDS_PER_REP * 1e9
    benchmark.extra_info["spans_per_s"] = round(GUARDS_PER_REP / elapsed)
    benchmark.extra_info["disabled_span_ns"] = round(per_span_ns, 1)
    assert per_span_ns < MAX_DISABLED_SPAN_NS, \
        f"disabled span guard costs {per_span_ns:.0f}ns"
    # The acceptance bound: projected against a real experiment's span
    # count, disabled instrumentation must stay far below 1% of even a
    # very fast (1 s) full run.
    projected_s = FIG12_SPAN_ESTIMATE * per_span_ns / 1e9
    benchmark.extra_info["projected_fig12_overhead_s"] = round(
        projected_s, 6)
    assert projected_s < 0.01 * 1.0, \
        f"projected disabled overhead {projected_s * 1e3:.2f}ms " \
        f"exceeds 1% of a 1s experiment"


def _cold_fig12_quick() -> None:
    default_operand_cache().clear()
    clear_compress_cache()
    fig12_alexnet_per_layer(functional=True, quick=True, seed=0,
                            jobs=1, result_cache=None)


def test_bench_tracing_enabled_cost(benchmark, tmp_path):
    """fig12-quick wall-clock with tracing off vs on, same conditions."""
    start = time.perf_counter()
    _cold_fig12_quick()
    off_s = time.perf_counter() - start

    def traced_run():
        session = obs_trace.start_tracing(tmp_path / "bench-trace.json")
        start = time.perf_counter()
        try:
            _cold_fig12_quick()
        finally:
            obs_trace.stop_tracing()
        traced_run.elapsed = time.perf_counter() - start
        return session

    benchmark.pedantic(traced_run, rounds=1, iterations=1)
    on_s = traced_run.elapsed
    benchmark.extra_info["wallclock_s"] = round(on_s, 4)
    benchmark.extra_info["untraced_wallclock_s"] = round(off_s, 4)
    benchmark.extra_info["tracing_overhead_pct"] = round(
        (on_s - off_s) / off_s * 100, 2)
    assert (tmp_path / "bench-trace.json").exists(), \
        "traced run produced no artifact"
    # Loose sanity ceiling (not the disabled-path gate): per-layer
    # spans on millisecond simulations must not double the run.
    assert on_s < off_s * 2.0, \
        f"tracing enabled cost {on_s / off_s:.2f}x is pathological"
