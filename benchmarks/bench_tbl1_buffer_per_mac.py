"""Table 1: PE buffer bytes per INT8 MAC across architectures."""

from repro.eval import tbl1_buffer_per_mac


def test_bench_tbl1(benchmark, save_result):
    result = benchmark(tbl1_buffer_per_mac)
    save_result(result)
    model = {row[0]: row[4] for row in result.rows if row[4] != "-"}
    # S2TA's TPEs need orders of magnitude less buffering than the
    # unstructured-sparse designs.
    assert model["S2TA-W"] < 1.0
    assert model["S2TA-AW"] < 6.0
    assert model["SparTen"] / model["S2TA-W"] > 1000
