"""DSE evaluation-throughput tracking (configs evaluated per second).

Not a paper artifact — this benchmark freezes the sustained rate at
which the design-space exploration engine (:mod:`repro.design.dse`)
pushes configurations through the analytic evaluation path, under the
two regimes that matter for a thousands-of-points sweep:

- **cold** (no result cache) — every point builds its accelerator,
  prices the closed-form layer events and finalizes through the
  memory-hierarchy/energy pipeline; this is the rate that bounds how
  large a space one host can cover, so a regression here (a slow
  constructor, an accidental functional-tier dispatch, a pool fan-out
  of sub-millisecond tasks) directly shrinks explorable spaces;
- **warm** (result cache primed by an identical sweep) — the re-sweep /
  shard-merge regime; must hit the cache on >90% of lookups, the
  acceptance bound for overlapping sweeps sharing one store.

Both regimes record ``extra_info.configs_per_s``;
``tools/check_bench_regression.py`` prefers that metric for these
records, so the nightly gate fails on a >10% throughput drop. ``jobs``
is pinned to 1: per-point analytic evaluation is sub-millisecond, so a
process-pool fan-out would benchmark pickling overhead, not the engine
(``make nightly`` exports ``REPRO_JOBS=0``, which must not leak in
here).
"""

import time

from repro.design.dse import DSEAxes, run_dse
from repro.eval.resultcache import ResultCache

#: Large enough for a stable rate and to exercise refinement, small
#: enough to keep the nightly suite snappy (~700 points evaluated).
AXES = DSEAxes()
COARSE_STRIDE = 4


def _timed_sweep(benchmark, scenario, result_cache):
    wallclock = {}

    def body():
        start = time.perf_counter()
        artifact = run_dse(AXES, coarse_stride=COARSE_STRIDE, jobs=1,
                           result_cache=result_cache)
        wallclock["s"] = time.perf_counter() - start
        return artifact

    artifact = benchmark.pedantic(body, rounds=1, iterations=1)
    evaluated = len(artifact["evaluations"])
    assert evaluated >= 500, \
        f"sweep covered only {evaluated} points — not a meaningful rate"
    assert artifact["frontier"], "sweep produced no Pareto frontier"
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["configs_evaluated"] = evaluated
    benchmark.extra_info["wallclock_s"] = round(wallclock["s"], 4)
    benchmark.extra_info["configs_per_s"] = round(
        evaluated / wallclock["s"], 2)
    return artifact


def test_bench_dse_analytic_cold(benchmark):
    _timed_sweep(benchmark, "cold", result_cache=None)


def test_bench_dse_analytic_warm(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "results")
    run_dse(AXES, coarse_stride=COARSE_STRIDE, jobs=1,
            result_cache=cache)  # prime (untimed)
    cache.hits = cache.misses = 0
    artifact = _timed_sweep(benchmark, "warm", result_cache=cache)
    meta = artifact["meta"]["cache"]
    benchmark.extra_info["cache_hit_rate"] = round(meta["hit_rate"], 4)
    assert meta["hit_rate"] > 0.90, \
        f"warm re-sweep hit rate {meta['hit_rate']:.1%} <= 90%"
