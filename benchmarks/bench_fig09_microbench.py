"""Figure 9 (a-d): synthetic sparsity sweeps for all four SA variants."""

import pytest

from repro.eval import fig9_microbench


@pytest.mark.parametrize("panel", ["a", "b", "c", "d"])
def test_bench_fig9(benchmark, save_result, panel):
    result = benchmark.pedantic(fig9_microbench, args=(panel,),
                                rounds=1, iterations=1)
    save_result(result)
    speedups = result.column("speedup vs SA-ZVCG")
    energies = result.column(result.headers[1])
    if panel == "a":
        # ZVCG: no speedup, energy scales weakly.
        assert all(s == 1.0 for s in speedups)
        assert energies[0] >= energies[-1] > 0.5 * energies[0]
    elif panel == "b":
        # SMT: some speedup, but more energy than SA-ZVCG at every
        # sweep point (both panels share the same normalization anchor).
        assert max(speedups) > 1.4
        zvcg_energies = fig9_microbench("a").column(result.headers[1])
        # Higher energy than SA-ZVCG through the typical-sparsity range
        # (the model shows a crossover only at the extreme 87.5% point,
        # where SMT's near-2x speedup overcomes its FIFO overhead).
        assert all(smt > zvcg for smt, zvcg
                   in zip(energies[:4], zvcg_energies[:4]))
    elif panel == "c":
        # S2TA-W: 2x step at >=50% weight sparsity, capped there.
        assert speedups[:2] == [1.0, 1.0]
        assert all(s == pytest.approx(2.0, abs=0.05) for s in speedups[2:])
    else:
        # S2TA-AW: the paper's 1.0/1.3/2.0/2.7/4.0/8.0 series.
        paper = [1.0, 1.33, 2.0, 2.67, 4.0, 8.0]
        assert speedups == pytest.approx(paper, abs=0.05)
        assert energies[0] / energies[-1] > 3.0
