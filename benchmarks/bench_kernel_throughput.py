"""Kernel throughput tracking: MACs/s of the DBB hot paths.

Not a paper artifact — this benchmark pins the *simulator's own* speed so
the perf trajectory (``BENCH_*.json`` via pytest-benchmark ``extra_info``)
tracks the vectorized array backend across PRs. Covered hot paths:

- ``compress`` (DBB encode of a dense operand),
- ``dbb_gemm`` (S2TA-W functional kernel),
- ``joint_dbb_gemm`` (S2TA-AW functional kernel),
- ``SystolicArray.run_gemm`` in all four modes.

Sizes: small (toy), medium (the fig. 9 microbench layer), large
(AlexNet-conv2 scale — the layer that used to extrapolate to hours on the
object-per-block backend).
"""

import numpy as np
import pytest

from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
from repro.core.dbb import DBBSpec, compress
from repro.core.gemm import (
    clear_compress_cache,
    compress_operands,
    dbb_gemm,
    gemm_mac_count,
    joint_dbb_gemm,
)
from repro.eval import functional_operands

SPEC = DBBSpec(8, 4)

SIZES = {
    "small": (64, 128, 64),
    "medium": (1024, 1152, 256),   # fig. 9 microbench layer
    "large": (3025, 1200, 256),    # AlexNet conv2 after im2col
}


def _operands(size):
    m, k, n = SIZES[size]
    return functional_operands(m, k, n, w_nnz=4, a_density=0.5)


def _record_macs_per_s(benchmark, size):
    m, k, n = SIZES[size]
    macs = gemm_mac_count(m, k, n)
    benchmark.extra_info["size"] = f"{m}x{k}x{n}"
    benchmark.extra_info["dense_macs"] = macs
    if benchmark.stats is not None:  # absent under --benchmark-disable
        mean = benchmark.stats.stats.mean
        benchmark.extra_info["macs_per_s"] = macs / mean if mean else 0.0


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_bench_compress(benchmark, size):
    _a, w = _operands(size)
    wt = np.ascontiguousarray(w.T)
    benchmark(compress, wt, SPEC)
    _record_macs_per_s(benchmark, size)


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_bench_dbb_gemm(benchmark, size):
    a, w = _operands(size)
    w_dbb = compress(w.T, SPEC)
    result = benchmark(dbb_gemm, a, w_dbb)
    _record_macs_per_s(benchmark, size)
    assert result.shape == (a.shape[0], w.shape[1])


@pytest.mark.parametrize("size", ["small", "medium", "large"])
def test_bench_joint_dbb_gemm(benchmark, size):
    a, w = _operands(size)
    from repro.core.dap import dap_prune

    a_ok = dap_prune(a, SPEC).pruned
    a_dbb, w_dbb = compress_operands(a_ok, w, SPEC, SPEC)
    result = benchmark(joint_dbb_gemm, a_dbb, w_dbb)
    _record_macs_per_s(benchmark, size)
    assert result.shape == (a.shape[0], w.shape[1])


_MODE_CONFIGS = {
    "dense": SystolicConfig(rows=32, cols=64, mode=Mode.DENSE),
    "zvcg": SystolicConfig(rows=32, cols=64, mode=Mode.ZVCG),
    "wdbb": SystolicConfig(rows=4, cols=8, mode=Mode.WDBB,
                           w_spec=SPEC, tpe_a=4, tpe_c=4),
    "awdbb": SystolicConfig(rows=8, cols=8, mode=Mode.AWDBB,
                            w_spec=SPEC, a_spec=SPEC, tpe_a=8, tpe_c=4),
}


@pytest.mark.parametrize("mode", list(_MODE_CONFIGS))
@pytest.mark.parametrize("size", ["small", "medium"])
def test_bench_run_gemm(benchmark, size, mode):
    a, w = _operands(size)
    sim = SystolicArray(_MODE_CONFIGS[mode])
    result = benchmark(sim.run_gemm, a, w)
    _record_macs_per_s(benchmark, size)
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["cycles"] = result.cycles
    assert result.cycles > 0


def test_weight_compression_memo_shared_across_modes():
    """The variant sweep compresses each workload's weights exactly once."""
    from repro.core import gemm as gemm_mod

    clear_compress_cache()
    a, w = _operands("small")
    calls = {"n": 0}
    original = gemm_mod.compress

    def counting_compress(matrix, spec):
        calls["n"] += 1
        return original(matrix, spec)

    gemm_mod.compress = counting_compress
    try:
        SystolicArray(_MODE_CONFIGS["wdbb"]).run_gemm(a, w)   # cold: compresses
        SystolicArray(_MODE_CONFIGS["wdbb"]).run_gemm(a, w)   # repeat: memo hit
        for a_nnz in (1, 2, 4):  # AWDBB never compresses (closed-form events)
            SystolicArray(_MODE_CONFIGS["awdbb"]).run_gemm(a, w, a_nnz=a_nnz)
    finally:
        gemm_mod.compress = original
        clear_compress_cache()
    # One cold compression of W.T for the whole sweep.
    assert calls["n"] == 1
