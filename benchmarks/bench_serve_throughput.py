"""Service throughput tracking (queue jobs completed per second).

Not a paper artifact — this benchmark freezes the sustained rate at
which ``repro serve`` moves jobs from HTTP admission through the
persistent SQLite queue, the scheduler and the experiment engine to a
stored result document, under the two regimes an interactive deployment
lives in:

- **cold** (empty result cache) — every job fingerprints, queues,
  claims and actually evaluates; the rate is bounded by the queue and
  scheduler overhead wrapped around the (sub-millisecond, analytic)
  evaluation, so a regression here means the service plumbing itself —
  admission, WAL commits, claim UPDATEs, batching — got slower;
- **warm** (result cache primed with identical payloads) — the
  re-submission regime; evaluation is a cache lookup, so this isolates
  the pure queue round-trip cost even harder.

Both regimes record ``extra_info.jobs_per_s``;
``tools/check_bench_regression.py`` prefers that metric for these
records, so the nightly gate fails on a >10% throughput drop. The
analytic tier keeps each job's engine work negligible by design —
benchmarking functional simulation wall-clock is
``bench_experiment_wallclock.py``'s job, not this file's.
"""

import time

from repro.eval.resultcache import ResultCache
from repro.serve.api import ServeService, submit_job
from repro.serve.jobs import run_requests, parse_request

#: Enough queue round-trips for a stable rate; analytic lenet5 keeps
#: per-job engine time negligible next to the plumbing being measured.
N_JOBS = 24

REQUESTS = [{"model": "lenet5", "accelerator": "s2ta-aw",
             "tier": "analytic", "seed": seed}
            for seed in range(N_JOBS)]


def _timed_service(benchmark, scenario, tmp_path, result_cache):
    wallclock = {}

    def body():
        with ServeService(tmp_path / f"{scenario}.sqlite3", port=0,
                          workers=1, jobs=1,
                          result_cache=result_cache) as service:
            start = time.perf_counter()
            for request in REQUESTS:
                submit_job(service.base_url, request)
            service.wait_idle(timeout_s=300)
            wallclock["s"] = time.perf_counter() - start
            counts = service.store.counts()
        return counts

    counts = benchmark.pedantic(body, rounds=1, iterations=1)
    assert counts["done"] == N_JOBS, f"jobs did not all finish: {counts}"
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["jobs_completed"] = N_JOBS
    benchmark.extra_info["wallclock_s"] = round(wallclock["s"], 4)
    benchmark.extra_info["jobs_per_s"] = round(
        N_JOBS / wallclock["s"], 2)


def test_bench_serve_jobs_cold(benchmark, tmp_path):
    _timed_service(benchmark, "cold", tmp_path,
                   result_cache=ResultCache(tmp_path / "results"))


def test_bench_serve_jobs_warm(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "results")
    run_requests([parse_request(r) for r in REQUESTS], jobs=1,
                 result_cache=cache)  # prime (untimed)
    _timed_service(benchmark, "warm", tmp_path, result_cache=cache)
