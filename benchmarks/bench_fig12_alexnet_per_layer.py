"""Figure 12: AlexNet per-layer energy across five accelerators."""

from repro.eval import fig12_alexnet_per_layer


def test_bench_fig12(benchmark, save_result):
    result = benchmark(fig12_alexnet_per_layer)
    save_result(result)
    totals = {row[0]: row[-1] for row in result.rows}
    aw = totals["S2TA-AW (65nm)"]
    benchmark.extra_info["sparten_over_aw"] = round(
        totals["SparTen (45nm)"] / aw, 2)
    benchmark.extra_info["eyeriss_over_aw"] = round(
        totals["Eyeriss v2 (65nm)"] / aw, 2)
    # Paper: ~2.2x (SparTen) and ~3.1x (Eyeriss v2) more energy than AW.
    assert 1.7 < totals["SparTen (45nm)"] / aw < 2.8
    assert 2.4 < totals["Eyeriss v2 (65nm)"] / aw < 4.0
    # Even SA-ZVCG beats SparTen in total (Sec. 8.3).
    assert totals["SA-ZVCG (65nm)"] < totals["SparTen (45nm)"]
    # SparTen only wins on the sparse tail (conv5), not conv1.
    conv1 = {row[0]: row[1] for row in result.rows}
    conv5 = {row[0]: row[5] for row in result.rows}
    assert conv1["SparTen (45nm)"] > conv1["SA-ZVCG (65nm)"]
    assert conv5["SparTen (45nm)"] < conv5["SA-ZVCG (65nm)"]
