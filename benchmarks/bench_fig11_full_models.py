"""Figure 11: full-model energy reduction and speedup vs SA-ZVCG."""

from repro.eval import fig11_full_models


def test_bench_fig11(benchmark, save_result):
    result = benchmark(fig11_full_models)
    save_result(result)
    average = result.row("average")
    aw_energy, aw_speedup = average[5], average[6]
    benchmark.extra_info["aw_energy_x"] = aw_energy
    benchmark.extra_info["aw_speedup_x"] = aw_speedup
    # Paper: 2.08x / 2.11x average vs SA-ZVCG.
    assert abs(aw_energy - 2.08) < 0.35
    assert abs(aw_speedup - 2.11) < 0.35
    for row in result.rows[:-1]:
        smt_energy = row[1]
        assert smt_energy < 1.0  # SMT always worse than ZVCG on energy
