"""Figure 3: SMT staging-FIFO energy/area overhead and speedup."""

from repro.eval import fig3_smt_overhead


def test_bench_fig3(benchmark, save_result):
    result = benchmark(fig3_smt_overhead)
    save_result(result)
    energy = {row[0]: row[1] for row in result.rows}
    speedup = {row[0]: row[5] for row in result.rows}
    benchmark.extra_info["smt_t2q2_energy_vs_zvcg"] = energy["SMT-T2Q2"]
    # SMT is faster but burns more energy than SA-ZVCG.
    assert speedup["SMT-T2Q2"] > 1.4
    assert speedup["SMT-T2Q4"] > speedup["SMT-T2Q2"]
    assert energy["SMT-T2Q2"] > 1.2
    assert energy["SMT-T2Q4"] > 1.2
