"""Ablation benchmarks over S2TA's design choices.

Not paper artifacts per se — these regenerate the *reasons* behind the
paper's choices: the unrolling axis (footnote 2), the BZ=8 block size
(Sec. 8.1) and the 5-stage DAP cap (Sec. 6.2).
"""

from repro.eval import (
    ablation_block_size,
    ablation_dap_stages,
    ablation_unroll_axis,
)


def test_bench_ablation_unroll_axis(benchmark, save_result):
    result = benchmark.pedantic(ablation_unroll_axis, rounds=1, iterations=1)
    save_result(result)
    by_model = {row[0]: row for row in result.rows}
    # WA's speedup is pinned to the weight ratio: ~8/3 on the 3/8 models,
    # ~8/4 on the 4/8 models; AW's tracks the activation profile.
    assert by_model["vgg16"][4] > 2.3          # WA on 3/8 weights
    assert by_model["mobilenet_v1"][4] < 2.1   # WA on 4/8 weights
    # AlexNet's sparse activations favour AW on both axes.
    assert by_model["alexnet"][3] > by_model["alexnet"][4]
    assert by_model["alexnet"][5] > by_model["alexnet"][6]


def test_bench_ablation_block_size(benchmark, save_result):
    result = benchmark.pedantic(ablation_block_size, rounds=1, iterations=1)
    save_result(result)
    kept = result.column("L1 mass kept %")
    # Larger blocks preserve more signal at the same 50% bound: the
    # quantified sense in which 4/8 is "less restrictive" than A100's 2/4.
    assert kept[0] < kept[1] < kept[2]
    compares = result.column("DAP compares/block")
    assert compares[2] > 4 * compares[1]  # BZ=16 hardware blows up


def test_bench_ablation_dap_stages(benchmark, save_result):
    result = benchmark.pedantic(ablation_dap_stages, rounds=1, iterations=1)
    save_result(result)
    bypass = dict(zip(result.column("max stages"),
                      result.column("MACs forced to dense bypass %")))
    gain = dict(zip(result.column("max stages"),
                    result.column("AW energy gain vs ZVCG")))
    # 5 stages cover almost all MACs; stage 6-7 add nearly nothing.
    assert bypass[5] < 10.0
    assert gain[5] > 0.97 * gain[7]
    # 3 stages force too much dense bypass.
    assert bypass[3] > 20.0
    assert gain[3] < gain[5]
