"""Memory-hierarchy traffic tracking: modeled DRAM bytes/s per model.

Not a paper artifact — this benchmark freezes the memory subsystem's
whole-network outputs so the perf trajectory (``BENCH_*.json`` via
pytest-benchmark ``extra_info``) tracks both the profiler's own speed
(the vectorized tile-timeline walker runs inside ``run_model``) and the
modeled numbers:

- ``dram_gb_per_s`` — total modeled DRAM traffic over the modeled
  runtime (the sustained channel load the design point implies),
- ``memory_bound_fraction`` — share of layers whose honest operand-fill
  time exceeds compute (profile-level, independent of the enforced cap),
- per-operand-class byte totals (weights / activations / partial sums /
  DBB metadata / outputs).
"""

import pytest

from repro.accel import S2TAAW, ZvcgSA
from repro.models import get_spec

MODELS = ("alexnet", "vgg16", "mobilenet_v1", "resnet50")
ACCELS = {"sa-zvcg": ZvcgSA, "s2ta-aw": S2TAAW}


def _traffic_stats(run):
    total = {"weights": 0, "activations": 0, "partial_sums": 0,
             "dbb_metadata": 0, "outputs": 0}
    bound = 0
    for r in run.layer_results:
        for key, val in r.memory.by_class().items():
            total[key] += val
        bound += r.memory.memory_bound
    return total, bound / len(run.layer_results)


@pytest.mark.parametrize("accel_key", sorted(ACCELS))
@pytest.mark.parametrize("model_name", MODELS)
def test_bench_memory_traffic(benchmark, model_name, accel_key):
    spec = get_spec(model_name)
    accel = ACCELS[accel_key]()
    run = benchmark(accel.run_model, spec)
    by_class, bound_frac = _traffic_stats(run)
    dram_bytes = sum(by_class.values())
    gb_per_s = dram_bytes / run.runtime_s / 1e9
    benchmark.extra_info["model"] = model_name
    benchmark.extra_info["accelerator"] = accel.name
    benchmark.extra_info["dram_bytes"] = dram_bytes
    benchmark.extra_info["dram_gb_per_s"] = round(gb_per_s, 3)
    benchmark.extra_info["memory_bound_fraction"] = round(bound_frac, 4)
    for key, val in by_class.items():
        benchmark.extra_info[f"dram_{key}_bytes"] = val
    # Invariants the traffic model must keep.
    assert dram_bytes > 0
    assert by_class["weights"] > 0 and by_class["activations"] > 0
    # Every event bundle carries the same bytes the profile reports.
    assert sum(r.events.dram_read_bytes + r.events.dram_write_bytes
               for r in run.layer_results) == dram_bytes
    # FC / depthwise layers sit past the fill wall at the default channel.
    streaming = [r for r in run.layer_results if r.layer.memory_bound]
    if streaming:
        assert all(r.memory_cycles > 0 for r in streaming)
        assert bound_frac > 0


def test_bench_compressed_streams_shrink_traffic(benchmark):
    """S2TA-AW's DBB-compressed streams move fewer DRAM bytes than the
    dense baseline on the same network (metadata included)."""
    spec = get_spec("alexnet")

    def _both():
        return ZvcgSA().run_model(spec), S2TAAW().run_model(spec)

    dense_run, aw_run = benchmark(_both)
    dense_bytes = sum(r.memory.total_dram_bytes
                      for r in dense_run.layer_results)
    aw_bytes = sum(r.memory.total_dram_bytes for r in aw_run.layer_results)
    benchmark.extra_info["dense_dram_bytes"] = dense_bytes
    benchmark.extra_info["aw_dram_bytes"] = aw_bytes
    benchmark.extra_info["traffic_ratio"] = round(dense_bytes / aw_bytes, 3)
    assert aw_bytes < dense_bytes
