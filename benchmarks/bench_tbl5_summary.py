"""Table 5: qualitative design summary."""

from repro.eval import tbl5_summary


def test_bench_tbl5(benchmark, save_result):
    result = benchmark(tbl5_summary)
    save_result(result)
    rows = {row[0]: row for row in result.rows}
    # Only S2TA-AW has variable (time-unrolled) activation DBB.
    unrolled = [name for name, row in rows.items() if row[5] == "yes"]
    assert unrolled == ["S2TA-AW"]
    # Unstructured designs carry gather/scatter overhead structures.
    for name in ("SA-SMT", "SCNN", "SparTen"):
        assert rows[name][3] != "none"
    for name in ("S2TA-W", "S2TA-AW", "A100", "Kang", "STA"):
        assert rows[name][3] == "none"
