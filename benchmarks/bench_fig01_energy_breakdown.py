"""Figure 1: dense INT8 SA energy breakdown at typical sparsity."""

from repro.eval import fig1_energy_breakdown


def test_bench_fig1(benchmark, save_result):
    result = benchmark(fig1_energy_breakdown)
    save_result(result)
    shares = {row[0]: row[1] for row in result.rows}
    benchmark.extra_info.update(shares)
    # Paper: SRAM 21 / buffers 49 / MAC 20 / act fn 10.
    assert abs(shares["PE-array buffers (operands+acc)"] - 49) < 6
    assert abs(shares["MAC datapath"] - 20) < 5
    assert abs(shares["SRAM buffers"] - 21) < 5
