"""Cross-validation benchmark: functional simulation vs analytic models.

Runs every AlexNet conv layer on both fidelity tiers for the whole
comparison set — the five systolic-family accelerators *and* the three
fixed-dataflow baselines (SparTen, Eyeriss v2, SCNN) — and reports the
per-layer deltas in cycles, fired MACs and energy. The saved table is
the evidence that the analytic fast path tracks the functional ground
truth; the per-model agreement contract lives in
``repro.eval.experiments.XVAL_CONTRACT`` (SRAM bytes and
per-operand-class DRAM bytes exact, fired MACs within a fraction of a
percent, energy within a few percent; cycles bit-equal for the systolic
modes, statistically bounded for SMT/SparTen/Eyeriss v2, and reported
unenforced for SCNN whose multiplier fragmentation is emergent) and is
enforced here through ``result.failures``.
"""

from repro.eval import fig11_full_models, xval_functional_vs_analytic

# Systolic structural checks on top of the shared contract.
SMT_CYCLES_TOL = 0.10  # queueing speedup looked up at measured densities
BASELINES = ("SparTen", "Eyeriss-v2", "SCNN")


def test_bench_xval_alexnet(benchmark, save_result):
    result = benchmark(xval_functional_vs_analytic, "alexnet")
    save_result(result)
    # The per-model contract (fired/energy/cycles/exactness bounds) is
    # evaluated by the runner itself; a clean run reports no failures.
    assert not result.failures, result.failures
    worst_smt_cycles = worst_fired = worst_energy = 0.0
    for name, layer, d_cycles, d_fired, d_energy, sram, slots, dram, cyc \
            in result.rows:
        assert sram == "yes", f"{name}/{layer}: SRAM bytes diverged"
        assert dram == "yes", f"{name}/{layer}: DRAM bytes diverged"
        if name.startswith("SMT"):  # SMT slots/cycles are queueing-derived
            worst_smt_cycles = max(worst_smt_cycles, abs(d_cycles) / 100)
        elif name not in BASELINES:
            assert slots == "yes", f"{name}/{layer}: MAC slots diverged"
            # unified skew convention: bit-equal, not just within rounding
            assert cyc == "yes", f"{name}/{layer}: cycle models diverged"
        worst_fired = max(worst_fired, abs(d_fired) / 100)
        worst_energy = max(worst_energy, abs(d_energy) / 100)
    benchmark.extra_info["worst_smt_cycles_delta"] = worst_smt_cycles
    benchmark.extra_info["worst_fired_delta"] = worst_fired
    benchmark.extra_info["worst_energy_delta"] = worst_energy
    assert worst_smt_cycles < SMT_CYCLES_TOL


def test_bench_fig11_functional(benchmark, save_result):
    """Full-size functional Fig. 11 reproduces the analytic headlines."""
    result = benchmark.pedantic(
        lambda: fig11_full_models(functional=True), rounds=1, iterations=1)
    save_result(result)
    analytic = fig11_full_models()
    fun_avg = result.row("average")
    ana_avg = analytic.row("average")
    benchmark.extra_info["functional_aw_energy_x"] = fun_avg[5]
    benchmark.extra_info["functional_aw_speedup_x"] = fun_avg[6]
    benchmark.extra_info["analytic_aw_energy_x"] = ana_avg[5]
    benchmark.extra_info["analytic_aw_speedup_x"] = ana_avg[6]
    # The functional migration must not move the published headline by
    # more than the cross-tier modelling differences allow.
    assert abs(fun_avg[5] - ana_avg[5]) < 0.15
    assert abs(fun_avg[6] - ana_avg[6]) < 0.25


def test_bench_fig12_functional_baselines(benchmark, save_result):
    """Full-size functional Fig. 12: every row is honest simulation and
    the baseline totals track the analytic pins."""
    from repro.eval import fig12_alexnet_per_layer

    result = benchmark.pedantic(
        lambda: fig12_alexnet_per_layer(functional=True),
        rounds=1, iterations=1)
    save_result(result)
    analytic = fig12_alexnet_per_layer()
    for name in ("SparTen (45nm)", "Eyeriss v2 (65nm)", "SA-ZVCG (65nm)",
                 "S2TA-W (65nm)", "S2TA-AW (65nm)"):
        fun_total = result.row(name)[-1]
        ana_total = analytic.row(name)[-1]
        benchmark.extra_info[f"{name} functional total uJ"] = fun_total
        assert abs(fun_total - ana_total) / ana_total < 0.06, name
