"""Freeze the cost of the fault-injection harness into BENCH_*.json.

The ISSUE-10 promise, made falsifiable: **disabled fault injection is
free.** Every injection point in the hot paths (`faults.inject` around
task execution and queue claims, `faults.mangle` around cache I/O) is
one module-global load plus a ``None`` check when no registry is
installed. This file measures that guard in a tight loop and records
``guards_per_s`` (the regression gate's metric) plus the per-guard
nanosecond cost, then projects it against the guard count of a real
fig12 functional run to bound the whole-experiment overhead far under
any observable budget.

The *armed-but-missing* path (a registry installed, the roll misses)
is also timed into ``extra_info`` — it has no hard gate (chaos runs
are opt-in), but a silent 10x jump would surface in the BENCH diff.

Like the other benchmarks this is nightly-tier only: the filenames do
not match tier-1's ``test_*.py`` collection pattern, and ``make bench``
promotes the JSON only when ``tools/check_bench_regression.py`` passes.
"""

import time

from repro import faults

#: Guard evaluations per timing rep. Large enough that loop/timer
#: overhead amortizes below the per-guard cost being measured.
GUARDS_PER_REP = 200_000

#: Ceiling on the disabled guard, generous against CI-box noise: the
#: measured cost is ~100ns; a layer simulation behind each guard is
#: milliseconds, so even this bound keeps instrumented hot paths'
#: overhead around one part in ten thousand.
MAX_DISABLED_GUARD_NS = 3_000

#: Injection points a full-size fig12 functional run crosses (25
#: layer tasks x inject-per-execution plus two mangles per cache
#: roundtrip and the serve claim guard) — the projection multiplier
#: for the <1% whole-run bound.
FIG12_GUARD_ESTIMATE = 100


def _disabled_guard_loop(n: int) -> float:
    """Seconds to evaluate ``n`` disabled ``inject`` guards."""
    inject = faults.inject
    start = time.perf_counter()
    for _ in range(n):
        inject("task_execute", "bench")
    return time.perf_counter() - start


def _armed_miss_loop(n: int) -> float:
    """Seconds for ``n`` armed-but-missing guards: a registry is
    installed but ``worker_crash`` is worker-only and this process is
    the parent, so every call takes the fast not-armed-here exit."""
    inject = faults.inject
    start = time.perf_counter()
    for _ in range(n):
        inject("task_execute", "bench")
    return time.perf_counter() - start


def test_bench_disabled_inject_guard(benchmark):
    faults.reset()
    assert faults.active() is None, \
        "benchmark must run with fault injection off"
    elapsed = benchmark.pedantic(
        lambda: _disabled_guard_loop(GUARDS_PER_REP),
        rounds=5, iterations=1, warmup_rounds=1)
    per_guard_ns = elapsed / GUARDS_PER_REP * 1e9
    benchmark.extra_info["guards_per_s"] = round(GUARDS_PER_REP / elapsed)
    benchmark.extra_info["disabled_guard_ns"] = round(per_guard_ns, 1)
    assert per_guard_ns < MAX_DISABLED_GUARD_NS, \
        f"disabled inject guard costs {per_guard_ns:.0f}ns"
    # The acceptance bound: projected against a real experiment's guard
    # count, disabled fault injection must stay far below 1% of even a
    # very fast (1 s) full run.
    projected_s = FIG12_GUARD_ESTIMATE * per_guard_ns / 1e9
    benchmark.extra_info["projected_fig12_overhead_s"] = round(
        projected_s, 6)
    assert projected_s < 0.01 * 1.0, \
        f"projected disabled overhead {projected_s * 1e3:.2f}ms " \
        f"exceeds 1% of a 1s experiment"

    # Armed-but-missing cost, tracked (not gated): worker-only faults
    # in the parent process take the first fast exit inside the
    # registry, so chaos runs do not slow the coordinating process.
    faults.configure("worker_crash:p=1:n=1000000")
    try:
        armed = _armed_miss_loop(GUARDS_PER_REP)
    finally:
        faults.reset()
    benchmark.extra_info["armed_miss_guard_ns"] = round(
        armed / GUARDS_PER_REP * 1e9, 1)
