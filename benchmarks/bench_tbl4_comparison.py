"""Table 4: the cross-accelerator comparison at 16 nm and 65 nm."""

import pytest

from repro.eval import tbl4_comparison


@pytest.mark.parametrize("tech", ["16nm", "65nm"])
def test_bench_tbl4(benchmark, save_result, tech):
    result = benchmark.pedantic(tbl4_comparison, args=(tech,),
                                rounds=1, iterations=1)
    save_result(result)
    tops_w = {row[0]: row[5] for row in result.rows}
    if tech == "16nm":
        # Efficiency ordering: AW > W > ZVCG > SMT (Table 4).
        assert (tops_w["S2TA-AW"] > tops_w["S2TA-W"]
                > tops_w["SA-ZVCG"] > tops_w["SA-SMT"])
        assert tops_w["SA-ZVCG"] == pytest.approx(10.5, abs=1.5)
        # Effective 8 TOPS at 50% sparsity for the DBB designs.
        tops = {row[0]: row[3] for row in result.rows}
        assert tops["S2TA-AW"] == pytest.approx(8.0, rel=0.15)
        assert tops["S2TA-W"] == pytest.approx(8.0, rel=0.15)
    else:
        assert tops_w["S2TA-AW"] > tops_w["S2TA-W"] > tops_w["SA-ZVCG"]
        # Eyeriss v2's tiny MAC count caps its throughput (kInf/s).
        inf_s = {row[0]: row[7] for row in result.rows}
        assert inf_s["Eyeriss v2"] < inf_s["SA-ZVCG"]
