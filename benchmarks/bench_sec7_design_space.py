"""Section 7: the AxBxC_MxN design-space sweep and selection."""

from repro.eval import sec7_design_space


def test_bench_sec7(benchmark, save_result):
    result = benchmark.pedantic(sec7_design_space, rounds=1, iterations=1)
    save_result(result)
    selected = next(row for row in result.rows if row[5])
    benchmark.extra_info["selected"] = selected[0]
    # The paper selects the time-unrolled 8x4x4 TPE (grid 8x8; our model
    # ranks the 8x4x4 grids within a few percent of each other).
    assert selected[0].startswith("8x4x4")
    # The paper's exact point sits on or near the frontier.
    notations = [row[0] for row in result.rows]
    assert any(n.startswith("8x4x4") for n in notations)
