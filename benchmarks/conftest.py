"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (table or figure); the
rendered text is saved under ``benchmarks/results/`` so the reproduction
output survives pytest's stdout capture, and key numbers are attached to
the pytest-benchmark record via ``extra_info``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def save_result():
    """Persist a rendered ExperimentResult and return it unchanged."""

    def _save(result):
        RESULTS_DIR.mkdir(exist_ok=True)
        slug = "".join(c if c.isalnum() else "_"
                       for c in result.artifact.lower()).strip("_")
        path = RESULTS_DIR / f"{slug}.txt"
        path.write_text(result.render() + "\n")
        return result

    return _save
