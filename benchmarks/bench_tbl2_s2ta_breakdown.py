"""Table 2: S2TA-AW power/area breakdown at its design point."""

from repro.eval import tbl2_s2ta_breakdown


def test_bench_tbl2(benchmark, save_result):
    result = benchmark(tbl2_s2ta_breakdown)
    save_result(result)
    area = {row[0]: row[3] for row in result.rows}
    power = {row[0]: row[1] for row in result.rows}
    # Area: the 2 MB activation SRAM dominates (paper 57.3%).
    assert abs(area["Activation SRAM (2MB)"] - 57.3) < 6
    assert abs(area["MAC Datapath and Buffers"] - 19.1) < 5
    # Power: MAC datapath + buffers is the largest component.
    assert power["MAC Datapath and Buffers"] == max(power.values())
