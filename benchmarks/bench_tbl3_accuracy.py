"""Table 3: DBB pruning + fine-tuning accuracy (proxy reproduction)."""

from repro.eval import tbl3_accuracy


def test_bench_tbl3(benchmark, save_result):
    result = benchmark.pedantic(tbl3_accuracy, rounds=1, iterations=1)
    save_result(result)
    by_variant = {row[0]: row for row in result.rows}
    for name, row in by_variant.items():
        baseline, pruned, finetuned, loss = row[1:]
        benchmark.extra_info[name] = f"{baseline}->{pruned}->{finetuned}"
        # Fine-tuning must recover (Table 3's point).
        assert finetuned >= pruned
    # Moderate DBB (the paper's chosen ratios) lands within a few points.
    assert by_variant["A/W-DBB 3/8+4/8"][4] < 5.0
    # Aggressive 2/8 weight pruning costs more than moderate 4/8.
    assert (by_variant["W-DBB 2/8 (aggressive)"][2]
            <= by_variant["W-DBB 4/8"][2])
