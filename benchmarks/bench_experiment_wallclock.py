"""End-to-end experiment wall-clock tracking for the functional tier.

Not a paper artifact — this benchmark freezes the wall-clock of the
full-size ``fig12 --functional`` experiment (every accelerator row as
honest simulation, no row subsampling) under the three execution
regimes of the parallel, memoized runner (:mod:`repro.eval.runner`):

- **serial cold** (``jobs=1``, no result cache) — the PR-4 baseline
  regime, and the reference the other two must beat;
- **parallel cold** (``jobs=4``, no result cache) — the process-pool
  fan-out; recorded with its worker count so multi-core hosts can gate
  the speedup honestly (a 1-core CI box records ~1x, which is why the
  4x assertion is conditional on the host's core count);
- **cached warm** (any jobs, result cache primed) — the re-run /
  overlapping-experiment regime; must be >= 4x faster than serial cold
  on any host, since it skips every simulation.

Each regime's ``extra_info.wallclock_s`` lands in ``BENCH_*.json``;
``tools/check_bench_regression.py`` diffs it (as inverse wall-clock)
alongside the kernel throughput metrics, so an experiment-level
slowdown fails the nightly gate even when per-kernel MACs/s stay flat.
The three regimes must also agree bit-for-bit — the determinism
contract of the runner, asserted here at full size (tier-1 asserts it
at quick size in ``tests/eval/test_runner.py``).
"""

import os
import time

from repro.core.gemm import clear_compress_cache
from repro.eval.experiments import fig12_alexnet_per_layer
from repro.eval.resultcache import ResultCache
from repro.workloads.from_spec import default_operand_cache

PARALLEL_WORKERS = 4

_rows = {}
_wallclock = {}


def _cold_caches():
    """Reset every in-process memo so a 'cold' regime is actually cold."""
    default_operand_cache().clear()
    clear_compress_cache()


def _timed(scenario, benchmark, run, **extra):
    def body():
        start = time.perf_counter()
        result = run()
        _wallclock[scenario] = time.perf_counter() - start
        return result

    result = benchmark.pedantic(body, rounds=1, iterations=1)
    _rows[scenario] = result.rows
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["wallclock_s"] = round(_wallclock[scenario], 4)
    for key, val in extra.items():
        benchmark.extra_info[key] = val
    assert result.rows, "experiment produced no rows"


def _ensure_serial_reference():
    """The serial-cold rows/wall-clock, measured on demand — keeps the
    parallel/cached tests independent under ``-k`` selection."""
    if "serial_cold" not in _rows:
        _cold_caches()
        start = time.perf_counter()
        result = fig12_alexnet_per_layer(functional=True, seed=0,
                                         jobs=1, result_cache=None)
        _wallclock["serial_cold"] = time.perf_counter() - start
        _rows["serial_cold"] = result.rows


def test_bench_fig12_functional_serial_cold(benchmark):
    _cold_caches()
    _timed("serial_cold", benchmark,
           lambda: fig12_alexnet_per_layer(functional=True, seed=0,
                                           jobs=1, result_cache=None),
           workers=1)


def test_bench_fig12_functional_parallel_cold(benchmark):
    _ensure_serial_reference()
    _cold_caches()
    _timed("parallel_cold", benchmark,
           lambda: fig12_alexnet_per_layer(functional=True, seed=0,
                                           jobs=PARALLEL_WORKERS,
                                           result_cache=None),
           workers=PARALLEL_WORKERS,
           host_cpus=os.cpu_count() or 1)
    assert _rows["parallel_cold"] == _rows["serial_cold"], \
        "parallel run diverged from serial at the same seed"
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        # The fan-out acceptance bound; only meaningful with the cores
        # to back it (pool overhead makes it vacuous on small hosts).
        speedup = _wallclock["serial_cold"] / _wallclock["parallel_cold"]
        assert speedup >= 2.0, \
            f"parallel fan-out speedup {speedup:.2f}x on " \
            f"{os.cpu_count()} cores"


def test_bench_fig12_functional_cached_warm(benchmark, tmp_path):
    _ensure_serial_reference()
    cache = ResultCache(tmp_path / "results")
    # Prime (cold, untimed), then benchmark the warm re-run.
    fig12_alexnet_per_layer(functional=True, seed=0, jobs=1,
                            result_cache=cache)
    _timed("cached_warm", benchmark,
           lambda: fig12_alexnet_per_layer(functional=True, seed=0,
                                           jobs=1, result_cache=cache),
           workers=1)
    stats = cache.stats()
    benchmark.extra_info["cache_entries"] = stats["entries"]
    benchmark.extra_info["cache_bytes"] = stats["bytes"]
    assert _rows["cached_warm"] == _rows["serial_cold"], \
        "cache-hit re-run diverged from the cold run"
    speedup = _wallclock["serial_cold"] / _wallclock["cached_warm"]
    benchmark.extra_info["speedup_vs_serial_cold"] = round(speedup, 2)
    assert speedup >= 4.0, \
        f"cached re-run only {speedup:.2f}x faster than serial cold"
