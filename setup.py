"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which must build an editable wheel) fail.
This shim lets ``pip install -e . --no-use-pep517`` fall back to
``setup.py develop``, which needs only setuptools. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
