"""The distributed, adaptive design-space exploration engine
(:mod:`repro.design.dse`).

The ISSUE-7 acceptance bounds, asserted here:

- a 2-way sharded run, merged from its per-shard artifacts, is
  identical to the unsharded run (everything but the cache ``meta``);
- a warm re-sweep of >= 500 points hits the result cache on > 90% of
  lookups;
- adaptive refinement terminates with a stable (energy, cycles, area)
  Pareto frontier, pinned on a restricted axes slice.
"""

import dataclasses
import random

import pytest

from repro.design.dse import (
    DSEAxes,
    DSEEvaluation,
    DSEPoint,
    DSESpace,
    evaluate_points,
    merge_artifacts,
    pareto_frontier_3d,
    parse_shard,
    render_artifact,
    run_dse,
)
from repro.eval.resultcache import ResultCache

#: A small slice of the keyspace: one style, one B, three A-DBB bounds
#: — 114 points, a sub-second sweep with non-trivial refinement.
SMALL = DSEAxes(styles=(True,), weight_nnz=(4,), a_nnz=(2, 4, 8),
                sram_mb=(2.5,))


def _sans_meta(artifact):
    return {k: v for k, v in artifact.items() if k != "meta"}


class TestAxes:
    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            DSEAxes(a_nnz=())

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ValueError):
            DSEAxes(sram_mb=(2.5, 2.5))

    def test_dbb_bounds_validated(self):
        with pytest.raises(ValueError):
            DSEAxes(weight_nnz=(9,))
        with pytest.raises(ValueError):
            DSEAxes(a_nnz=(0,))

    def test_roundtrips_through_dict(self):
        axes = DSEAxes(dram_gbps=(None, 8.0), techs=("16nm", "65nm"))
        assert DSEAxes.from_dict(axes.as_dict()) == axes


class TestSpace:
    def test_default_space_is_thousands_of_points(self):
        assert len(DSESpace()) >= 2000

    def test_enumeration_is_deterministic(self):
        first = [p.uid for p in DSESpace(SMALL).points]
        second = [p.uid for p in DSESpace(SMALL).points]
        assert first == second
        assert len(first) == len(set(first))

    def test_neighbors_stay_in_space_and_are_symmetric(self):
        space = DSESpace(SMALL)
        point = space.points[len(space) // 2]
        neighbors = space.neighbors(point.uid)
        assert neighbors
        for other in neighbors:
            assert other.uid in space
            back = [p.uid for p in space.neighbors(other.uid)]
            assert point.uid in back

    def test_scalar_axis_neighbors_step_one_index(self):
        space = DSESpace(SMALL)
        point = next(p for p in space.points if p.a_nnz == 4)
        steps = {n.a_nnz for n in space.neighbors(point.uid)
                 if n.design == point.design}
        assert steps == {2, 8}  # both neighbors on the a_nnz axis

    def test_design_neighbors_share_style(self):
        space = DSESpace(DSEAxes(styles=(True, False), weight_nnz=(4,),
                                 a_nnz=(4,), sram_mb=(2.5,)))
        point = space.points[0]
        for other in space.neighbors(point.uid):
            assert (other.design.time_unrolled
                    == point.design.time_unrolled)


def _evaluation(tag, energy, cycles, area):
    return DSEEvaluation(
        uid=f"p{tag}", notation=f"n{tag}", time_unrolled=True,
        weight_nnz=4, a_nnz=4, sram_mb=2.5, dram_gbps=None,
        tech="16nm", power_mw=1.0, area_mm2=float(area),
        cycles=int(cycles), energy_uj=float(energy))


class TestParetoFrontier3D:
    def test_nondominated_and_keeps_ties(self):
        tied_a = _evaluation(1, 1.0, 10, 2.0)
        tied_b = _evaluation(2, 1.0, 10, 2.0)
        dominated = _evaluation(3, 2.0, 20, 3.0)
        tradeoff = _evaluation(4, 0.5, 40, 5.0)
        frontier = pareto_frontier_3d(
            [dominated, tied_a, tradeoff, tied_b])
        uids = [e.uid for e in frontier]
        assert "p1" in uids and "p2" in uids
        assert "p3" not in uids
        assert "p4" in uids  # wins on energy, loses on cycles/area

    def test_order_independent(self):
        rnd = random.Random(7)
        evals = [_evaluation(i, rnd.choice([1.0, 2.0, 3.0]),
                             rnd.choice([10, 20, 30]),
                             rnd.choice([1.0, 2.0]))
                 for i in range(30)]
        reference = pareto_frontier_3d(evals)
        for _ in range(10):
            rnd.shuffle(evals)
            assert pareto_frontier_3d(evals) == reference


class TestRunDSE:
    def test_pinned_stable_frontier(self):
        """The refinement converges to one frontier point on the SMALL
        slice: the paper's 8x4x4_8x8 at the tightest A-DBB bound —
        pinned exactly (uid) and numerically (objectives)."""
        artifact = run_dse(SMALL, coarse_stride=3, jobs=1)
        assert artifact["phase"] == "final"
        assert artifact["frontier"] == [
            "8x4x4_8x8.tu.a2.s2.5.bwdef.16nm"]
        best = next(e for e in artifact["evaluations"]
                    if e["uid"] == artifact["frontier"][0])
        assert best["cycles"] == 112924
        assert best["energy_uj"] == pytest.approx(52.7, abs=0.1)
        assert best["area_mm2"] == pytest.approx(3.70, abs=0.01)

    def test_refinement_terminates_with_stable_frontier(self):
        artifact = run_dse(SMALL, coarse_stride=4, stable_rounds=2,
                           jobs=1)
        rounds = artifact["rounds"]
        assert 2 <= len(rounds) <= 65
        evaluated = [r["evaluated"] for r in rounds]
        assert evaluated == sorted(evaluated)
        assert evaluated[-1] == len(artifact["evaluations"])
        # The frontier is genuinely non-dominated over everything seen.
        evals = [DSEEvaluation.from_dict(e)
                 for e in artifact["evaluations"]]
        assert artifact["frontier"] == [
            e.uid for e in pareto_frontier_3d(evals)]

    def test_coarse_stride_one_evaluates_everything(self):
        tiny = DSEAxes(styles=(True,), weight_nnz=(4,), a_nnz=(4,),
                       sram_mb=(1.25, 2.5))
        artifact = run_dse(tiny, coarse_stride=1, jobs=1)
        assert len(artifact["evaluations"]) == len(DSESpace(tiny))

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            run_dse(SMALL, coarse_stride=0)
        with pytest.raises(ValueError):
            run_dse(SMALL, stable_rounds=0)
        with pytest.raises(ValueError):
            evaluate_points([], fidelity="rtl")


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("2/2", "-1/2", "0/0", "x", "1", "1/2/3"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shards_partition_the_coarse_sample(self):
        shards = [run_dse(SMALL, coarse_stride=3, jobs=1, shard=(i, 3))
                  for i in range(3)]
        owned = [
            {e["uid"] for e in s["evaluations"]} for s in shards]
        assert not (owned[0] & owned[1] or owned[0] & owned[2]
                    or owned[1] & owned[2])
        coarse = {p.uid for p in DSESpace(SMALL).points[::3]}
        assert owned[0] | owned[1] | owned[2] == coarse

    def test_merge_identical_to_unsharded(self):
        """The ISSUE-7 headline bound: shard 0/2 + shard 1/2, merged,
        equals the unsharded artifact — evaluations, frontier and
        refinement rounds alike."""
        unsharded = run_dse(SMALL, coarse_stride=3, jobs=1)
        shards = [run_dse(SMALL, coarse_stride=3, jobs=1, shard=(i, 2))
                  for i in range(2)]
        for shard in shards:
            assert shard["phase"] == "coarse"
            assert shard["frontier"] == []
        merged = merge_artifacts(shards, jobs=1)
        assert _sans_meta(merged) == _sans_meta(unsharded)

    def test_merge_rejects_incomplete_or_foreign_shards(self):
        s0, s1 = (run_dse(SMALL, coarse_stride=3, jobs=1, shard=(i, 2))
                  for i in range(2))
        with pytest.raises(ValueError):
            merge_artifacts([])
        with pytest.raises(ValueError):
            merge_artifacts([s0])  # shard 1 missing
        with pytest.raises(ValueError):
            merge_artifacts([s0, s0])  # duplicate index
        other = run_dse(SMALL, coarse_stride=4, jobs=1, shard=(1, 2))
        with pytest.raises(ValueError):
            merge_artifacts([s0, other])  # different space signature
        final = run_dse(SMALL, coarse_stride=3, jobs=1)
        with pytest.raises(ValueError):
            merge_artifacts([final, s1])  # not a coarse shard


class TestResultCacheIntegration:
    def test_warm_resweep_hits_cache(self, tmp_path):
        """>= 500 points, > 90% hit rate on the re-sweep — the ISSUE-7
        memoization bound, on the full default keyspace."""
        cache = ResultCache(tmp_path / "rc")
        cold = run_dse(coarse_stride=4, jobs=1, result_cache=cache)
        assert len(cold["evaluations"]) >= 500
        cache.hits = cache.misses = 0
        warm = run_dse(coarse_stride=4, jobs=1, result_cache=cache)
        assert _sans_meta(warm) == _sans_meta(cold)
        assert warm["meta"]["cache"]["hit_rate"] > 0.90

    def test_shards_share_payloads_with_the_merge_host(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        shards = [run_dse(SMALL, coarse_stride=3, jobs=1, shard=(i, 2),
                          result_cache=cache)
                  for i in range(2)]
        merged = merge_artifacts(shards, jobs=1, result_cache=cache)
        # Re-merging is pure cache traffic: zero new simulations.
        cache.hits = cache.misses = 0
        again = merge_artifacts(shards, jobs=1, result_cache=cache)
        assert _sans_meta(again) == _sans_meta(merged)
        assert again["meta"]["cache"]["hit_rate"] == 1.0


class TestFidelity:
    @pytest.mark.functional
    def test_functional_fidelity_runs_the_cycle_simulator(self, tmp_path):
        cache = ResultCache(tmp_path / "rc")
        space = DSESpace(DSEAxes(styles=(True,), weight_nnz=(4,),
                                 a_nnz=(4,), sram_mb=(2.5,)))
        point = next(p for p in space.points
                     if p.design.notation == "8x4x4_8x8")
        functional = evaluate_points([point], fidelity="functional",
                                     max_m=32, jobs=1,
                                     result_cache=cache)[point.uid]
        analytic = evaluate_points([point], fidelity="analytic",
                                   max_m=32, jobs=1,
                                   result_cache=cache)[point.uid]
        assert functional.cycles > 0 and analytic.cycles > 0
        assert cache.stats()["entries"] == 2  # tiers never collide

    def test_point_build_applies_every_axis(self):
        design = next(iter(DSESpace(SMALL).points)).design
        point = DSEPoint(design=design, a_nnz=2, sram_mb=5.0,
                         dram_gbps=8.0, tech="65nm")
        accel = point.build()
        assert accel.tech == "65nm"
        assert accel.sram_mb == 5.0
        assert accel.memory.dram.bytes_per_cycle * accel.clock_ghz \
            == pytest.approx(8.0)
        layer = point.layer()
        assert layer.a_nnz == 2
        assert layer.w_nnz == design.weight_nnz


class TestRender:
    def test_render_mentions_frontier_and_counts(self):
        artifact = run_dse(SMALL, coarse_stride=3, jobs=1)
        text = render_artifact(artifact, top=5).render()
        assert "8x4x4_8x8" in text
        assert "Pareto frontier" in text
        assert "114 points in the space" in text

    def test_render_flags_partial_shards(self):
        shard = run_dse(SMALL, coarse_stride=3, jobs=1, shard=(0, 2))
        text = render_artifact(shard).render()
        assert "partial shard 0/2" in text


class TestCheckpointResume:
    """Crash-safe sweeps: checkpoints are atomic snapshots of the only
    path-dependent state (evaluations, coarse progress, refine
    rounds/stable counter), so a resumed run's artifact is identical to
    an uninterrupted one — from any interruption point."""

    def test_resume_mid_coarse_equals_uninterrupted(self, tmp_path,
                                                    monkeypatch):
        import repro.design.dse as dse_mod

        base = run_dse(axes=SMALL, coarse_stride=4)
        ckpt = tmp_path / "ck.json"
        real = dse_mod.evaluate_points
        calls = {"n": 0}

        def bomb(points, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt   # "SIGKILL" mid-coarse
            return real(points, **kwargs)

        monkeypatch.setattr(dse_mod, "evaluate_points", bomb)
        with pytest.raises(KeyboardInterrupt):
            run_dse(axes=SMALL, coarse_stride=4,
                    checkpoint=str(ckpt), checkpoint_every=5)
        monkeypatch.setattr(dse_mod, "evaluate_points", real)

        state = dse_mod.load_checkpoint(ckpt)
        assert 0 < state["coarse_done"] < len(DSESpace(SMALL).points[::4])
        resumed = run_dse(resume=str(ckpt))
        assert _sans_meta(resumed) == _sans_meta(base)

    def test_resume_mid_refine_equals_uninterrupted(self, tmp_path,
                                                    monkeypatch):
        import repro.design.dse as dse_mod

        base = run_dse(axes=SMALL, coarse_stride=4)
        ckpt = tmp_path / "ck.json"
        coarse_points = len(DSESpace(SMALL).points[::4])
        real = dse_mod.evaluate_points
        calls = {"n": 0}
        import math
        coarse_calls = math.ceil(coarse_points / 5)

        def bomb(points, **kwargs):
            calls["n"] += 1
            if calls["n"] > coarse_calls + 1:   # die in refine round 2
                raise KeyboardInterrupt
            return real(points, **kwargs)

        monkeypatch.setattr(dse_mod, "evaluate_points", bomb)
        try:
            run_dse(axes=SMALL, coarse_stride=4,
                    checkpoint=str(ckpt), checkpoint_every=5)
            interrupted = False
        except KeyboardInterrupt:
            interrupted = True
        monkeypatch.setattr(dse_mod, "evaluate_points", real)

        if interrupted:   # refinement had >= 2 rounds to interrupt
            state = dse_mod.load_checkpoint(ckpt)
            assert state["refine"] is not None
        resumed = run_dse(resume=str(ckpt))
        assert _sans_meta(resumed) == _sans_meta(base)

    def test_resume_of_finished_checkpoint_is_idempotent(self, tmp_path):
        ckpt = tmp_path / "ck.json"
        base = run_dse(axes=SMALL, coarse_stride=4,
                       checkpoint=str(ckpt))
        again = run_dse(resume=str(ckpt))
        assert _sans_meta(again) == _sans_meta(base)

    def test_checkpoint_validation(self, tmp_path):
        import json

        from repro.design.dse import load_checkpoint

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"artifact": "dse"}))
        with pytest.raises(ValueError, match="not a DSE checkpoint"):
            load_checkpoint(bad)

        ckpt = tmp_path / "ck.json"
        run_dse(axes=SMALL, coarse_stride=8, checkpoint=str(ckpt))
        data = json.loads(ckpt.read_text())
        data["space"]["coarse_stride"] = 2   # tampered config
        ckpt.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="signature"):
            load_checkpoint(ckpt)
