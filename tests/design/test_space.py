"""Tests for the Sec. 7 design-space exploration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import (
    DesignPoint,
    enumerate_design_space,
    evaluate_point,
    generate_structure,
    pareto_frontier,
    select_lowest_power,
)
from repro.design.space import PPA, TARGET_MACS


class TestDesignPoint:
    def test_notation(self):
        p = DesignPoint(tpe_a=8, tpe_c=4, rows=8, cols=8)
        assert p.notation == "8x4x4_8x8"

    def test_hardware_macs_time_unrolled(self):
        p = DesignPoint(tpe_a=8, tpe_c=4, rows=8, cols=8)
        assert p.hardware_macs == 2048

    def test_hardware_macs_dot_product(self):
        p = DesignPoint(tpe_a=4, tpe_c=4, rows=4, cols=8,
                        time_unrolled=False)
        assert p.hardware_macs == 2048

    def test_clock_derate_for_large_tpe(self):
        paper = DesignPoint(tpe_a=8, tpe_c=4, rows=8, cols=8)
        big = DesignPoint(tpe_a=16, tpe_c=16, rows=2, cols=4)
        assert paper.clock_ghz == 1.0
        assert big.clock_ghz < 1.0
        assert not big.meets_throughput

    def test_paper_point_meets_throughput(self):
        p = DesignPoint(tpe_a=8, tpe_c=4, rows=8, cols=8)
        assert p.peak_tops == pytest.approx(4.096, rel=1e-6)
        assert p.meets_throughput


class TestEnumeration:
    def test_all_points_hit_mac_budget(self):
        points = list(enumerate_design_space())
        assert points
        assert all(p.hardware_macs == TARGET_MACS for p in points)
        assert all(p.meets_throughput for p in points)

    def test_paper_point_in_space(self):
        notations = {p.notation for p in enumerate_design_space()}
        assert "8x4x4_8x8" in notations

    def test_dot_product_space(self):
        points = list(enumerate_design_space(time_unrolled=False))
        assert all(p.hardware_macs == TARGET_MACS for p in points)
        assert "4x4x4_4x8" in {p.notation for p in points}


class TestEvaluationAndSelection:
    @pytest.fixture(scope="class")
    def evaluations(self):
        return [evaluate_point(p) for p in enumerate_design_space()]

    def test_paper_tpe_shape_wins(self, evaluations):
        """Sec. 7: the sweep selects the time-unrolled 8x4x4 TPE (the
        paper's grid is 8x8; 4x16 evaluates within a fraction of a
        percent — see EXPERIMENTS.md)."""
        best = select_lowest_power(evaluations)
        assert (best.point.tpe_a, best.point.tpe_c) == (8, 4)
        assert best.point.time_unrolled

    def test_paper_grid_close_to_best(self, evaluations):
        """The paper's exact 8x8 grid lands within ~10% of our model's
        best 8x4x4 grid (4x16): the gap is the AB-vs-WB per-access cost
        asymmetry acting on tile reuse, see EXPERIMENTS.md."""
        best = select_lowest_power(evaluations)
        paper = next(e for e in evaluations
                     if e.point.notation == "8x4x4_8x8")
        assert paper.energy_uj <= best.energy_uj * 1.12

    def test_tpe_beats_scalar_like_points(self, evaluations):
        """Bigger TPEs increase reuse: small-TPE points burn more power."""
        best = select_lowest_power(evaluations)
        small = [e for e in evaluations if e.point.tpe_a * e.point.tpe_c <= 2]
        if small:
            assert min(e.power_mw for e in small) > best.power_mw

    def test_frontier_is_nondominated(self, evaluations):
        frontier = pareto_frontier(evaluations)
        assert frontier
        for a in frontier:
            assert not any(b.dominates(a) for b in evaluations)

    def test_selection_respects_area_budget(self, evaluations):
        with pytest.raises(ValueError):
            select_lowest_power(evaluations, area_budget_mm2=0.1)


class TestRtlGen:
    def test_structure_contains_hierarchy(self):
        p = DesignPoint(tpe_a=8, tpe_c=4, rows=8, cols=8)
        text = generate_structure(p)
        assert "8x4x4_8x8" in text
        assert "64x tpe" in text
        assert "32x dp1m4" in text
        assert "total hardware MACs: 2048" in text
        assert "dap_array" in text

    def test_dot_product_unit_name(self):
        p = DesignPoint(tpe_a=4, tpe_c=4, rows=4, cols=8,
                        time_unrolled=False)
        text = generate_structure(p)
        assert "dp4m8" in text
        assert "macs=4" in text

    def test_deterministic(self):
        p = DesignPoint(tpe_a=2, tpe_c=2, rows=16, cols=16)
        assert generate_structure(p) == generate_structure(p)


def _ppa(tag: int, power: float, area: float, energy: float = 1.0,
         cycles: int = 100) -> PPA:
    """Synthetic PPA with a unique notation per ``tag`` (the tiebreak
    key) — lets selection/frontier properties be tested on exact
    objective values instead of whatever the cost model produces."""
    return PPA(point=DesignPoint(tpe_a=1, tpe_c=1, rows=1, cols=tag),
               power_mw=float(power), area_mm2=float(area),
               cycles=cycles, energy_uj=float(energy))


class TestSelectionRule:
    """The Sec. 7 rule is lowest *power* within the area budget — the
    ISSUE-7 fix (it previously minimized energy, a different ordering
    whenever designs trade runtime against draw)."""

    def test_minimizes_power_not_energy(self):
        # Lower draw but longer runtime => more energy. The paper's
        # rule picks it anyway.
        frugal = _ppa(1, power=100.0, area=2.0, energy=500.0)
        hasty = _ppa(2, power=400.0, area=2.0, energy=50.0)
        assert select_lowest_power([hasty, frugal]) == frugal

    def test_area_budget_excludes_lower_power_designs(self):
        small = _ppa(1, power=300.0, area=1.0)
        big = _ppa(2, power=100.0, area=10.0)
        assert select_lowest_power([small, big]) == big
        assert select_lowest_power([small, big],
                                   area_budget_mm2=5.0) == small

    def test_power_ties_break_toward_smaller_die(self):
        lean = _ppa(1, power=100.0, area=1.0)
        bulky = _ppa(2, power=100.0, area=2.0)
        assert select_lowest_power([bulky, lean]) == lean

    def test_selection_is_enumeration_order_independent(self):
        evals = [_ppa(i, power=100.0 + (i % 3), area=2.0 + (i % 2))
                 for i in range(8)]
        picks = {select_lowest_power(list(reversed(evals))),
                 select_lowest_power(evals),
                 select_lowest_power(sorted(evals,
                                            key=lambda p: p.area_mm2))}
        assert len(picks) == 1


class TestFrontierProperties:
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    min_size=1, max_size=24),
           st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_order_independent(self, grid, rnd):
        """The frontier — content *and* order — is a pure function of
        the evaluation set (small integer grids force plenty of exact
        objective ties)."""
        evals = [_ppa(i, power=p, area=a)
                 for i, (p, a) in enumerate(grid)]
        shuffled = list(evals)
        rnd.shuffle(shuffled)
        assert pareto_frontier(shuffled) == pareto_frontier(evals)

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=1, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_keeps_exact_ties(self, grid):
        """Dominance requires a strict improvement, so objective-tied
        points survive or fall together — never an arbitrary winner."""
        evals = [_ppa(i, power=p, area=a)
                 for i, (p, a) in enumerate(grid)]
        frontier = pareto_frontier(evals)
        assert frontier
        kept = {(e.power_mw, e.area_mm2) for e in frontier}
        for e in evals:
            if (e.power_mw, e.area_mm2) in kept:
                assert e in frontier
