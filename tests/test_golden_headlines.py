"""Golden pins of the analytic headline numbers (Fig. 11 / Fig. 12).

The functional-simulation migration turned the analytic models into the
*fast path*; these pins freeze the published analytic headline ratios to
two decimals so that refactors of either tier cannot silently shift the
numbers the reproduction reports against the paper. The functional tier
of the baseline accelerators (SparTen / Eyeriss v2 / SCNN) is pinned
too (seed-fixed quick runs, 2 decimals) so refactors of the new engines
cannot silently drift the baselines the headline speedups are measured
against. If a change moves one of these on purpose (e.g. a calibration
fix), update the pin in the same commit and say why in its message.
"""

import pytest

from repro.eval import fig11_full_models, fig12_alexnet_per_layer

# Fig. 11 analytic S2TA-AW columns: (energy x, speedup x) vs SA-ZVCG.
FIG11_AW_GOLDEN = {
    "resnet50": (2.19, 2.28),
    "vgg16": (2.29, 2.58),
    "mobilenet_v1": (1.84, 1.62),
    "alexnet": (2.03, 2.09),
    "average": (2.09, 2.14),
}

# Fig. 12 analytic totals (uJ, 1 decimal) and headline ratios.
FIG12_TOTALS_GOLDEN = {
    "Eyeriss v2 (65nm)": 1519.4,
    "SparTen (45nm)": 1013.3,
    "SA-ZVCG (65nm)": 842.8,
    "S2TA-W (65nm)": 560.3,
    "S2TA-AW (65nm)": 414.7,
}
FIG12_SPARTEN_OVER_AW = 2.44
FIG12_EYERISS_OVER_AW = 3.66


class TestFig11Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_full_models()

    @pytest.mark.parametrize("model", sorted(FIG11_AW_GOLDEN))
    def test_aw_columns_pinned(self, result, model):
        energy_x, speedup_x = FIG11_AW_GOLDEN[model]
        row = result.row(model)
        assert row[5] == pytest.approx(energy_x, abs=0.005), \
            f"{model} S2TA-AW energy-x moved from the golden {energy_x}"
        assert row[6] == pytest.approx(speedup_x, abs=0.005), \
            f"{model} S2TA-AW speedup-x moved from the golden {speedup_x}"

    def test_average_tracks_paper(self, result):
        # Sanity on top of the pin: the golden values themselves must
        # stay inside the paper's published envelope.
        avg = result.row("average")
        assert avg[5] == pytest.approx(2.08, abs=0.35)
        assert avg[6] == pytest.approx(2.11, abs=0.35)


class TestFig12Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_alexnet_per_layer()

    @pytest.mark.parametrize("accel", sorted(FIG12_TOTALS_GOLDEN))
    def test_totals_pinned(self, result, accel):
        row = result.row(accel)
        assert row[-1] == pytest.approx(FIG12_TOTALS_GOLDEN[accel],
                                        abs=0.05), \
            f"{accel} total energy moved from the golden value"

    def test_headline_ratios_pinned(self, result):
        totals = {row[0]: row[-1] for row in result.rows}
        aw = totals["S2TA-AW (65nm)"]
        assert round(totals["SparTen (45nm)"] / aw, 2) \
            == FIG12_SPARTEN_OVER_AW
        assert round(totals["Eyeriss v2 (65nm)"] / aw, 2) \
            == FIG12_EYERISS_OVER_AW


# Functional-tier pins for the baseline engines: per-layer energies (uJ,
# 2 decimals) of seed-0 quick (m<=128) runs of the Fig. 12 conv stack.
# Deterministic end to end: seeded operand synthesis, deterministic
# greedy schedules, float64 event arithmetic.
FUNCTIONAL_BASELINE_GOLDEN = {
    "Eyeriss-v2": {"conv1": 727.36, "conv2": 385.46, "conv3": 197.29,
                   "conv4": 144.05, "conv5": 65.29},
    "SparTen": {"conv1": 482.19, "conv2": 261.17, "conv3": 130.44,
                "conv4": 95.21, "conv5": 44.35},
    "SCNN": {"conv1": 200.76, "conv2": 105.86, "conv3": 54.07,
             "conv4": 39.43, "conv5": 17.73},
}


class TestFunctionalBaselineGolden:
    """2-decimal pins of the baselines' functional per-layer table."""

    @pytest.fixture(scope="class")
    def runs(self):
        from repro.accel import SCNN, EyerissV2, SparTen
        from repro.models import get_spec

        spec = get_spec("alexnet")
        return {
            accel.name: accel.run_model_functional(
                spec, conv_only=True, seed=0, max_m=128)
            for accel in (EyerissV2(), SparTen(), SCNN())
        }

    @pytest.mark.parametrize("name", sorted(FUNCTIONAL_BASELINE_GOLDEN))
    def test_per_layer_energies_pinned(self, runs, name):
        for layer, pinned in FUNCTIONAL_BASELINE_GOLDEN[name].items():
            got = runs[name].layer(layer).energy_uj
            assert round(got, 2) == pytest.approx(pinned, abs=0.005), \
                (f"{name}/{layer} functional energy moved from the "
                 f"golden {pinned}")

    def test_functional_tracks_analytic_pins(self, runs):
        """The pinned functional totals stay within a few percent of
        the analytic Fig. 12 pins — the two tiers tell one story."""
        analytic = {"Eyeriss-v2": FIG12_TOTALS_GOLDEN["Eyeriss v2 (65nm)"],
                    "SparTen": FIG12_TOTALS_GOLDEN["SparTen (45nm)"]}
        for name, pinned_total in analytic.items():
            total = runs[name].energy_uj
            assert total == pytest.approx(pinned_total, rel=0.02), name
