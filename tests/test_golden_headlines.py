"""Golden pins of the analytic headline numbers (Fig. 11 / Fig. 12).

The functional-simulation migration turned the analytic models into the
*fast path*; these pins freeze the published analytic headline ratios to
two decimals so that refactors of either tier cannot silently shift the
numbers the reproduction reports against the paper. If a change moves
one of these on purpose (e.g. a calibration fix), update the pin in the
same commit and say why in its message.
"""

import pytest

from repro.eval import fig11_full_models, fig12_alexnet_per_layer

# Fig. 11 analytic S2TA-AW columns: (energy x, speedup x) vs SA-ZVCG.
FIG11_AW_GOLDEN = {
    "resnet50": (2.19, 2.28),
    "vgg16": (2.29, 2.58),
    "mobilenet_v1": (1.84, 1.62),
    "alexnet": (2.03, 2.09),
    "average": (2.09, 2.14),
}

# Fig. 12 analytic totals (uJ, 1 decimal) and headline ratios.
FIG12_TOTALS_GOLDEN = {
    "Eyeriss v2 (65nm)": 1519.4,
    "SparTen (45nm)": 1013.3,
    "SA-ZVCG (65nm)": 842.8,
    "S2TA-W (65nm)": 560.3,
    "S2TA-AW (65nm)": 414.7,
}
FIG12_SPARTEN_OVER_AW = 2.44
FIG12_EYERISS_OVER_AW = 3.66


class TestFig11Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_full_models()

    @pytest.mark.parametrize("model", sorted(FIG11_AW_GOLDEN))
    def test_aw_columns_pinned(self, result, model):
        energy_x, speedup_x = FIG11_AW_GOLDEN[model]
        row = result.row(model)
        assert row[5] == pytest.approx(energy_x, abs=0.005), \
            f"{model} S2TA-AW energy-x moved from the golden {energy_x}"
        assert row[6] == pytest.approx(speedup_x, abs=0.005), \
            f"{model} S2TA-AW speedup-x moved from the golden {speedup_x}"

    def test_average_tracks_paper(self, result):
        # Sanity on top of the pin: the golden values themselves must
        # stay inside the paper's published envelope.
        avg = result.row("average")
        assert avg[5] == pytest.approx(2.08, abs=0.35)
        assert avg[6] == pytest.approx(2.11, abs=0.35)


class TestFig12Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_alexnet_per_layer()

    @pytest.mark.parametrize("accel", sorted(FIG12_TOTALS_GOLDEN))
    def test_totals_pinned(self, result, accel):
        row = result.row(accel)
        assert row[-1] == pytest.approx(FIG12_TOTALS_GOLDEN[accel],
                                        abs=0.05), \
            f"{accel} total energy moved from the golden value"

    def test_headline_ratios_pinned(self, result):
        totals = {row[0]: row[-1] for row in result.rows}
        aw = totals["S2TA-AW (65nm)"]
        assert round(totals["SparTen (45nm)"] / aw, 2) \
            == FIG12_SPARTEN_OVER_AW
        assert round(totals["Eyeriss v2 (65nm)"] / aw, 2) \
            == FIG12_EYERISS_OVER_AW
