"""Tests for im2col lowering."""

import numpy as np
import pytest

from repro.nn.im2col import conv_output_size, im2col


def _reference_conv(x, w, kernel, stride, padding):
    """Naive NHWC convolution for cross-checking the GEMM lowering."""
    n, h, width, c = x.shape
    kh, kw = kernel
    f = w.shape[-1]
    xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding), (0, 0)))
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(width, kw, stride, padding)
    out = np.zeros((n, oh, ow, f))
    for b in range(n):
        for i in range(oh):
            for j in range(ow):
                patch = xp[b, i * stride:i * stride + kh,
                           j * stride:j * stride + kw, :]
                out[b, i, j] = patch.reshape(-1) @ w
    return out


class TestConvOutputSize:
    def test_basic(self):
        assert conv_output_size(28, 5, 1, 0) == 24
        assert conv_output_size(224, 3, 1, 1) == 224
        assert conv_output_size(227, 11, 4, 0) == 55

    def test_invalid(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.zeros((2, 8, 8, 3))
        patches, oh, ow = im2col(x, (3, 3), stride=1, padding=1)
        assert (oh, ow) == (8, 8)
        assert patches.shape == (2 * 64, 27)

    def test_channel_axis_innermost(self):
        # For a 1x1 kernel the patch rows are exactly the channel vectors.
        x = np.arange(1 * 2 * 2 * 4).reshape(1, 2, 2, 4)
        patches, _, _ = im2col(x, (1, 1))
        np.testing.assert_array_equal(patches, x.reshape(4, 4))

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((8, 8, 3)), (3, 3))

    @pytest.mark.parametrize("kernel,stride,padding", [
        ((3, 3), 1, 0),
        ((3, 3), 1, 1),
        ((5, 5), 2, 2),
        ((1, 1), 1, 0),
        ((2, 4), 2, 1),
    ])
    def test_matches_reference_conv(self, kernel, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 9, 11, 3))
        w = rng.normal(size=(kernel[0] * kernel[1] * 3, 5))
        patches, oh, ow = im2col(x, kernel, stride, padding)
        got = (patches @ w).reshape(2, oh, ow, 5)
        ref = _reference_conv(x, w, kernel, stride, padding)
        np.testing.assert_allclose(got, ref, rtol=1e-10)
