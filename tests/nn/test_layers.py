"""Tests for the inference layer set."""

import numpy as np
import pytest

from repro.core.dbb import DBBSpec
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
)


class TestConv2d:
    def test_forward_shape(self):
        conv = Conv2d(3, 8, (3, 3), padding=1, rng=np.random.default_rng(0))
        out = conv.forward(np.zeros((2, 8, 8, 3)))
        assert out.shape == (2, 8, 8, 8)

    def test_identity_1x1(self):
        conv = Conv2d(4, 4, (1, 1), weights=np.eye(4))
        x = np.random.default_rng(1).normal(size=(1, 3, 3, 4))
        np.testing.assert_allclose(conv.forward(x), x)

    def test_bias(self):
        conv = Conv2d(2, 3, (1, 1), weights=np.zeros((2, 3)),
                      bias=np.array([1.0, 2.0, 3.0]))
        out = conv.forward(np.zeros((1, 2, 2, 2)))
        np.testing.assert_allclose(out[0, 0, 0], [1.0, 2.0, 3.0])

    def test_weights_shape_validated(self):
        with pytest.raises(ValueError):
            Conv2d(3, 8, (3, 3), weights=np.zeros((5, 8)))

    def test_gemm_shape(self):
        conv = Conv2d(3, 96, (11, 11), stride=4, rng=np.random.default_rng(2))
        assert conv.gemm_shape((227, 227)) == (3025, 363, 96)

    def test_prune_weights_compliant_with_padding(self):
        # K = 3*3*3 = 27, not a multiple of 8 -> padded block handling.
        conv = Conv2d(3, 8, (3, 3), rng=np.random.default_rng(3))
        spec = DBBSpec(8, 2)
        assert not conv.weights_compliant(spec)
        conv.prune_weights(spec)
        assert conv.weights_compliant(spec)

    def test_prune_keeps_shape_dtype(self):
        conv = Conv2d(8, 4, (1, 1), rng=np.random.default_rng(4))
        shape = conv.weights.shape
        conv.prune_weights(DBBSpec(8, 4))
        assert conv.weights.shape == shape


class TestLinear:
    def test_forward(self):
        fc = Linear(4, 2, weights=np.arange(8).reshape(4, 2).astype(float))
        out = fc.forward(np.ones((1, 4)))
        np.testing.assert_allclose(out, [[0 + 2 + 4 + 6, 1 + 3 + 5 + 7]])

    def test_rejects_wrong_rank(self):
        fc = Linear(4, 2, rng=np.random.default_rng(5))
        with pytest.raises(ValueError):
            fc.forward(np.zeros((1, 2, 2)))

    def test_is_gemm_layer(self):
        assert Linear(4, 2, rng=np.random.default_rng(6)).has_gemm


class TestDepthwiseConv2d:
    def test_forward_matches_manual(self):
        rng = np.random.default_rng(7)
        dw = DepthwiseConv2d(2, (3, 3), padding=1, rng=rng)
        x = rng.normal(size=(1, 5, 5, 2))
        out = dw.forward(x)
        # channel 0 must equal a single-channel convolution with filter 0
        ref = Conv2d(1, 1, (3, 3), padding=1,
                     weights=dw.weights[:, :, 0].reshape(-1, 1))
        np.testing.assert_allclose(
            out[..., 0:1], ref.forward(x[..., 0:1]), rtol=1e-10
        )

    def test_channel_mismatch(self):
        dw = DepthwiseConv2d(4, (3, 3), rng=np.random.default_rng(8))
        with pytest.raises(ValueError):
            dw.forward(np.zeros((1, 5, 5, 3)))

    def test_gemm_shape_reduction_is_window(self):
        dw = DepthwiseConv2d(16, (3, 3), padding=1, rng=np.random.default_rng(9))
        m, k, n = dw.gemm_shape((14, 14))
        assert (k, n) == (9, 1)
        assert m == 14 * 14 * 16


class TestPooling:
    def test_maxpool(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = MaxPool2d(2).forward(x)
        np.testing.assert_array_equal(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_avgpool(self):
        x = np.ones((1, 4, 4, 2))
        out = AvgPool2d(2).forward(x)
        np.testing.assert_allclose(out, np.ones((1, 2, 2, 2)))

    def test_stride_override(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4, 1)
        out = MaxPool2d(2, stride=1).forward(x)
        assert out.shape == (1, 3, 3, 1)


class TestActivationsAndShape:
    def test_relu(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_flatten(self):
        assert Flatten().forward(np.zeros((2, 3, 4, 5))).shape == (2, 60)

    def test_repr(self):
        assert "conv" in repr(Conv2d(1, 1, (1, 1), name="conv",
                                     rng=np.random.default_rng(0)))
