"""Tests for the Sequential engine and DBB execution pipeline."""

import numpy as np
import pytest

from repro.core.dbb import DBBSpec
from repro.models.zoo import build_lenet5, build_tiny_cnn, build_tiny_mobilenet
from repro.nn.layers import Linear, ReLU
from repro.nn.model import Sequential


def _input(shape, seed=0, positive=False):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape)
    return np.abs(x) if positive else x


class TestSequentialBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_duplicate_names_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Sequential([Linear(2, 2, name="fc", rng=rng),
                        Linear(2, 2, name="fc", rng=rng)])

    def test_layer_lookup(self):
        model = build_lenet5()
        assert model.layer("conv2").name == "conv2"
        with pytest.raises(KeyError):
            model.layer("nope")

    def test_len_iter(self):
        model = build_lenet5()
        assert len(model) == len(list(model)) == 12


class TestForward:
    def test_lenet_output_shape(self):
        model = build_lenet5()
        result = model.forward(_input((2, 28, 28, 1)))
        assert result.output.shape == (2, 10)
        assert len(result.traces) == 12

    def test_trace_gemm_shapes(self):
        model = build_lenet5()
        result = model.forward(_input((1, 28, 28, 1)))
        assert result.trace_by_name("conv1").gemm_shape == (576, 25, 6)
        assert result.trace_by_name("conv2").gemm_shape == (64, 150, 16)
        assert result.trace_by_name("fc3").gemm_shape == (1, 256, 120)
        assert result.trace_by_name("pool1").gemm_shape is None

    def test_total_macs(self):
        model = build_lenet5()
        result = model.forward(_input((1, 28, 28, 1)))
        expected = 576 * 25 * 6 + 64 * 150 * 16 + 256 * 120 + 120 * 84 + 84 * 10
        assert result.total_macs == expected

    def test_trace_missing_layer(self):
        model = build_lenet5()
        result = model.forward(_input((1, 28, 28, 1)))
        with pytest.raises(KeyError):
            result.trace_by_name("missing")

    def test_tiny_mobilenet_runs(self):
        model = build_tiny_mobilenet()
        result = model.forward(_input((1, 16, 16, 8)))
        assert result.output.shape == (1, 10)


class TestDBBPipeline:
    def test_weight_pruning_skips_first_and_dw(self):
        model = build_tiny_mobilenet()
        spec = DBBSpec(8, 4)
        dense_dw = model.layer("dw1").weights.copy()
        model.prune_weights(spec, skip=["conv1"])
        # depthwise untouched
        np.testing.assert_array_equal(model.layer("dw1").weights, dense_dw)
        # pointwise pruned and compliant
        assert model.layer("pw1").weights_compliant(spec)

    def test_dap_applied_to_non_first_gemm_layers(self):
        model = build_tiny_cnn()
        spec = DBBSpec(8, 2)
        result = model.forward(_input((1, 16, 16, 8), positive=True),
                               dap_spec=spec)
        conv2 = result.trace_by_name("conv2")
        assert conv2.dap_nnz == 2
        assert conv2.input_density <= 2 / 8 + 1e-9
        # the first GEMM layer is never DAP-pruned
        assert result.trace_by_name("conv1").dap_nnz is None

    def test_dap_per_layer_override_and_bypass(self):
        model = build_tiny_cnn()
        spec = DBBSpec(8, 2)
        result = model.forward(
            _input((1, 16, 16, 8), positive=True),
            dap_spec=spec,
            dap_nnz={"conv2": 8, "fc1": 1},  # conv2 bypassed
        )
        assert result.trace_by_name("conv2").dap_nnz == 8
        assert result.trace_by_name("conv2").dap_pruned_fraction == 0.0
        assert result.trace_by_name("fc1").input_density <= 1 / 8 + 1e-9

    def test_dap_changes_output_but_not_wildly(self):
        # DAP keeps top magnitudes, so outputs correlate strongly with dense.
        model = build_tiny_cnn()
        x = _input((4, 16, 16, 8), seed=3)
        dense = model.forward(x).output
        dapped = model.forward(x, dap_spec=DBBSpec(8, 6)).output
        assert not np.allclose(dense, dapped)
        corr = np.corrcoef(dense.ravel(), dapped.ravel())[0, 1]
        assert corr > 0.95

    def test_pruned_model_still_runs(self):
        model = build_lenet5()
        model.prune_weights(DBBSpec(8, 2), skip=["conv1"])
        result = model.forward(_input((1, 28, 28, 1)),
                               dap_spec=DBBSpec(8, 4))
        assert result.output.shape == (1, 10)
        assert np.isfinite(result.output).all()
