"""Tests for integer-only inference and its DBB integration."""

import numpy as np
import pytest

from repro.core.dbb import DBBSpec
from repro.models.zoo import build_lenet5, build_tiny_cnn
from repro.nn.quantized import QuantizedSequential


def _calibrated(model_builder, shape, seed=0):
    rng = np.random.default_rng(seed)
    model = model_builder(rng=rng)
    calib = np.abs(rng.normal(size=shape))
    qmodel = QuantizedSequential.quantize_model(model, calib)
    return model, qmodel, rng


class TestQuantizedInference:
    def test_outputs_close_to_float(self):
        model, qmodel, rng = _calibrated(build_tiny_cnn, (8, 16, 16, 8))
        x = np.abs(rng.normal(size=(4, 16, 16, 8)))
        float_out = model.forward(x).output
        int_out = qmodel.forward(x)
        corr = np.corrcoef(float_out.ravel(), int_out.ravel())[0, 1]
        assert corr > 0.99

    def test_argmax_agreement(self):
        model, qmodel, rng = _calibrated(build_tiny_cnn, (8, 16, 16, 8), seed=1)
        x = np.abs(rng.normal(size=(16, 16, 16, 8)))
        float_pred = model.forward(x).output.argmax(axis=1)
        int_pred = qmodel.forward(x).argmax(axis=1)
        assert np.mean(float_pred == int_pred) >= 0.8

    def test_lenet_pipeline(self):
        model, qmodel, rng = _calibrated(build_lenet5, (8, 28, 28, 1), seed=2)
        x = np.abs(rng.normal(size=(2, 28, 28, 1)))
        out = qmodel.forward(x)
        assert out.shape == (2, 10)
        assert np.isfinite(out).all()

    def test_integer_codes_inside_pipeline(self):
        # The requantized codes after each GEMM are int8.
        _, qmodel, _ = _calibrated(build_tiny_cnn, (4, 16, 16, 8), seed=3)
        layer = qmodel.gemm_layers["conv1"]
        a_q = np.zeros((5, layer.weights_q.shape[0]), dtype=np.int64)
        assert layer.gemm(a_q).dtype == np.int8

    def test_weights_are_int8(self):
        _, qmodel, _ = _calibrated(build_tiny_cnn, (4, 16, 16, 8), seed=4)
        for layer in qmodel.gemm_layers.values():
            assert layer.weights_q.dtype == np.int8


class TestQuantizedDBB:
    def test_prune_int8_weights_compliant(self):
        _, qmodel, _ = _calibrated(build_tiny_cnn, (4, 16, 16, 8), seed=5)
        spec = DBBSpec(8, 4)
        qmodel.prune_weights(spec, skip=["conv1"])
        assert qmodel.gemm_layers["conv2"].weights_compliant(spec)
        assert qmodel.gemm_layers["fc1"].weights_compliant(spec)
        assert not qmodel.gemm_layers["conv1"].weights_compliant(spec) or True

    def test_pruned_int8_inference_still_correlates(self):
        model, qmodel, rng = _calibrated(build_tiny_cnn, (8, 16, 16, 8), seed=6)
        x = np.abs(rng.normal(size=(4, 16, 16, 8)))
        float_out = model.forward(x).output
        qmodel.prune_weights(DBBSpec(8, 6), skip=["conv1"])
        out = qmodel.forward(x, dap_spec=DBBSpec(8, 6))
        corr = np.corrcoef(float_out.ravel(), out.ravel())[0, 1]
        assert corr > 0.9

    def test_dap_on_int8_codes(self):
        _, qmodel, rng = _calibrated(build_tiny_cnn, (4, 16, 16, 8), seed=7)
        x = np.abs(rng.normal(size=(2, 16, 16, 8)))
        dense = qmodel.forward(x)
        dapped = qmodel.forward(x, dap_spec=DBBSpec(8, 2))
        assert not np.allclose(dense, dapped)
