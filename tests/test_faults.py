"""The deterministic fault-injection registry (:mod:`repro.faults`).

The contracts the chaos suite leans on: strict config parsing (a typo
cannot silently disable a chaos run), decisions that are a pure
function of ``(seed, name, key, occurrence)``, per-key fire budgets so
in-process retries converge, worker-only gating so the parent's serial
fallback can never crash or hang, and a disabled path that is a no-op.
"""

import pytest

from repro import faults
from repro.faults import (
    FaultRegistry,
    FaultSpec,
    InjectedFault,
    parse_faults,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    faults.reset()
    yield
    faults.reset()


class TestParse:
    def test_defaults(self):
        seed, specs = parse_faults("worker_crash")
        assert seed == 0
        assert specs == (FaultSpec("worker_crash"),)

    def test_full_syntax(self):
        seed, specs = parse_faults(
            "seed=7,worker_crash:p=0.5:n=2,task_hang:s=9.5")
        assert seed == 7
        assert specs[0] == FaultSpec("worker_crash", p=0.5, max_fires=2)
        assert specs[1].hang_s == 9.5

    def test_empty_elements_skipped(self):
        assert parse_faults("") == (0, ())
        assert parse_faults(" , ,claim_fail,") == \
            (0, (FaultSpec("claim_fail"),))

    @pytest.mark.parametrize("bad", [
        "no_such_fault",
        "worker_crash:q=1",           # unknown option
        "worker_crash:p",             # not k=v
        "worker_crash:p=2",           # p out of range
        "worker_crash:n=0",           # budget must be >= 1
        "task_hang:s=0",              # hang must be > 0
        "claim_fail,claim_fail",      # configured twice
    ])
    def test_strict_rejection(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        rolls = [FaultRegistry._uniform(3, "claim_fail", "k", i)
                 for i in range(32)]
        again = [FaultRegistry._uniform(3, "claim_fail", "k", i)
                 for i in range(32)]
        assert rolls == again
        assert all(0.0 <= r < 1.0 for r in rolls)

    def test_seed_and_key_move_the_decision(self):
        base = FaultRegistry._uniform(0, "claim_fail", "k", 0)
        assert base != FaultRegistry._uniform(1, "claim_fail", "k", 0)
        assert base != FaultRegistry._uniform(0, "claim_fail", "k2", 0)

    def test_two_registries_replay_identically(self):
        def run():
            reg = FaultRegistry(seed=5, specs=parse_faults(
                "claim_fail:p=0.5:n=99")[1])
            out = []
            for i in range(40):
                try:
                    reg.inject("queue_claim", f"key-{i % 4}", worker=False)
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out, reg.counts()

        first, second = run(), run()
        assert first == second
        assert any(first[0]) and not all(first[0])  # p=0.5 actually rolls


class TestBudget:
    def test_one_fire_per_key_by_default(self):
        reg = FaultRegistry(seed=0, specs=parse_faults("claim_fail")[1])
        with pytest.raises(InjectedFault):
            reg.inject("queue_claim", "k", worker=False)
        reg.inject("queue_claim", "k", worker=False)  # budget spent
        with pytest.raises(InjectedFault):
            reg.inject("queue_claim", "other", worker=False)  # fresh key
        assert reg.counts() == {"claim_fail": 2}

    def test_budget_counts_fires_not_occurrences(self):
        # With p=0.5 a missed roll must not consume the fire budget:
        # over many occurrences the key fires exactly n times.
        reg = FaultRegistry(seed=1, specs=parse_faults(
            "claim_fail:p=0.5:n=3")[1])
        fired = 0
        for _ in range(200):
            try:
                reg.inject("queue_claim", "k", worker=False)
            except InjectedFault:
                fired += 1
        assert fired == 3


class TestGating:
    def test_disabled_is_a_noop(self):
        assert faults.active() is None
        faults.inject("task_execute", "k")          # nothing raises
        assert faults.mangle("cache_write", "k", b"data") == b"data"

    def test_worker_only_faults_spare_the_parent(self):
        faults.configure("task_hang:s=0.01")
        import time
        start = time.monotonic()
        faults.inject("task_execute", "k")          # parent: not armed
        assert time.monotonic() - start < 0.005
        faults.mark_worker()
        faults.inject("task_execute", "k")          # now it hangs
        assert time.monotonic() - start >= 0.01

    def test_configure_empty_uninstalls(self):
        faults.configure("claim_fail")
        assert faults.active() is not None
        faults.configure("")
        assert faults.active() is None

    def test_configure_from_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "http_error:p=0.25")
        reg = faults.configure_from_env()
        assert reg is faults.active()
        assert reg.specs[0] == FaultSpec("http_error", p=0.25)
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.configure_from_env() is None

    def test_mangle_garbles_but_keeps_length(self):
        faults.configure("cache_corrupt")
        blob = b'{"compute_cycles": 12345, "events": {}}'
        out = faults.mangle("cache_write", "k", blob)
        assert out != blob and len(out) == len(blob)
        assert out.startswith(b"\x00CORRUPT\x00")
        # budget spent: the next write of the same key is clean
        assert faults.mangle("cache_write", "k", blob) == blob
