"""Tests for the analytic model specs against published architecture facts.

MAC counts are checked against the well-known totals for each network, and
DBB density profiles against the paper's Table 3 per-model averages.
"""

import numpy as np
import pytest

from repro.models import (
    LayerKind,
    LayerSpec,
    ModelSpec,
    alexnet_spec,
    get_spec,
    ibert_spec,
    lenet5_spec,
    mobilenet_v1_spec,
    resnet50_spec,
    vgg16_spec,
)
from repro.models.zoo import MODEL_SPECS


class TestLayerSpec:
    def test_macs(self):
        layer = LayerSpec("x", LayerKind.CONV, m=10, k=20, n=30)
        assert layer.macs == 6000

    def test_validation(self):
        with pytest.raises(ValueError):
            LayerSpec("x", LayerKind.CONV, m=0, k=1, n=1)
        with pytest.raises(ValueError):
            LayerSpec("x", LayerKind.CONV, m=1, k=1, n=1, w_nnz=9)

    def test_density_defaults_to_bound(self):
        layer = LayerSpec("x", LayerKind.CONV, m=1, k=8, n=1, w_nnz=4, a_nnz=2)
        assert layer.w_density == 0.5
        assert layer.a_density == 0.25

    def test_density_override(self):
        layer = LayerSpec("x", LayerKind.CONV, m=1, k=8, n=1,
                          weight_density=0.9, act_density=0.1)
        assert layer.w_density == 0.9
        assert layer.a_density == 0.1

    def test_memory_bound_kinds(self):
        assert LayerSpec("x", LayerKind.FC, m=1, k=8, n=8).memory_bound
        assert LayerSpec("x", LayerKind.DWCONV, m=1, k=9, n=1).memory_bound
        assert not LayerSpec("x", LayerKind.CONV, m=1, k=8, n=8).memory_bound

    def test_footprints(self):
        layer = LayerSpec("x", LayerKind.CONV, m=4, k=8, n=2)
        assert layer.weight_bytes == 16
        assert layer.activation_bytes == 32


class TestModelSpec:
    def test_duplicate_layers_rejected(self):
        layer = LayerSpec("same", LayerKind.CONV, m=1, k=1, n=1)
        with pytest.raises(ValueError):
            ModelSpec("m", "d", [layer, layer])

    def test_registry_complete(self):
        assert set(MODEL_SPECS) == {
            "lenet5", "alexnet", "vgg16", "mobilenet_v1", "resnet50", "ibert"
        }
        for name in MODEL_SPECS:
            spec = get_spec(name)
            assert spec.total_macs > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_spec("squeezenet")


class TestArchitectureFacts:
    """Layer shapes must reproduce the published MAC totals."""

    def test_alexnet_conv_macs(self):
        spec = alexnet_spec()
        # Grouped AlexNet conv MACs ~ 0.666 G.
        assert spec.conv_macs == pytest.approx(666e6, rel=0.02)
        assert spec.layer("conv1").macs == 3025 * 363 * 96

    def test_vgg16_macs(self):
        spec = vgg16_spec()
        # VGG-16 ~ 15.3 G conv MACs + ~0.12 G FC.
        assert spec.conv_macs == pytest.approx(15.35e9, rel=0.02)

    def test_mobilenet_macs(self):
        spec = mobilenet_v1_spec()
        # MobileNetV1 1.0-224 ~ 569 M total MACs.
        assert spec.total_macs == pytest.approx(569e6, rel=0.03)

    def test_resnet50_macs(self):
        spec = resnet50_spec()
        # ResNet-50 ~ 3.8-4.1 G MACs depending on counting conventions.
        assert spec.total_macs == pytest.approx(3.9e9, rel=0.06)
        assert len(spec.conv_layers) == 53  # 1 + (3+4+6+3)*3 + 4 projections

    def test_lenet_macs(self):
        spec = lenet5_spec()
        assert spec.layer("conv1").macs == 576 * 25 * 6
        assert spec.layer("conv2").macs == 64 * 150 * 16

    def test_ibert_structure(self):
        spec = ibert_spec()
        assert len(spec.layers) == 12 * 6
        fc1 = spec.layer("enc0_fc1")
        assert (fc1.m, fc1.k, fc1.n) == (128, 768, 3072)
        # attention projections stay dense
        assert spec.layer("enc0_q").w_nnz == 8


class TestDBBProfiles:
    """Density profiles must match Table 3's reported per-model averages."""

    @pytest.mark.parametrize("name,a_target,w_target", [
        ("alexnet", 3.9, 4),
        ("vgg16", 3.1, 3),
        ("mobilenet_v1", 4.8, 4),
        ("resnet50", 3.49, 3),
    ])
    def test_mac_weighted_a_nnz_matches_table3(self, name, a_target, w_target):
        spec = get_spec(name)
        assert spec.mac_weighted_a_nnz() == pytest.approx(a_target, abs=0.3)
        pruned = [l for l in spec.conv_layers if l.weight_pruned]
        assert pruned, f"{name} has no pruned conv layers"
        assert all(l.w_nnz == w_target for l in pruned)

    def test_first_layer_always_excluded(self):
        for name in ("alexnet", "vgg16", "mobilenet_v1", "resnet50", "lenet5"):
            first = get_spec(name).conv_layers[0]
            assert not first.weight_pruned, name
            assert first.a_nnz == 8, name

    def test_resnet_profile_spans_dense_to_sparse(self):
        # Sec. 5.2: per-layer A-DBB ranges from ~dense early to 2/8 late.
        spec = resnet50_spec()
        nnzs = [l.a_nnz for l in spec.conv_layers]
        assert max(nnzs) >= 6
        assert min(nnzs) == 2

    def test_densities_monotone_with_depth_vgg(self):
        spec = vgg16_spec()
        convs = spec.conv_layers
        densities = [l.a_density for l in convs]
        assert all(a >= b - 1e-9 for a, b in zip(densities, densities[1:]))

    def test_act_density_never_exceeds_bound_when_dapped(self):
        for name in MODEL_SPECS:
            for layer in get_spec(name).layers:
                if not layer.dap_bypassed:
                    assert layer.a_density <= layer.a_nnz / 8 + 1e-9, (
                        f"{name}:{layer.name}"
                    )
