"""Every example script must run clean end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    # Quickstart plus at least two domain scenarios (deliverable b).
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
