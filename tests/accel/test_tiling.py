"""Tests for the SRAM capacity / tiling analysis."""

import pytest

from repro.accel.tiling import AB_BYTES, WB_BYTES, analyze_layer, analyze_model
from repro.models import get_spec
from repro.models.specs import LayerKind, LayerSpec
from repro.workloads.typical import typical_conv_layer


class TestAnalyzeLayer:
    def test_typical_conv_fits_on_chip(self):
        analysis = analyze_layer(typical_conv_layer(0.5, 0.375))
        assert analysis.weights_fit
        assert analysis.acts_fit
        assert analysis.fully_resident

    def test_vgg_fc6_weights_do_not_fit(self):
        fc6 = get_spec("vgg16").layer("fc6")
        analysis = analyze_layer(fc6)
        assert not analysis.weights_fit
        # dense would be ~98 MB; even 3/8-compressed it exceeds 256 KB
        assert analysis.weight_bytes_stored > WB_BYTES

    def test_compression_shrinks_footprints(self):
        dense = LayerSpec("d", LayerKind.CONV, m=1024, k=1152, n=256,
                          w_nnz=8, a_nnz=8)
        sparse = LayerSpec("s", LayerKind.CONV, m=1024, k=1152, n=256,
                           w_nnz=4, a_nnz=2)
        a_dense = analyze_layer(dense)
        a_sparse = analyze_layer(sparse)
        assert (a_sparse.weight_bytes_stored
                == a_dense.weight_bytes_stored * 5 // 8)
        assert a_sparse.act_bytes_stored < a_dense.act_bytes_stored / 2

    def test_non_resident_weights_multiply_dma(self):
        fc = LayerSpec("fc", LayerKind.FC, m=4096, k=25088, n=4096,
                       w_nnz=8, a_nnz=8)
        analysis = analyze_layer(fc, eff_rows=64)
        assert analysis.weight_dma_bytes == (
            analysis.weight_bytes_stored * -(-4096 // 64))

    def test_double_buffering_halves_capacity(self):
        # a layer that fits single-buffered but not double-buffered
        layer = LayerSpec("edge", LayerKind.CONV, m=64, k=8192, n=48,
                          w_nnz=8, a_nnz=8)
        assert layer.weight_bytes > WB_BYTES // 2
        assert layer.weight_bytes <= WB_BYTES
        assert not analyze_layer(layer).weights_fit
        assert analyze_layer(layer, double_buffered=False).weights_fit


class TestAnalyzeModel:
    def test_mobilenet_mostly_resident(self):
        # The late pointwise layers (512x1024 weights) and the classifier
        # genuinely exceed half the 512 KB WB even compressed.
        report = analyze_model(get_spec("mobilenet_v1"))
        assert report["resident_layers"] >= report["total_layers"] - 4

    def test_vgg_fc_layers_not_resident(self):
        report = analyze_model(get_spec("vgg16"))
        assert not report["layers"]["fc6"].fully_resident
        assert report["total_dma_bytes"] > 0

    def test_capacities_sane(self):
        assert WB_BYTES == 512 * 1024
        assert AB_BYTES == 2 * 1024 * 1024
