"""Tests for S2TA-W and S2TA-AW models (Fig. 9c/d, Table 2/4 anchors)."""

import pytest

from repro.accel import S2TAAW, S2TAW, ZvcgSA
from repro.models.specs import BLOCK_SIZE, LayerKind, LayerSpec
from repro.workloads.typical import typical_conv_layer


class TestS2TAW:
    def test_design_point(self):
        w = S2TAW()
        assert w.hardware_macs == 2048
        assert (w.rows, w.cols, w.tpe_a, w.tpe_c) == (4, 8, 4, 4)

    def test_fixed_2x_speedup(self):
        """Fig. 9c: 2x step once weights are pruned to 4/8."""
        layer = typical_conv_layer(0.5, 0.5)
        zvcg = ZvcgSA().run_layer(layer)
        w = S2TAW().run_layer(layer)
        assert zvcg.cycles / w.cycles == pytest.approx(2.0, abs=0.1)

    def test_speedup_capped_at_2x(self):
        """Extra weight sparsity beyond 4/8 gives no more speedup."""
        s2taw = S2TAW()
        c50 = s2taw.microbench_layer(0.5, 0.5).cycles
        c875 = s2taw.microbench_layer(0.125, 0.5).cycles
        assert c50 == c875

    def test_dense_fallback_matches_sa_throughput(self):
        """Unpruned layers (w_nnz=8) run at dense-SA speed (2 passes)."""
        layer = LayerSpec("first", LayerKind.CONV, m=1024, k=1152, n=256,
                          w_nnz=8, a_nnz=8, weight_density=0.95,
                          act_density=1.0)
        zvcg = ZvcgSA().run_layer(layer)
        w = S2TAW().run_layer(layer)
        assert w.cycles == pytest.approx(zvcg.cycles, rel=0.1)

    def test_weight_bandwidth_reduced_37_5_percent(self):
        """Sec. 4: 4/8 W-DBB cuts weight operand bandwidth by 37.5%
        (4 values + 1 mask byte instead of 8 bytes per block)."""
        layer = typical_conv_layer(0.5, 0.5)
        w = S2TAW()
        compressed = w._weight_stream_bytes(layer)
        dense = layer.weight_bytes
        assert compressed / dense == pytest.approx(5 / 8, rel=0.01)

    def test_energy_below_zvcg(self):
        layer = typical_conv_layer(0.5, 0.5)
        assert (S2TAW().run_layer(layer).energy_pj
                < ZvcgSA().run_layer(layer).energy_pj)


class TestS2TAAW:
    def test_design_point(self):
        aw = S2TAAW()
        assert aw.hardware_macs == 2048
        assert (aw.rows, aw.cols, aw.tpe_a, aw.tpe_c) == (8, 8, 8, 4)
        assert aw.has_dap

    @pytest.mark.parametrize("a_nnz,expected", [
        (8, 1.0), (6, 8 / 6), (4, 2.0), (3, 8 / 3), (2, 4.0), (1, 8.0),
    ])
    def test_fig9d_speedup_is_bz_over_nnz(self, a_nnz, expected):
        """Fig. 9d: speedup 1x..8x tracks activation DBB density."""
        aw = S2TAAW()
        dense = aw.microbench_layer(0.5, 1.0, a_nnz=8)
        sparse = aw.microbench_layer(0.5, a_nnz / 8, a_nnz=a_nnz)
        assert dense.cycles / sparse.cycles == pytest.approx(expected, rel=0.02)

    def test_energy_scales_with_activation_sparsity(self):
        """Fig. 9d: energy falls as activation DBB sparsity rises."""
        aw = S2TAAW()
        energies = [
            aw.microbench_layer(0.5, nnz / 8, a_nnz=nnz).energy_pj
            for nnz in (8, 6, 4, 2, 1)
        ]
        assert all(a > b for a, b in zip(energies, energies[1:]))
        # Large total swing (paper: up to 9.1x vs ZVCG at the extreme).
        assert energies[0] / energies[-1] > 3.0

    def test_up_to_9x_energy_vs_zvcg(self):
        """Fig. 9d: up to ~9.1x energy reduction vs SA-ZVCG."""
        zvcg = ZvcgSA().microbench_layer(0.5, 1.0)
        aw = S2TAAW().microbench_layer(0.2, 0.125, w_nnz=2, a_nnz=1)
        assert zvcg.energy_pj / aw.energy_pj > 5.0

    def test_sram_reduction_vs_s2taw(self):
        """Fig. 10: ~3.1x SRAM energy reduction vs S2TA-W (compressed
        activations + better reuse)."""
        layer = typical_conv_layer(0.5, 0.375)
        w = S2TAW().run_layer(layer)
        aw = S2TAAW().run_layer(layer)
        sram_ratio = w.breakdown.sram / aw.breakdown.sram
        assert sram_ratio == pytest.approx(3.1, abs=1.0)

    def test_dap_energy_small_but_present(self):
        """Table 2: DAP is ~2% of total power."""
        result = S2TAAW().run_layer(typical_conv_layer(0.5, 0.375))
        frac = result.breakdown.fractions()["dap"]
        assert 0.002 < frac < 0.06

    def test_dap_bypassed_on_dense_layers(self):
        result = S2TAAW().run_layer(typical_conv_layer(0.5, 1.0))
        assert result.events.dap_compare_ops == 0

    def test_table2_component_shape(self):
        """Table 2 (dense act, 4/8 weights): MAC+buffers dominate power,
        AB > WB, MCU ~9%, DAP small."""
        result = S2TAAW().run_layer(typical_conv_layer(0.5, 1.0))
        b = result.breakdown
        assert b.datapath + b.buffers > b.sram
        assert b.actfn / b.total_pj == pytest.approx(0.093, abs=0.06)

    def test_memory_bound_fc_no_speedup(self):
        """Sec. 8.3: FC layers are memory bound on every SA variant."""
        fc = LayerSpec("fc", LayerKind.FC, m=1, k=4096, n=4096,
                       w_nnz=4, a_nnz=2, act_density=0.2)
        zvcg = ZvcgSA().run_layer(fc)
        aw = S2TAAW().run_layer(fc)
        assert aw.memory_bound and zvcg.memory_bound
        # compressed weights stream faster, but nowhere near 8/a_nnz
        assert zvcg.cycles / aw.cycles < 2.0


class TestCrossAccelerator:
    def test_energy_ordering_at_typical_conv(self):
        """Fig. 10 ordering: AW < W < ZVCG < SMT."""
        from repro.accel import SmtSA

        layer = typical_conv_layer(0.5, 0.375)
        e = {
            "aw": S2TAAW().run_layer(layer).energy_pj,
            "w": S2TAW().run_layer(layer).energy_pj,
            "zvcg": ZvcgSA().run_layer(layer).energy_pj,
            "smt": SmtSA().run_layer(layer).energy_pj,
        }
        assert e["aw"] < e["w"] < e["zvcg"] < e["smt"]

    def test_table1_buffer_bytes_ordering(self):
        from repro.accel import EyerissV2, SmtSA, SparTen

        assert (S2TAW.buffer_bytes_per_mac
                < S2TAAW.buffer_bytes_per_mac
                < 6.0  # scalar SA
                < SmtSA.buffer_bytes_per_mac
                < EyerissV2.buffer_bytes_per_mac
                < SparTen.buffer_bytes_per_mac)
