"""Tests for the SA-SMT accelerator model (Fig. 3 / Fig. 10 anchors)."""

import pytest

from repro.accel import SmtSA, ZvcgSA
from repro.workloads.typical import typical_conv_layer


class TestSmtModel:
    def test_speedup_at_5050(self):
        """Fig. 3: T2Q2 ~1.6x, T2Q4 ~1.8x at 50/50 sparsity."""
        layer = typical_conv_layer(0.5, 0.5)
        zvcg = ZvcgSA().run_layer(layer)
        q2 = SmtSA(fifo_depth=2).run_layer(layer)
        q4 = SmtSA(fifo_depth=4).run_layer(layer)
        assert zvcg.cycles / q2.cycles == pytest.approx(1.6, abs=0.15)
        assert zvcg.cycles / q4.cycles == pytest.approx(1.85, abs=0.15)

    def test_energy_overhead_vs_zvcg(self):
        """Fig. 10: SMT burns ~43% (T2Q2) more energy than SA-ZVCG."""
        layer = typical_conv_layer(0.5, 0.5)
        zvcg = ZvcgSA().run_layer(layer)
        q2 = SmtSA(fifo_depth=2).run_layer(layer)
        overhead = q2.energy_pj / zvcg.energy_pj - 1
        assert overhead == pytest.approx(0.43, abs=0.12)

    def test_fifo_events_present(self):
        result = SmtSA().run_layer(typical_conv_layer(0.5, 0.5))
        assert result.events.fifo_push_ops == result.events.mac_ops
        assert result.events.fifo_pop_ops == result.events.mac_ops

    def test_speedup_cache(self):
        smt = SmtSA()
        first = smt.speedup_at(0.5, 0.5)
        second = smt.speedup_at(0.5, 0.5)
        assert first == second
        assert len(smt._speedup_cache) == 1

    def test_speedup_never_below_one(self):
        assert SmtSA().speedup_at(1.0, 1.0) >= 1.0

    def test_name_reflects_config(self):
        assert SmtSA(threads=2, fifo_depth=4).name == "SA-SMT-T2Q4"

    def test_area_larger_than_zvcg(self):
        assert SmtSA().area_mm2() > ZvcgSA().area_mm2()
