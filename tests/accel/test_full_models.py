"""Full-network reproduction anchors (Fig. 11, Fig. 12, Table 4)."""

import numpy as np
import pytest

from repro.accel import S2TAAW, S2TAW, EyerissV2, SmtSA, SparTen, ZvcgSA
from repro.models import get_spec

MODELS = ("resnet50", "vgg16", "mobilenet_v1", "alexnet")


@pytest.fixture(scope="module")
def runs16():
    """Conv-only runs of the four ImageNet models on all SA variants."""
    accs = {
        "zvcg": ZvcgSA(),
        "smt": SmtSA(),
        "w": S2TAW(),
        "aw": S2TAAW(),
    }
    out = {}
    for name in MODELS:
        spec = get_spec(name)
        out[name] = {k: a.run_model(spec, conv_only=True)
                     for k, a in accs.items()}
    return out


class TestFig11:
    def test_aw_energy_reduction_range(self, runs16):
        """Paper: 1.76-2.79x energy reduction vs SA-ZVCG per model."""
        ratios = [runs16[m]["zvcg"].energy_uj / runs16[m]["aw"].energy_uj
                  for m in MODELS]
        assert min(ratios) > 1.4
        assert max(ratios) < 3.0
        assert np.mean(ratios) == pytest.approx(2.08, abs=0.35)

    def test_aw_speedup_range(self, runs16):
        """Paper: 1.67-2.58x speedup vs SA-ZVCG, avg ~2.11x."""
        ratios = [runs16[m]["zvcg"].total_cycles / runs16[m]["aw"].total_cycles
                  for m in MODELS]
        assert min(ratios) > 1.3
        assert max(ratios) < 2.8
        assert np.mean(ratios) == pytest.approx(2.11, abs=0.35)

    def test_vgg_gains_most_mobilenet_least(self, runs16):
        """Density profiles order the gains: VGG (sparse) > MobileNet
        (dense activations)."""
        gain = {m: runs16[m]["zvcg"].energy_uj / runs16[m]["aw"].energy_uj
                for m in MODELS}
        assert gain["vgg16"] > gain["mobilenet_v1"]

    def test_aw_beats_w_in_energy_everywhere(self, runs16):
        """Fig. 11: S2TA-AW wins on energy for all four models. On
        throughput it can trail S2TA-W where activations are dense
        (MobileNet: 8/a_nnz < 2), which the paper's per-model speedups
        reflect (its minimum is 1.67x vs ZVCG while W holds 2x)."""
        for m in MODELS:
            assert runs16[m]["aw"].energy_uj < runs16[m]["w"].energy_uj
        assert (runs16["vgg16"]["aw"].total_cycles
                < runs16["vgg16"]["w"].total_cycles)

    def test_smt_burns_more_than_zvcg_despite_speedup(self, runs16):
        for m in MODELS:
            assert runs16[m]["smt"].energy_uj > runs16[m]["zvcg"].energy_uj
            assert runs16[m]["smt"].total_cycles < runs16[m]["zvcg"].total_cycles


class TestFig12:
    """AlexNet per-layer energy across the five accelerators (65 nm)."""

    @pytest.fixture(scope="class")
    def alexnet_runs(self):
        spec = get_spec("alexnet")
        return {
            "aw": S2TAAW(tech="65nm").run_model(spec, conv_only=True),
            "w": S2TAW(tech="65nm").run_model(spec, conv_only=True),
            "zvcg": ZvcgSA(tech="65nm").run_model(spec, conv_only=True),
            "sparten": SparTen().run_model(spec, conv_only=True),
            "eyeriss": EyerissV2().run_model(spec, conv_only=True),
        }

    def test_sparten_ratio(self, alexnet_runs):
        """S2TA-AW (65nm) ~2.2x less energy than SparTen (45nm)."""
        ratio = (alexnet_runs["sparten"].energy_uj
                 / alexnet_runs["aw"].energy_uj)
        assert ratio == pytest.approx(2.2, abs=0.5)

    def test_eyeriss_ratio(self, alexnet_runs):
        """S2TA-AW ~3.1x less energy than Eyeriss v2 (same 65nm)."""
        ratio = (alexnet_runs["eyeriss"].energy_uj
                 / alexnet_runs["aw"].energy_uj)
        assert ratio == pytest.approx(3.1, abs=0.7)

    def test_sparten_inflated_on_dense_layers(self, alexnet_runs):
        """SparTen loses on conv1/conv2, wins only on sparse conv3-5."""
        sparten = alexnet_runs["sparten"]
        zvcg = alexnet_runs["zvcg"]
        assert sparten.layer("conv1").energy_uj > 1.5 * zvcg.layer("conv1").energy_uj
        assert sparten.layer("conv5").energy_uj < zvcg.layer("conv5").energy_uj

    def test_zvcg_beats_sparten_in_total(self, alexnet_runs):
        """Sec. 8.3: 'even the baseline SA-ZVCG has lower energy than
        SparTen on AlexNet'."""
        assert (alexnet_runs["zvcg"].energy_uj
                < alexnet_runs["sparten"].energy_uj)

    def test_aw_wins_every_layer_vs_w_and_zvcg(self, alexnet_runs):
        for layer in ("conv2", "conv3", "conv4", "conv5"):
            aw = alexnet_runs["aw"].layer(layer).energy_uj
            assert aw < alexnet_runs["w"].layer(layer).energy_uj
            assert aw < alexnet_runs["zvcg"].layer(layer).energy_uj


class TestTable4:
    def test_peak_energy_efficiency_ordering(self):
        """Table 4 (16 nm, 50% sparse): AW > W > ZVCG > SMT in TOPS/W."""
        from repro.workloads.typical import typical_conv_layer

        layer = typical_conv_layer(0.5, 0.5)
        eff = {}
        for key, acc in (("zvcg", ZvcgSA()), ("smt", SmtSA()),
                         ("w", S2TAW()), ("aw", S2TAAW())):
            r = acc.run_layer(layer)
            ops = 2 * layer.macs
            eff[key] = ops / (r.energy_pj * 1e-12) / 1e12
        assert eff["aw"] > eff["w"] > eff["zvcg"] > eff["smt"]

    def test_zvcg_tops_per_watt_anchor(self):
        """Table 4: SA-ZVCG ~10.5 TOPS/W at 50/50 sparsity in 16 nm."""
        from repro.workloads.typical import typical_conv_layer

        layer = typical_conv_layer(0.5, 0.5)
        r = ZvcgSA().run_layer(layer)
        topsw = 2 * layer.macs / (r.energy_pj * 1e-12) / 1e12
        assert topsw == pytest.approx(10.5, abs=1.5)

    def test_effective_tops_doubles_with_sparsity(self):
        """Table 4: S2TA-AW 8 TOPS at 50% sparse, 16 at 75% sparse."""
        aw = S2TAAW()
        r50 = aw.microbench_layer(0.5, 0.5)
        r75 = aw.microbench_layer(0.25, 0.25)
        ops = 2 * r50.layer.macs
        tops50 = ops / (r50.cycles / aw.clock_ghz / 1e9) / 1e12
        tops75 = ops / (r75.cycles / aw.clock_ghz / 1e9) / 1e12
        assert tops50 == pytest.approx(8.0, rel=0.15)
        assert tops75 == pytest.approx(16.0, rel=0.15)

    def test_eyeriss_low_throughput(self):
        """Table 4: Eyeriss v2 ~0.28 kInf/s on AlexNet (384 MACs, 200 MHz)."""
        run = EyerissV2().run_model(get_spec("alexnet"), conv_only=True)
        assert run.inferences_per_second == pytest.approx(280, rel=0.8)

    def test_areas_match_table4(self):
        assert ZvcgSA().area_mm2() == pytest.approx(3.7, abs=0.2)
        assert SmtSA().area_mm2() == pytest.approx(4.2, abs=0.25)
        assert S2TAW().area_mm2() == pytest.approx(3.4, abs=0.25)
        assert S2TAAW().area_mm2() == pytest.approx(3.8, abs=0.25)
