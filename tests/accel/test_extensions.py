"""Tests for the extension accelerators: S2TA-WA (footnote 2) and SCNN."""

import pytest

from repro.accel import SCNN, S2TAAW, S2TAWA, ZvcgSA
from repro.models import get_spec
from repro.models.specs import LayerKind, LayerSpec
from repro.workloads.typical import typical_conv_layer


class TestS2TAWA:
    def test_design_point(self):
        wa = S2TAWA()
        assert wa.hardware_macs == 2048
        assert wa.has_dap

    def test_speedup_tracks_weight_density(self):
        """The dual of Fig. 9d: cycles scale with w_nnz, not a_nnz."""
        wa = S2TAWA()
        cycles = {}
        for w_nnz in (1, 2, 4):
            layer = LayerSpec("l", LayerKind.CONV, m=1024, k=1152, n=256,
                              w_nnz=w_nnz, a_nnz=4,
                              weight_density=w_nnz / 8, act_density=0.5)
            cycles[w_nnz] = wa.run_layer(layer).compute_cycles
        assert cycles[2] == pytest.approx(2 * cycles[1], rel=0.01)
        assert cycles[4] == pytest.approx(4 * cycles[1], rel=0.01)

    def test_activation_density_does_not_change_cycles(self):
        wa = S2TAWA()
        layers = [
            LayerSpec("l", LayerKind.CONV, m=1024, k=1152, n=256,
                      w_nnz=4, a_nnz=a, act_density=a / 8)
            for a in (2, 8)
        ]
        assert (wa.run_layer(layers[0]).compute_cycles
                == wa.run_layer(layers[1]).compute_cycles)

    def test_fixed_a_dbb_caps_activation_density(self):
        wa = S2TAWA()
        dense_act = LayerSpec("l", LayerKind.CONV, m=256, k=512, n=64,
                              w_nnz=4, a_nnz=8, act_density=1.0)
        result = wa.run_layer(dense_act)
        # fired MACs reflect the forced 4/8 activation bound
        assert result.events.mac_ops <= dense_act.macs * 0.5 * 0.5 * 1.01

    def test_dap_always_active(self):
        wa = S2TAWA()
        result = wa.run_layer(typical_conv_layer(0.5, 1.0))
        assert result.events.dap_compare_ops > 0

    def test_beats_aw_on_weight_sparse_models(self):
        """VGG-16 weights are pruned to 3/8 while its activations average
        3.1/8 — WA's 8/3 = 2.67x weight unrolling out-runs AW only when
        weights are sparser than activations."""
        spec = get_spec("vgg16")
        aw = S2TAAW().run_model(spec, conv_only=True)
        wa = S2TAWA().run_model(spec, conv_only=True)
        # VGG: both ~2.5x; WA competitive (within 20% on cycles)
        assert wa.total_cycles < aw.total_cycles * 1.2

    def test_loses_to_aw_on_energy_for_activation_sparse_models(self):
        """AW harvests per-layer activation sparsity below the fixed 4/8;
        WA cannot, so it burns more energy on late sparse layers."""
        spec = get_spec("alexnet")
        aw = S2TAAW().run_model(spec, conv_only=True)
        wa = S2TAWA().run_model(spec, conv_only=True)
        assert wa.energy_uj > aw.energy_uj * 0.95

    def test_better_than_zvcg(self):
        spec = get_spec("resnet50")
        zvcg = ZvcgSA().run_model(spec, conv_only=True)
        wa = S2TAWA().run_model(spec, conv_only=True)
        assert wa.energy_uj < zvcg.energy_uj
        assert wa.total_cycles < zvcg.total_cycles


class TestSCNN:
    def test_buffer_bytes_matches_table1(self):
        assert SCNN().buffer_bytes_per_mac == 1650.0

    def test_scatter_events_charged(self):
        result = SCNN().run_layer(typical_conv_layer(0.5, 0.5))
        assert result.events.scatter_acc_ops == 3 * result.events.mac_ops

    def test_wins_only_at_high_sparsity(self):
        """Sec. 2.3's point: the scatter buffer makes SCNN worse than a
        plain ZVCG array except on very sparse layers."""
        zvcg = ZvcgSA()
        scnn = SCNN()
        dense_layer = typical_conv_layer(0.9, 0.9)
        sparse_layer = typical_conv_layer(0.12, 0.12)
        assert (scnn.run_layer(dense_layer).energy_pj
                > zvcg.run_layer(dense_layer).energy_pj)
        assert (scnn.run_layer(sparse_layer).energy_pj
                < zvcg.run_layer(sparse_layer).energy_pj)

    def test_sparten_beats_scnn(self):
        """The paper picks SparTen as the stronger scatter-family
        baseline ('superior results to SCNN')."""
        from repro.accel import SparTen

        spec = get_spec("alexnet")
        # Compare at the same node for architecture-only contrast.
        scnn = SCNN(tech="45nm").run_model(spec, conv_only=True)
        sparten = SparTen(tech="45nm").run_model(spec, conv_only=True)
        assert sparten.energy_uj < scnn.energy_uj

    def test_area_dominated_by_buffers(self):
        scnn = SCNN()
        breakdown = scnn.area_breakdown_mm2()
        assert breakdown["pe_array"] > breakdown["sram"]
