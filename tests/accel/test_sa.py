"""Tests for the dense SA and SA-ZVCG models, incl. Fig. 1 calibration."""

import pytest

from repro.accel import DenseSA, ZvcgSA
from repro.models.specs import LayerKind, LayerSpec
from repro.workloads.typical import typical_conv_layer


class TestDenseSA:
    def test_geometry(self):
        sa = DenseSA()
        assert sa.hardware_macs == 2048
        assert sa.skew == 94

    def test_cycles_formula(self):
        layer = LayerSpec("l", LayerKind.CONV, m=64, k=100, n=128)
        result = DenseSA().run_layer(layer)
        assert result.compute_cycles == 2 * 2 * 100 + 94

    def test_mac_events(self):
        layer = LayerSpec("l", LayerKind.CONV, m=32, k=64, n=64)
        result = DenseSA().run_layer(layer)
        assert result.events.mac_ops == layer.macs
        assert result.events.total_mac_slots == 1 * (32 * 64) * 64

    def test_fig1_energy_breakdown(self):
        """Fig. 1: SRAM 21% / buffers 49% / MAC 20% / act fn 10%."""
        result = DenseSA().run_layer(typical_conv_layer(0.5, 0.5))
        fracs = result.breakdown.fractions()
        assert fracs["sram"] == pytest.approx(0.21, abs=0.04)
        assert fracs["buffers"] == pytest.approx(0.49, abs=0.05)
        assert fracs["datapath"] == pytest.approx(0.20, abs=0.04)
        assert fracs["actfn"] == pytest.approx(0.10, abs=0.03)

    def test_memory_bound_fc_layer(self):
        fc = LayerSpec("fc", LayerKind.FC, m=1, k=4096, n=4096)
        result = DenseSA().run_layer(fc)
        assert result.memory_bound
        assert result.cycles == result.memory_cycles

    def test_conv_not_memory_bound(self):
        result = DenseSA().run_layer(typical_conv_layer())
        assert not result.memory_bound


class TestZvcgSA:
    def test_no_speedup(self):
        """Fig. 9a: ZVCG saves energy but never cycles."""
        layer = typical_conv_layer(0.5, 0.5)
        dense = DenseSA().run_layer(layer)
        zvcg = ZvcgSA().run_layer(layer)
        assert zvcg.cycles == dense.cycles
        assert zvcg.energy_pj < dense.energy_pj

    def test_25_percent_saving_at_typical_sparsity(self):
        """Sec. 8.4 (2): SA-ZVCG ~25% below dense SA."""
        layer = typical_conv_layer(0.5, 0.5)
        dense = DenseSA().run_layer(layer)
        zvcg = ZvcgSA().run_layer(layer)
        saving = 1 - zvcg.energy_pj / dense.energy_pj
        assert saving == pytest.approx(0.25, abs=0.05)

    def test_energy_scales_weakly_with_sparsity(self):
        """Fig. 9a: energy falls slowly as sparsity rises."""
        zvcg = ZvcgSA()
        energies = [
            zvcg.microbench_layer(1 - s, 0.5).energy_pj
            for s in (0.0, 0.25, 0.5, 0.75)
        ]
        assert all(a >= b for a, b in zip(energies, energies[1:]))
        # "weakly": 75% weight sparsity saves well under 50% energy
        assert energies[-1] > 0.5 * energies[0]

    def test_gated_events_balance(self):
        layer = typical_conv_layer(0.5, 0.5)
        events = ZvcgSA().run_layer(layer).events
        assert events.mac_ops + events.gated_mac_ops == (
            events.acc_reg_ops + events.gated_acc_reg_ops
        )

    def test_dense_data_matches_dense_sa_slots(self):
        layer = typical_conv_layer(1.0, 1.0)
        zvcg = ZvcgSA().run_layer(layer)
        assert zvcg.events.gated_mac_ops == 0
        assert zvcg.events.mac_ops == layer.macs
