"""Gradient checks for the minimal autograd engine."""

import numpy as np
import pytest

from repro.train.autograd import Tensor, cross_entropy


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        hi = f()
        x[idx] = original - eps
        lo = f()
        x[idx] = original
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestOps:
    def test_add_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_add_broadcast_bias(self):
        x = Tensor(np.ones((3, 4)), requires_grad=True)
        bias = Tensor(np.zeros(4), requires_grad=True)
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, [3, 3, 3, 3])

    def test_mul_backward(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([5.0, 7.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5, 7])
        np.testing.assert_allclose(b.grad, [2, 3])

    def test_matmul_numerical(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 2))

        a = Tensor(a_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        a.matmul(b).sum().backward()

        expected_a = numerical_grad(
            lambda: (a_data @ b_data).sum(), a_data)
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-5)

    def test_relu_backward(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0, 0, 1])

    def test_apply_mask_is_ste(self):
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        mask = np.array([1.0, 0.0, 1.0])
        out = x.apply_mask(mask)
        np.testing.assert_allclose(out.data, [1, 0, 3])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, mask)

    def test_mean_backward(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 2), 0.25))

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            x.backward()

    def test_grad_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        (x + x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0])

    def test_no_grad_tracking_when_not_required(self):
        x = Tensor(np.ones(3))
        y = x.relu()
        assert not y.requires_grad


class TestCrossEntropy:
    def test_matches_numerical(self):
        rng = np.random.default_rng(1)
        logits_data = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)

        logits = Tensor(logits_data.copy(), requires_grad=True)
        cross_entropy(logits, labels).backward()

        def loss():
            shifted = logits_data - logits_data.max(axis=1, keepdims=True)
            p = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
            return -np.log(p[np.arange(5), labels]).mean()

        expected = numerical_grad(loss, logits_data)
        np.testing.assert_allclose(logits.grad, expected, atol=1e-5)

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]),
                        requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.data < 1e-6

    def test_label_shape_validated(self):
        logits = Tensor(np.zeros((3, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            cross_entropy(logits, np.zeros(4, dtype=int))


class TestEndToEndGradient:
    def test_two_layer_network_numerical(self):
        rng = np.random.default_rng(2)
        w1_data = rng.normal(size=(6, 5))
        w2_data = rng.normal(size=(5, 3))
        x_data = rng.normal(size=(4, 6))
        labels = rng.integers(0, 3, size=4)

        w1 = Tensor(w1_data.copy(), requires_grad=True)
        w2 = Tensor(w2_data.copy(), requires_grad=True)
        x = Tensor(x_data)
        loss = cross_entropy(x.matmul(w1).relu().matmul(w2), labels)
        loss.backward()

        def f():
            h = np.maximum(x_data @ w1_data, 0)
            logits = h @ w2_data
            shifted = logits - logits.max(axis=1, keepdims=True)
            p = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
            return -np.log(p[np.arange(4), labels]).mean()

        np.testing.assert_allclose(w1.grad, numerical_grad(f, w1_data),
                                   atol=1e-5)
        np.testing.assert_allclose(w2.grad, numerical_grad(f, w2_data),
                                   atol=1e-5)
