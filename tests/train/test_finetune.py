"""Tests for layers, optimizer and the Table 3 fine-tuning dynamic."""

import numpy as np
import pytest

from repro.core.dbb import DBBSpec
from repro.core.pruning import is_dbb_compliant
from repro.train import (
    MLP,
    DAPLayer,
    Dense,
    SGD,
    Tensor,
    accuracy,
    dbb_finetune,
    synthetic_classification,
    train,
)
from repro.train.layers import Sequential


class TestDense:
    def test_forward_shape(self):
        layer = Dense(8, 4, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 8))))
        assert out.shape == (2, 4)

    def test_prune_to_dbb_compliance(self):
        layer = Dense(16, 4, rng=np.random.default_rng(1))
        spec = DBBSpec(8, 2)
        layer.prune_to_dbb(spec)
        assert is_dbb_compliant(layer.weight.data.T, spec)
        assert layer.weight_density() <= 0.25

    def test_mask_survives_updates(self):
        layer = Dense(16, 4, rng=np.random.default_rng(2))
        spec = DBBSpec(8, 2)
        layer.prune_to_dbb(spec)
        layer.weight.data += 1.0  # simulated optimizer step
        layer.apply_weight_mask()
        assert is_dbb_compliant(layer.weight.data.T, spec)

    def test_prune_requires_block_multiple(self):
        layer = Dense(10, 4, rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            layer.prune_to_dbb(DBBSpec(8, 4))


class TestDAPLayer:
    def test_enforces_block_bound(self):
        dap = DAPLayer(DBBSpec(8, 2))
        x = Tensor(np.abs(np.random.default_rng(4).normal(size=(4, 16))))
        out = dap(x)
        assert is_dbb_compliant(out.data, DBBSpec(8, 2))

    def test_disabled_is_identity(self):
        dap = DAPLayer(DBBSpec(8, 2), enabled=False)
        x = Tensor(np.ones((2, 16)))
        np.testing.assert_array_equal(dap(x).data, x.data)

    def test_dense_nnz_is_identity(self):
        dap = DAPLayer(DBBSpec(8, 4), nnz=8)
        x = Tensor(np.ones((2, 16)))
        np.testing.assert_array_equal(dap(x).data, x.data)

    def test_gradient_masked(self):
        dap = DAPLayer(DBBSpec(8, 1))
        x = Tensor(np.arange(1.0, 9.0)[None, :], requires_grad=True)
        dap(x).sum().backward()
        expected = np.zeros((1, 8))
        expected[0, 7] = 1.0  # only the max survives
        np.testing.assert_array_equal(x.grad, expected)

    def test_invalid_nnz(self):
        with pytest.raises(ValueError):
            DAPLayer(DBBSpec(8, 4), nnz=0)

    def test_feature_multiple_required(self):
        dap = DAPLayer(DBBSpec(8, 2))
        with pytest.raises(ValueError):
            dap(Tensor(np.ones((1, 12))))


class TestSGD:
    def test_descends_quadratic(self):
        w = Tensor(np.array([4.0]), requires_grad=True)
        opt = SGD([w], lr=0.1, momentum=0.0)
        for _ in range(50):
            opt.zero_grad()
            (w * w).sum().backward()
            opt.step()
        assert abs(w.data[0]) < 1e-3

    def test_momentum_accelerates(self):
        def loss_after(momentum, steps=15):
            w = Tensor(np.array([4.0]), requires_grad=True)
            opt = SGD([w], lr=0.02, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                (w * w).sum().backward()
                opt.step()
            return abs(w.data[0])

        assert loss_after(0.9) < loss_after(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], momentum=1.0)


class TestData:
    def test_shapes_and_split(self):
        data = synthetic_classification(samples=400, rng=np.random.default_rng(5))
        assert data.x_train.shape[0] == 300
        assert data.x_test.shape[0] == 100
        assert data.classes == 12
        assert data.x_train.min() >= 0.0  # ReLU-like

    def test_feature_validation(self):
        with pytest.raises(ValueError):
            synthetic_classification(features=10)

    def test_batches_cover_all(self):
        data = synthetic_classification(samples=400, rng=np.random.default_rng(6))
        seen = sum(len(xb) for xb, _ in data.batches(64, np.random.default_rng(0)))
        assert seen == 300


class TestTable3Dynamic:
    """The headline Table 3 behaviour: prune -> drop -> recover."""

    @pytest.fixture(scope="class")
    def report(self):
        rng = np.random.default_rng(7)
        data = synthetic_classification(rng=rng)
        model = MLP(64, [64, 64], 12, dap_spec=DBBSpec(8, 3), rng=rng)
        return dbb_finetune(model, data, w_spec=DBBSpec(8, 4), rng=rng,
                            baseline_epochs=14, finetune_epochs=14)

    def test_baseline_reasonable(self, report):
        assert report.baseline_acc > 85.0

    def test_pruning_hurts(self, report):
        assert report.drop_after_pruning > 1.0

    def test_finetuning_recovers(self, report):
        assert report.recovered > 0.0
        # Table 3: joint A/W-DBB typically lands within ~1-2 points.
        assert report.final_loss < 4.0

    def test_ratios_recorded(self, report):
        assert report.w_ratio == "4/8"
        assert report.a_ratio == "3/8"

    def test_weights_stay_compliant_after_finetune(self):
        rng = np.random.default_rng(8)
        data = synthetic_classification(samples=400, rng=rng)
        model = MLP(64, [32], 12, rng=rng)
        spec = DBBSpec(8, 2)
        dbb_finetune(model, data, w_spec=spec, rng=rng,
                     baseline_epochs=3, finetune_epochs=3)
        for layer in model.dense_layers()[1:]:
            assert is_dbb_compliant(layer.weight.data.T, spec)

    def test_first_layer_not_pruned(self):
        rng = np.random.default_rng(9)
        data = synthetic_classification(samples=400, rng=rng)
        model = MLP(64, [32], 12, rng=rng)
        dbb_finetune(model, data, w_spec=DBBSpec(8, 2), rng=rng,
                     baseline_epochs=2, finetune_epochs=2)
        first = model.dense_layers()[0]
        assert first.weight_mask is None
        assert first.weight_density() > 0.9


class TestTrainLoop:
    def test_training_improves_over_chance(self):
        rng = np.random.default_rng(10)
        data = synthetic_classification(samples=600, rng=rng)
        model = MLP(64, [32], 12, rng=rng)
        history = train(model, data, epochs=8, rng=rng)
        assert history[-1] > 3 * (100.0 / 12)

    def test_accuracy_bounds(self):
        rng = np.random.default_rng(11)
        data = synthetic_classification(samples=200, rng=rng)
        model = MLP(64, [16], 12, rng=rng)
        acc = accuracy(model, data.x_test, data.y_test)
        assert 0.0 <= acc <= 100.0

    def test_sequential_requires_modules(self):
        with pytest.raises(ValueError):
            Sequential([])
