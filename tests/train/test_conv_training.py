"""Tests for convolution support in the training substrate."""

import numpy as np
import pytest

from repro.core.dbb import DBBSpec
from repro.core.pruning import is_dbb_compliant
from repro.train import dbb_finetune
from repro.train.autograd import Tensor, cross_entropy
from repro.train.data import synthetic_images
from repro.train.layers import Conv2dModule, SmallCNN


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        hi = f()
        x[idx] = original - eps
        lo = f()
        x[idx] = original
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestConvAutograd:
    def test_forward_matches_inference_layer(self):
        from repro.nn.layers import Conv2d

        rng = np.random.default_rng(0)
        x_data = rng.normal(size=(2, 6, 6, 3))
        w_data = rng.normal(size=(27, 4))
        out = Tensor(x_data).conv2d(Tensor(w_data), (3, 3), 1, 1)
        ref = Conv2d(3, 4, (3, 3), padding=1, weights=w_data).forward(x_data)
        np.testing.assert_allclose(out.data, ref, rtol=1e-10)

    def test_weight_gradient_numerical(self):
        rng = np.random.default_rng(1)
        x_data = rng.normal(size=(1, 4, 4, 2))
        w_data = rng.normal(size=(8, 3))

        w = Tensor(w_data.copy(), requires_grad=True)
        Tensor(x_data).conv2d(w, (2, 2), 1, 0).sum().backward()

        def f():
            from repro.nn.im2col import im2col

            patches, _, _ = im2col(x_data, (2, 2), 1, 0)
            return (patches @ w_data).sum()

        np.testing.assert_allclose(w.grad, numerical_grad(f, w_data),
                                   atol=1e-5)

    def test_input_gradient_numerical(self):
        rng = np.random.default_rng(2)
        x_data = rng.normal(size=(1, 4, 4, 2))
        w_data = rng.normal(size=(18, 3))

        x = Tensor(x_data.copy(), requires_grad=True)
        x.conv2d(Tensor(w_data), (3, 3), 1, 1).sum().backward()

        def f():
            from repro.nn.im2col import im2col

            patches, _, _ = im2col(x_data, (3, 3), 1, 1)
            return (patches @ w_data).sum()

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data),
                                   atol=1e-5)

    def test_strided_conv_gradient(self):
        rng = np.random.default_rng(3)
        x_data = rng.normal(size=(1, 6, 6, 1))
        w_data = rng.normal(size=(4, 2))
        x = Tensor(x_data.copy(), requires_grad=True)
        w = Tensor(w_data.copy(), requires_grad=True)
        x.conv2d(w, (2, 2), 2, 0).sum().backward()

        def f():
            from repro.nn.im2col import im2col

            patches, _, _ = im2col(x_data, (2, 2), 2, 0)
            return (patches @ w_data).sum()

        np.testing.assert_allclose(x.grad, numerical_grad(f, x_data),
                                   atol=1e-5)

    def test_reshape_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.reshape(3, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_non_nhwc_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((4, 4))).conv2d(Tensor(np.zeros((4, 1))), (2, 2))


class TestConvModule:
    def test_prune_to_dbb_with_padding(self):
        # K = 3*3*3 = 27, pads to 32 for the per-block mask.
        conv = Conv2dModule(3, 8, rng=np.random.default_rng(4))
        spec = DBBSpec(8, 2)
        conv.prune_to_dbb(spec)
        wt = conv.weight.data.T
        padded = np.concatenate([wt, np.zeros((8, 5))], axis=1)
        assert is_dbb_compliant(padded, spec)
        assert conv.weight_density() <= 0.3


class TestCNNFinetuneDynamic:
    """The Table 3 dynamic on an actual convolutional proxy."""

    @pytest.fixture(scope="class")
    def report(self):
        rng = np.random.default_rng(5)
        data = synthetic_images(samples=500, rng=rng)
        model = SmallCNN(8, 6, dap_spec=DBBSpec(8, 3), rng=rng)
        return dbb_finetune(model, data, w_spec=DBBSpec(8, 2), rng=rng,
                            baseline_epochs=8, finetune_epochs=8, lr=0.03)

    def test_cnn_trains_above_chance(self, report):
        assert report.baseline_acc > 60.0

    def test_prune_and_recover(self, report):
        assert report.pruned_acc <= report.baseline_acc + 1.0
        assert report.finetuned_acc >= report.pruned_acc - 1.0
        assert report.final_loss < 12.0

    def test_conv_weights_compliant_after_finetune(self):
        rng = np.random.default_rng(6)
        data = synthetic_images(samples=200, rng=rng)
        model = SmallCNN(8, 6, rng=rng)
        spec = DBBSpec(8, 2)
        dbb_finetune(model, data, w_spec=spec, rng=rng,
                     baseline_epochs=2, finetune_epochs=2, lr=0.03)
        second_conv = model.prunable_layers()[1]
        wt = second_conv.weight.data.T
        pad = (-wt.shape[1]) % 8
        if pad:
            wt = np.concatenate([wt, np.zeros((wt.shape[0], pad))], axis=1)
        assert is_dbb_compliant(wt, spec)
