"""Cross-validation: analytic accelerator models vs the cycle-level sim.

The analytic models (repro.accel) price whole ImageNet networks from
density parameters; the cycle-level simulator (repro.arch.systolic)
executes concrete tensors. On matched small geometries and workloads
the two must agree on the event counts that drive energy.

Three layers of agreement are asserted here:

- *structural exactness* — SRAM bytes, MAC issue slots, mux selects and
  DAP comparator counts are closed-form over shapes and DBB bounds, so
  analytic and simulated values must be bit-equal, including ragged
  geometries where m/k/n are not multiples of the array dims or BZ
  (the Hypothesis property suite);
- *statistical agreement* — fired MACs depend on the operand patterns;
  the analytic density product is an unbiased estimate and must land
  within a small relative tolerance;
- *end-to-end agreement* — the full functional pipeline
  (``run_layer_functional`` on synthesized operands at real AlexNet
  layer sizes) must reproduce the analytic per-layer energy within a
  stated tolerance, with *bit-equal* compute cycles (both tiers share
  the pipelined-tile skew convention: one wavefront fill per GEMM) and
  bit-equal per-operand-class DRAM bytes from the memory-hierarchy
  model — on conv layers and on the memory-bound FC layers.
"""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.s2ta import S2TAAW, S2TAW
from repro.accel.sa import DenseSA, ZvcgSA
from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
from repro.core.dbb import DBBSpec
from repro.core.sparsity import density, random_dbb_tensor, random_unstructured
from repro.models.specs import LayerKind, LayerSpec


def _workload(seed, m=32, k=64, n=32, w_nnz=4, a_density=0.5):
    rng = np.random.default_rng(seed)
    a = random_unstructured((m, k), a_density, rng=rng).astype(np.int64)
    w = random_dbb_tensor((n, k), DBBSpec(8, w_nnz), rng=rng).T.astype(np.int64)
    layer = LayerSpec(
        "xval", LayerKind.CONV, m=m, k=k, n=n,
        w_nnz=w_nnz, a_nnz=8,
        weight_density=density(w), act_density=density(a),
    )
    return a, w, layer


class TestDenseSAAgreement:
    def test_sram_and_mac_events_match(self):
        a, w, layer = _workload(0)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4, mode=Mode.DENSE))
        sim_events = sim.run_gemm(a, w).events

        model = DenseSA()
        model.rows, model.cols = 4, 4
        _, ana_events = model._layer_events(layer)

        assert ana_events.sram_a_read_bytes == sim_events.sram_a_read_bytes
        assert ana_events.sram_w_read_bytes == sim_events.sram_w_read_bytes
        assert ana_events.sram_a_write_bytes == sim_events.sram_a_write_bytes
        assert ana_events.total_mac_slots == sim_events.total_mac_slots
        assert ana_events.operand_reg_ops == sim_events.operand_reg_ops

    def test_cycle_models_agree_exactly(self):
        a, w, layer = _workload(1)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4, mode=Mode.DENSE))
        sim_cycles = sim.run_gemm(a, w).cycles
        model = DenseSA()
        model.rows, model.cols = 4, 4
        ana_cycles, _ = model._layer_events(layer)
        # Both tiers share the pipelined-tile convention: tiles stream
        # back to back, one wavefront skew per GEMM -> bit-equal cycles.
        assert sim_cycles == ana_cycles


class TestZvcgAgreement:
    @given(st.integers(0, 100), st.floats(0.2, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_property_fired_macs_match_exactly(self, seed, a_density):
        a, w, layer = _workload(seed, a_density=a_density)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG))
        sim_events = sim.run_gemm(a, w).events

        model = ZvcgSA()
        model.rows, model.cols = 4, 4
        _, ana_events = model._layer_events(layer)
        # The analytic model estimates fired MACs as macs * d_w * d_a;
        # random patterns make that an unbiased estimate.
        assert ana_events.mac_ops == pytest.approx(sim_events.mac_ops,
                                                   rel=0.08)
        assert ana_events.total_mac_slots == sim_events.total_mac_slots


class TestS2TAWAgreement:
    def test_weight_sram_compression_matches(self):
        a, w, layer = _workload(2)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2))
        sim_events = sim.run_gemm(a, w).events

        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        assert ana_events.sram_w_read_bytes == sim_events.sram_w_read_bytes
        assert ana_events.sram_a_read_bytes == sim_events.sram_a_read_bytes

    def test_mac_slots_match(self):
        a, w, layer = _workload(3)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2))
        sim_events = sim.run_gemm(a, w).events
        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        assert ana_events.total_mac_slots == sim_events.total_mac_slots

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_property_fired_macs_close(self, seed):
        a, w, layer = _workload(seed)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2))
        sim_events = sim.run_gemm(a, w).events
        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        assert ana_events.mac_ops == pytest.approx(sim_events.mac_ops,
                                                   rel=0.1)


class TestS2TAAWAgreement:
    def _pair(self, seed, a_nnz):
        a, w, _ = _workload(seed)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.AWDBB,
            w_spec=DBBSpec(8, 4), a_spec=DBBSpec(8, a_nnz),
            tpe_a=2, tpe_c=2))
        sim_result = sim.run_gemm(a, w, a_nnz=a_nnz)
        # The analytic layer must see post-DAP densities, like the sim.
        from repro.core.dap import dap_prune

        a_pruned = dap_prune(a, DBBSpec(8, a_nnz)).pruned
        layer = LayerSpec(
            "xval", LayerKind.CONV, m=a.shape[0], k=a.shape[1],
            n=w.shape[1], w_nnz=4, a_nnz=a_nnz,
            weight_density=density(w), act_density=density(a_pruned),
        )
        model = S2TAAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        return sim_result.events, ana_events

    @pytest.mark.parametrize("a_nnz", [1, 2, 4])
    def test_slots_and_sram_match(self, a_nnz):
        sim_events, ana_events = self._pair(4, a_nnz)
        assert ana_events.total_mac_slots == sim_events.total_mac_slots
        assert ana_events.sram_a_read_bytes == sim_events.sram_a_read_bytes
        assert ana_events.sram_w_read_bytes == sim_events.sram_w_read_bytes

    @pytest.mark.parametrize("a_nnz", [2, 4])
    def test_dap_events_match(self, a_nnz):
        sim_events, ana_events = self._pair(5, a_nnz)
        assert ana_events.dap_compare_ops == sim_events.dap_compare_ops

    @given(st.integers(0, 50), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_property_fired_macs_close(self, seed, a_nnz):
        sim_events, ana_events = self._pair(seed, a_nnz)
        assert ana_events.mac_ops == pytest.approx(
            sim_events.mac_ops, rel=0.15, abs=200)


# --------------------------------------------------------------------- #
# Ragged-geometry property suite: all four modes, structural exactness
# --------------------------------------------------------------------- #

def _ragged_case(m, k, n, w_nnz, a_nnz, a_density, seed):
    """Spec + synthesized operands + analytic layer with measured densities."""
    from repro.core.sparsity import density as _density
    from repro.workloads.from_spec import spec_operands

    layer = LayerSpec(
        "ragged", LayerKind.CONV, m=m, k=k, n=n,
        w_nnz=w_nnz, a_nnz=a_nnz,
        act_density=min(a_density, a_nnz / 8.0),
    )
    a, w = spec_operands(layer, seed=seed)
    measured = LayerSpec(
        "ragged", LayerKind.CONV, m=m, k=k, n=n,
        w_nnz=w_nnz, a_nnz=a_nnz,
        weight_density=_density(w), act_density=_density(a),
    )
    return a, w, measured


#: m/k/n deliberately not multiples of the array dims or of BZ=8;
#: single-tile (dims below the effective tile) through many-tile cases.
_ragged_dims = st.tuples(
    st.integers(1, 37), st.integers(1, 67), st.integers(1, 37),
)


class TestRaggedGeometryAgreement:
    """Analytic ``_layer_events`` vs simulator events, all four modes.

    Structural counters (MAC slots, SRAM bytes, mux selects, DAP
    compares, accumulator slots) are exact; fired MACs agree within a
    statistical tolerance; cycles are bit-equal (both tiers pipeline
    tiles and pay the wavefront skew once per GEMM).
    """

    @staticmethod
    def _assert_structural(ana, sim, operand_exact=True):
        assert ana.total_mac_slots == sim.total_mac_slots
        assert ana.sram_a_read_bytes == sim.sram_a_read_bytes
        assert ana.sram_w_read_bytes == sim.sram_w_read_bytes
        assert ana.sram_a_write_bytes == sim.sram_a_write_bytes
        assert ana.mux_ops == sim.mux_ops
        assert ana.dap_compare_ops == sim.dap_compare_ops
        assert (ana.acc_reg_ops + ana.gated_acc_reg_ops
                == sim.acc_reg_ops + sim.gated_acc_reg_ops)
        if operand_exact:
            assert ana.operand_reg_ops == sim.operand_reg_ops

    @staticmethod
    def _assert_fired_close(ana, sim):
        assert ana.mac_ops == pytest.approx(sim.mac_ops, rel=0.25, abs=150)

    @given(_ragged_dims, st.floats(0.2, 1.0), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_dense_mode(self, dims, a_density, seed):
        m, k, n = dims
        a, w, layer = _ragged_case(m, k, n, 8, 8, a_density, seed)
        sim = SystolicArray(
            SystolicConfig(rows=4, cols=4, mode=Mode.DENSE)).run_gemm(a, w)
        model = DenseSA()
        model.rows, model.cols = 4, 4
        ana_cycles, ana = model._layer_events(layer)
        self._assert_structural(ana, sim.events)
        assert ana.mac_ops == sim.events.mac_ops  # dense MACs are exact
        assert sim.cycles == ana_cycles

    @given(_ragged_dims, st.floats(0.2, 0.9), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_zvcg_mode(self, dims, a_density, seed):
        m, k, n = dims
        a, w, layer = _ragged_case(m, k, n, 8, 8, a_density, seed)
        sim = SystolicArray(
            SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG)).run_gemm(a, w)
        model = ZvcgSA()
        model.rows, model.cols = 4, 4
        _, ana = model._layer_events(layer)
        # ZVCG operand gating pads differently (tile columns vs outputs);
        # everything else is structural.
        self._assert_structural(ana, sim.events, operand_exact=False)
        self._assert_fired_close(ana, sim.events)

    @given(_ragged_dims, st.integers(1, 4), st.floats(0.2, 0.9),
           st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_wdbb_mode(self, dims, w_nnz, a_density, seed):
        m, k, n = dims
        a, w, layer = _ragged_case(m, k, n, w_nnz, 8, a_density, seed)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2)).run_gemm(a, w)
        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        ana_cycles, ana = model._layer_events(layer)
        self._assert_structural(ana, sim.events)
        self._assert_fired_close(ana, sim.events)
        assert sim.cycles == ana_cycles

    @given(_ragged_dims, st.floats(0.2, 0.9), st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_wdbb_dense_fallback(self, dims, a_density, seed):
        """Unpruned weights (w_nnz=8): two passes over uncompressed blocks."""
        m, k, n = dims
        a, w, layer = _ragged_case(m, k, n, 8, 8, a_density, seed)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2)).run_gemm(a, w, w_dense=True)
        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        ana_cycles, ana = model._layer_events(layer)
        self._assert_structural(ana, sim.events)
        self._assert_fired_close(ana, sim.events)
        assert sim.cycles == ana_cycles

    @given(_ragged_dims, st.integers(1, 8), st.floats(0.2, 0.9),
           st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_awdbb_mode(self, dims, a_nnz, a_density, seed):
        m, k, n = dims
        a, w, layer = _ragged_case(m, k, n, 4, a_nnz, a_density, seed)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.AWDBB,
            w_spec=DBBSpec(8, 4), a_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2)).run_gemm(a, w, a_nnz=a_nnz)
        model = S2TAAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        ana_cycles, ana = model._layer_events(layer)
        self._assert_structural(ana, sim.events)
        self._assert_fired_close(ana, sim.events)
        assert sim.cycles == ana_cycles


# --------------------------------------------------------------------- #
# End-to-end: functional pipeline vs analytic models at real layer sizes
# --------------------------------------------------------------------- #

@pytest.mark.functional
class TestFunctionalPipelineAgreement:
    """``run_layer_functional`` on synthesized AlexNet conv operands.

    The acceptance contract of the functional migration: structurally
    exact counters stay bit-equal at real layer sizes, fired MACs agree
    to a fraction of a percent (the operand generator hits the analytic
    densities by construction), per-layer energy agrees within 6%, and
    — since the skew-convention unification — compute cycles and the
    per-operand-class DRAM bytes of the memory-hierarchy model are
    bit-equal for the four systolic execution modes (SMT's queueing
    post-pass keeps a small statistical cycle delta).
    """

    #: Tolerances of the agreement contract (functional = reference).
    FIRED_RTOL = 0.01
    ENERGY_RTOL = 0.06
    #: SMT only: its cycles rescale by a queueing-simulated speedup that
    #: is looked up at *measured* operand densities, so a 1%-grid cell
    #: boundary can shift the factor slightly. All other models: exact.
    SMT_CYCLES_RTOL = 0.10

    @staticmethod
    def _assert_dram_exact(ana, fun, tag):
        """Per-operand-class DRAM bytes must agree bit-for-bit."""
        assert ana.memory is not None and fun.memory is not None, tag
        assert ana.memory.by_class() == fun.memory.by_class(), tag
        assert ana.memory.memory_cycles == fun.memory.memory_cycles, tag
        assert ana.events.dram_read_bytes == fun.events.dram_read_bytes, tag
        assert ana.events.dram_write_bytes == fun.events.dram_write_bytes, tag

    @pytest.fixture(scope="class")
    def alexnet_convs(self):
        from repro.models import get_spec

        return get_spec("alexnet").conv_layers

    @pytest.mark.parametrize("accel_cls", [DenseSA, ZvcgSA, S2TAW, S2TAAW])
    def test_per_layer_agreement(self, accel_cls, alexnet_convs):
        accel = accel_cls()
        for layer in alexnet_convs:
            ana = accel.run_layer(layer)
            fun = accel.run_layer_functional(layer)
            ae, fe = ana.events, fun.events
            tag = f"{accel.name}/{layer.name}"
            # exact where the models claim exactness
            assert ae.total_mac_slots == fe.total_mac_slots, tag
            assert ae.sram_a_read_bytes == fe.sram_a_read_bytes, tag
            assert ae.sram_w_read_bytes == fe.sram_w_read_bytes, tag
            assert ae.sram_a_write_bytes == fe.sram_a_write_bytes, tag
            assert ae.mux_ops == fe.mux_ops, tag
            assert ae.dap_compare_ops == fe.dap_compare_ops, tag
            if accel_cls is not ZvcgSA:
                # Operand-register hops are structural for these modes
                # and, at the real design points (tpe_c=4), exercise the
                # TPE reuse conventions (e.g. S2TA-W's half-C-way
                # activation broadcast) against the independently
                # maintained analytic formulas. ZVCG gates per measured
                # operand pattern, so only the statistical contract
                # applies there.
                assert ae.operand_reg_ops == fe.operand_reg_ops, tag
            # statistical agreement
            assert ae.mac_ops == pytest.approx(
                fe.mac_ops, rel=self.FIRED_RTOL), tag
            assert ana.energy_pj == pytest.approx(
                fun.energy_pj, rel=self.ENERGY_RTOL), tag
            # unified skew convention: cycle models are bit-equal
            assert fun.compute_cycles == ana.compute_cycles, tag
            # memory subsystem: DRAM bytes exact across tiers
            self._assert_dram_exact(ana, fun, tag)

    def test_smt_agreement(self, alexnet_convs):
        """SMT's slots derive from cycles, so only the statistical
        contract applies there — but DRAM traffic (inherited dense ZVCG
        streams) is still exact."""
        from repro.accel.smt import SmtSA

        accel = SmtSA()
        for layer in alexnet_convs:
            ana = accel.run_layer(layer)
            fun = accel.run_layer_functional(layer)
            tag = f"{accel.name}/{layer.name}"
            assert ana.events.mac_ops == pytest.approx(
                fun.events.mac_ops, rel=self.FIRED_RTOL), tag
            assert ana.events.fifo_push_ops == pytest.approx(
                fun.events.fifo_push_ops, rel=self.FIRED_RTOL), tag
            assert ana.energy_pj == pytest.approx(
                fun.energy_pj, rel=self.ENERGY_RTOL), tag
            assert ana.compute_cycles == pytest.approx(
                fun.compute_cycles, rel=self.SMT_CYCLES_RTOL), tag
            self._assert_dram_exact(ana, fun, tag)

    @pytest.mark.parametrize("accel_cls", [ZvcgSA, S2TAW, S2TAAW])
    def test_fc_layer_agreement(self, accel_cls):
        """The memory subsystem contract extends past the conv stack:
        on a memory-bound FC layer both tiers must agree bit-for-bit on
        DRAM bytes and the fill-bandwidth cap (the Sec. 8.3 floor)."""
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("fc6")
        accel = accel_cls()
        ana = accel.run_layer(layer)
        fun = accel.run_layer_functional(layer)
        tag = f"{accel.name}/fc6"
        assert ana.memory_bound and fun.memory_bound, tag
        assert ana.memory_cycles == fun.memory_cycles, tag
        assert fun.compute_cycles == ana.compute_cycles, tag
        self._assert_dram_exact(ana, fun, tag)
        # The FC weight stream dominates the fill: weights are far from
        # resident and the profile must say so.
        assert not ana.memory.weights_resident, tag
        assert ana.memory.weight_bytes > ana.memory.act_bytes, tag

    def test_quick_subsampling_tracks_full_run(self):
        """``max_m`` extrapolation stays within a few percent of exact."""
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("conv2")
        accel = S2TAAW()
        full = accel.run_layer_functional(layer)
        quick = accel.run_layer_functional(layer, max_m=128)
        assert quick.energy_pj == pytest.approx(full.energy_pj, rel=0.10)
        assert quick.compute_cycles == pytest.approx(
            full.compute_cycles, rel=0.10)

    def test_functional_model_run_aggregates(self):
        """run_model_functional mirrors run_model's aggregation."""
        from repro.models import get_spec

        spec = get_spec("alexnet")
        accel = ZvcgSA()
        run = accel.run_model_functional(spec, conv_only=True, max_m=64)
        assert run.accelerator == accel.name
        assert len(run.layer_results) == len(spec.conv_layers)
        assert run.total_cycles == sum(r.cycles for r in run.layer_results)
        assert run.energy_uj > 0

    def test_every_comparison_model_supports_functional(self):
        """The last structural gap: all seven models of the paper's
        comparison now have two fidelity tiers."""
        from repro.accel import SCNN, EyerissV2, SmtSA, SparTen

        models = (DenseSA(), ZvcgSA(), SmtSA(), S2TAW(), S2TAAW(),
                  SparTen(), EyerissV2(), SCNN())
        assert all(m.supports_functional for m in models)

    def test_base_class_has_no_functional_simulator(self):
        from repro.accel.base import AcceleratorModel

        accel = AcceleratorModel()
        assert not accel.supports_functional
        with pytest.raises(NotImplementedError):
            accel.functional_sim_config()


# --------------------------------------------------------------------- #
# Fixed-dataflow baselines: SparTen / Eyeriss v2 / SCNN
# --------------------------------------------------------------------- #

@pytest.mark.functional
class TestBaselineFunctionalAgreement:
    """``run_layer_functional`` on the three baseline engines.

    The agreement contract of the baseline migration, on AlexNet conv2
    and fc6: fired MACs within 1% (the exact-total operand synthesis
    makes the density product land much closer in practice), per-layer
    energy within 6%, and the sparsity-compressed SRAM *and* DRAM byte
    counters bit-equal between tiers (both route through
    ``compressed_stream_traffic_from_events``). Cycle agreement is
    per-model: SparTen's greedy filter schedule within 5%, Eyeriss v2's
    mesh occupancy within 10%; SCNN's multiplier fragmentation is
    emergent and deliberately unenforced (see ``XVAL_CONTRACT``).
    """

    FIRED_RTOL = 0.01
    ENERGY_RTOL = 0.06
    CYCLES_RTOL = {"SparTen": 0.05, "Eyeriss-v2": 0.10, "SCNN": None}

    @pytest.fixture(scope="class")
    def layers(self):
        from repro.models import get_spec

        spec = get_spec("alexnet")
        return [spec.layer("conv2"), spec.layer("fc6")]

    def _accels(self):
        from repro.accel import SCNN, EyerissV2, SparTen

        return (SparTen(), EyerissV2(), SCNN())

    def test_contract_on_conv2_and_fc6(self, layers):
        for accel in self._accels():
            for layer in layers:
                ana = accel.run_layer(layer)
                fun = accel.run_layer_functional(layer)
                ae, fe = ana.events, fun.events
                tag = f"{accel.name}/{layer.name}"
                # exact: stored-byte counters (exact-total synthesis)
                assert ae.sram_a_read_bytes == fe.sram_a_read_bytes, tag
                assert ae.sram_w_read_bytes == fe.sram_w_read_bytes, tag
                assert ae.sram_a_write_bytes == fe.sram_a_write_bytes, tag
                # statistical: fired pairs and the machinery they drive
                assert ae.mac_ops == pytest.approx(
                    fe.mac_ops, rel=self.FIRED_RTOL), tag
                assert ae.gather_ops == pytest.approx(
                    fe.gather_ops, rel=self.FIRED_RTOL, abs=1), tag
                assert ae.scatter_acc_ops == pytest.approx(
                    fe.scatter_acc_ops, rel=self.FIRED_RTOL, abs=1), tag
                assert ana.energy_pj == pytest.approx(
                    fun.energy_pj, rel=self.ENERGY_RTOL), tag
                # memory subsystem: DRAM bytes exact across tiers
                TestFunctionalPipelineAgreement._assert_dram_exact(
                    ana, fun, tag)

    def test_cycle_bounds_on_conv_layers(self):
        """Cycle agreement holds per model on the conv stack (fc6 is
        excluded: these dataflows have no published FC mapping, and the
        row-subsampled spatial tilings degenerate at m=1)."""
        from repro.models import get_spec

        convs = get_spec("alexnet").conv_layers
        for accel in self._accels():
            rtol = self.CYCLES_RTOL[accel.name]
            if rtol is None:
                continue
            for layer in convs:
                ana = accel.run_layer(layer)
                fun = accel.run_layer_functional(layer)
                assert ana.compute_cycles == pytest.approx(
                    fun.compute_cycles, rel=rtol), \
                    f"{accel.name}/{layer.name}"

    def test_quick_subsampling_tracks_full_run(self):
        """The weight stream is exempt from the linear row
        extrapolation (it does not scale with m), so quick-mode energy
        stays within a few percent of exact for every baseline."""
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("conv2")
        for accel in self._accels():
            full = accel.run_layer_functional(layer)
            quick = accel.run_layer_functional(layer, max_m=128)
            assert quick.energy_pj == pytest.approx(
                full.energy_pj, rel=0.10), accel.name
            assert quick.events.sram_w_read_bytes \
                == full.events.sram_w_read_bytes, accel.name
