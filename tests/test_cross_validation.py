"""Cross-validation: analytic accelerator models vs the cycle-level sim.

The analytic models (repro.accel) price whole ImageNet networks from
density parameters; the cycle-level simulator (repro.arch.systolic)
executes concrete tensors. On matched small geometries and workloads
the two must agree on the event counts that drive energy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.s2ta import S2TAAW, S2TAW
from repro.accel.sa import DenseSA, ZvcgSA
from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
from repro.core.dbb import DBBSpec
from repro.core.sparsity import density, random_dbb_tensor, random_unstructured
from repro.models.specs import LayerKind, LayerSpec


def _workload(seed, m=32, k=64, n=32, w_nnz=4, a_density=0.5):
    rng = np.random.default_rng(seed)
    a = random_unstructured((m, k), a_density, rng=rng).astype(np.int64)
    w = random_dbb_tensor((n, k), DBBSpec(8, w_nnz), rng=rng).T.astype(np.int64)
    layer = LayerSpec(
        "xval", LayerKind.CONV, m=m, k=k, n=n,
        w_nnz=w_nnz, a_nnz=8,
        weight_density=density(w), act_density=density(a),
    )
    return a, w, layer


class TestDenseSAAgreement:
    def test_sram_and_mac_events_match(self):
        a, w, layer = _workload(0)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4, mode=Mode.DENSE))
        sim_events = sim.run_gemm(a, w).events

        model = DenseSA()
        model.rows, model.cols = 4, 4
        _, ana_events = model._layer_events(layer)

        assert ana_events.sram_a_read_bytes == sim_events.sram_a_read_bytes
        assert ana_events.sram_w_read_bytes == sim_events.sram_w_read_bytes
        assert ana_events.sram_a_write_bytes == sim_events.sram_a_write_bytes
        assert ana_events.total_mac_slots == sim_events.total_mac_slots
        assert ana_events.operand_reg_ops == sim_events.operand_reg_ops

    def test_cycle_models_agree_within_skew(self):
        a, w, layer = _workload(1)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4, mode=Mode.DENSE))
        sim_cycles = sim.run_gemm(a, w).cycles
        model = DenseSA()
        model.rows, model.cols = 4, 4
        ana_cycles, _ = model._layer_events(layer)
        # The simulator pays skew per tile, the analytic model once.
        tiles = 8 * 8
        assert abs(sim_cycles - ana_cycles) <= tiles * (4 + 4 - 2)


class TestZvcgAgreement:
    @given(st.integers(0, 100), st.floats(0.2, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_property_fired_macs_match_exactly(self, seed, a_density):
        a, w, layer = _workload(seed, a_density=a_density)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG))
        sim_events = sim.run_gemm(a, w).events

        model = ZvcgSA()
        model.rows, model.cols = 4, 4
        _, ana_events = model._layer_events(layer)
        # The analytic model estimates fired MACs as macs * d_w * d_a;
        # random patterns make that an unbiased estimate.
        assert ana_events.mac_ops == pytest.approx(sim_events.mac_ops,
                                                   rel=0.08)
        assert ana_events.total_mac_slots == sim_events.total_mac_slots


class TestS2TAWAgreement:
    def test_weight_sram_compression_matches(self):
        a, w, layer = _workload(2)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2))
        sim_events = sim.run_gemm(a, w).events

        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        assert ana_events.sram_w_read_bytes == sim_events.sram_w_read_bytes
        assert ana_events.sram_a_read_bytes == sim_events.sram_a_read_bytes

    def test_mac_slots_match(self):
        a, w, layer = _workload(3)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2))
        sim_events = sim.run_gemm(a, w).events
        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        assert ana_events.total_mac_slots == sim_events.total_mac_slots

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_property_fired_macs_close(self, seed):
        a, w, layer = _workload(seed)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2))
        sim_events = sim.run_gemm(a, w).events
        model = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        assert ana_events.mac_ops == pytest.approx(sim_events.mac_ops,
                                                   rel=0.1)


class TestS2TAAWAgreement:
    def _pair(self, seed, a_nnz):
        a, w, _ = _workload(seed)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.AWDBB,
            w_spec=DBBSpec(8, 4), a_spec=DBBSpec(8, a_nnz),
            tpe_a=2, tpe_c=2))
        sim_result = sim.run_gemm(a, w, a_nnz=a_nnz)
        # The analytic layer must see post-DAP densities, like the sim.
        from repro.core.dap import dap_prune

        a_pruned = dap_prune(a, DBBSpec(8, a_nnz)).pruned
        layer = LayerSpec(
            "xval", LayerKind.CONV, m=a.shape[0], k=a.shape[1],
            n=w.shape[1], w_nnz=4, a_nnz=a_nnz,
            weight_density=density(w), act_density=density(a_pruned),
        )
        model = S2TAAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        _, ana_events = model._layer_events(layer)
        return sim_result.events, ana_events

    @pytest.mark.parametrize("a_nnz", [1, 2, 4])
    def test_slots_and_sram_match(self, a_nnz):
        sim_events, ana_events = self._pair(4, a_nnz)
        assert ana_events.total_mac_slots == sim_events.total_mac_slots
        assert ana_events.sram_a_read_bytes == sim_events.sram_a_read_bytes
        assert ana_events.sram_w_read_bytes == sim_events.sram_w_read_bytes

    @pytest.mark.parametrize("a_nnz", [2, 4])
    def test_dap_events_match(self, a_nnz):
        sim_events, ana_events = self._pair(5, a_nnz)
        assert ana_events.dap_compare_ops == sim_events.dap_compare_ops

    @given(st.integers(0, 50), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_property_fired_macs_close(self, seed, a_nnz):
        sim_events, ana_events = self._pair(seed, a_nnz)
        assert ana_events.mac_ops == pytest.approx(
            sim_events.mac_ops, rel=0.15, abs=200)
