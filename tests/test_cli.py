"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListCommands:
    def test_list_models(self, capsys):
        out = main(["list-models"])
        assert "mobilenet_v1" in out
        assert "G MACs" in out

    def test_list_accelerators(self):
        out = main(["list-accelerators"])
        assert "S2TA-AW" in out
        assert "SparTen" in out


class TestRun:
    def test_run_default(self):
        out = main(["run", "lenet5"])
        assert "lenet5 on S2TA-AW" in out
        assert "TOPS/W" in out

    def test_run_with_options(self):
        out = main(["run", "alexnet", "--accelerator", "sa-zvcg",
                    "--tech", "65nm", "--conv-only", "--per-layer"])
        assert "SA-ZVCG" in out
        assert "conv5" in out

    def test_run_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "squeezenet"])

    def test_run_unknown_tech_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "lenet5", "--tech", "3nm"])


class TestExperiment:
    def test_fig1(self):
        out = main(["experiment", "fig1"])
        assert "Figure 1" in out

    def test_ablation(self):
        out = main(["experiment", "ablation-bz"])
        assert "block size" in out

    def test_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    @pytest.mark.functional
    def test_fig12_functional_quick(self):
        out = main(["experiment", "fig12", "--functional", "--quick"])
        assert "functional simulation" in out
        assert "quick mode" in out

    def test_functional_flag_rejected_for_non_full_model_artifacts(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig1", "--functional"])
        with pytest.raises(SystemExit):
            main(["experiment", "all", "--quick"])

    @pytest.mark.functional
    def test_xval_artifact(self):
        out = main(["experiment", "xval", "--seed", "1"])
        assert "Analytic vs functional" in out
        assert "worst |delta|" in out
        assert "DRAM exact" in out

    @pytest.mark.functional
    def test_xval_quick_lists_all_seven_models(self):
        """The regression gate: every model of the paper's comparison
        runs both tiers, and a clean run exits zero."""
        out = main(["experiment", "xval", "--quick"])
        for name in ("SA-ZVCG", "SMT-T2Q2", "S2TA-W", "S2TA-AW",
                     "SparTen", "Eyeriss-v2", "SCNN"):
            assert name in out, name
        assert "FAIL" not in out

    @pytest.mark.functional
    def test_xval_exits_nonzero_on_contract_violation(self, monkeypatch):
        """An impossible tolerance must flip the exit code — the CI
        hook that keeps the agreement contract enforced."""
        from repro.eval import experiments

        monkeypatch.setitem(
            experiments.XVAL_CONTRACT, "SparTen",
            experiments.XvalContract(fired=0.0, energy=0.0,
                                     quick_fired=0.0, quick_energy=0.0))
        with pytest.raises(SystemExit) as excinfo:
            main(["experiment", "xval", "--quick"])
        assert "SparTen" in str(excinfo.value)
        assert "exceeds" in str(excinfo.value)

    def test_xval_rejects_functional_flag(self):
        with pytest.raises(SystemExit):
            main(["experiment", "xval", "--functional"])

    def test_dram_pj_per_byte_on_run(self):
        out = main(["run", "alexnet", "--accelerator", "sparten",
                    "--conv-only", "--dram-pj-per-byte", "40"])
        assert "SparTen" in out

    def test_dram_pj_per_byte_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig1", "--dram-pj-per-byte", "40"])
        with pytest.raises(SystemExit):
            main(["experiment", "fig12", "--dram-pj-per-byte", "-1"])
        with pytest.raises(SystemExit):
            main(["run", "lenet5", "--dram-pj-per-byte", "0"])

    def test_roofline_artifact(self):
        out = main(["experiment", "roofline"])
        assert "Roofline" in out
        assert "memory" in out  # FC layers sit under the memory roof

    def test_roofline_with_dram_bw(self):
        out = main(["experiment", "roofline", "--dram-bw", "4"])
        assert "4 GB/s" in out

    def test_roofline_bw_sweep_artifact(self):
        out = main(["experiment", "roofline-bw"])
        assert "DRAM GB/s" in out
        assert "mem%" in out

    def test_fig11_with_dram_bw(self):
        out = main(["experiment", "fig11", "--dram-bw", "8"])
        assert "DRAM channel 8 GB/s" in out

    def test_dram_bw_rejected_for_other_artifacts(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig1", "--dram-bw", "8"])
        with pytest.raises(SystemExit):
            main(["experiment", "fig11", "--dram-bw", "-3"])


class TestSweep:
    def test_sweep(self):
        out = main(["sweep", "--top", "3"])
        assert "Section 7" in out
        assert "8x4x4" in out


class TestJobsFlag:
    @pytest.mark.functional
    def test_fig12_functional_with_jobs(self):
        out = main(["experiment", "fig12", "--functional", "--quick",
                    "--jobs", "2"])
        assert "functional simulation" in out

    def test_jobs_requires_functional_on_full_model_artifacts(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig12", "--jobs", "2"])

    def test_jobs_rejected_for_non_parallel_artifacts(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig1", "--jobs", "2"])

    def test_negative_jobs_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "xval", "--jobs", "-1"])


class TestCacheCommand:
    def test_stats_on_empty_dir(self, tmp_path):
        out = main(["cache", "stats", "--dir", str(tmp_path / "rc")])
        assert "entries : 0" in out

    @pytest.mark.functional
    def test_functional_run_populates_then_clear(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "rc"))
        main(["experiment", "fig12", "--functional", "--quick"])
        out = main(["cache", "stats"])
        assert "entries : 25" in out
        out = main(["cache", "clear"])
        assert "cleared 25" in out
        assert "entries : 0" in main(["cache", "stats"])

    @pytest.mark.functional
    def test_no_result_cache_skips_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "rc"))
        main(["experiment", "fig12", "--functional", "--quick",
              "--no-result-cache"])
        assert "entries : 0" in main(["cache", "stats"])

    def test_prune_validates_cap(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--dir", str(tmp_path),
                  "--max-mb", "0"])

    def test_prune_rejects_sub_byte_fractional_cap(self, tmp_path):
        # 1e-7 MB truncates to 0 bytes; must be a clean CLI error,
        # not a ValueError traceback from ResultCache.prune.
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--dir", str(tmp_path),
                  "--max-mb", "0.0000001"])

    @pytest.mark.functional
    def test_xval_gate_always_runs_cold(self, tmp_path, monkeypatch):
        """The contract gate must re-simulate even when the default
        result cache holds entries for its layers."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "rc"))
        main(["experiment", "xval", "--quick"])
        assert "entries : 0" in main(["cache", "stats"])


class TestDSECommand:
    AXES = ["--styles", "tu", "--weight-nnz", "4", "--a-nnz", "2,4,8",
            "--sram-mb", "2.5", "--coarse-stride", "3"]

    def test_dse_runs_and_renders(self):
        out = main(["dse"] + self.AXES + ["--top", "5"])
        assert "8x4x4_8x8" in out
        assert "Pareto frontier" in out

    def test_shard_merge_roundtrip_matches_unsharded(self, tmp_path):
        full = tmp_path / "full.json"
        main(["dse"] + self.AXES + ["--out", str(full)])
        shard_paths = []
        for i in range(2):
            path = tmp_path / f"s{i}.json"
            out = main(["dse"] + self.AXES
                       + ["--shard", f"{i}/2", "--out", str(path)])
            assert "partial shard" in out
            shard_paths.append(str(path))
        merged = tmp_path / "merged.json"
        out = main(["dse", "--merge"] + shard_paths
                   + ["--out", str(merged)])
        assert "Pareto frontier" in out
        import json
        full_art = json.loads(full.read_text())
        merged_art = json.loads(merged.read_text())
        assert {k: v for k, v in merged_art.items() if k != "meta"} \
            == {k: v for k, v in full_art.items() if k != "meta"}

    def test_bad_shard_rejected(self):
        for bad in ("2/2", "x", "1/2/3"):
            with pytest.raises(SystemExit):
                main(["dse"] + self.AXES + ["--shard", bad])

    def test_bad_axis_values_rejected(self):
        with pytest.raises(SystemExit):
            main(["dse", "--a-nnz", "9"])
        with pytest.raises(SystemExit):
            main(["dse", "--styles", "systolic"])
        with pytest.raises(SystemExit):
            main(["dse", "--sram-mb", ""])

    def test_quick_requires_functional_fidelity(self):
        with pytest.raises(SystemExit):
            main(["dse"] + self.AXES + ["--quick"])

    def test_merge_rejects_shard_flag_and_unreadable_files(self,
                                                           tmp_path):
        with pytest.raises(SystemExit):
            main(["dse", "--merge", "x.json", "--shard", "0/2"])
        with pytest.raises(SystemExit):
            main(["dse", "--merge", str(tmp_path / "missing.json")])

    def test_merge_rejects_foreign_shards(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["dse"] + self.AXES + ["--shard", "0/2", "--out", str(a)])
        main(["dse", "--styles", "dp", "--weight-nnz", "4",
              "--a-nnz", "2,4,8", "--sram-mb", "2.5",
              "--coarse-stride", "3", "--shard", "1/2",
              "--out", str(b)])
        with pytest.raises(SystemExit):
            main(["dse", "--merge", str(a), str(b)])


class TestObservability:
    """PR-8 flags: --trace/--metrics/-v/-q and the trace subcommand."""

    def test_trace_flag_writes_valid_chrome_trace(self, tmp_path):
        import json
        trace = tmp_path / "fig1.json"
        out = main(["experiment", "fig1", "--trace", str(trace)])
        assert f"wrote trace to {trace}" in out
        payload = json.loads(trace.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit",
                                "otherData"}
        assert any(e["ph"] == "B" for e in payload["traceEvents"])

    def test_trace_env_var_equivalent(self, tmp_path, monkeypatch):
        trace = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        out = main(["experiment", "fig1"])
        assert f"wrote trace to {trace}" in out
        assert trace.exists()

    @pytest.mark.functional
    def test_trace_summarize_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        trace = tmp_path / "fig12.json"
        main(["experiment", "fig12", "--functional", "--quick",
              "--no-result-cache", "--trace", str(trace)])
        out = main(["trace", "summarize", str(trace), "--top", "5"])
        assert "coverage" in out
        assert "unmatched" in out
        assert "synthesize" in out or "simulate" in out

    def test_trace_summarize_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", "summarize", str(tmp_path / "nope.json")])

    def test_trace_summarize_rejects_bad_top(self, tmp_path):
        trace = tmp_path / "t.json"
        trace.write_text('{"traceEvents": []}')
        with pytest.raises(SystemExit):
            main(["trace", "summarize", str(trace), "--top", "0"])

    def test_metrics_flag_appends_table(self):
        from repro.obs.metrics import reset_default_registry
        reset_default_registry()
        out = main(["experiment", "fig1", "--metrics"])
        assert "metrics" in out

    def test_metrics_out_writes_json(self, tmp_path):
        import json
        path = tmp_path / "metrics.json"
        main(["experiment", "fig1", "--metrics-out", str(path)])
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.obs.metrics/v1"

    def test_quiet_suppresses_stdout_keeps_return(self, capsys):
        out = main(["experiment", "fig1", "-q"])
        assert "Figure 1" in out      # payload still returned...
        assert capsys.readouterr().out == ""  # ...but not printed

    def test_default_verbosity_prints_payload(self, capsys):
        out = main(["experiment", "fig1"])
        assert out in capsys.readouterr().out
