"""Tests for the systolic array simulator (all four execution modes)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec
from repro.core.gemm import dense_gemm
from repro.core.pruning import prune_weights_dbb
from repro.core.sparsity import random_unstructured


def _operands(seed=0, m=8, k=32, n=8, a_density=0.6, w_nnz=4):
    rng = np.random.default_rng(seed)
    a = random_unstructured((m, k), a_density, rng=rng).astype(np.int64)
    w = random_unstructured((k, n), 0.9, rng=rng).astype(np.int64)
    w = prune_weights_dbb(w.T, DBBSpec(8, w_nnz)).T
    return a, w


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystolicConfig(rows=0)
        with pytest.raises(ValueError):
            SystolicConfig(mode=Mode.DENSE, tpe_a=2)
        with pytest.raises(ValueError):
            SystolicConfig(mode=Mode.AWDBB, w_spec=DBBSpec(8, 4),
                           a_spec=DBBSpec(4, 2), tpe_a=2, tpe_c=2)

    def test_hardware_macs(self):
        # Scalar 32x64 baseline: 2048 MACs (Table 4).
        assert SystolicConfig(rows=32, cols=64).hardware_macs == 2048
        # S2TA-AW 8x4x4_8x8: 8x8 TPEs x (A=8 x C=4) DP1M4 units = 2048.
        cfg = SystolicConfig(rows=8, cols=8, mode=Mode.AWDBB,
                             tpe_a=8, tpe_c=4)
        assert cfg.hardware_macs == 2048
        # S2TA-W 4x8x4_4x8 with DP4M8 (4 MACs per DP unit): 4x8 TPEs x
        # (A=4 x C=4) x 4 = 2048.
        cfg_w = SystolicConfig(rows=4, cols=8, mode=Mode.WDBB,
                               tpe_a=4, tpe_c=4, w_spec=DBBSpec(8, 4))
        assert cfg_w.hardware_macs == 2048

    def test_effective_tile(self):
        cfg = SystolicConfig(rows=8, cols=8, mode=Mode.AWDBB, tpe_a=8, tpe_c=4)
        assert cfg.eff_rows == 64
        assert cfg.eff_cols == 32


class TestDenseMode:
    def test_result_exact(self):
        a, w = _operands(0)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4))
        result = sim.run_gemm(a, w)
        np.testing.assert_array_equal(result.output, dense_gemm(a, w))

    def test_cycles_formula(self):
        a, w = _operands(1, m=8, k=32, n=8)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4))
        result = sim.run_gemm(a, w)
        # 2x2 tiles pipeline back to back: 4 * K plus one wavefront skew
        # (the same convention as the analytic accelerator models).
        assert result.cycles == 4 * 32 + (4 + 4 - 2)

    def test_all_slots_issue(self):
        a, w = _operands(2)
        sim = SystolicArray(SystolicConfig(rows=4, cols=4))
        result = sim.run_gemm(a, w)
        assert result.events.mac_ops == 8 * 8 * 32
        assert result.events.gated_mac_ops == 0

    def test_shape_mismatch(self):
        sim = SystolicArray(SystolicConfig())
        with pytest.raises(ValueError):
            sim.run_gemm(np.zeros((2, 4)), np.zeros((5, 2)))


class TestZvcgMode:
    def test_same_cycles_as_dense_no_speedup(self):
        # Fig. 9a: ZVCG never speeds up, it only gates.
        a, w = _operands(3)
        dense = SystolicArray(SystolicConfig(rows=4, cols=4)).run_gemm(a, w)
        zvcg = SystolicArray(
            SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG)
        ).run_gemm(a, w)
        assert zvcg.cycles == dense.cycles
        np.testing.assert_array_equal(zvcg.output, dense.output)

    def test_gated_slots_match_zero_products(self):
        a, w = _operands(4)
        result = SystolicArray(
            SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG)
        ).run_gemm(a, w)
        useful = int(((a != 0).astype(int) @ (w != 0).astype(int)).sum())
        assert result.events.mac_ops == useful
        assert result.events.total_mac_slots == 8 * 8 * 32

    def test_utilization_below_one(self):
        a, w = _operands(5, a_density=0.4)
        result = SystolicArray(
            SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG)
        ).run_gemm(a, w)
        assert result.mac_utilization < 0.5


class TestWdbbMode:
    def _sim(self, rows=2, cols=2, tpe_a=2, tpe_c=2):
        return SystolicArray(
            SystolicConfig(rows=rows, cols=cols, mode=Mode.WDBB,
                           w_spec=DBBSpec(8, 4), tpe_a=tpe_a, tpe_c=tpe_c)
        )

    def test_result_exact(self):
        a, w = _operands(6)
        result = self._sim().run_gemm(a, w)
        np.testing.assert_array_equal(result.output, dense_gemm(a, w))

    def test_2x_speedup_over_dense(self):
        # Fig. 9c: 4/8 W-DBB processes K in K/BZ block steps with NNZ=4
        # MACs -> 2x fewer cycles at the same MAC count.
        a, w = _operands(7, m=8, k=64, n=8)
        dense = SystolicArray(
            SystolicConfig(rows=4, cols=4)).run_gemm(a, w)
        wdbb = self._sim().run_gemm(a, w)  # eff tile 4x4
        # same effective tile size -> same tile count (4 tiles); tiles
        # pipeline, so each schedule pays its wavefront skew once
        assert dense.cycles / wdbb.cycles == pytest.approx(
            (4 * 64 + 6) / (4 * 8 + 2), rel=0.01
        )

    def test_noncompliant_weights_rejected(self):
        a, _ = _operands(8)
        w_dense = np.ones((32, 8), dtype=np.int64)
        with pytest.raises(ValueError, match="W-DBB bound"):
            self._sim().run_gemm(a, w_dense)

    def test_mac_slots_are_nnz_per_block(self):
        a, w = _operands(9, m=4, k=32, n=4)
        result = self._sim(rows=2, cols=2, tpe_a=2, tpe_c=2).run_gemm(a, w)
        assert result.events.total_mac_slots == 4 * 4 * 4 * 4  # M*N*Kb*NNZ


class TestAwdbbMode:
    def _sim(self, a_nnz_spec=4):
        return SystolicArray(
            SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                           w_spec=DBBSpec(8, 4), a_spec=DBBSpec(8, a_nnz_spec),
                           tpe_a=2, tpe_c=2)
        )

    def test_result_matches_dap_then_dense(self):
        a, w = _operands(10)
        result = self._sim().run_gemm(a, w, a_nnz=3)
        a_ref = dap_prune(a, DBBSpec(8, 3)).pruned
        np.testing.assert_array_equal(result.output, dense_gemm(a_ref, w))

    def test_cycles_scale_with_a_nnz(self):
        # Sec. 5.2: density is a pure cycle knob -> cycles proportional
        # to a_nnz at fixed shape.
        a, w = _operands(11, m=8, k=64, n=8)
        sim = self._sim()
        cycles = {nnz: sim.run_gemm(a, w, a_nnz=nnz).cycles
                  for nnz in (1, 2, 4)}
        assert cycles[2] == 2 * cycles[1]
        assert cycles[4] == 4 * cycles[1]

    def test_dense_bypass(self):
        a, w = _operands(12)
        result = self._sim().run_gemm(a, w, a_nnz=8)
        np.testing.assert_array_equal(result.output, dense_gemm(a, w))

    def test_invalid_a_nnz(self):
        a, w = _operands(13)
        with pytest.raises(ValueError):
            self._sim().run_gemm(a, w, a_nnz=0)

    def test_dap_events_counted_once_per_block(self):
        a, w = _operands(14, m=4, k=32, n=8)
        result = self._sim().run_gemm(a, w, a_nnz=2)
        assert result.events.dap_compare_ops == 4 * 4 * 7 * 2

    def test_speedup_vs_zvcg_is_bz_over_nnz(self):
        # Fig. 9d: speedup 8/a_nnz over the dense-activation schedule.
        a, w = _operands(15, m=8, k=64, n=8)
        zvcg = SystolicArray(
            SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG)).run_gemm(a, w)
        sim = self._sim()
        for nnz, expect in ((1, 8.0), (2, 4.0), (4, 2.0)):
            res = sim.run_gemm(a, w, a_nnz=nnz)
            # compare pure compute steps (strip skew): zvcg K per tile,
            # awdbb K/8*nnz per tile
            zvcg_steps = 64
            aw_steps = 64 / 8 * nnz
            assert zvcg_steps / aw_steps == expect
            assert res.cycles < zvcg.cycles * (nnz / 8.0) * 2.2

    @given(st.integers(0, 200), st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_output_exact(self, seed, a_nnz):
        a, w = _operands(seed, m=4, k=16, n=4)
        result = self._sim().run_gemm(a, w, a_nnz=a_nnz)
        if a_nnz < 8:
            a_ref = dap_prune(a, DBBSpec(8, a_nnz)).pruned
        else:
            a_ref = a
        np.testing.assert_array_equal(result.output, dense_gemm(a_ref, w))


class TestCrossModeEnergyOrdering:
    def test_operand_reg_events_drop_with_tpe_reuse(self):
        # Sec. 6.1 "Data Reuse": the TPE amortizes operand movement over
        # multiple MACs -> far fewer register events per MAC slot.
        a, w = _operands(16, m=16, k=64, n=16)
        scalar = SystolicArray(
            SystolicConfig(rows=4, cols=4, mode=Mode.ZVCG)).run_gemm(a, w)
        tpe = SystolicArray(
            SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                           tpe_a=4, tpe_c=4)).run_gemm(a, w, a_nnz=4)
        scalar_per_slot = scalar.events.operand_reg_ops / scalar.events.total_mac_slots
        tpe_per_slot = tpe.events.operand_reg_ops / tpe.events.total_mac_slots
        assert tpe_per_slot < scalar_per_slot / 2

    def test_sram_traffic_drops_with_compression(self):
        a, w = _operands(17, m=16, k=64, n=16)
        dense = SystolicArray(
            SystolicConfig(rows=4, cols=4)).run_gemm(a, w)
        aw = SystolicArray(
            SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                           tpe_a=2, tpe_c=2)).run_gemm(a, w, a_nnz=4)
        assert aw.events.sram_w_read_bytes < dense.events.sram_w_read_bytes
        assert aw.events.sram_a_read_bytes < dense.events.sram_a_read_bytes
