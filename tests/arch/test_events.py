"""Tests for the hardware event counter bundle."""

import pytest

from repro.arch.events import EventCounts


class TestEventCounts:
    def test_add(self):
        a = EventCounts(mac_ops=3, cycles=10)
        b = EventCounts(mac_ops=4, sram_w_read_bytes=8)
        c = a + b
        assert c.mac_ops == 7
        assert c.cycles == 10
        assert c.sram_w_read_bytes == 8

    def test_iadd(self):
        a = EventCounts(mac_ops=1)
        a += EventCounts(mac_ops=2, gated_mac_ops=5)
        assert a.mac_ops == 3
        assert a.gated_mac_ops == 5

    def test_add_type_error(self):
        with pytest.raises(TypeError):
            EventCounts() + 3

    def test_scaled(self):
        a = EventCounts(mac_ops=10, cycles=4)
        b = a.scaled(2.5)
        assert b.mac_ops == 25
        assert b.cycles == 10

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            EventCounts().scaled(-1)

    def test_utilization(self):
        e = EventCounts(mac_ops=3, gated_mac_ops=1)
        assert e.total_mac_slots == 4
        assert e.mac_utilization == 0.75
        assert EventCounts().mac_utilization == 0.0

    def test_as_dict_roundtrip(self):
        e = EventCounts(mac_ops=2, fifo_push_ops=7)
        d = e.as_dict()
        assert d["mac_ops"] == 2
        assert EventCounts(**d) == e
