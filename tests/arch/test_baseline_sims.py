"""Property suite for the fixed-dataflow functional simulators.

Mirrors the ragged-geometry suite of ``tests/test_cross_validation.py``
for the three baseline engines (SparTen bitmask inner-join, Eyeriss v2
CSC row-stationary mesh, SCNN Cartesian product): ragged M/K/N shapes,
all-zero and fully-dense operands, and density sweeps — asserting the
SRAM-byte counters agree *bit-for-bit* with the analytic models at
measured densities, fired MACs agree statistically, and the output
matrix is the exact GEMM product.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import SCNN, EyerissV2, SparTen
from repro.arch.eyeriss import EyerissV2Config, EyerissV2Engine
from repro.arch.scnn import SCNNConfig, SCNNEngine
from repro.arch.sparten import SparTenConfig, SparTenEngine, greedy_lpt_loads
from repro.core.sparsity import density
from repro.models.specs import LayerKind, LayerSpec
from repro.workloads.from_spec import spec_operands

ENGINES = {
    "SparTen": (SparTenEngine, SparTen),
    "Eyeriss-v2": (EyerissV2Engine, EyerissV2),
    "SCNN": (SCNNEngine, SCNN),
}


def _case(m, k, n, w_nnz, a_nnz, a_density, seed):
    """Operands synthesized from a spec + analytic layer at the
    *measured* densities (the closed forms then count the same stored
    non-zeros the engines measure)."""
    layer = LayerSpec(
        "ragged", LayerKind.CONV, m=m, k=k, n=n,
        w_nnz=w_nnz, a_nnz=a_nnz,
        act_density=min(a_density, a_nnz / 8.0),
    )
    a, w = spec_operands(layer, seed=seed)
    measured = LayerSpec(
        "ragged", LayerKind.CONV, m=m, k=k, n=n,
        w_nnz=w_nnz, a_nnz=a_nnz,
        weight_density=density(w), act_density=density(a),
    )
    return a, w, measured


#: m/k/n deliberately not multiples of the PE counts, mesh dims or BZ=8.
_ragged_dims = st.tuples(
    st.integers(1, 37), st.integers(1, 67), st.integers(1, 37),
)


class TestRaggedAgreement:
    """Engine events vs analytic ``_layer_events`` at measured densities."""

    @staticmethod
    def _assert_agreement(name, a, w, layer):
        engine_cls, accel_cls = ENGINES[name]
        accel = accel_cls()
        result = engine_cls(accel.functional_sim_config()).run_gemm(a, w)
        _, ana = accel._layer_events(layer)
        sim = result.events
        # Stored-byte counters are closed-form over the measured nnz:
        # bit-equal, including ragged shapes and the metadata floors.
        assert ana.sram_a_read_bytes == sim.sram_a_read_bytes
        assert ana.sram_w_read_bytes == sim.sram_w_read_bytes
        assert ana.sram_a_write_bytes == sim.sram_a_write_bytes
        assert ana.mcu_elementwise_ops == sim.mcu_elementwise_ops
        # Per-pair machinery scales with fired pairs in both tiers.
        assert ana.gather_ops == pytest.approx(sim.gather_ops,
                                               rel=0.25, abs=500)
        assert ana.scatter_acc_ops == pytest.approx(sim.scatter_acc_ops,
                                                    rel=0.25, abs=500)
        # The density product is an unbiased fired-MAC estimate.
        assert ana.mac_ops == pytest.approx(sim.mac_ops, rel=0.25, abs=150)
        # The engine computes the exact product.
        np.testing.assert_array_equal(
            result.output, a.astype(np.int64) @ w.astype(np.int64))

    @given(_ragged_dims, st.integers(1, 8), st.floats(0.2, 0.9),
           st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_sparten(self, dims, a_nnz, a_density, seed):
        m, k, n = dims
        a, w, layer = _case(m, k, n, 4, a_nnz, a_density, seed)
        self._assert_agreement("SparTen", a, w, layer)

    @given(_ragged_dims, st.integers(1, 8), st.floats(0.2, 0.9),
           st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_eyeriss(self, dims, a_nnz, a_density, seed):
        m, k, n = dims
        a, w, layer = _case(m, k, n, 4, a_nnz, a_density, seed)
        self._assert_agreement("Eyeriss-v2", a, w, layer)

    @given(_ragged_dims, st.integers(1, 8), st.floats(0.2, 0.9),
           st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_scnn(self, dims, a_nnz, a_density, seed):
        m, k, n = dims
        a, w, layer = _case(m, k, n, 4, a_nnz, a_density, seed)
        self._assert_agreement("SCNN", a, w, layer)

    @given(st.sampled_from(sorted(ENGINES)), st.floats(0.1, 1.0),
           st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_density_sweep_at_fixed_shape(self, name, a_density, seed):
        a, w, layer = _case(24, 40, 24, 4, 8, a_density, seed)
        self._assert_agreement(name, a, w, layer)


class TestDegenerateOperands:
    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_all_zero_activations(self, name):
        engine_cls, accel_cls = ENGINES[name]
        a = np.zeros((16, 32), dtype=np.int8)
        w = np.ones((32, 8), dtype=np.int8)
        r = engine_cls(accel_cls().functional_sim_config()).run_gemm(a, w)
        assert r.events.mac_ops == 0
        assert r.events.gather_ops == 0
        assert r.events.scatter_acc_ops == 0
        assert np.count_nonzero(r.output) == 0
        # Bitmask/coordinate sideband still streams for the zero tensor.
        if name == "SCNN":
            assert r.events.sram_a_read_bytes == 0  # CSR: nothing stored
        else:
            assert r.events.sram_a_read_bytes > 0   # occupancy masks

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_fully_dense_operands(self, name):
        engine_cls, accel_cls = ENGINES[name]
        rng = np.random.default_rng(7)
        a = rng.integers(1, 100, size=(24, 32), dtype=np.int64)
        w = rng.integers(1, 100, size=(32, 16), dtype=np.int64)
        r = engine_cls(accel_cls().functional_sim_config()).run_gemm(a, w)
        # Every (M, K, N) triple is a matched pair on dense data.
        assert r.events.mac_ops == 24 * 32 * 16
        np.testing.assert_array_equal(r.output, a @ w)

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_shape_mismatch_rejected(self, name):
        engine_cls, accel_cls = ENGINES[name]
        engine = engine_cls(accel_cls().functional_sim_config())
        with pytest.raises(ValueError):
            engine.run_gemm(np.ones((4, 5)), np.ones((6, 4)))


class TestSparTenScheduling:
    def test_lpt_known_case(self):
        """Jobs 5,4,3,3 on 2 workers -> loads {8, 7} (LPT optimum)."""
        loads = greedy_lpt_loads(np.array([3, 5, 4, 3]), 2)
        assert sorted(loads.tolist()) == [7, 8]

    def test_lpt_conserves_work_and_idles_spare_workers(self):
        loads = greedy_lpt_loads(np.array([9, 1]), 4)
        assert loads.sum() == 10
        assert (loads == 0).sum() == 2

    def test_balanced_filters_give_balanced_pes(self):
        a, w, _ = _case(64, 64, 128, 4, 8, 0.5, seed=3)
        r = SparTenEngine().run_gemm(a, w)
        assert r.load_balance > 0.9

    def test_cycles_divide_by_pipeline_utilization(self):
        a, w, _ = _case(32, 40, 64, 4, 8, 0.5, seed=5)
        lo = SparTenEngine(SparTenConfig(pipeline_utilization=0.5)
                           ).run_gemm(a, w)
        hi = SparTenEngine(SparTenConfig(pipeline_utilization=1.0)
                           ).run_gemm(a, w)
        assert lo.cycles == pytest.approx(2 * hi.cycles, abs=2)
        # Same datapath work either way.
        assert lo.events.mac_ops == hi.events.mac_ops

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SparTenConfig(pes=0)
        with pytest.raises(ValueError):
            SparTenConfig(pipeline_utilization=0.0)
        with pytest.raises(ValueError):
            SparTenConfig(pass_cap=0)


class TestEyerissMesh:
    def test_mesh_dims_give_published_mac_count(self):
        assert EyerissV2Config().hardware_macs == 384

    def test_fc_row_still_occupies_whole_mesh(self):
        """m=1 (FC): the channel-group rotation keeps every PE of a
        cluster busy instead of collapsing onto one PE per cluster."""
        a, w, _ = _case(1, 64, 384, 4, 8, 0.8, seed=11)
        r = EyerissV2Engine().run_gemm(a, w)
        assert r.mesh_occupancy > 0.5
        busy = (r.pe_loads > 0).sum()
        assert busy > EyerissV2Config().pes_per_cluster  # beyond 1 cluster

    def test_occupancy_balanced_on_large_conv(self):
        a, w, _ = _case(96, 64, 64, 4, 8, 0.5, seed=13)
        r = EyerissV2Engine().run_gemm(a, w)
        assert r.mesh_occupancy > 0.8

    def test_noc_events_scale_with_fired(self):
        a, w, _ = _case(16, 32, 16, 4, 8, 0.5, seed=17)
        r = EyerissV2Engine().run_gemm(a, w)
        cfg = EyerissV2Config()
        assert r.events.operand_reg_ops == (
            r.events.mac_ops * 2 * cfg.noc_hops_per_operand)
        assert r.events.acc_reg_ops == r.events.mac_ops * 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EyerissV2Config(clusters=0)
        with pytest.raises(ValueError):
            EyerissV2Config(pipeline_utilization=1.5)


class TestSCNNFragmentation:
    def test_dense_large_tile_utilization_is_high(self):
        """Plenty of rows per PE: the 4x4 array quantizes away."""
        rng = np.random.default_rng(3)
        a = rng.integers(1, 100, size=(512, 64), dtype=np.int64)
        w = rng.integers(1, 100, size=(64, 64), dtype=np.int64)
        r = SCNNEngine().run_gemm(a, w)
        assert r.multiplier_utilization > 0.9

    def test_small_feature_map_fragmentation_emerges(self):
        """Few pixels per PE: ceil-quantized issue slots collapse the
        measured utilization — SCNN's published weakness, which the
        analytic flat-utilization model cannot represent."""
        a, w, _ = _case(80, 96, 64, 4, 8, 0.3, seed=23)
        r = SCNNEngine().run_gemm(a, w)
        assert r.multiplier_utilization < 0.45

    def test_single_row_uses_one_pe(self):
        a, w, _ = _case(1, 64, 64, 4, 8, 0.5, seed=29)
        r = SCNNEngine().run_gemm(a, w)
        assert (r.pe_issue_slots > 0).sum() == 1

    def test_scatter_events_per_product(self):
        a, w, _ = _case(16, 32, 16, 4, 8, 0.5, seed=31)
        r = SCNNEngine().run_gemm(a, w)
        cfg = SCNNConfig()
        assert r.events.scatter_acc_ops == (
            r.events.mac_ops * cfg.scatter_ops_per_product)
        assert r.events.gather_ops == 0  # outer product: no gather

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SCNNConfig(mults_i=0)
        with pytest.raises(ValueError):
            SCNNConfig(scatter_ops_per_product=-1)
