"""Tests for the Fig. 6 datapath family: functional equivalence + events."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.datapath import dp1m4_block, dp4m4_block, dp4m8_block, dp8_dense
from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec, compress_block
from repro.core.pruning import prune_weights_dbb


def _blocks(seed, a_nnz=None, w_nnz=4):
    """Random BZ=8 operand blocks; activations pruned when a_nnz given."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-127, 128, size=8).astype(np.int64)
    w = rng.integers(-127, 128, size=8).astype(np.int64)
    w = prune_weights_dbb(w[None, :], DBBSpec(8, w_nnz))[0]
    if a_nnz is not None:
        a = dap_prune(a[None, :], DBBSpec(8, a_nnz)).pruned[0]
    return a, w


class TestDP8Dense:
    def test_matches_dot(self):
        a, w = _blocks(0)
        psum, events = dp8_dense(a, w)
        assert psum == int(np.dot(a, w))
        assert events.mac_ops == 8
        assert events.gated_mac_ops == 0

    def test_zvcg_gates_zero_operands(self):
        a = np.array([1, 0, 3, 0, 5, 0, 7, 0])
        w = np.array([1, 1, 0, 0, 1, 1, 1, 1])
        psum, events = dp8_dense(a, w, zvcg=True)
        assert psum == int(np.dot(a, w))
        assert events.mac_ops == 3  # positions 0, 4, 6
        assert events.gated_mac_ops == 5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dp8_dense(np.zeros(8), np.zeros(4))

    @given(st.integers(0, 500))
    @settings(max_examples=50)
    def test_property_zvcg_same_result(self, seed):
        a, w = _blocks(seed)
        dense_psum, _ = dp8_dense(a, w)
        zvcg_psum, events = dp8_dense(a, w, zvcg=True)
        assert dense_psum == zvcg_psum
        assert events.total_mac_slots == 8


class TestDP4M8:
    def test_matches_dense(self):
        a, w = _blocks(1)
        w_block = compress_block(w, DBBSpec(8, 4))
        psum, events = dp4m8_block(a, w_block)
        assert psum == int(np.dot(a, w))
        assert events.mux_ops == 4

    def test_half_the_mac_slots(self):
        a, w = _blocks(2)
        w_block = compress_block(w, DBBSpec(8, 4))
        _, events = dp4m8_block(a, w_block, zvcg=False)
        assert events.total_mac_slots == 4  # vs 8 on DP8

    def test_underfull_block_gated(self):
        a = np.ones(8, dtype=np.int64)
        w = np.zeros(8, dtype=np.int64)
        w[3] = 5
        w_block = compress_block(w, DBBSpec(8, 4))
        psum, events = dp4m8_block(a, w_block)
        assert psum == 5
        assert events.mac_ops == 1
        assert events.gated_mac_ops == 3

    def test_bad_activation_shape(self):
        w_block = compress_block(np.zeros(8), DBBSpec(8, 4))
        with pytest.raises(ValueError):
            dp4m8_block(np.zeros(4), w_block)

    @given(st.integers(0, 500), st.integers(1, 8))
    @settings(max_examples=80)
    def test_property_matches_dense(self, seed, w_nnz):
        a, w = _blocks(seed, w_nnz=w_nnz)
        w_block = compress_block(w, DBBSpec(8, w_nnz))
        psum, _ = dp4m8_block(a, w_block)
        assert psum == int(np.dot(a, w))


class TestDP4M4:
    def test_matches_dense(self):
        a, w = _blocks(3, a_nnz=4)
        a_block = compress_block(a, DBBSpec(8, 4))
        w_block = compress_block(w, DBBSpec(8, 4))
        psum, events = dp4m4_block(a_block, w_block)
        assert psum == int(np.dot(a, w))
        assert events.total_mac_slots == 4

    def test_disjoint_masks_all_gated(self):
        a = np.array([1, 1, 0, 0, 0, 0, 0, 0])
        w = np.array([0, 0, 1, 1, 0, 0, 0, 0])
        a_block = compress_block(a, DBBSpec(8, 2))
        w_block = compress_block(w, DBBSpec(8, 2))
        psum, events = dp4m4_block(a_block, w_block)
        assert psum == 0
        assert events.mac_ops == 0

    def test_block_size_mismatch(self):
        a_block = compress_block(np.zeros(4), DBBSpec(4, 2))
        w_block = compress_block(np.zeros(8), DBBSpec(8, 4))
        with pytest.raises(ValueError):
            dp4m4_block(a_block, w_block)


class TestDP1M4TimeUnrolled:
    def test_matches_dense(self):
        a, w = _blocks(4, a_nnz=3)
        a_block = compress_block(a, DBBSpec(8, 3))
        w_block = compress_block(w, DBBSpec(8, 4))
        psum, events = dp1m4_block(a_block, w_block)
        assert psum == int(np.dot(a, w))

    def test_cycles_equal_a_nnz_slots(self):
        # The serialization invariant of Sec. 5.2: a block costs exactly
        # a_nnz cycles, independent of how many MACs actually fire.
        for a_nnz in range(1, 8):
            a, w = _blocks(5, a_nnz=a_nnz)
            a_block = compress_block(a, DBBSpec(8, a_nnz))
            w_block = compress_block(w, DBBSpec(8, 4))
            _, events = dp1m4_block(a_block, w_block)
            assert events.cycles == a_nnz
            assert events.total_mac_slots == a_nnz

    def test_mask_mismatch_gates(self):
        a = np.array([9, 0, 0, 0, 0, 0, 0, 0])
        w = np.array([0, 7, 0, 0, 0, 0, 0, 0])
        a_block = compress_block(a, DBBSpec(8, 1))
        w_block = compress_block(w, DBBSpec(8, 4))
        psum, events = dp1m4_block(a_block, w_block)
        assert psum == 0
        assert events.mac_ops == 0
        assert events.gated_mac_ops == 1

    @given(st.integers(0, 500), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=80)
    def test_property_matches_dense(self, seed, a_nnz, w_nnz):
        a, w = _blocks(seed, a_nnz=a_nnz, w_nnz=w_nnz)
        a_block = compress_block(a, DBBSpec(8, a_nnz))
        w_block = compress_block(w, DBBSpec(8, w_nnz))
        psum, events = dp1m4_block(a_block, w_block)
        assert psum == int(np.dot(a, w))
        assert events.cycles == a_nnz

    def test_all_datapaths_agree(self):
        # One operand pair, four datapaths, one answer (Fig. 6 family).
        a, w = _blocks(6, a_nnz=4, w_nnz=4)
        spec = DBBSpec(8, 4)
        a_block = compress_block(a, spec)
        w_block = compress_block(w, spec)
        expected = int(np.dot(a, w))
        assert dp8_dense(a, w)[0] == expected
        assert dp8_dense(a, w, zvcg=True)[0] == expected
        assert dp4m8_block(a, w_block)[0] == expected
        assert dp4m4_block(a_block, w_block)[0] == expected
        assert dp1m4_block(a_block, w_block)[0] == expected
