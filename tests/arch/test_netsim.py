"""Tests for whole-network cycle-level simulation."""

import numpy as np
import pytest

from repro.arch.netsim import simulate_network
from repro.arch.systolic import Mode, SystolicConfig
from repro.core.dbb import DBBSpec
from repro.models.zoo import build_tiny_cnn
from repro.nn.quantized import QuantizedSequential


@pytest.fixture(scope="module")
def qmodel():
    rng = np.random.default_rng(0)
    model = build_tiny_cnn(rng=rng)
    calib = np.abs(rng.normal(size=(8, 16, 16, 8)))
    return QuantizedSequential.quantize_model(model, calib)


@pytest.fixture()
def x():
    return np.abs(np.random.default_rng(1).normal(size=(2, 16, 16, 8)))


def _dense_config(mode=Mode.ZVCG):
    return SystolicConfig(rows=4, cols=4, mode=mode)


class TestBitExactness:
    def test_zvcg_matches_integer_path(self, qmodel, x):
        sim_out = simulate_network(qmodel, x, _dense_config()).output
        int_out = qmodel.forward(x)
        np.testing.assert_allclose(sim_out, int_out)

    def test_dense_matches_integer_path(self, qmodel, x):
        sim_out = simulate_network(qmodel, x, _dense_config(Mode.DENSE)).output
        np.testing.assert_allclose(sim_out, qmodel.forward(x))

    def test_awdbb_matches_integer_path_with_dap(self, x):
        # Fresh model pruned to the bound; channels are multiples of BZ,
        # so channel-blocking and im2col K-blocking coincide and the
        # simulated network equals the integer path with DAP.
        rng = np.random.default_rng(2)
        model = build_tiny_cnn(rng=rng)
        calib = np.abs(rng.normal(size=(8, 16, 16, 8)))
        qm = QuantizedSequential.quantize_model(model, calib)
        w_spec = DBBSpec(8, 4)
        a_spec = DBBSpec(8, 3)
        qm.prune_weights(w_spec, skip=["conv1"])
        config = SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                                w_spec=w_spec, a_spec=a_spec,
                                tpe_a=2, tpe_c=2)
        sim_out = simulate_network(qm, x, config).output
        int_out = qm.forward(x, dap_spec=a_spec, dap_nnz=3)
        np.testing.assert_allclose(sim_out, int_out)


class TestModesAndFallback:
    def test_first_layer_falls_back_to_zvcg(self, x):
        rng = np.random.default_rng(3)
        model = build_tiny_cnn(rng=rng)
        calib = np.abs(rng.normal(size=(4, 16, 16, 8)))
        qm = QuantizedSequential.quantize_model(model, calib)
        qm.prune_weights(DBBSpec(8, 4), skip=["conv1"])
        config = SystolicConfig(rows=2, cols=2, mode=Mode.WDBB,
                                w_spec=DBBSpec(8, 4), tpe_a=2, tpe_c=2)
        result = simulate_network(qm, x, config)
        assert result.record("conv1").mode is Mode.ZVCG
        assert result.record("conv2").mode is Mode.WDBB

    def test_unpruned_model_runs_all_zvcg(self, qmodel, x):
        config = SystolicConfig(rows=2, cols=2, mode=Mode.WDBB,
                                w_spec=DBBSpec(8, 4), tpe_a=2, tpe_c=2)
        result = simulate_network(qmodel, x, config)
        assert all(r.mode is Mode.ZVCG for r in result.records)

    def test_per_layer_a_nnz_override(self, x):
        rng = np.random.default_rng(4)
        model = build_tiny_cnn(rng=rng)
        calib = np.abs(rng.normal(size=(4, 16, 16, 8)))
        qm = QuantizedSequential.quantize_model(model, calib)
        qm.prune_weights(DBBSpec(8, 4), skip=["conv1"])
        config = SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                                w_spec=DBBSpec(8, 4), a_spec=DBBSpec(8, 4),
                                tpe_a=2, tpe_c=2)
        sparse = simulate_network(qm, x, config, a_nnz={"conv2": 1,
                                                        "fc1": 1, "fc2": 1})
        dense = simulate_network(qm, x, config, a_nnz={"conv2": 8,
                                                       "fc1": 8, "fc2": 8})
        assert sparse.record("conv2").cycles < dense.record("conv2").cycles


class TestAggregation:
    def test_totals(self, qmodel, x):
        result = simulate_network(qmodel, x, _dense_config())
        assert result.total_cycles == sum(r.cycles for r in result.records)
        assert result.total_events.mac_ops > 0
        assert len(result.records) == 4  # conv1, conv2, fc1, fc2

    def test_unknown_record(self, qmodel, x):
        result = simulate_network(qmodel, x, _dense_config())
        with pytest.raises(KeyError):
            result.record("nope")
