"""Tests for the SA-SMT staging-FIFO queueing simulator."""

import numpy as np
import pytest

from repro.arch.smt import SMTArrayModel


def _rng():
    return np.random.default_rng(7)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            SMTArrayModel(threads=0)
        with pytest.raises(ValueError):
            SMTArrayModel(fifo_depth=0)
        with pytest.raises(ValueError):
            SMTArrayModel(pes=0)
        with pytest.raises(ValueError):
            SMTArrayModel(skew=-1)

    def test_bad_densities(self):
        model = SMTArrayModel()
        with pytest.raises(ValueError):
            model.simulate(1.5, 0.5)
        with pytest.raises(ValueError):
            model.simulate(0.5, -0.1)
        with pytest.raises(ValueError):
            model.simulate(0.5, 0.5, stream_length=0)


class TestPaperCalibration:
    """Fig. 3: ~1.6x (T2Q2) and ~1.8x (T2Q4) at 50%/50% sparsity."""

    def test_t2q2_speedup(self):
        model = SMTArrayModel(threads=2, fifo_depth=2)
        speedup = model.speedup(0.5, 0.5, 1152, rng=_rng())
        assert 1.45 <= speedup <= 1.75

    def test_t2q4_speedup(self):
        model = SMTArrayModel(threads=2, fifo_depth=4)
        speedup = model.speedup(0.5, 0.5, 1152, rng=_rng())
        assert 1.75 <= speedup <= 2.0

    def test_deeper_fifo_helps(self):
        q2 = SMTArrayModel(fifo_depth=2).speedup(0.5, 0.5, 1152, rng=_rng())
        q4 = SMTArrayModel(fifo_depth=4).speedup(0.5, 0.5, 1152, rng=_rng())
        assert q4 > q2


class TestQueueingBehaviour:
    def test_dense_streams_no_speedup(self):
        # Fully dense operands: every slot needs the MAC, so T2 degrades
        # to ~1x (the FIFO is always the bottleneck).
        model = SMTArrayModel(threads=2, fifo_depth=2)
        result = model.simulate(1.0, 1.0, 512, rng=_rng())
        assert result.speedup <= 1.1

    def test_very_sparse_saturates_at_t(self):
        model = SMTArrayModel(threads=2, fifo_depth=4)
        result = model.simulate(0.1, 0.1, 2048, rng=_rng())
        assert result.speedup == pytest.approx(2.0, abs=0.15)

    def test_speedup_monotone_in_sparsity(self):
        model = SMTArrayModel(threads=2, fifo_depth=2)
        speedups = [
            model.speedup(d, d, 1024, rng=_rng())
            for d in (0.9, 0.7, 0.5, 0.3)
        ]
        assert all(a <= b + 0.05 for a, b in zip(speedups, speedups[1:]))

    def test_fifo_events_balance(self):
        model = SMTArrayModel(threads=2, fifo_depth=2, pes=16)
        result = model.simulate(0.5, 0.5, 256, rng=_rng())
        assert result.events.fifo_push_ops == result.events.fifo_pop_ops
        assert result.events.fifo_push_ops == result.events.mac_ops

    def test_stall_cycles_counted(self):
        model = SMTArrayModel(threads=2, fifo_depth=2, pes=256)
        result = model.simulate(0.8, 0.8, 512, rng=_rng())
        assert result.stall_cycles > 0
        assert result.cycles > 512

    def test_utilization_bounded(self):
        model = SMTArrayModel()
        result = model.simulate(0.5, 0.5, 512, rng=_rng())
        assert 0.0 < result.mac_utilization <= 1.0

    def test_termination_guard(self):
        # Even pathological parameters terminate (bounded cycle count).
        model = SMTArrayModel(threads=4, fifo_depth=1, pes=512)
        result = model.simulate(1.0, 1.0, 128, rng=_rng())
        assert result.cycles <= 128 * 4 * 4 + 64 + 128 + model.skew
