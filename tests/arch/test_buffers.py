"""Tests for SRAM/register/FIFO buffer models."""

import numpy as np
import pytest

from repro.arch.buffers import FIFO, FifoFullError, RegisterFile, Sram


class TestSram:
    def test_write_read_counts(self):
        sram = Sram(64)
        sram.write(0, np.arange(8, dtype=np.int8))
        out = sram.read(0, 8)
        np.testing.assert_array_equal(out, np.arange(8))
        assert sram.write_bytes == 8
        assert sram.read_bytes == 8

    def test_out_of_range(self):
        sram = Sram(16)
        with pytest.raises(IndexError):
            sram.read(10, 8)
        with pytest.raises(IndexError):
            sram.write(-1, np.zeros(2, dtype=np.int8))

    def test_reset_counters(self):
        sram = Sram(16)
        sram.write(0, np.zeros(4, dtype=np.int8))
        sram.reset_counters()
        assert sram.write_bytes == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Sram(0)


class TestRegisterFile:
    def test_counts(self):
        rf = RegisterFile(4)
        rf.write(0, 42)
        assert rf.read(0) == 42
        assert rf.read_ops == 1
        assert rf.write_ops == 1

    def test_bounds(self):
        rf = RegisterFile(2)
        with pytest.raises(IndexError):
            rf.read(2)

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            RegisterFile(0)


class TestFifo:
    def test_order_and_counts(self):
        fifo = FIFO(2)
        fifo.push("a")
        fifo.push("b")
        assert fifo.pop() == "a"
        assert fifo.pop() == "b"
        assert fifo.push_ops == 2
        assert fifo.pop_ops == 2
        assert fifo.max_occupancy == 2

    def test_overflow(self):
        fifo = FIFO(1)
        fifo.push(1)
        with pytest.raises(FifoFullError):
            fifo.push(2)
        assert not fifo.try_push(2)

    def test_underflow(self):
        with pytest.raises(IndexError):
            FIFO(1).pop()

    def test_flags(self):
        fifo = FIFO(1)
        assert fifo.empty and not fifo.full
        fifo.push(1)
        assert fifo.full and not fifo.empty

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            FIFO(0)
