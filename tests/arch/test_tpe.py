"""Tests for the explicit Tensor PE unit (Fig. 7)."""

import numpy as np
import pytest

from repro.arch.tpe import TensorPE
from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec, compress_block
from repro.core.pruning import prune_weights_dbb


def _blocks(seed, count, nnz=None, spec=DBBSpec(8, 4), compressed=True):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        dense = rng.integers(-127, 128, size=8).astype(np.int64)
        if nnz is not None:
            dense = dap_prune(dense[None, :], spec.with_nnz(nnz)).pruned[0]
        out.append(compress_block(dense, spec.with_nnz(nnz or spec.max_nnz))
                   if compressed else dense)
    return out


def _w_blocks(seed, count):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        dense = rng.integers(-127, 128, size=8).astype(np.int64)
        dense = prune_weights_dbb(dense[None, :], DBBSpec(8, 4))[0]
        out.append(compress_block(dense, DBBSpec(8, 4)))
    return out


class TestTimeUnrolledTPE:
    def test_outer_product_psums(self):
        tpe = TensorPE(tpe_a=2, tpe_c=2, time_unrolled=True)
        a_blocks = _blocks(0, 2, nnz=3)
        w_blocks = _w_blocks(1, 2)
        result = tpe.step(a_blocks, w_blocks)
        for i in range(2):
            for j in range(2):
                expected = int(np.dot(a_blocks[i].expand().astype(np.int64),
                                      w_blocks[j].expand().astype(np.int64)))
                assert result.psums[i, j] == expected

    def test_cycles_are_a_nnz(self):
        tpe = TensorPE(tpe_a=2, tpe_c=2)
        for nnz in (1, 3, 5):
            a_blocks = _blocks(2, 2, nnz=nnz)
            result = tpe.step(a_blocks, _w_blocks(3, 2))
            assert result.cycles == nnz

    def test_mac_and_dp_counts(self):
        tpe = TensorPE(tpe_a=8, tpe_c=4)
        assert tpe.dp_units == 32
        assert tpe.macs == 32

    def test_acc_updates_every_cycle_per_unit(self):
        tpe = TensorPE(tpe_a=2, tpe_c=2)
        a_blocks = _blocks(4, 2, nnz=4)
        result = tpe.step(a_blocks, _w_blocks(5, 2))
        assert result.events.acc_reg_ops == 4 * result.cycles

    def test_operand_count_validation(self):
        tpe = TensorPE(tpe_a=2, tpe_c=2)
        with pytest.raises(ValueError):
            tpe.step(_blocks(6, 1, nnz=2), _w_blocks(7, 2))
        with pytest.raises(ValueError):
            tpe.step(_blocks(8, 2, nnz=2), _w_blocks(9, 3))


class TestDotProductTPE:
    def test_psums_match_dense(self):
        tpe = TensorPE(tpe_a=2, tpe_c=2, time_unrolled=False)
        a_blocks = _blocks(10, 2, compressed=False)
        w_blocks = _w_blocks(11, 2)
        result = tpe.step(a_blocks, w_blocks)
        for i in range(2):
            for j in range(2):
                expected = int(np.dot(np.asarray(a_blocks[i]),
                                      w_blocks[j].expand().astype(np.int64)))
                assert result.psums[i, j] == expected

    def test_single_cycle_per_block(self):
        tpe = TensorPE(tpe_a=2, tpe_c=2, time_unrolled=False)
        result = tpe.step(_blocks(12, 2, compressed=False), _w_blocks(13, 2))
        assert result.cycles == 1

    def test_macs_count_dp4(self):
        tpe = TensorPE(tpe_a=4, tpe_c=4, time_unrolled=False)
        assert tpe.macs == 64  # 16 DP4M8 units x 4 MACs

    def test_validation(self):
        with pytest.raises(ValueError):
            TensorPE(tpe_a=0, tpe_c=1)

    def test_repr(self):
        assert "dot-product" in repr(TensorPE(2, 2, time_unrolled=False))
        assert "time-unrolled" in repr(TensorPE(2, 2))
