"""Tests for the hardware DAP maxpool cascade (Fig. 8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.dap_hw import DAPHardware
from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec


class TestConstruction:
    def test_paper_default(self):
        hw = DAPHardware()
        assert hw.block_size == 8
        assert hw.max_stages == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            DAPHardware(block_size=1)
        with pytest.raises(ValueError):
            DAPHardware(block_size=8, max_stages=8)
        with pytest.raises(ValueError):
            DAPHardware(block_size=8, max_stages=0)


class TestFig8Example:
    """The paper's worked example: selecting 4/8 from a block containing
    the values {0, 4, 1, 5, 2, 6, -1, -7} keeps [4, 5, -7, 6] with
    positional mask M = 8'h4D (positions {0, 2, 3, 6})."""

    BLOCK = np.array([4, -1, 5, -7, 0, 1, 6, 2])

    def test_top4_values_and_mask(self):
        hw = DAPHardware()
        compressed, traces, _ = hw.prune_block(self.BLOCK, nnz=4)
        assert list(compressed.values) == [4, 5, -7, 6]
        assert compressed.mask == 0x4D

    def test_stage_selection_order_is_magnitude(self):
        hw = DAPHardware()
        _, traces, _ = hw.prune_block(self.BLOCK, nnz=5)
        order = [t.selected_position for t in traces]
        # |-7| > |6| > |5| > |4| > |2|
        assert order == [3, 6, 2, 0, 7]

    def test_cumulative_masks_grow(self):
        hw = DAPHardware()
        _, traces, _ = hw.prune_block(self.BLOCK, nnz=5)
        masks = [t.cumulative_mask for t in traces]
        for prev, cur in zip(masks, masks[1:]):
            assert prev & cur == prev  # monotone set growth
            assert bin(cur).count("1") == bin(prev).count("1") + 1


class TestCascadeBehaviour:
    def test_comparator_count_per_stage(self):
        hw = DAPHardware()
        _, _, events = hw.prune_block(np.arange(8), nnz=3)
        assert events.dap_compare_ops == 3 * 7  # NNZ stages x (BZ-1)

    def test_nnz_beyond_stages_rejected(self):
        hw = DAPHardware(max_stages=5)
        with pytest.raises(ValueError, match="bypass"):
            hw.prune_block(np.arange(8), nnz=6)

    def test_underfull_block_stops_selecting_zeros(self):
        hw = DAPHardware()
        block = np.array([0, 0, 9, 0, 0, 0, 0, 0])
        compressed, _, _ = hw.prune_block(block, nnz=3)
        assert compressed.nnz == 1
        assert list(compressed.values) == [9, 0, 0]

    def test_tie_break_lowest_index(self):
        hw = DAPHardware()
        block = np.array([5, -5, 5, 0, 0, 0, 0, 0])
        compressed, traces, _ = hw.prune_block(block, nnz=2)
        assert [t.selected_position for t in traces] == [0, 1]

    def test_wrong_block_shape(self):
        with pytest.raises(ValueError):
            DAPHardware().prune_block(np.zeros(4), nnz=2)


class TestBitExactWithAlgorithmicDAP:
    """The hardware cascade must agree bit-exactly with repro.core.dap."""

    @given(
        st.lists(st.integers(-128, 127), min_size=8, max_size=8),
        st.integers(1, 5),
    )
    @settings(max_examples=200)
    def test_property_block_agreement(self, values, nnz):
        block = np.array(values, dtype=np.int64)
        hw = DAPHardware()
        compressed, _, _ = hw.prune_block(block, nnz)
        expanded = np.zeros(8, dtype=np.int64)
        for pos, val in compressed.nonzero_pairs():
            expanded[pos] = val
        reference = dap_prune(block[None, :], DBBSpec(8, nnz)).pruned[0]
        np.testing.assert_array_equal(expanded, reference)

    @given(st.integers(0, 100), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_property_tensor_agreement(self, seed, nnz):
        rng = np.random.default_rng(seed)
        x = rng.integers(-128, 128, size=(4, 24)).astype(np.int8)
        hw = DAPHardware()
        pruned, events = hw.prune_tensor(x, nnz)
        reference = dap_prune(x, DBBSpec(8, nnz)).pruned
        np.testing.assert_array_equal(pruned, reference)
        assert events.dap_compare_ops == 4 * 3 * nnz * 7
