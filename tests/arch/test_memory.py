"""Tests for the memory-hierarchy subsystem (DRAM + staging SRAM)."""

import math

import numpy as np
import pytest

from repro.arch.memory import (
    DRAMConfig,
    LayerTraffic,
    MemorySystem,
    OperandStream,
    SRAMStaging,
    window_duplication,
    _overlapped_cycles,
    _split_even,
    _tile_dma_bytes,
)
from repro.models.specs import LayerKind, LayerSpec


def _traffic(w=1000, w_meta=0, a=500, a_meta=0, out=100,
             tiles_m=4, tiles_n=2, k_strip=0):
    return LayerTraffic(
        weights=OperandStream(w, w_meta, passes=tiles_m),
        acts=OperandStream(a, a_meta, passes=tiles_n),
        out_bytes=out,
        tiles_m=tiles_m,
        tiles_n=tiles_n,
        k_strip_bytes=k_strip,
    )


class TestDRAMConfig:
    def test_defaults_reproduce_legacy_dma(self):
        """32 B/cycle, no row stalls, streaming-only cap: the legacy
        flat DMA model is the default channel's special case."""
        dram = DRAMConfig()
        assert dram.bytes_per_cycle == 32.0
        assert dram.row_activate_cycles == 0.0
        assert dram.cap_streaming_only

    def test_from_bandwidth_converts_at_clock(self):
        dram = DRAMConfig.from_bandwidth(16.0, clock_ghz=0.5)
        assert dram.bytes_per_cycle == 32.0
        # explicit bandwidth = sweeping the wall -> honest cap everywhere
        assert not dram.cap_streaming_only
        assert DRAMConfig.from_bandwidth(
            8.0, cap_streaming_only=True).cap_streaming_only

    def test_bus_bytes_burst_rounding(self):
        dram = DRAMConfig(burst_bytes=32)
        assert dram.bus_bytes(0) == 0
        assert dram.bus_bytes(1) == 32
        assert dram.bus_bytes(64) == 64
        assert dram.bus_bytes(65) == 96
        # per-stream rounding: 2 streams of 33 bytes -> 2 x 64
        assert dram.bus_bytes(66, streams=2) == 128

    def test_row_activations(self):
        dram = DRAMConfig(row_bytes=2048)
        assert dram.row_activations(0) == 0
        assert dram.row_activations(2048) == 1
        assert dram.row_activations(2049) == 2
        assert dram.row_activations(4096, streams=2) == 2

    def test_transfer_cycles_includes_row_stalls(self):
        base = DRAMConfig(bytes_per_cycle=32, row_activate_cycles=0.0)
        stalled = DRAMConfig(bytes_per_cycle=32, row_activate_cycles=10.0)
        assert stalled.transfer_cycles(8192) \
            == base.transfer_cycles(8192) + 10.0 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(bytes_per_cycle=0)
        with pytest.raises(ValueError):
            DRAMConfig(burst_bytes=0)
        with pytest.raises(ValueError):
            DRAMConfig(row_activate_cycles=-1)
        with pytest.raises(ValueError):
            DRAMConfig.from_bandwidth(-4.0)

    def test_bandwidth_roundtrip(self):
        dram = DRAMConfig.from_bandwidth(25.6, clock_ghz=1.0)
        assert dram.bandwidth_gbps(1.0) == pytest.approx(25.6)


class TestSRAMStaging:
    def test_double_buffering_halves_capacity(self):
        sram = SRAMStaging(wb_bytes=512 * 1024, ab_bytes=2 * 1024 * 1024)
        assert sram.usable_wb == 256 * 1024
        assert sram.usable_ab == 1024 * 1024
        flat = SRAMStaging(wb_bytes=1024, ab_bytes=1024,
                           double_buffered=False)
        assert flat.usable_wb == 1024

    def test_validation(self):
        with pytest.raises(ValueError):
            SRAMStaging(wb_bytes=0)


class TestOperandStream:
    def test_stored_bytes(self):
        assert OperandStream(100, 20).stored_bytes == 120

    def test_validation(self):
        with pytest.raises(ValueError):
            OperandStream(-1)
        with pytest.raises(ValueError):
            OperandStream(1, passes=0)
        with pytest.raises(ValueError):
            LayerTraffic(OperandStream(1), OperandStream(1), out_bytes=-1)


class TestSplitAndWalk:
    def test_split_even_sums_exactly(self):
        out = _split_even(10, 3)
        assert out.sum() == 10
        assert out.max() - out.min() <= 1

    def test_tile_read_bytes_conserved(self):
        """The walker distributes exactly the class totals over tiles."""
        traffic = _traffic(w=999, a=517, out=101, tiles_m=3, tiles_n=4)
        for w_once in (True, False):
            for a_once in (True, False):
                reads, writes = _tile_dma_bytes(
                    traffic, 999, 517, 7, 7, w_once, a_once)
                assert len(reads) == 12
                assert reads.sum() == pytest.approx(999 + 517 + 7)
                assert writes.sum() == pytest.approx(101 + 7)

    def test_resident_weights_fetch_at_pass_starts(self):
        traffic = _traffic(w=800, a=0, out=0, tiles_m=4, tiles_n=2)
        reads, _ = _tile_dma_bytes(traffic, 800, 0, 0, 0,
                                   weights_once=True, acts_once=True)
        # strips land at schedule indices 0 and tiles_m
        assert reads[0] == 400 and reads[4] == 400
        assert reads[1:4].sum() == 0 and reads[5:].sum() == 0

    def test_overlap_exposes_first_fill_only(self):
        """With DMA far below compute, total = compute + first fill."""
        dram = DRAMConfig(bytes_per_cycle=32, burst_bytes=1)
        reads = np.array([320.0, 320.0, 320.0, 320.0])
        writes = np.zeros(4)
        total = _overlapped_cycles(dram, reads, writes, compute_cycles=4000)
        assert total == 4000 + 10  # 320 B / 32 B-per-cycle = 10 cycles

    def test_overlap_memory_paced_when_dma_dominates(self):
        dram = DRAMConfig(bytes_per_cycle=32, burst_bytes=1)
        reads = np.full(4, 3200.0)
        writes = np.zeros(4)
        total = _overlapped_cycles(dram, reads, writes, compute_cycles=40)
        # paced by fills: first fill + 3 hidden fills + last compute slot
        assert total >= 4 * 100
        assert total <= 4 * 100 + 40


class TestMemorySystemProfile:
    def _system(self, **dram_kw):
        return MemorySystem(dram=DRAMConfig(**dram_kw),
                            sram=SRAMStaging(wb_bytes=2048, ab_bytes=4096))

    def test_single_resident_operand_streams_other_once(self):
        """As long as one operand fits, neither re-streams."""
        sys = self._system()
        # weights overflow the 1024-usable WB, acts fit the 2048 AB
        traffic = _traffic(w=5000, a=1000, tiles_m=8, tiles_n=8)
        prof = sys.profile(traffic, compute_cycles=1000)
        assert not prof.weights_resident and prof.acts_resident
        assert prof.weight_bytes == 5000      # streamed once
        assert prof.act_bytes == 1000

    def test_both_overflow_picks_cheaper_loop_order(self):
        sys = self._system()
        # both overflow; re-streaming acts (3000 * 2) beats weights
        # (5000 * 8), so the scheduler holds weight strips
        traffic = _traffic(w=5000, a=3000, tiles_m=8, tiles_n=2)
        prof = sys.profile(traffic, compute_cycles=1000)
        assert prof.weight_bytes == 5000
        assert prof.act_bytes == 3000 * 2
        # flipped costs: now weights re-stream
        traffic = _traffic(w=3000, a=5000, tiles_m=2, tiles_n=8)
        prof = sys.profile(traffic, compute_cycles=1000)
        assert prof.weight_bytes == 3000 * 2
        assert prof.act_bytes == 5000

    def test_fixed_schedule_applies_declared_passes(self):
        """Fixed dataflows (SCNN/SparTen/Eyeriss) refill every
        non-resident operand at its declared pass count — no free
        loop-order trick, matching their own SRAM accounting."""
        sys = self._system()
        traffic = LayerTraffic(
            weights=OperandStream(5000, passes=1),   # overflows 1024 WB
            acts=OperandStream(3000, passes=4),      # overflows 2048 AB
            out_bytes=10, tiles_m=1, tiles_n=4,
            fixed_schedule=True,
        )
        prof = sys.profile(traffic, compute_cycles=10)
        assert prof.weight_bytes == 5000        # declared once
        assert prof.act_bytes == 3000 * 4       # declared refills applied
        # resident operands still stream once under a fixed schedule
        small = LayerTraffic(
            weights=OperandStream(5000, passes=1),
            acts=OperandStream(100, passes=4),
            out_bytes=10, tiles_m=1, tiles_n=4, fixed_schedule=True,
        )
        assert sys.profile(small, 10).act_bytes == 100

    def test_meta_bytes_tracked_separately(self):
        sys = self._system()
        traffic = LayerTraffic(
            weights=OperandStream(800, 200, passes=4),
            acts=OperandStream(900, 100, passes=2),
            out_bytes=50, tiles_m=4, tiles_n=2,
        )
        prof = sys.profile(traffic, compute_cycles=10)
        assert prof.weight_meta_bytes == 200
        assert prof.act_meta_bytes == 100
        assert prof.meta_bytes == 300
        assert prof.by_class()["dbb_metadata"] == 300

    def test_k_split_spills_partial_sums(self):
        sys = self._system()
        # one column strip (3000 B) exceeds the 1024-usable WB -> 3 splits
        traffic = _traffic(w=6000, a=100, out=500, tiles_m=1, tiles_n=2,
                           k_strip=3000)
        prof = sys.profile(traffic, compute_cycles=10)
        assert prof.k_splits == 3
        assert prof.psum_read_bytes == 2 * 4 * 500
        assert prof.psum_write_bytes == 2 * 4 * 500
        assert prof.by_class()["partial_sums"] == 2 * 2 * 4 * 500

    def test_no_psum_without_strip_overflow(self):
        prof = self._system().profile(_traffic(), compute_cycles=10)
        assert prof.k_splits == 1
        assert prof.psum_read_bytes == 0

    def test_read_write_split(self):
        prof = self._system().profile(
            _traffic(w=1000, a=500, out=300), compute_cycles=10)
        assert prof.dram_read_bytes == 1500
        assert prof.dram_write_bytes == 300
        assert prof.total_dram_bytes == 1800

    def test_memory_cycles_is_fill_bound(self):
        """The cap covers operand fills; write-back drains overlapped."""
        prof = self._system(burst_bytes=1).profile(
            _traffic(w=320, a=320, out=999999), compute_cycles=10)
        assert prof.memory_cycles == math.ceil((320 + 320) / 32)
        assert prof.dma_cycles > prof.fill_cycles

    def test_burst_rounding_inflates_bus_bytes(self):
        prof = self._system(burst_bytes=64).profile(
            _traffic(w=65, a=1, out=1), compute_cycles=10)
        assert prof.bus_read_bytes == 128 + 64
        assert prof.bus_write_bytes == 64

    def test_row_stalls_slow_the_fill(self):
        fast = self._system().profile(_traffic(w=8192), 10)
        slow = self._system(row_activate_cycles=20.0).profile(
            _traffic(w=8192), 10)
        assert slow.memory_cycles > fast.memory_cycles
        assert slow.row_activations >= 4

    def test_memory_bound_flag(self):
        sys = self._system()
        assert sys.profile(_traffic(w=32000), compute_cycles=10).memory_bound
        assert not sys.profile(_traffic(w=32),
                               compute_cycles=10_000).memory_bound


class TestWindowDuplication:
    def test_conv_windows_recovered(self):
        for k, dup in ((363, 121), (1200, 25), (2304, 9), (512, 1)):
            layer = LayerSpec("c", LayerKind.CONV, m=4, k=k, n=4)
            assert window_duplication(layer) == dup

    def test_explicit_window_overrides_inference(self):
        """A 1x1 conv with C divisible by 9 would be mis-detected as a
        3x3; stating the window on the spec bypasses the heuristic."""
        inferred = LayerSpec("pw", LayerKind.CONV, m=4, k=1152, n=4)
        assert window_duplication(inferred) == 9  # heuristic collision
        explicit = LayerSpec("pw", LayerKind.CONV, m=4, k=1152, n=4,
                             window=1)
        assert window_duplication(explicit) == 1
        with pytest.raises(ValueError):
            LayerSpec("bad", LayerKind.CONV, m=4, k=10, n=4, window=3)

    def test_fc_and_dwconv_stream_expanded(self):
        """FC has no window; depthwise defeats the im2col generators
        (the Sec. 8.3 convention keeping them DMA bound)."""
        assert window_duplication(
            LayerSpec("f", LayerKind.FC, m=1, k=9216, n=10)) == 1
        assert window_duplication(
            LayerSpec("d", LayerKind.DWCONV, m=100, k=9, n=1)) == 1

    def test_capacity_view_kind_awareness(self):
        """FC never has a window (AlexNet fc6's k=9216 divides by 9 but
        is a plain channel axis); depthwise keeps its window in the
        on-chip capacity view (the AB stores the compact feature map)."""
        fc = LayerSpec("f", LayerKind.FC, m=1, k=9216, n=10)
        assert window_duplication(fc, streaming=False) == 1
        dw = LayerSpec("d", LayerKind.DWCONV, m=100, k=9, n=1)
        assert window_duplication(dw, streaming=False) == 9


class TestAcceleratorIntegration:
    def test_default_cap_reproduces_legacy_fc_floor(self):
        """DenseSA FC layer: the fill cap is the legacy DMA stream
        (dense weights + activations at 32 B/cycle), burst-quantized
        per operand class."""
        from repro.accel import DenseSA

        layer = LayerSpec("fc", LayerKind.FC, m=4, k=9216, n=4096,
                          w_nnz=8, a_nnz=8)
        result = DenseSA().run_layer(layer)
        expected = (math.ceil(layer.k * layer.n / 32)
                    + math.ceil(layer.m * layer.k / 32))
        assert result.memory_cycles == expected
        assert result.memory_bound

    def test_default_cap_skips_conv_but_profile_is_honest(self):
        from repro.accel import S2TAAW
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("conv5")
        result = S2TAAW().run_layer(layer)
        assert result.memory_cycles == 0          # paper staging semantics
        assert result.memory.memory_cycles > 0    # honest fill time kept
        assert result.memory.total_dram_bytes > 0

    def test_explicit_bandwidth_enforces_wall_on_conv(self):
        from repro.accel import S2TAAW
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("conv5")
        slow = S2TAAW(dram_gbps=2.0).run_layer(layer)
        assert slow.memory_cycles > 0
        assert slow.memory_bound
        fast = S2TAAW(dram_gbps=512.0).run_layer(layer)
        assert not fast.memory_bound

    def test_dram_energy_reported_beside_onchip_total(self):
        from repro.accel import ZvcgSA
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("conv2")
        result = ZvcgSA().run_layer(layer)
        b = result.breakdown
        assert b.dram > 0
        assert b.total_with_dram_pj == pytest.approx(b.total_pj + b.dram)
        # the paper-calibrated total stays die-only
        assert b.total_pj == pytest.approx(
            b.datapath + b.buffers + b.sram + b.dap + b.actfn)
        assert result.events.dram_read_bytes \
            == result.memory.dram_read_bytes

    def test_dram_and_dram_gbps_mutually_exclusive(self):
        from repro.accel import ZvcgSA

        with pytest.raises(ValueError):
            ZvcgSA(dram=DRAMConfig(), dram_gbps=8.0)

    def test_eyeriss_converts_bandwidth_at_its_own_clock(self):
        """dram_gbps must convert against the 200 MHz published clock,
        not the node's nominal 500 MHz (the memory builds lazily)."""
        from repro.accel import EyerissV2

        accel = EyerissV2(dram_gbps=6.4)
        assert accel.memory.dram.bytes_per_cycle == pytest.approx(32.0)

    def test_outer_product_models_profile_compressed_streams(self):
        from repro.accel import SCNN, EyerissV2, SparTen
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("conv3")
        for accel in (SCNN(), SparTen(), EyerissV2()):
            result = accel.run_layer(layer)
            prof = result.memory
            assert prof.meta_bytes > 0, accel.name
            # sparse payloads: fewer bytes than the dense footprints
            dense_w = layer.k * layer.n
            assert prof.weight_bytes < dense_w, accel.name
