"""Tests for the ASCII chart helpers."""

import pytest

from repro.eval.plots import bar_chart, series_chart


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart(["SA", "S2TA-AW"], [1.0, 0.4], width=10)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10  # max value fills the width
        assert lines[1].count("#") == 4

    def test_reference_marker(self):
        text = bar_chart(["a"], [0.5], width=10, reference=1.0)
        assert "|" in text

    def test_unit_suffix(self):
        assert "2x" in bar_chart(["a"], [2.0], unit="x")

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a", "b"], [1.0])

    def test_empty(self):
        assert bar_chart([], []) == ""

    def test_zero_values(self):
        text = bar_chart(["a"], [0.0])
        assert "#" not in text


class TestSeriesChart:
    def test_render_contains_markers_and_legend(self):
        text = series_chart(
            ["0%", "50%", "87.5%"],
            {"AW": [1.0, 2.0, 8.0], "ZVCG": [1.0, 1.0, 1.0]},
        )
        assert "o=AW" in text
        assert "x=ZVCG" in text
        assert text.count("o") >= 3

    def test_extremes_at_grid_edges(self):
        text = series_chart(["a", "b"], {"s": [0.0, 10.0]}, height=5)
        lines = text.splitlines()
        assert "o" in lines[0]       # max on the top row
        assert "o" in lines[4]       # min on the bottom row

    def test_validation(self):
        with pytest.raises(ValueError):
            series_chart(["a"], {})
        with pytest.raises(ValueError):
            series_chart(["a", "b"], {"s": [1.0]})
