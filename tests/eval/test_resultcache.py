"""The content-addressed on-disk result cache
(:mod:`repro.eval.resultcache`).

Key sensitivity is the safety property: two configurations that could
produce different simulation payloads must never share a key — the
key must cover the layer spec, the accelerator design point, the
energy costs, the memory-channel config, the seed and the quick-mode
cap (the ISSUE-5 key contract), plus the code-version salt.
"""

import dataclasses
import json

import pytest

from repro.accel import S2TAAW, SmtSA, ZvcgSA
from repro.arch.events import EventCounts
from repro.energy.costs import DEFAULT_COSTS
from repro.eval import resultcache
from repro.eval.resultcache import ResultCache, default_result_cache
from repro.models import get_spec

CONV2 = get_spec("alexnet").conv_layers[1]


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "results")


class TestKey:
    def test_stable_across_instances(self, cache, tmp_path):
        other = ResultCache(tmp_path / "elsewhere")
        assert cache.key(ZvcgSA(), CONV2) == other.key(ZvcgSA(), CONV2)
        assert cache.key(ZvcgSA(), CONV2) \
            == cache.key(ZvcgSA(), CONV2, seed=0, max_m=None)

    @pytest.mark.parametrize("variant", [
        ("seed", lambda c: c.key(ZvcgSA(), CONV2, seed=1)),
        ("max_m", lambda c: c.key(ZvcgSA(), CONV2, max_m=64)),
        ("accel", lambda c: c.key(S2TAAW(), CONV2)),
        ("accel-config", lambda c: c.key(SmtSA(fifo_depth=4), CONV2)),
        ("tech", lambda c: c.key(ZvcgSA(tech="65nm"), CONV2)),
        ("dram", lambda c: c.key(ZvcgSA(dram_gbps=64.0), CONV2)),
        ("costs", lambda c: c.key(
            ZvcgSA(costs=dataclasses.replace(DEFAULT_COSTS,
                                             dram_pj_per_byte=40.0)),
            CONV2)),
        ("layer-shape", lambda c: c.key(
            ZvcgSA(), dataclasses.replace(CONV2, m=CONV2.m + 1))),
        ("layer-density", lambda c: c.key(
            ZvcgSA(), dataclasses.replace(CONV2, a_nnz=2))),
    ], ids=lambda v: v[0])
    def test_key_covers_every_input(self, cache, variant):
        _, make_key = variant
        assert make_key(cache) != cache.key(ZvcgSA(), CONV2)

    def test_baseline_smt_depths_share_nothing(self, cache):
        assert cache.key(SmtSA(fifo_depth=2), CONV2) \
            != cache.key(SmtSA(fifo_depth=4), CONV2)

    def test_code_version_salts_key(self, cache, monkeypatch):
        base = cache.key(ZvcgSA(), CONV2)
        monkeypatch.setattr(resultcache, "CODE_VERSION", "other")
        assert cache.key(ZvcgSA(), CONV2) != base


class TestStore:
    def test_roundtrip(self, cache):
        events = EventCounts(cycles=7, mac_ops=11, sram_a_read_bytes=13)
        cache.put("deadbeef", 42, events)
        got = cache.get("deadbeef")
        assert got == (42, events)
        # A fresh object per get — consumers mutate counters.
        assert got[1] is not events
        assert cache.get("deadbeef")[1] is not got[1]

    def test_miss(self, cache):
        assert cache.get("0" * 64) is None
        assert cache.stats()["misses"] == 1

    def test_corrupt_entry_reads_as_miss(self, cache):
        cache.put("cafe", 1, EventCounts(cycles=1))
        (cache.path / "cafe.json").write_text("{truncated")
        assert cache.get("cafe") is None

    def test_wrong_schema_reads_as_miss(self, cache):
        cache.path.mkdir(parents=True, exist_ok=True)
        (cache.path / "odd.json").write_text(
            json.dumps({"compute_cycles": 1,
                        "events": {"no_such_counter": 3}}))
        assert cache.get("odd") is None

    def test_clear(self, cache):
        for i in range(3):
            cache.put(f"k{i}", i, EventCounts(cycles=i))
        assert cache.clear() == 3
        assert cache.stats() == {"entries": 0, "bytes": 0,
                                 "hits": 0, "misses": 0,
                                 "puts": 0, "evictions": 0,
                                 "corrupt": 0,
                                 "lifetime_hits": 0,
                                 "lifetime_misses": 0,
                                 "lifetime_corrupt": 0}

    def test_size_cap_evicts_oldest(self, cache, tmp_path):
        import os
        import time

        cache.put("old", 1, EventCounts(cycles=1))
        cache.put("new", 2, EventCounts(cycles=2))
        now = time.time()
        os.utime(cache._entry_path("old"), (now - 100, now - 100))
        entry_bytes = cache._entry_path("new").stat().st_size
        assert cache.prune(entry_bytes + 1) == 1
        assert cache.get("old") is None
        assert cache.get("new") is not None

    def test_put_enforces_configured_cap(self, tmp_path):
        small = ResultCache(tmp_path, max_bytes=600)
        for i in range(5):
            small.put(f"k{i}", i, EventCounts(cycles=i))
        assert small.stats()["bytes"] <= 600
        assert small.stats()["entries"] < 5

    def test_invalid_budgets_rejected(self, tmp_path, cache):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            cache.prune(0)


class TestDefaultCache:
    def test_env_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "x"))
        assert default_result_cache().path == tmp_path / "x"

    def test_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        assert default_result_cache() is None


class TestSizeAccounting:
    def test_overwrite_keeps_estimate_exact(self, cache):
        """Re-putting an existing key replaces its bytes on disk, so it
        must replace them in the running estimate too (the ISSUE-7 fix:
        overwrites used to double-count and inflate the estimate until
        eviction ran against a store nowhere near the cap)."""
        cache.put("k", 1, EventCounts(cycles=1))
        for i in range(5):
            cache.put("k", i, EventCounts(cycles=i,
                                          mac_ops=i * 1000))
        assert cache._approx_bytes == cache.stats()["bytes"]

    def test_overwrites_do_not_creep_toward_eviction(self, tmp_path):
        probe = ResultCache(tmp_path / "probe")
        probe.put("k", 1, EventCounts(cycles=1))
        entry_bytes = probe._entry_path("k").stat().st_size
        cache = ResultCache(tmp_path / "rc", max_bytes=4 * entry_bytes)
        cache.put("a", 1, EventCounts(cycles=1))
        cache.put("b", 2, EventCounts(cycles=2))
        # 20 same-key overwrites on a 2-entry store: the inflated
        # estimate would cross the 4-entry cap and spuriously prune.
        for _ in range(20):
            cache.put("a", 1, EventCounts(cycles=1))
        assert cache.stats()["entries"] == 2
        assert cache._approx_bytes == cache.stats()["bytes"]


class TestPayloadKeyTiers:
    def test_module_function_matches_bound_method(self, cache):
        assert resultcache.payload_key(ZvcgSA(), CONV2) \
            == cache.key(ZvcgSA(), CONV2)

    def test_tiers_never_share_keys(self):
        accel = ZvcgSA()
        assert resultcache.payload_key(accel, CONV2, tier="analytic") \
            != resultcache.payload_key(accel, CONV2, tier="functional")


class TestLifetimeStats:
    """The PR-8 sidecar: hit/miss counts survive process exit, so
    ``repro cache stats`` finally reports real lifetime numbers."""

    def test_persisted_counts_survive_new_instance(self, cache):
        cache.put("k", 0, EventCounts(cycles=1))
        cache.get("k")            # hit
        cache.get("absent")       # miss
        cache.persist_stats()

        fresh = ResultCache(cache.path)
        assert fresh.hits == 0 and fresh.misses == 0
        stats = fresh.stats()
        assert stats["lifetime_hits"] == 1
        assert stats["lifetime_misses"] == 1

    def test_persist_is_delta_not_total(self, cache):
        cache.get("absent")
        cache.persist_stats()
        cache.persist_stats()     # no new activity: no double count
        cache.get("absent")
        cache.persist_stats()
        assert cache.lifetime_stats()["misses"] == 2

    def test_live_counts_fold_into_lifetime_view(self, cache):
        cache.get("absent")
        cache.persist_stats()
        cache.get("absent")       # not yet persisted
        assert cache.stats()["lifetime_misses"] == 2

    def test_sidecar_is_not_a_cache_entry(self, cache):
        cache.get("absent")
        cache.persist_stats()
        # stats.meta must not count as an entry nor be prunable.
        assert cache.stats()["entries"] == 0
        cache.prune(max_bytes=1)
        assert cache.lifetime_stats()["misses"] == 1

    def test_clear_wipes_sidecar(self, cache):
        cache.get("absent")
        cache.persist_stats()
        cache.clear()
        assert cache.lifetime_stats() == {"hits": 0, "misses": 0,
                                          "puts": 0, "evictions": 0,
                                          "corrupt": 0}

    def test_corrupt_sidecar_reads_as_zero(self, cache):
        cache.path.mkdir(parents=True, exist_ok=True)
        (cache.path / resultcache.STATS_SIDECAR).write_text("{broken")
        assert cache.lifetime_stats() == {"hits": 0, "misses": 0,
                                          "puts": 0, "evictions": 0,
                                          "corrupt": 0}
        (cache.path / resultcache.STATS_SIDECAR).write_text(
            json.dumps({"hits": -5, "misses": "many"}))
        assert cache.lifetime_stats()["hits"] == 0
