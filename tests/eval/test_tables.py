"""Tests for table rendering."""

import pytest

from repro.eval.tables import ExperimentResult, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xyz", 10000.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "10,000" in text

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12.3456], [0.0]])
        assert "0.123" in text
        assert "12.3" in text


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            artifact="Figure X",
            title="demo",
            headers=["name", "value"],
            rows=[["a", 1.0], ["b", 2.0]],
            notes=["a note"],
        )

    def test_render(self):
        text = self._result().render()
        assert "== Figure X: demo ==" in text
        assert "note: a note" in text

    def test_column(self):
        assert self._result().column("value") == [1.0, 2.0]
        with pytest.raises(ValueError):
            self._result().column("missing")

    def test_row(self):
        assert self._result().row("b") == ["b", 2.0]
        with pytest.raises(KeyError):
            self._result().row("c")
