"""The parallel, memoized experiment engine (:mod:`repro.eval.runner`).

The two contracts everything else leans on:

- **Determinism** — a parallel run (>= 4 workers) is bit-equal to the
  serial run at the same seed, and a cache-hit re-run is bit-equal to a
  cold run (the ISSUE-5 acceptance bound, asserted here at quick size
  and in ``benchmarks/bench_experiment_wallclock.py`` at full size).
- **Memoization** — cache hits and in-batch duplicates never
  re-simulate, and consumers never alias one ``EventCounts`` object.
"""

import os

import pytest

from repro.accel import S2TAAW, SparTen, ZvcgSA
from repro.eval.experiments import (
    QUICK_MAX_M,
    fig12_alexnet_per_layer,
    xval_functional_vs_analytic,
)
from repro.eval.resultcache import ResultCache
from repro.eval.runner import (
    AUTO_MIN_TASKS,
    LayerSimTask,
    auto_jobs,
    functional_model_runs,
    resolve_jobs,
    simulate_layer_tasks,
)
from repro.models import get_spec

ALEXNET = get_spec("alexnet")
CONV2 = ALEXNET.conv_layers[1]
QUICK = 32  # rows per layer in these tests — keeps tier-1 fast


def _tasks(accels, layers, seed=0, max_m=QUICK):
    return [LayerSimTask(accel, layer, seed=seed, max_m=max_m)
            for accel in accels for layer in layers]


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_malformed_env_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "all")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs(None)


class TestAutoJobs:
    """The serial-vs-pool decision table behind ``--jobs auto`` (the
    serve default). Pins the fix for the small-host inversion where a
    cold pool lost to the serial path (BENCH: 1.22 s parallel vs
    0.64 s serial on one CPU)."""

    @pytest.mark.parametrize("task_count,cpu_count,expected", [
        (0, 1, 1),       # nothing to do, nothing to fork
        (100, 1, 1),     # single-core host: a pool only adds overhead
        (3, 8, 1),       # below AUTO_MIN_TASKS: startup dominates
        (4, 8, 2),       # each worker amortizes over >= 2 tasks
        (8, 8, 4),
        (100, 8, 8),     # capped at the host's cores
        (100, 2, 2),     # small host stays small
    ])
    def test_decision_table(self, task_count, cpu_count, expected):
        assert auto_jobs(task_count, cpu_count=cpu_count) == expected

    def test_negative_task_count_rejected(self):
        with pytest.raises(ValueError):
            auto_jobs(-1, cpu_count=4)

    def test_resolve_auto_uses_task_count(self):
        assert resolve_jobs("auto", task_count=AUTO_MIN_TASKS - 1) == 1
        assert resolve_jobs("auto", task_count=100) \
            == auto_jobs(100)

    def test_resolve_auto_without_count_sizes_for_large_batch(self):
        assert resolve_jobs("auto") == (os.cpu_count() or 1)

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert resolve_jobs(None, task_count=2) == 1

    def test_simulate_accepts_auto_and_stays_bit_equal(self):
        layers = ALEXNET.conv_layers[:2]
        tasks = _tasks([ZvcgSA()], layers)
        assert simulate_layer_tasks(tasks, jobs="auto") \
            == simulate_layer_tasks(tasks, jobs=1)


class TestSimulateLayerTasks:
    def test_results_in_task_order(self):
        layers = ALEXNET.conv_layers[:3]
        tasks = _tasks([ZvcgSA()], layers)
        payloads = simulate_layer_tasks(tasks, jobs=1)
        serial = [t.accel.simulate_layer_functional(t.layer, seed=0,
                                                    max_m=QUICK)
                  for t in tasks]
        for (cycles, events), (ref_cycles, ref_events) in zip(payloads,
                                                              serial):
            assert cycles == ref_cycles
            assert events == ref_events

    @pytest.mark.functional
    def test_parallel_bit_equal_serial(self):
        tasks = _tasks([ZvcgSA(), S2TAAW(), SparTen()],
                       ALEXNET.conv_layers[:2])
        serial = simulate_layer_tasks(tasks, jobs=1)
        parallel = simulate_layer_tasks(tasks, jobs=4)
        assert serial == parallel

    def test_cache_hits_skip_simulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = _tasks([ZvcgSA()], [CONV2])
        cold = simulate_layer_tasks(tasks, jobs=1, result_cache=cache)
        assert cache.stats()["entries"] == 1
        misses_after_cold = cache.misses
        warm = simulate_layer_tasks(tasks, jobs=1, result_cache=cache)
        assert warm == cold
        # The warm pass looked up once and missed zero times.
        assert cache.misses == misses_after_cold
        assert cache.hits >= 1

    def test_in_batch_duplicates_simulate_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = LayerSimTask(ZvcgSA(), CONV2, seed=0, max_m=QUICK)
        payloads = simulate_layer_tasks([task, task, task], jobs=1,
                                        result_cache=cache)
        assert payloads[0] == payloads[1] == payloads[2]
        assert cache.stats()["entries"] == 1

    def test_consumers_never_alias_events(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = LayerSimTask(ZvcgSA(), CONV2, seed=0, max_m=QUICK)
        first, second = simulate_layer_tasks([task, task], jobs=1,
                                             result_cache=cache)
        assert first[1] is not second[1]
        first[1].cycles += 1  # finalization mutates counters
        assert first[1] != second[1]

    def test_seed_changes_results(self):
        base = simulate_layer_tasks(_tasks([ZvcgSA()], [CONV2], seed=0))
        other = simulate_layer_tasks(_tasks([ZvcgSA()], [CONV2], seed=1))
        assert base != other


class TestFunctionalModelRuns:
    def test_matches_run_model_functional(self):
        accel = ZvcgSA()
        batched, = functional_model_runs([(accel, ALEXNET)],
                                         conv_only=True, seed=0,
                                         max_m=QUICK)
        direct = accel.run_model_functional(ALEXNET, conv_only=True,
                                            seed=0, max_m=QUICK)
        assert batched.energy_uj == direct.energy_uj
        assert batched.total_cycles == direct.total_cycles
        assert [r.events for r in batched.layer_results] \
            == [r.events for r in direct.layer_results]

    def test_many_requests_one_batch(self, tmp_path):
        cache = ResultCache(tmp_path)
        runs = functional_model_runs(
            [(ZvcgSA(), ALEXNET), (S2TAAW(), ALEXNET)],
            conv_only=True, seed=0, max_m=QUICK, result_cache=cache)
        assert [r.accelerator for r in runs] == ["SA-ZVCG", "S2TA-AW"]
        assert cache.stats()["entries"] == 2 * len(ALEXNET.conv_layers)


class TestExperimentDeterminism:
    """The ISSUE-5 acceptance bounds at quick size."""

    @pytest.mark.functional
    def test_fig12_parallel_bit_equal_serial(self):
        serial = fig12_alexnet_per_layer(functional=True, quick=True,
                                         seed=0, jobs=1)
        parallel = fig12_alexnet_per_layer(functional=True, quick=True,
                                           seed=0, jobs=4)
        assert parallel.rows == serial.rows

    @pytest.mark.functional
    def test_fig12_cache_hit_bit_equal_cold(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = fig12_alexnet_per_layer(functional=True, quick=True,
                                       seed=0, result_cache=cache)
        assert cache.stats()["entries"] > 0
        warm = fig12_alexnet_per_layer(functional=True, quick=True,
                                       seed=0, result_cache=cache)
        assert warm.rows == cold.rows
        bare = fig12_alexnet_per_layer(functional=True, quick=True,
                                       seed=0)
        assert bare.rows == cold.rows

    @pytest.mark.functional
    def test_xval_parallel_and_cached_bit_equal(self, tmp_path):
        cache = ResultCache(tmp_path)
        serial = xval_functional_vs_analytic(max_m=QUICK_MAX_M, seed=0)
        parallel = xval_functional_vs_analytic(max_m=QUICK_MAX_M, seed=0,
                                               jobs=4, result_cache=cache)
        cached = xval_functional_vs_analytic(max_m=QUICK_MAX_M, seed=0,
                                             result_cache=cache)
        assert parallel.rows == serial.rows
        assert cached.rows == serial.rows
        assert serial.failures == parallel.failures == cached.failures


class TestCachelessDedupe:
    def test_in_batch_duplicates_simulate_once_without_cache(
            self, monkeypatch):
        """Fingerprints are computed even under --no-result-cache (the
        ISSUE-7 fix: the in-batch dedupe used to vanish with the
        cache), and they are content-addressed — distinct instances of
        the same configuration share one simulation."""
        calls = []
        real = ZvcgSA.simulate_layer_functional

        def counted(self, *args, **kwargs):
            calls.append(1)
            return real(self, *args, **kwargs)

        monkeypatch.setattr(ZvcgSA, "simulate_layer_functional", counted)
        tasks = [LayerSimTask(ZvcgSA(), CONV2, seed=0, max_m=QUICK)
                 for _ in range(3)]
        payloads = simulate_layer_tasks(tasks, jobs=1, result_cache=None)
        assert len(calls) == 1
        assert payloads[0] == payloads[1] == payloads[2]
        assert payloads[0][1] is not payloads[1][1]  # no aliasing


class TestAnalyticTier:
    def test_analytic_payload_matches_layer_events(self):
        accel = S2TAAW()
        (payload,) = simulate_layer_tasks(
            [LayerSimTask(accel, CONV2, analytic=True)], jobs=1)
        assert payload == accel._layer_events(CONV2)

    def test_tiers_never_share_cache_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        accel = ZvcgSA()
        simulate_layer_tasks(
            [LayerSimTask(accel, CONV2, max_m=QUICK, analytic=True)],
            jobs=1, result_cache=cache)
        assert cache.stats()["entries"] == 1
        simulate_layer_tasks(
            [LayerSimTask(accel, CONV2, max_m=QUICK)],
            jobs=1, result_cache=cache)
        assert cache.stats()["entries"] == 2

    def test_analytic_warm_rerun_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        tasks = [LayerSimTask(S2TAAW(), CONV2, analytic=True)]
        cold = simulate_layer_tasks(tasks, jobs=1, result_cache=cache)
        misses = cache.misses
        warm = simulate_layer_tasks(tasks, jobs=1, result_cache=cache)
        assert warm == cold
        assert cache.misses == misses and cache.hits >= 1


class TestTaskTimeoutResolution:
    from repro.eval.runner import _resolve_task_timeout  # noqa: F401

    def test_explicit_wins(self, monkeypatch):
        from repro.eval.runner import TASK_TIMEOUT_ENV, _resolve_task_timeout
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "7")
        assert _resolve_task_timeout(2.5) == 2.5

    def test_env_default(self, monkeypatch):
        from repro.eval.runner import TASK_TIMEOUT_ENV, _resolve_task_timeout
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "30")
        assert _resolve_task_timeout(None) == 30.0
        monkeypatch.delenv(TASK_TIMEOUT_ENV)
        assert _resolve_task_timeout(None) is None

    def test_non_positive_rejected(self, monkeypatch):
        from repro.eval.runner import TASK_TIMEOUT_ENV, _resolve_task_timeout
        with pytest.raises(ValueError):
            _resolve_task_timeout(0)
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "-1")
        with pytest.raises(ValueError):
            _resolve_task_timeout(None)


class TestGracefulDegradation:
    """A pool that loses workers (injected crash) or wedges (injected
    hang + per-task timeout) falls back to the serial path for the
    unfinished tasks — bit-equal to an all-serial run by construction,
    with the degradation counted in the metrics registry."""

    def _metrics(self):
        from repro.obs import metrics as obs_metrics
        obs_metrics.reset_default_registry()
        return obs_metrics.default_registry()

    def test_worker_crash_degrades_bit_equal(self):
        from repro import faults
        tasks = _tasks([S2TAAW()], ALEXNET.conv_layers[:2])
        baseline = simulate_layer_tasks(tasks, jobs=1)

        registry = self._metrics()
        # Worker-only fault: forked pool workers inherit the registry
        # and die with os._exit; the parent's serial redo is unarmed.
        faults.configure("worker_crash")
        try:
            degraded = simulate_layer_tasks(tasks, jobs=2)
        finally:
            faults.reset()
        assert degraded == baseline
        assert registry.counter("runner.degraded").value == 1
        assert registry.counter("runner.retries").value >= 1

    def test_task_hang_degrades_bit_equal(self):
        from repro import faults
        tasks = _tasks([S2TAAW()], ALEXNET.conv_layers[:2])
        baseline = simulate_layer_tasks(tasks, jobs=1)

        registry = self._metrics()
        faults.configure("task_hang:s=60")
        try:
            degraded = simulate_layer_tasks(tasks, jobs=2,
                                            task_timeout_s=0.5)
        finally:
            faults.reset()
        assert degraded == baseline
        assert registry.counter("runner.degraded").value == 1

    def test_real_task_exceptions_still_propagate(self):
        # Degradation is for infrastructure failures only: a genuine
        # simulation error must not be silently retried serially.
        bad = LayerSimTask(S2TAAW(), CONV2, seed=0, max_m=-7)
        with pytest.raises(Exception):
            simulate_layer_tasks([bad], jobs=2)
