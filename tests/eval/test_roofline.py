"""Tests for the roofline and DRAM-bandwidth sensitivity artifacts."""

import pytest

from repro.eval import dram_bw_sensitivity, roofline_analysis


class TestRooflineAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return roofline_analysis("alexnet")

    def test_covers_every_layer_and_variant(self, result):
        from repro.models import get_spec

        layers = len(get_spec("alexnet").layers)
        assert len(result.rows) == 4 * layers  # 4 systolic variants

    def test_fc_layers_sit_under_the_memory_roof(self, result):
        kind_idx = result.headers.index("kind")
        bound_idx = result.headers.index("bound")
        fc_rows = [r for r in result.rows if r[kind_idx] == "fc"]
        assert fc_rows
        assert all(r[bound_idx] == "memory" for r in fc_rows)

    def test_conv_layers_compute_bound_at_default(self, result):
        """The default channel keeps the paper's conv speedups intact."""
        kind_idx = result.headers.index("kind")
        bound_idx = result.headers.index("bound")
        zvcg = [r for r in result.rows
                if r[0] == "SA-ZVCG" and r[kind_idx] == "conv"]
        assert all(r[bound_idx] == "compute" for r in zvcg)

    def test_memory_roof_respects_intensity_ordering(self, result):
        """FC layers have orders of magnitude lower OI than convs."""
        oi_idx = result.headers.index("OI ops/B")
        kind_idx = result.headers.index("kind")
        conv_oi = min(r[oi_idx] for r in result.rows
                      if r[kind_idx] == "conv")
        fc_oi = max(r[oi_idx] for r in result.rows if r[kind_idx] == "fc")
        assert conv_oi > 10 * fc_oi

    def test_narrow_channel_moves_convs_over_the_wall(self):
        narrow = roofline_analysis("alexnet", dram_gbps=2.0)
        bound_idx = narrow.headers.index("bound")
        kind_idx = narrow.headers.index("kind")
        conv_memory = [r for r in narrow.rows
                       if r[kind_idx] == "conv" and r[bound_idx] == "memory"]
        assert conv_memory  # at 2 GB/s even convs stall


class TestDramBwSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return dram_bw_sensitivity(bandwidths=(8.0, 512.0),
                                   models=("alexnet",))

    def test_speedup_monotone_in_bandwidth(self, result):
        speedups = result.column("alexnet speedup")
        assert speedups[0] < speedups[-1]

    def test_wide_channel_recovers_compute_bound_network(self, result):
        mem_frac = result.column("alexnet mem%")
        assert mem_frac[-1] == 0
        assert mem_frac[0] > 0

    def test_row_per_bandwidth(self, result):
        assert [r[0] for r in result.rows] == ["8", "512"]
