"""Integration tests: every experiment runner produces its artifact.

Deeper numerical assertions live in the accel tests and the benchmark
files; here we verify each artifact is well-formed and carries its key
qualitative claims.
"""

import pytest

from repro.eval import (
    fig1_energy_breakdown,
    fig3_smt_overhead,
    fig9_microbench,
    fig10_variant_breakdown,
    fig11_full_models,
    fig12_alexnet_per_layer,
    sec7_design_space,
    tbl1_buffer_per_mac,
    tbl2_s2ta_breakdown,
    tbl3_accuracy,
    tbl4_comparison,
    tbl5_summary,
)


class TestEveryArtifactRenders:
    @pytest.mark.parametrize("runner,artifact", [
        (fig1_energy_breakdown, "Figure 1"),
        (fig3_smt_overhead, "Figure 3"),
        (tbl1_buffer_per_mac, "Table 1"),
        (tbl2_s2ta_breakdown, "Table 2"),
        (fig10_variant_breakdown, "Figure 10"),
        (fig11_full_models, "Figure 11"),
        (fig12_alexnet_per_layer, "Figure 12"),
        (tbl5_summary, "Table 5"),
    ])
    def test_runs_and_renders(self, runner, artifact):
        result = runner()
        assert result.artifact == artifact
        text = result.render()
        assert artifact in text
        assert len(result.rows) >= 2
        assert all(len(row) == len(result.headers) for row in result.rows)

    @pytest.mark.parametrize("panel", ["a", "c", "d"])
    def test_fig9_panels(self, panel):
        result = fig9_microbench(panel)
        assert f"Figure 9{panel}" == result.artifact
        assert len(result.rows) == 6  # the sweep's six sparsity points

    def test_fig9_invalid_panel(self):
        with pytest.raises(ValueError):
            fig9_microbench("e")
        with pytest.raises(ValueError):
            fig9_microbench("ab")

    def test_tbl4_both_nodes(self):
        for tech in ("16nm", "65nm"):
            result = tbl4_comparison(tech)
            assert tech in result.artifact
        with pytest.raises(ValueError):
            tbl4_comparison("7nm")

    def test_tbl3_quick(self):
        result = tbl3_accuracy(quick=True)
        assert len(result.rows) == 4
        # published reference rows appear in the notes
        assert any("ResNet-50V1" in note for note in result.notes)

    def test_sec7(self):
        result = sec7_design_space(top=5)
        assert len(result.rows) == 5
        assert any(row[5] for row in result.rows)  # a selected point


class TestHeadlineClaims:
    def test_fig11_average_row(self):
        result = fig11_full_models()
        average = result.row("average")
        assert 1.7 < average[5] < 2.5  # AW energy reduction
        assert 1.7 < average[6] < 2.5  # AW speedup

    def test_fig12_totals_ordering(self):
        result = fig12_alexnet_per_layer()
        totals = {row[0]: row[-1] for row in result.rows}
        assert totals["S2TA-AW (65nm)"] == min(totals.values())

    def test_fig1_buffers_dominate(self):
        result = fig1_energy_breakdown()
        shares = {row[0]: row[1] for row in result.rows}
        assert max(shares, key=shares.get).startswith("PE-array buffers")
