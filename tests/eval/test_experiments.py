"""Integration tests: every experiment runner produces its artifact.

Deeper numerical assertions live in the accel tests and the benchmark
files; here we verify each artifact is well-formed and carries its key
qualitative claims.
"""

import pytest

from repro.eval import (
    fig1_energy_breakdown,
    fig3_smt_overhead,
    fig9_microbench,
    fig10_variant_breakdown,
    fig11_full_models,
    fig12_alexnet_per_layer,
    sec7_design_space,
    tbl1_buffer_per_mac,
    tbl2_s2ta_breakdown,
    tbl3_accuracy,
    tbl4_comparison,
    tbl5_summary,
)


class TestEveryArtifactRenders:
    @pytest.mark.parametrize("runner,artifact", [
        (fig1_energy_breakdown, "Figure 1"),
        (fig3_smt_overhead, "Figure 3"),
        (tbl1_buffer_per_mac, "Table 1"),
        (tbl2_s2ta_breakdown, "Table 2"),
        (fig10_variant_breakdown, "Figure 10"),
        (fig11_full_models, "Figure 11"),
        (fig12_alexnet_per_layer, "Figure 12"),
        (tbl5_summary, "Table 5"),
    ])
    def test_runs_and_renders(self, runner, artifact):
        result = runner()
        assert result.artifact == artifact
        text = result.render()
        assert artifact in text
        assert len(result.rows) >= 2
        assert all(len(row) == len(result.headers) for row in result.rows)

    @pytest.mark.parametrize("panel", ["a", "c", "d"])
    def test_fig9_panels(self, panel):
        result = fig9_microbench(panel)
        assert f"Figure 9{panel}" == result.artifact
        assert len(result.rows) == 6  # the sweep's six sparsity points

    def test_fig9_invalid_panel(self):
        with pytest.raises(ValueError):
            fig9_microbench("e")
        with pytest.raises(ValueError):
            fig9_microbench("ab")

    def test_tbl4_both_nodes(self):
        for tech in ("16nm", "65nm"):
            result = tbl4_comparison(tech)
            assert tech in result.artifact
        with pytest.raises(ValueError):
            tbl4_comparison("7nm")

    def test_tbl3_quick(self):
        result = tbl3_accuracy(quick=True)
        assert len(result.rows) == 4
        # published reference rows appear in the notes
        assert any("ResNet-50V1" in note for note in result.notes)

    def test_sec7(self):
        result = sec7_design_space(top=5)
        assert len(result.rows) == 5
        assert any(row[5] for row in result.rows)  # a selected point


class TestHeadlineClaims:
    def test_fig11_average_row(self):
        result = fig11_full_models()
        average = result.row("average")
        assert 1.7 < average[5] < 2.5  # AW energy reduction
        assert 1.7 < average[6] < 2.5  # AW speedup

    def test_fig12_totals_ordering(self):
        result = fig12_alexnet_per_layer()
        totals = {row[0]: row[-1] for row in result.rows}
        assert totals["S2TA-AW (65nm)"] == min(totals.values())

    def test_fig1_buffers_dominate(self):
        result = fig1_energy_breakdown()
        shares = {row[0]: row[1] for row in result.rows}
        assert max(shares, key=shares.get).startswith("PE-array buffers")


class TestFunctionalTier:
    """The functional=True path of the full-model artifacts.

    Quick mode (layer subsampling) runs in tier-1; the full-size runs
    carry the ``slow`` marker and run nightly-style alongside
    ``benchmarks/bench_functional_vs_analytic.py``.
    """

    @pytest.mark.functional
    def test_fig12_functional_quick(self):
        result = fig12_alexnet_per_layer(functional=True, quick=True)
        assert "functional simulation" in result.title
        assert any("functional tier for every row" in note
                   for note in result.notes)
        totals = {row[0]: row[-1] for row in result.rows}
        # The ground truth reproduces the headline ordering.
        assert totals["S2TA-AW (65nm)"] == min(totals.values())
        # The baselines now run their own engines (no analytic
        # fallback); measured totals track the analytic rows closely.
        analytic = fig12_alexnet_per_layer()
        for name in ("SparTen (45nm)", "Eyeriss v2 (65nm)"):
            assert totals[name] == pytest.approx(
                analytic.row(name)[-1], rel=0.05), name

    def test_dram_pj_per_byte_leaves_die_totals_pinned(self):
        """--dram-pj-per-byte re-prices only the reported off-chip
        component: every die-only Fig. 12 energy cell is bit-identical
        under a 5x DRAM-energy override."""
        default = fig12_alexnet_per_layer()
        repriced = fig12_alexnet_per_layer(dram_pj_per_byte=100.0)
        assert repriced.rows == default.rows

    def test_dram_pj_per_byte_scales_offchip_component(self):
        from repro.accel import SparTen
        from repro.eval.experiments import _costs
        from repro.models import get_spec

        layer = get_spec("alexnet").layer("conv2")
        base = SparTen().run_layer(layer)
        repriced = SparTen(costs=_costs(40.0)).run_layer(layer)
        assert repriced.breakdown.dram == pytest.approx(
            2 * base.breakdown.dram)
        assert repriced.breakdown.total_pj == pytest.approx(
            base.breakdown.total_pj)

    @pytest.mark.functional
    def test_fig11_functional_quick_headlines(self):
        result = fig11_full_models(functional=True, quick=True)
        assert "functional simulation" in result.title
        average = result.row("average")
        # Honest simulation must land inside the paper's envelope even
        # under quick-mode subsampling.
        assert average[5] == pytest.approx(2.08, abs=0.35)
        assert average[6] == pytest.approx(2.11, abs=0.40)
        for row in result.rows[:-1]:
            assert row[1] < 1.0  # SMT still worse than ZVCG on energy

    @pytest.mark.functional
    def test_xval_artifact(self):
        from repro.eval import xval_functional_vs_analytic

        # Subsampled runs extrapolate events, so exactness is waived
        # (the exact contract at full size lives in
        # tests/test_cross_validation.py and the nightly benchmark);
        # the deltas must still stay small.
        result = xval_functional_vs_analytic(max_m=128)
        assert result.artifact == "Cross-validation"
        for row in result.rows:
            assert abs(row[3]) < 5.0, row   # fired MACs %
            assert abs(row[4]) < 12.0, row  # energy %

    @pytest.mark.functional
    @pytest.mark.slow
    def test_fig11_functional_full(self):
        """Full-size honest simulation of all four networks (nightly)."""
        result = fig11_full_models(functional=True)
        analytic = fig11_full_models()
        fun_avg = result.row("average")
        ana_avg = analytic.row("average")
        assert fun_avg[5] == pytest.approx(ana_avg[5], abs=0.15)
        assert fun_avg[6] == pytest.approx(ana_avg[6], abs=0.25)

    @pytest.mark.functional
    @pytest.mark.slow
    def test_fig12_functional_full(self):
        result = fig12_alexnet_per_layer(functional=True)
        totals = {row[0]: row[-1] for row in result.rows}
        assert totals["S2TA-AW (65nm)"] == min(totals.values())
        analytic = fig12_alexnet_per_layer()
        for accel in ("SA-ZVCG (65nm)", "S2TA-W (65nm)", "S2TA-AW (65nm)"):
            assert totals[accel] == pytest.approx(
                analytic.row(accel)[-1], rel=0.06)
