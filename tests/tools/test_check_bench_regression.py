"""Tests for the BENCH_*.json throughput-regression checker."""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    pathlib.Path(__file__).resolve().parents[2]
    / "tools" / "check_bench_regression.py",
)
cbr = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbr)


def _bench_file(path, datetime, entries):
    """Write one pytest-benchmark JSON with (name, mean, extra) entries."""
    payload = {
        "datetime": datetime,
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean},
             "extra_info": extra or {}}
            for name, mean, extra in entries
        ],
    }
    path.write_text(json.dumps(payload))
    return path


class TestThroughputOf:
    def test_prefers_macs_per_s(self):
        record = {"stats": {"mean": 0.5},
                  "extra_info": {"macs_per_s": 1e9}}
        assert cbr.throughput_of(record) == (1e9, "macs/s")

    def test_falls_back_to_call_rate(self):
        assert cbr.throughput_of({"stats": {"mean": 0.25}}) \
            == (4.0, "runs/s")

    def test_wallclock_beats_call_rate(self):
        """The experiment-wallclock benchmarks gate on their recorded
        end-to-end seconds (inverted to higher-is-better), not on the
        pytest-benchmark mean."""
        record = {"stats": {"mean": 0.5},
                  "extra_info": {"wallclock_s": 2.0, "workers": 4}}
        assert cbr.throughput_of(record) == (0.5, "runs/s (wall-clock)")

    def test_macs_per_s_beats_wallclock(self):
        record = {"stats": {"mean": 0.5},
                  "extra_info": {"macs_per_s": 1e9, "wallclock_s": 2.0}}
        assert cbr.throughput_of(record) == (1e9, "macs/s")

    def test_configs_per_s_between_macs_and_wallclock(self):
        """The DSE benchmarks gate on configs evaluated per second —
        preferred over their own wallclock_s, outranked by macs_per_s."""
        record = {"stats": {"mean": 0.5},
                  "extra_info": {"configs_per_s": 1500.0,
                                 "wallclock_s": 2.0}}
        assert cbr.throughput_of(record) == (1500.0, "configs/s")
        record["extra_info"]["macs_per_s"] = 1e9
        assert cbr.throughput_of(record) == (1e9, "macs/s")

    def test_jobs_per_s_between_spans_and_wallclock(self):
        """The serve benchmarks gate on queue jobs completed per
        second — preferred over their own wallclock_s, outranked by
        the engine-level rates."""
        record = {"stats": {"mean": 0.5},
                  "extra_info": {"jobs_per_s": 40.0,
                                 "wallclock_s": 2.0}}
        assert cbr.throughput_of(record) == (40.0, "jobs/s")
        record["extra_info"]["spans_per_s"] = 1e6
        assert cbr.throughput_of(record) == (1e6, "spans/s")

    def test_jobs_per_s_regression_fails_gate(self, tmp_path):
        _bench_file(tmp_path / "BENCH_1.json", "2026-01-01T00:00:00",
                    [("t::serve", 1.0, {"jobs_per_s": 50.0})])
        _bench_file(tmp_path / "BENCH_2.json", "2026-01-02T00:00:00",
                    [("t::serve", 1.0, {"jobs_per_s": 40.0})])
        assert cbr.main(["--dir", str(tmp_path)]) == 1
        _bench_file(tmp_path / "BENCH_3.json", "2026-01-03T00:00:00",
                    [("t::serve", 1.0, {"jobs_per_s": 39.5})])
        assert cbr.main(["--dir", str(tmp_path)]) == 0

    def test_configs_per_s_regression_fails_gate(self, tmp_path):
        _bench_file(tmp_path / "BENCH_1.json", "2026-01-01T00:00:00",
                    [("t::dse", 1.0, {"configs_per_s": 1000.0})])
        _bench_file(tmp_path / "BENCH_2.json", "2026-01-02T00:00:00",
                    [("t::dse", 1.0, {"configs_per_s": 800.0})])
        assert cbr.main(["--dir", str(tmp_path)]) == 1
        _bench_file(tmp_path / "BENCH_3.json", "2026-01-03T00:00:00",
                    [("t::dse", 1.0, {"configs_per_s": 790.0})])
        assert cbr.main(["--dir", str(tmp_path)]) == 0

    def test_wallclock_regression_fails_gate(self, tmp_path, capsys):
        import json

        def bench_file(path, stamp, wallclock):
            path.write_text(json.dumps({
                "datetime": stamp,
                "benchmarks": [{
                    "fullname": "bench::fig12_wallclock",
                    "stats": {"mean": wallclock},
                    "extra_info": {"wallclock_s": wallclock},
                }],
            }))

        bench_file(tmp_path / "BENCH_1.json", "2026-07-29T00:00:00", 10.0)
        bench_file(tmp_path / "BENCH_2.json", "2026-07-30T00:00:00", 15.0)
        assert cbr.main(["--dir", str(tmp_path)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_unusable_record_skipped(self):
        assert cbr.throughput_of({"stats": {"mean": 0}}) is None


class TestMain:
    def test_passes_when_throughput_holds(self, tmp_path, capsys):
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01", [
            ("t::a", 1.0, None), ("t::b", 1.0, {"macs_per_s": 100.0}),
        ])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02", [
            ("t::a", 0.95, None), ("t::b", 1.0, {"macs_per_s": 99.0}),
        ])
        assert cbr.main(["--dir", str(tmp_path)]) == 0
        assert "no throughput regressions" in capsys.readouterr().out

    def test_fails_on_regression_beyond_threshold(self, tmp_path, capsys):
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01", [
            ("t::a", 1.0, None),
        ])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02", [
            ("t::a", 1.5, None),  # 1.0 -> 0.667 runs/s: -33%
        ])
        assert cbr.main(["--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "t::a" in out

    def test_threshold_is_configurable(self, tmp_path):
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01", [
            ("t::a", 1.0, None),
        ])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02", [
            ("t::a", 1.08, None),  # ~ -7.4%
        ])
        assert cbr.main(["--dir", str(tmp_path)]) == 0
        assert cbr.main(["--dir", str(tmp_path),
                         "--threshold", "0.05"]) == 1

    def test_candidate_gated_against_newest_baseline(self, tmp_path):
        """make-bench flow: the un-promoted candidate compares against
        the newest promoted baseline and fails before promotion."""
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        good = _bench_file(tmp_path / "cand.json.tmp", "2026-07-02",
                           [("t::a", 1.0, None)])
        assert cbr.main(["--dir", str(tmp_path),
                         "--candidate", str(good)]) == 0
        bad = _bench_file(tmp_path / "cand2.json.tmp", "2026-07-03",
                          [("t::a", 2.0, None)])  # -50%
        assert cbr.main(["--dir", str(tmp_path),
                         "--candidate", str(bad)]) == 1

    def test_first_candidate_accepted_without_baseline(self, tmp_path,
                                                       capsys):
        cand = _bench_file(tmp_path / "cand.json.tmp", "2026-07-01",
                           [("t::a", 1.0, None)])
        assert cbr.main(["--dir", str(tmp_path),
                         "--candidate", str(cand)]) == 0
        assert "accepting" in capsys.readouterr().out

    def test_empty_first_candidate_not_promoted(self, tmp_path, capsys):
        """An empty first baseline would wedge every later run on the
        compared-nothing check — refuse it up front."""
        cand = tmp_path / "cand.json.tmp"
        cand.write_text(json.dumps({"datetime": "2026-07-01",
                                    "benchmarks": []}))
        assert cbr.main(["--dir", str(tmp_path),
                         "--candidate", str(cand)]) == 2
        assert "no usable benchmark records" in capsys.readouterr().out

    def test_candidate_not_accepted_when_all_baselines_corrupt(
            self, tmp_path, capsys):
        """If baselines exist but none is readable, an unchecked
        candidate must not be promoted (it could itself be regressed)."""
        (tmp_path / "BENCH_1.json").write_text("junk")
        cand = _bench_file(tmp_path / "cand.json.tmp", "2026-07-02",
                           [("t::a", 1.0, None)])
        assert cbr.main(["--dir", str(tmp_path),
                         "--candidate", str(cand)]) == 2
        assert "no readable promoted baseline" in capsys.readouterr().out

    def test_candidate_mode_warns_on_corrupt_promoted_file(self, tmp_path,
                                                           capsys):
        """A corrupt *promoted* baseline must not wedge candidate-mode
        gating forever: the candidate compares against the newest
        readable baseline and the damaged file is only warned about."""
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        (tmp_path / "BENCH_2.json").write_text("junk")  # newest, corrupt
        cand = _bench_file(tmp_path / "cand.json.tmp", "2026-07-03",
                           [("t::a", 1.0, None)])
        assert cbr.main(["--dir", str(tmp_path),
                         "--candidate", str(cand)]) == 0
        out = capsys.readouterr().out
        assert "warning: ignoring unreadable" in out
        assert "no throughput regressions" in out

    def test_unreadable_candidate_fails(self, tmp_path, capsys):
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        bad = tmp_path / "cand.json.tmp"
        bad.write_text("junk")
        assert cbr.main(["--dir", str(tmp_path),
                         "--candidate", str(bad)]) == 2
        assert "unreadable candidate" in capsys.readouterr().out

    def test_missing_datetime_ranks_by_mtime(self, tmp_path):
        """A file without the datetime key (schema drift) must rank as
        the newest run when its mtime says so — not silently sort
        oldest and drop out of the comparison."""
        import os
        import time

        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02",
                    [("t::a", 1.0, None)])
        undated = tmp_path / "BENCH_3.json"
        undated.write_text(json.dumps({"benchmarks": [
            {"fullname": "t::a", "stats": {"mean": 2.0},  # -50%
             "extra_info": {}}]}))
        os.utime(undated, (time.time() + 10, time.time() + 10))
        assert cbr.main(["--dir", str(tmp_path)]) == 1  # regression seen

    def test_null_datetime_does_not_crash_the_sort(self, tmp_path):
        (tmp_path / "BENCH_1.json").write_text(json.dumps(
            {"datetime": None,
             "benchmarks": [{"fullname": "t::a", "stats": {"mean": 1.0},
                             "extra_info": {}}]}))
        assert cbr.main(["--dir", str(tmp_path)]) == 0  # single file noop

    def test_compares_newest_two_by_datetime(self, tmp_path):
        """An old regression between files 1 and 2 is irrelevant once
        file 3 recovers — only the newest pair counts."""
        _bench_file(tmp_path / "BENCH_a.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        _bench_file(tmp_path / "BENCH_b.json", "2026-07-02",
                    [("t::a", 2.0, None)])
        _bench_file(tmp_path / "BENCH_c.json", "2026-07-03",
                    [("t::a", 1.9, None)])
        assert cbr.main(["--dir", str(tmp_path)]) == 0

    def test_added_and_removed_benchmarks_never_fail(self, tmp_path,
                                                     capsys):
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01", [
            ("t::gone", 1.0, None), ("t::kept", 1.0, None),
        ])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02", [
            ("t::kept", 1.0, None), ("t::fresh", 9.0, None),
        ])
        assert cbr.main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "NEW" in out and "REMOVED" in out

    def test_metric_change_is_a_fresh_baseline(self, tmp_path, capsys):
        """A benchmark that gains (or loses) macs_per_s between runs is
        incomparable across units and must neither pass silently with a
        bogus delta nor fail as a fake regression."""
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01", [
            ("t::a", 1.0, None),
            ("t::b", 1.0, {"macs_per_s": 1e9}),
            ("t::stable", 1.0, None),
        ])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02", [
            ("t::a", 1.0, {"macs_per_s": 1e9}),  # gained the metric
            ("t::b", 1.0, None),                 # lost the metric
            ("t::stable", 1.0, None),
        ])
        assert cbr.main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.count("METRIC-CHANGED") == 2
        assert "REGRESSION" not in out

    def test_all_metrics_changed_means_nothing_compared(self, tmp_path,
                                                        capsys):
        """If every benchmark changed units, the gate compared nothing
        and must say so instead of passing."""
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01", [
            ("t::a", 1.0, None),
        ])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02", [
            ("t::a", 1.0, {"macs_per_s": 1e9}),
        ])
        assert cbr.main(["--dir", str(tmp_path)]) == 2
        assert "compared nothing" in capsys.readouterr().out

    def test_empty_comparable_set_fails_the_gate(self, tmp_path, capsys):
        """Two artifacts but nothing comparable (filtered/empty newest
        run): the gate must not go green while checking nothing."""
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01", [
            ("t::a", 1.0, None), ("t::b", 1.0, None),
        ])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02", [])
        assert cbr.main(["--dir", str(tmp_path)]) == 2
        assert "compared nothing" in capsys.readouterr().out

    def test_stale_corrupt_beside_single_file_is_a_noop(self, tmp_path,
                                                        capsys):
        """One healthy file + a months-old corrupt one: nothing to
        compare, and the stale artifact must not redden the gate."""
        import os

        bad = tmp_path / "BENCH_0.json"
        bad.write_text("junk")
        os.utime(bad, (1, 1))
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        assert cbr.main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "warning: ignoring stale unreadable" in out
        assert "nothing to check" in out

    def test_corrupt_beside_single_older_file_fails(self, tmp_path):
        """One healthy file + a *newer* corrupt one: the corrupt file
        was presumably the latest run, so the gate must go red."""
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        (tmp_path / "BENCH_2.json").write_text("junk")
        assert cbr.main(["--dir", str(tmp_path)]) == 2

    def test_single_file_is_a_noop(self, tmp_path, capsys):
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        assert cbr.main(["--dir", str(tmp_path)]) == 0
        assert "nothing to check" in capsys.readouterr().out

    def test_corrupt_newest_file_fails_the_gate(self, tmp_path, capsys):
        """A truncated newest artifact must fail loudly, not sort itself
        out of the comparison and let stale files pass the check."""
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02",
                    [("t::a", 1.0, None)])
        (tmp_path / "BENCH_3.json").write_text('{"datetime": "2026-07-0')
        assert cbr.main(["--dir", str(tmp_path)]) == 2
        assert "BENCH_3.json" in capsys.readouterr().out

    def test_stale_corrupt_file_only_warns(self, tmp_path, capsys):
        """A months-old damaged artifact must not block the gate forever
        when the newest pair is intact and comparable."""
        import os

        bad = tmp_path / "BENCH_0.json"
        bad.write_text('{"datetime": "2026-01-0')
        os.utime(bad, (1, 1))  # far older than the healthy pair
        _bench_file(tmp_path / "BENCH_1.json", "2026-07-01",
                    [("t::a", 1.0, None)])
        _bench_file(tmp_path / "BENCH_2.json", "2026-07-02",
                    [("t::a", 1.0, None)])
        assert cbr.main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "warning: ignoring stale unreadable" in out
        assert "no throughput regressions" in out

    def test_bad_threshold_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            cbr.main(["--dir", str(tmp_path), "--threshold", "2.0"])
