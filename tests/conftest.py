"""Test-suite isolation for the on-disk functional-result cache.

CLI-level tests exercise ``repro experiment ... --functional`` and
``repro cache``, which default to the user-level cache directory
(``$REPRO_CACHE_DIR`` / ``~/.cache/repro/results``). Point the default
at a throwaway directory before any repro module resolves it, so the
suite neither reads stale user-cache entries (which could mask a
simulator change the salt failed to catch) nor litters the user's home
directory. Tests that need cache behavior construct explicit
:class:`repro.eval.resultcache.ResultCache` instances on ``tmp_path``.
"""

import os
import tempfile

import pytest

os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(prefix="repro-test-cache-")
# A REPRO_FAULTS leaking in from the caller's shell would arm fault
# injection for the entire suite (repro.faults reads it at import).
os.environ.pop("REPRO_FAULTS", None)
# REPRO_JOBS is deliberately left alone: `make nightly` exports
# REPRO_JOBS=0 so the slow functional tier runs on the parallel runner,
# and results are bit-equal at any worker count — the determinism tests
# that compare regimes pin their worker counts explicitly.


@pytest.fixture(autouse=True)
def _fault_injection_hygiene():
    """No test may leave the process-wide fault registry armed — a
    leaked registry would crash or corrupt every test that follows."""
    yield
    from repro import faults

    faults.reset()
