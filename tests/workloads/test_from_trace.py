"""Tests for the trace -> accelerator workload bridge."""

import numpy as np
import pytest

from repro.accel import S2TAAW, ZvcgSA
from repro.core.dbb import DBBSpec
from repro.models.specs import LayerKind
from repro.models.zoo import build_lenet5, build_tiny_cnn, build_tiny_mobilenet
from repro.workloads.from_trace import run_and_spec, spec_from_trace


def _traced(builder, shape, dap=None, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    model = builder(rng=rng)
    x = np.abs(rng.normal(size=shape))
    return model, model.forward(x, dap_spec=dap, **kwargs)


class TestSpecFromTrace:
    def test_gemm_shapes_carried_over(self):
        model, result = _traced(build_lenet5, (1, 28, 28, 1))
        spec = spec_from_trace(result)
        assert spec.layer("conv1").m == 576
        assert spec.layer("conv2").k == 150
        assert spec.layer("fc3").kind is LayerKind.FC
        assert len(spec.layers) == 5

    def test_first_layer_excluded_by_default(self):
        _, result = _traced(build_lenet5, (1, 28, 28, 1))
        spec = spec_from_trace(result)
        assert not spec.layer("conv1").weight_pruned
        assert spec.layer("conv2").weight_pruned

    def test_dap_trace_sets_a_nnz(self):
        _, result = _traced(build_tiny_cnn, (2, 16, 16, 8),
                            dap=DBBSpec(8, 3))
        spec = spec_from_trace(result)
        assert spec.layer("conv2").a_nnz == 3
        assert spec.layer("conv1").a_nnz == 8  # first GEMM never DAP'd

    def test_measured_densities_used(self):
        _, result = _traced(build_tiny_cnn, (2, 16, 16, 8),
                            dap=DBBSpec(8, 2))
        spec = spec_from_trace(result)
        conv2 = spec.layer("conv2")
        assert conv2.a_density <= 2 / 8 + 1e-9

    def test_depthwise_kind_and_exclusion(self):
        _, result = _traced(build_tiny_mobilenet, (1, 16, 16, 8))
        spec = spec_from_trace(result)
        dw = spec.layer("dw1")
        assert dw.kind is LayerKind.DWCONV
        assert not dw.weight_pruned

    def test_no_gemm_trace_rejected(self):
        from repro.nn.layers import ReLU
        from repro.nn.model import Sequential

        model = Sequential([ReLU(name="r")])
        result = model.forward(np.ones((1, 4)))
        with pytest.raises(ValueError):
            spec_from_trace(result)


class TestEndToEndPricing:
    def test_traced_workload_runs_on_accelerators(self):
        rng = np.random.default_rng(1)
        model = build_tiny_cnn(rng=rng)
        x = np.abs(rng.normal(size=(2, 16, 16, 8)))
        spec = run_and_spec(model, x, dap_spec=DBBSpec(8, 3))
        zvcg = ZvcgSA().run_model(spec)
        aw = S2TAAW().run_model(spec)
        assert aw.energy_uj < zvcg.energy_uj
        assert zvcg.total_cycles > 0

    def test_dap_trace_speeds_up_aw(self):
        rng = np.random.default_rng(2)
        model = build_tiny_cnn(rng=rng)
        x = np.abs(rng.normal(size=(2, 16, 16, 8)))
        dense_spec = run_and_spec(model, x)
        dap_spec = run_and_spec(model, x, dap_spec=DBBSpec(8, 2))
        aw = S2TAAW()
        dense_run = aw.run_model(dense_spec)
        dap_run = aw.run_model(dap_spec)
        assert dap_run.total_cycles < dense_run.total_cycles
