"""Tests for microbenchmark and typical-conv workload generators."""

import numpy as np
import pytest

from repro.core.dbb import DBBSpec
from repro.core.pruning import is_dbb_compliant
from repro.core.sparsity import density
from repro.models.specs import LayerKind
from repro.workloads import (
    TYPICAL_CONV,
    microbench_operands,
    sparsity_sweep,
    sweep_layer,
    typical_conv_layer,
)
from repro.workloads.microbench import SWEEP_SPARSITIES


class TestTypicalConv:
    def test_shape(self):
        layer = typical_conv_layer()
        assert (layer.m, layer.k, layer.n) == (3136, 1152, 256)
        assert layer.kind is LayerKind.CONV

    def test_density_to_nnz(self):
        layer = typical_conv_layer(0.5, 0.375)
        assert layer.w_nnz == 4
        assert layer.a_nnz == 3

    def test_module_constant(self):
        assert TYPICAL_CONV.a_nnz == 3
        assert TYPICAL_CONV.w_nnz == 4


class TestSweepLayer:
    def test_sparsity_mapping(self):
        layer = sweep_layer(0.875, 0.5)
        assert layer.w_nnz == 1
        assert layer.a_nnz == 4
        assert layer.w_density == pytest.approx(0.125)

    def test_validation(self):
        with pytest.raises(ValueError):
            sweep_layer(1.0, 0.5)
        with pytest.raises(ValueError):
            sweep_layer(0.5, -0.1)

    def test_sweep_covers_fig9_axis(self):
        layers = list(sparsity_sweep(a_sparsity=0.5))
        assert len(layers) == len(SWEEP_SPARSITIES)
        assert [l.w_nnz for l in layers] == [8, 6, 4, 3, 2, 1]

    def test_sweep_names_unique(self):
        names = [l.name for l in sparsity_sweep(0.2)]
        assert len(set(names)) == len(names)


class TestMicrobenchOperands:
    def test_shapes_and_sparsity(self):
        layer = sweep_layer(0.5, 0.5, m=32, k=64, n=16)
        a, w = microbench_operands(layer, rng=np.random.default_rng(0))
        assert a.shape == (32, 64)
        assert w.shape == (64, 16)
        assert density(a) == pytest.approx(0.5, abs=0.1)
        assert density(w) == pytest.approx(0.5, abs=0.02)

    def test_weights_dbb_compliant(self):
        layer = sweep_layer(0.5, 0.5, m=8, k=64, n=16)
        _, w = microbench_operands(layer, rng=np.random.default_rng(1))
        assert is_dbb_compliant(w.T, DBBSpec(8, 4))

    def test_unpadded_k_pruned(self):
        layer = sweep_layer(0.5, 0.5, m=8, k=60, n=16)
        _, w = microbench_operands(layer, rng=np.random.default_rng(2))
        padded = np.concatenate([w.T, np.zeros((16, 4), dtype=w.dtype)], axis=1)
        assert is_dbb_compliant(padded, DBBSpec(8, 4))

    def test_unstructured_option(self):
        layer = sweep_layer(0.5, 0.5, m=8, k=64, n=16)
        _, w = microbench_operands(layer, rng=np.random.default_rng(3),
                                   dbb_weights=False)
        assert density(w) == pytest.approx(0.5, abs=0.1)
