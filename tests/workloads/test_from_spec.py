"""Tests for spec-driven operand synthesis and the operand memo layers.

Covers the three memoization surfaces of the functional pipeline:
the from-spec :class:`OperandCache` (byte-budget LRU), the experiment
sweep memo :func:`repro.eval.functional_operands` (read-only guarantee),
and the weight-compression memo hit/miss accounting in
:func:`repro.core.gemm.compress_cached`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbb import DBBSpec
from repro.core.pruning import is_dbb_compliant
from repro.core.sparsity import density
from repro.models.specs import BLOCK_SIZE, LayerKind, LayerSpec
from repro.workloads.from_spec import (
    OperandCache,
    blocked_density_operand,
    operands_for_layer,
    spec_operands,
)


def _layer(m=64, k=96, n=32, w_nnz=4, a_nnz=4, w_density=None,
           a_density=None, name="L"):
    return LayerSpec(name, LayerKind.CONV, m=m, k=k, n=n,
                     w_nnz=w_nnz, a_nnz=a_nnz,
                     weight_density=w_density, act_density=a_density)


def _row_block_nnz(x):
    """Per-row DBB block non-zero counts (blocks never cross rows)."""
    pad = (-x.shape[1]) % BLOCK_SIZE
    xp = np.pad(x, ((0, 0), (0, pad)))
    return np.count_nonzero(
        xp.reshape(x.shape[0], -1, BLOCK_SIZE), axis=2)


class TestBlockedDensityOperand:
    @given(st.integers(1, 12), st.integers(1, 40), st.integers(1, 8),
           st.floats(0.05, 1.0), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_cap_and_shape_hold_on_ragged_widths(self, rows, width, cap,
                                                 dens, seed):
        rng = np.random.default_rng(seed)
        out = blocked_density_operand(rows, width, cap,
                                      min(dens, cap / BLOCK_SIZE), rng)
        assert out.shape == (rows, width)
        assert out.dtype == np.int8
        assert _row_block_nnz(out).max(initial=0) <= cap

    def test_density_matches_target(self):
        rng = np.random.default_rng(0)
        out = blocked_density_operand(512, 1200, 4, 0.45, rng)
        assert density(out) == pytest.approx(0.45, abs=0.01)

    def test_full_density_is_exact(self):
        rng = np.random.default_rng(1)
        out = blocked_density_operand(16, 37, 8, 1.0, rng)
        assert density(out) == 1.0

    def test_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            blocked_density_operand(4, 8, 0, 0.5, rng)
        with pytest.raises(ValueError):
            blocked_density_operand(4, 8, 4, 1.5, rng)


class TestSpecOperands:
    def test_shapes_and_compliance(self):
        layer = _layer(m=33, k=90, n=17, w_nnz=3, a_nnz=2,
                       a_density=0.2)
        a, w = spec_operands(layer)
        assert a.shape == (33, 90)
        assert w.shape == (90, 17)
        pad = (-90) % BLOCK_SIZE
        wt = np.concatenate(
            [w.T, np.zeros((17, pad), dtype=w.dtype)], axis=1)
        assert is_dbb_compliant(wt, DBBSpec(BLOCK_SIZE, 3))
        assert _row_block_nnz(a).max() <= 2

    def test_densities_track_spec(self):
        layer = _layer(m=256, k=512, n=128, w_nnz=4, a_nnz=4,
                       a_density=0.45)
        a, w = spec_operands(layer)
        assert density(w) == pytest.approx(0.5, abs=0.01)
        assert density(a) == pytest.approx(0.45, abs=0.01)

    def test_deterministic_per_seed(self):
        layer = _layer()
        a1, w1 = spec_operands(layer, seed=3)
        a2, w2 = spec_operands(layer, seed=3)
        a3, _ = spec_operands(layer, seed=4)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(w1, w2)
        assert not np.array_equal(a1, a3)

    def test_dap_is_noop_on_generated_activations(self):
        """All four execution modes must see the same element density."""
        from repro.core.dap import dap_prune

        layer = _layer(m=64, k=64, a_nnz=3, a_density=0.3)
        a, _ = spec_operands(layer)
        pruned = dap_prune(a, DBBSpec(BLOCK_SIZE, 3)).pruned
        np.testing.assert_array_equal(a, pruned)


class TestOperandCache:
    def test_hit_miss_accounting(self):
        cache = OperandCache(max_bytes=1 << 30)
        layer = _layer()
        a1, w1 = cache.get(layer)
        a2, w2 = cache.get(layer)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert a1 is a2 and w1 is w2
        cache.get(layer, seed=1)
        assert cache.stats()["misses"] == 2

    def test_arrays_are_read_only(self):
        cache = OperandCache(max_bytes=1 << 30)
        a, w = cache.get(_layer())
        with pytest.raises(ValueError):
            a[0, 0] = 1
        with pytest.raises(ValueError):
            w[0, 0] = 1

    def test_evicts_under_byte_budget(self):
        layer_bytes = 64 * 96 + 96 * 32  # one (A, W) pair
        cache = OperandCache(max_bytes=3 * layer_bytes)
        layers = [_layer(name=f"L{i}") for i in range(5)]
        for i, layer in enumerate(layers):
            cache.get(layer, seed=i)
        stats = cache.stats()
        assert stats["bytes"] <= cache.max_bytes
        assert stats["evictions"] >= 2
        assert len(cache) <= 3
        # The most recent entry is resident, the oldest evicted.
        cache.get(layers[-1], seed=4)
        assert cache.stats()["hits"] == 1
        cache.get(layers[0], seed=0)
        assert cache.stats()["misses"] == 6

    def test_lru_order_refreshes_on_hit(self):
        layer_bytes = 64 * 96 + 96 * 32
        cache = OperandCache(max_bytes=2 * layer_bytes)
        a = _layer(name="A")
        b = _layer(name="B")
        cache.get(a, seed=0)
        cache.get(b, seed=1)
        cache.get(a, seed=0)      # refresh A
        cache.get(_layer(name="C"), seed=2)  # evicts B, not A
        hits_before = cache.stats()["hits"]
        cache.get(a, seed=0)
        assert cache.stats()["hits"] == hits_before + 1

    def test_oversized_entry_not_retained(self):
        cache = OperandCache(max_bytes=64)
        a, w = cache.get(_layer())
        assert len(cache) == 0
        assert a.nbytes + w.nbytes > 64
        # still read-only and usable
        assert not a.flags.writeable

    def test_eviction_follows_insertion_order_without_hits(self):
        """With no intervening hits, the byte budget evicts strictly in
        insertion order (oldest first) — the LRU degenerates to FIFO."""
        layer_bytes = 64 * 96 + 96 * 32
        cache = OperandCache(max_bytes=2 * layer_bytes)
        layers = [_layer(name=f"O{i}") for i in range(4)]
        for i, layer in enumerate(layers):
            cache.get(layer, seed=i)
        assert cache.stats()["evictions"] == 2
        # Probe newest-first so hits don't perturb the order under test:
        # the two newest survive, the two oldest were evicted in order.
        cache.get(layers[3], seed=3)
        cache.get(layers[2], seed=2)
        assert cache.stats()["hits"] == 2
        cache.get(layers[1], seed=1)
        cache.get(layers[0], seed=0)
        assert cache.stats()["misses"] == 4 + 2

    def test_eviction_order_exact_sequence(self):
        """Pinpoint which entry each insertion evicts."""
        layer_bytes = 64 * 96 + 96 * 32
        cache = OperandCache(max_bytes=2 * layer_bytes)
        a, b, c = (_layer(name=n) for n in "ABC")
        cache.get(a, seed=0)
        cache.get(b, seed=1)
        assert cache.stats()["evictions"] == 0
        cache.get(c, seed=2)          # budget forces out A (oldest)
        assert cache.stats()["evictions"] == 1
        assert cache.stats()["bytes"] == 2 * layer_bytes
        cache.get(b, seed=1)          # hit: B was spared
        cache.get(c, seed=2)          # hit: C resident
        assert cache.stats()["hits"] == 2
        cache.get(a, seed=0)          # miss: A was the eviction victim
        assert cache.stats()["misses"] == 4
        assert cache.stats()["evictions"] == 2  # re-inserting A ousts B

    def test_budget_boundary_is_inclusive(self):
        """An entry whose bytes equal the budget exactly is retained."""
        layer = _layer()
        a, w = spec_operands(layer)
        exact = OperandCache(max_bytes=a.nbytes + w.nbytes)
        exact.get(layer)
        assert len(exact) == 1
        just_under = OperandCache(max_bytes=a.nbytes + w.nbytes - 1)
        just_under.get(layer)
        assert len(just_under) == 0

    def test_shared_across_variant_sweep(self):
        """One synthesis feeds every accelerator in a sweep."""
        from repro.accel import S2TAAW, ZvcgSA

        cache = OperandCache(max_bytes=1 << 30)
        layer = _layer(m=32, k=64, n=16, a_density=0.4)
        for accel in (ZvcgSA(), S2TAAW()):
            accel.run_layer_functional(layer, cache=cache)
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hits"] == 1

    def test_default_cache_used_by_helper(self):
        from repro.workloads.from_spec import default_operand_cache

        layer = _layer(m=8, k=16, n=8, name="default-cache-probe")
        a, w = operands_for_layer(layer, seed=12345)
        a2, _ = operands_for_layer(layer, seed=12345)
        assert a is a2
        assert default_operand_cache() is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            OperandCache(max_bytes=0)


class TestFunctionalOperandsMemo:
    def test_read_only_flags_enforced(self):
        from repro.eval import functional_operands

        a, w = functional_operands(16, 32, 8)
        assert not a.flags.writeable
        assert not w.flags.writeable
        with pytest.raises(ValueError):
            a[0, 0] = 1
        a2, w2 = functional_operands(16, 32, 8)
        assert a is a2 and w is w2  # lru_cache identity


class TestCompressCacheStats:
    def test_hit_miss_accounting_across_mode_sweep(self):
        """A WDBB density sweep compresses each weight tensor once."""
        from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
        from repro.core.gemm import (
            clear_compress_cache,
            compress_cache_stats,
        )

        layer = _layer(m=16, k=64, n=16, w_nnz=4, a_density=0.5)
        a, w = spec_operands(layer)
        sim = SystolicArray(SystolicConfig(
            rows=2, cols=2, mode=Mode.WDBB, w_spec=DBBSpec(8, 4),
            tpe_a=2, tpe_c=2))
        clear_compress_cache()
        for _ in range(3):
            sim.run_gemm(a, w)
        stats = compress_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        clear_compress_cache()
        assert compress_cache_stats() == {"hits": 0, "misses": 0,
                                          "entries": 0}

    def test_distinct_tensors_get_distinct_entries(self):
        """The memo is content-addressed: one miss per distinct weight
        tensor, independent of which layer/seed produced it."""
        from repro.core.gemm import (
            clear_compress_cache,
            compress_cache_stats,
            compress_cached,
        )

        clear_compress_cache()
        tensors = []
        for seed in range(3):
            _, w = spec_operands(_layer(m=8, k=64, n=8), seed=seed)
            tensors.append(np.ascontiguousarray(w.T))
        for w in tensors:
            compress_cached(w, DBBSpec(8, 4))
        assert compress_cache_stats()["misses"] == 3
        assert compress_cache_stats()["entries"] == 3
        for w in tensors:
            compress_cached(w, DBBSpec(8, 4))
        assert compress_cache_stats()["hits"] == 3
        # a different (looser) spec over the same bytes is its own entry
        compress_cached(tensors[0], DBBSpec(8, 8))
        assert compress_cache_stats()["misses"] == 4
        clear_compress_cache()

    def test_functional_layer_run_hits_compress_memo(self):
        """run_layer_functional on the W-DBB variant compresses each
        layer's weights once across repeated runs and density sweeps."""
        from repro.accel import S2TAW
        from repro.core.gemm import (
            clear_compress_cache,
            compress_cache_stats,
        )

        layer = _layer(m=16, k=64, n=16, a_density=0.5)
        cache = OperandCache(max_bytes=1 << 24)
        clear_compress_cache()
        accel = S2TAW(rows=2, cols=2, tpe_a=2, tpe_c=2)
        for _ in range(3):
            accel.run_layer_functional(layer, cache=cache)
        stats = compress_cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        clear_compress_cache()


def _worker_cache_probe(args):
    """Pool worker: exercise this process's default operand cache and
    report its budget/stats (module-level so the pool can pickle it)."""
    import os

    from repro.workloads.from_spec import default_operand_cache

    m, k, n, seed = args
    cache = default_operand_cache()
    layer = LayerSpec("probe", LayerKind.CONV, m=m, k=k, n=n,
                      w_nnz=4, a_nnz=4)
    a, w = cache.get(layer, seed=seed)
    return {
        "pid": os.getpid(),
        "max_bytes": cache.max_bytes,
        "current_bytes": cache.current_bytes,
        "misses": cache.misses,
        "read_only": (not a.flags.writeable) and (not w.flags.writeable),
    }


class TestOperandCacheMultiProcess:
    """The runner's documented process-local cache semantics: workers
    never corrupt or double-count the parent's byte budget."""

    def test_resize_rebudgets_and_evicts(self):
        cache = OperandCache(max_bytes=1 << 20)
        big = _layer(m=256, k=512, n=128)
        cache.get(big)
        assert cache.current_bytes > 0
        cache.resize(1)  # smaller than any entry: everything evicts
        assert cache.max_bytes == 1
        assert cache.current_bytes == 0
        assert len(cache) == 0
        with pytest.raises(ValueError):
            cache.resize(0)

    def test_resize_keeps_entries_within_new_budget(self):
        cache = OperandCache(max_bytes=1 << 22)
        small = _layer(m=8, k=16, n=8)
        cache.get(small)
        resident = cache.current_bytes
        cache.resize(resident + 1)
        assert len(cache) == 1
        assert cache.current_bytes == resident

    def test_workers_get_budget_share_and_parent_stays_intact(self):
        """Each pool worker runs under its budget share; the parent's
        cache never sees the workers' traffic (no double counting)."""
        from repro.eval.runner import _pool_context, _worker_init
        from repro.workloads.from_spec import default_operand_cache
        from concurrent.futures import ProcessPoolExecutor

        parent = default_operand_cache()
        parent_stats_before = parent.stats()
        workers = 4
        share = parent.max_bytes // workers
        jobs = [(64 + 8 * i, 96, 32, i) for i in range(8)]
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context(),
                initializer=_worker_init, initargs=(share,)) as pool:
            reports = list(pool.map(_worker_cache_probe, jobs))
        assert all(r["read_only"] for r in reports)
        assert all(r["max_bytes"] == share for r in reports)
        # Aggregate resident bytes across workers respect the parent
        # budget: every worker is individually capped at its share.
        assert all(r["current_bytes"] <= share for r in reports)
        per_pid_peak = {}
        for r in reports:
            per_pid_peak[r["pid"]] = max(
                per_pid_peak.get(r["pid"], 0), r["current_bytes"])
        assert sum(per_pid_peak.values()) <= parent.max_bytes
        # The parent's accounting is untouched by worker traffic.
        assert parent.stats() == parent_stats_before

    def test_thread_safety_under_concurrent_get(self):
        """Concurrent same-process getters never corrupt the budget
        accounting (the lock added for the parallel runner)."""
        import threading

        cache = OperandCache(max_bytes=1 << 22)
        layers = [_layer(m=16 + i, k=64, n=16, name=f"t{i}")
                  for i in range(6)]
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    for layer in layers:
                        cache.get(layer)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        resident = sum(a.nbytes + w.nbytes
                       for a, w in cache._entries.values())
        assert cache.current_bytes == resident
        assert cache.current_bytes <= cache.max_bytes
