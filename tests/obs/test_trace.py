"""Trace integrity: the span/event tracer (:mod:`repro.obs.trace`).

The contracts the PR-8 acceptance criteria pin:

- every span emits a matched B/E pair with valid pid/tid and correct
  nesting (a child's B/E falls inside its parent's on the same track);
- the merged multi-worker trace round-trips through ``json.loads``
  with **stable field names** (the Chrome trace-event schema, pinned
  verbatim in :class:`TestSchemaPin` — breaking it breaks saved
  Perfetto workflows);
- disabled tracing is a no-op: the shared null span, no allocation per
  call site, no files touched.
"""

import json
import os
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    SCHEMA_VERSION,
    Tracer,
    TraceSession,
    reset_for_worker,
    span,
    start_tracing,
    stop_tracing,
    traced,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test starts and ends with tracing disabled."""
    stop_tracing()
    yield
    stop_tracing()


class FakeClock:
    """Deterministic injectable clock (ns), advancing 1 ms per call."""

    def __init__(self, start_ns: int = 0, step_ns: int = 1_000_000):
        self.now = start_ns
        self.step = step_ns

    def __call__(self) -> int:
        self.now += self.step
        return self.now


def _shard_events(tracer: Tracer):
    tracer.close()
    return [json.loads(line) for line in
            tracer.shard_path.read_text().splitlines()]


class TestSchemaPin:
    """The emitted event schema, field by field. Changing any name or
    type here is a trace-format break: bump SCHEMA_VERSION and update
    docs/observability.md alongside this test."""

    def test_schema_version(self):
        assert SCHEMA_VERSION == 1

    def test_span_event_fields(self, tmp_path):
        tracer = Tracer(tmp_path / "s.jsonl", clock=FakeClock())
        with tracer.span("work", "phase", detail=3):
            pass
        meta, begin, end = _shard_events(tracer)
        assert meta["ph"] == "M"
        assert meta["name"] == "process_name"
        assert set(begin) == {"name", "cat", "ph", "ts", "pid", "tid",
                              "args"}
        assert set(end) == {"name", "cat", "ph", "ts", "pid", "tid"}
        assert begin["ph"] == "B" and end["ph"] == "E"
        assert begin["name"] == end["name"] == "work"
        assert begin["cat"] == end["cat"] == "phase"
        assert begin["args"] == {"detail": 3}
        # Injected clock: 1 ms per sample, emitted as integer µs.
        assert isinstance(begin["ts"], int)
        assert end["ts"] - begin["ts"] == 1_000

    def test_pid_tid_are_real(self, tmp_path):
        tracer = Tracer(tmp_path / "s.jsonl")
        with tracer.span("w"):
            pass
        events = _shard_events(tracer)
        assert all(e["pid"] == os.getpid() for e in events)
        assert all(e["tid"] == threading.get_native_id() for e in events)


class TestSpanIntegrity:
    def test_every_span_has_matched_begin_end(self, tmp_path):
        tracer = Tracer(tmp_path / "s.jsonl", clock=FakeClock())
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        events = _shard_events(tracer)
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 5
        assert [b["name"] for b in begins] == [e["name"] for e in ends]

    def test_nesting_order(self, tmp_path):
        """A child's B/E pair falls strictly inside its parent's."""
        tracer = Tracer(tmp_path / "s.jsonl", clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        phases = [(e["name"], e["ph"]) for e in _shard_events(tracer)
                  if e["ph"] in "BE"]
        assert phases == [("outer", "B"), ("inner", "B"),
                          ("inner", "E"), ("outer", "E")]

    def test_exception_still_closes_span(self, tmp_path):
        tracer = Tracer(tmp_path / "s.jsonl")
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        events = _shard_events(tracer)
        assert [e["ph"] for e in events if e["name"] == "doomed"] \
            == ["B", "E"]


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        assert not tracing_enabled()
        a = span("x", "y", arg=1)
        b = span("z")
        assert a is b  # the shared singleton — no per-call allocation
        with a:
            pass

    def test_traced_decorator_passthrough(self):
        calls = []

        @traced("f", "test")
        def f(x):
            calls.append(x)
            return x * 2

        assert f(21) == 42
        assert calls == [21]


class TestSessionMerge:
    def test_merged_trace_round_trips(self, tmp_path):
        """Parent + synthetic worker shards merge into one artifact
        that round-trips through ``json.loads`` with per-pid tracks."""
        out = tmp_path / "trace.json"
        session = start_tracing(out)
        with span("experiment", "experiment"):
            pass
        # Simulate two pool workers joining via their shard files.
        for fake_pid in (99991, 99992):
            worker = Tracer(
                session.shard_dir / f"worker-{fake_pid}.jsonl",
                clock=FakeClock(),
                process_label=f"repro pool worker {fake_pid}")
            worker.pid = fake_pid
            with worker.span("conv1", "layer"):
                pass
            worker.close()
        path = stop_tracing()
        assert path == out
        payload = json.loads(out.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit",
                                "otherData"}
        assert payload["otherData"]["schemaVersion"] == SCHEMA_VERSION
        events = payload["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {os.getpid(), 99991, 99992}
        labels = {(e["args"] or {}).get("name")
                  for e in events if e["ph"] == "M"}
        assert "repro pool worker 99991" in labels
        # The shard directory is consumed by the merge.
        assert not session.shard_dir.exists()

    def test_truncated_worker_tail_is_skipped(self, tmp_path):
        session = start_tracing(tmp_path / "t.json")
        shard = session.shard_dir / "worker-123.jsonl"
        good = json.dumps({"name": "ok", "cat": "c", "ph": "i",
                           "ts": 1, "pid": 123, "tid": 1})
        shard.write_text(good + "\n" + '{"name": "half')
        path = stop_tracing()
        names = [e["name"]
                 for e in json.loads(path.read_text())["traceEvents"]]
        assert "ok" in names

    def test_double_start_rejected(self, tmp_path):
        start_tracing(tmp_path / "a.json")
        with pytest.raises(RuntimeError, match="already active"):
            start_tracing(tmp_path / "b.json")

    def test_stop_without_session_is_none(self):
        assert stop_tracing() is None

    def test_stale_shards_cleaned_on_start(self, tmp_path):
        out = tmp_path / "t.json"
        shard_dir = tmp_path / "t.json.shards"
        shard_dir.mkdir()
        (shard_dir / "worker-1.jsonl").write_text(
            json.dumps({"name": "stale", "cat": "c", "ph": "i",
                        "ts": 1, "pid": 1, "tid": 1}) + "\n")
        start_tracing(out)
        path = stop_tracing()
        names = [e["name"]
                 for e in json.loads(path.read_text())["traceEvents"]]
        assert "stale" not in names


class TestWorkerReset:
    def test_reset_without_shard_dir_disables(self, tmp_path):
        start_tracing(tmp_path / "t.json")
        assert tracing_enabled()
        reset_for_worker(None)
        assert not tracing_enabled()
        assert obs_trace.active_shard_dir() is None

    def test_reset_with_shard_dir_opens_worker_shard(self, tmp_path):
        shard_dir = tmp_path / "shards"
        shard_dir.mkdir()
        reset_for_worker(str(shard_dir))
        try:
            assert tracing_enabled()
            with span("work", "layer"):
                pass
            shard = shard_dir / f"worker-{os.getpid()}.jsonl"
            assert shard.exists()
            names = [json.loads(line)["name"]
                     for line in shard.read_text().splitlines()]
            assert "work" in names
        finally:
            reset_for_worker(None)


class TestEngineIntegration:
    """The merged trace of a real parallel run: per-worker tracks and
    every instrumented phase present (the tentpole wiring, end to end)."""

    @pytest.mark.functional
    def test_parallel_run_produces_per_worker_tracks(self, tmp_path):
        from repro.accel import ZvcgSA
        from repro.eval.runner import LayerSimTask, simulate_layer_tasks
        from repro.models import get_spec
        from repro.workloads.from_spec import default_operand_cache

        layers = get_spec("alexnet").conv_layers[:4]
        tasks = [LayerSimTask(ZvcgSA(), layer, max_m=16)
                 for layer in layers]
        default_operand_cache().clear()
        start_tracing(tmp_path / "run.json")
        simulate_layer_tasks(tasks, jobs=2)
        path = stop_tracing()
        events = json.loads(path.read_text())["traceEvents"]
        worker_pids = {e["pid"] for e in events
                       if e["ph"] == "M"
                       and "pool worker" in (e["args"] or {})["name"]}
        assert len(worker_pids) >= 1
        assert worker_pids.isdisjoint({os.getpid()})
        cats = {e["cat"] for e in events}
        assert {"runner", "layer", "synthesize", "simulate"} <= cats
        # Matched B/E per (pid, tid) — integrity at real concurrency.
        for pid in {e["pid"] for e in events}:
            track = [e for e in events if e["pid"] == pid]
            assert (len([e for e in track if e["ph"] == "B"])
                    == len([e for e in track if e["ph"] == "E"]))
