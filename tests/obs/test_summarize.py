"""Offline trace attribution (:mod:`repro.obs.summarize`).

Synthetic traces with known timings, so self-time arithmetic, coverage
and unmatched-event accounting are asserted exactly.
"""

import json

import pytest

from repro.obs.summarize import (
    load_trace_events,
    render_summary,
    summarize_trace,
)


def _event(name, ph, ts, pid=1, tid=1, cat="work"):
    return {"name": name, "cat": cat, "ph": ph, "ts": ts,
            "pid": pid, "tid": tid}


def _write(tmp_path, events):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps({"traceEvents": events,
                                "displayTimeUnit": "ms"}))
    return path


class TestPairing:
    def test_self_time_excludes_children(self, tmp_path):
        # outer [0, 100] contains inner [10, 40]: outer self = 70.
        path = _write(tmp_path, [
            _event("outer", "B", 0),
            _event("inner", "B", 10),
            _event("inner", "E", 40),
            _event("outer", "E", 100),
        ])
        summary = summarize_trace(path)
        rows = {(r["name"], r["cat"]): r for r in summary["top_spans"]}
        assert rows[("outer", "work")]["total_us"] == 100
        assert rows[("outer", "work")]["self_us"] == 70
        assert rows[("inner", "work")]["self_us"] == 30
        # Self time partitions the track: full coverage.
        assert summary["wall_us"] == 100
        assert summary["attributed_us"] == 100
        assert summary["coverage"] == 1.0

    def test_tracks_are_per_pid(self, tmp_path):
        path = _write(tmp_path, [
            _event("a", "B", 0, pid=1), _event("a", "E", 50, pid=1),
            _event("b", "B", 0, pid=2), _event("b", "E", 30, pid=2),
        ])
        summary = summarize_trace(path)
        assert set(summary["tracks"]) == {"1", "2"}
        assert summary["wall_us"] == 80  # 50 + 30, summed per track

    def test_same_name_different_cat_not_merged(self, tmp_path):
        path = _write(tmp_path, [
            _event("conv1", "B", 0, cat="synthesize"),
            _event("conv1", "E", 10, cat="synthesize"),
            _event("conv1", "B", 20, cat="simulate"),
            _event("conv1", "E", 50, cat="simulate"),
        ])
        rows = summarize_trace(path)["top_spans"]
        assert {(r["name"], r["cat"]) for r in rows} \
            == {("conv1", "synthesize"), ("conv1", "simulate")}

    def test_unmatched_events_counted_not_fatal(self, tmp_path):
        path = _write(tmp_path, [
            _event("orphan-end", "E", 5),
            _event("ok", "B", 10), _event("ok", "E", 20),
            _event("dangling-begin", "B", 30),
        ])
        summary = summarize_trace(path)
        assert summary["spans"] == 1
        assert summary["unmatched_events"] == 2

    def test_per_category_attribution(self, tmp_path):
        path = _write(tmp_path, [
            _event("x", "B", 0, cat="synthesize"),
            _event("x", "E", 40, cat="synthesize"),
            _event("y", "B", 40, cat="simulate"),
            _event("y", "E", 100, cat="simulate"),
        ])
        by_cat = summarize_trace(path)["by_category_self_us"]
        assert by_cat == {"simulate": 60, "synthesize": 40}

    def test_metadata_labels_tracks(self, tmp_path):
        path = _write(tmp_path, [
            {"name": "process_name", "cat": "__metadata", "ph": "M",
             "ts": 0, "pid": 7, "tid": 1,
             "args": {"name": "repro pool worker 7"}},
            _event("a", "B", 0, pid=7), _event("a", "E", 10, pid=7),
        ])
        summary = summarize_trace(path)
        assert summary["tracks"]["7"]["label"] == "repro pool worker 7"


class TestLoading:
    def test_bare_array_form(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps([_event("a", "B", 0),
                                    _event("a", "E", 1)]))
        assert len(load_trace_events(path)) == 2

    def test_non_list_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": "nope"}))
        with pytest.raises(ValueError, match="not a list"):
            load_trace_events(path)


class TestRender:
    def test_render_mentions_coverage_and_top_spans(self, tmp_path):
        path = _write(tmp_path, [
            _event("outer", "B", 0), _event("outer", "E", 2_000_000),
        ])
        text = render_summary(summarize_trace(path))
        assert "coverage : 100.0%" in text
        assert "outer" in text
        assert "2.00s" in text

    def test_top_k_limits_rows(self, tmp_path):
        events = []
        for i in range(8):
            events.append(_event(f"s{i}", "B", i * 10))
            events.append(_event(f"s{i}", "E", i * 10 + 5))
        path = _write(tmp_path, events)
        assert len(summarize_trace(path, top=3)["top_spans"]) == 3
