"""The shared logging configuration (:mod:`repro.obs.logs`)."""

import logging

from repro.obs.logs import (
    OUT_LOGGER_NAME,
    configure_logging,
    get_logger,
    output_logger,
)


class TestChannels:
    def test_diagnostics_go_to_stderr(self, capsys):
        configure_logging(verbosity=0)
        get_logger("repro.test").warning("something odd")
        captured = capsys.readouterr()
        assert "something odd" in captured.err
        assert "something odd" not in captured.out

    def test_payload_goes_to_stdout_undecorated(self, capsys):
        configure_logging(verbosity=0)
        output_logger().info("%s", "table output")
        captured = capsys.readouterr()
        assert captured.out == "table output\n"
        assert captured.err == ""

    def test_quiet_silences_payload(self, capsys):
        configure_logging(verbosity=-1)
        output_logger().info("%s", "table output")
        assert capsys.readouterr().out == ""
        configure_logging(verbosity=0)  # restore for later tests

    def test_verbose_enables_debug(self, capsys):
        configure_logging(verbosity=1)
        get_logger("repro.test").debug("detail")
        assert "detail" in capsys.readouterr().err
        configure_logging(verbosity=0)
        get_logger("repro.test").debug("gone")
        assert "gone" not in capsys.readouterr().err


class TestConfiguration:
    def test_idempotent_no_duplicate_handlers(self, capsys):
        for _ in range(3):
            configure_logging(verbosity=0)
        output_logger().info("%s", "once")
        assert capsys.readouterr().out == "once\n"

    def test_foreign_names_rerooted(self):
        assert get_logger("tools.check").name == "repro.tools.check"
        assert get_logger("repro.eval").name == "repro.eval"
        assert get_logger("repro").name == "repro"

    def test_out_logger_does_not_propagate(self):
        assert logging.getLogger(OUT_LOGGER_NAME).propagate is False
