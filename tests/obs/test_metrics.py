"""The metrics registry (:mod:`repro.obs.metrics`) and its JSON form.

The dump schema is pinned (``repro.obs.metrics/v1``): the metrics JSON
lands next to experiment artifacts via ``--metrics-out`` and external
dashboards key on its field names.
"""

import json

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)


class TestCounter:
    def test_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("runner.tasks")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            MetricsRegistry().counter("x").inc(-1)

    def test_same_name_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("a")


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("runner.compute_ns")
        for v in (10, 20, 60):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 90
        assert h.min == 10 and h.max == 60
        assert h.mean == 30

    def test_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1, 10, 100))
        for v in (0, 5, 50, 5000):
            h.observe(v)
        data = h.as_dict()
        assert data["buckets"] == {"1": 1, "10": 1, "100": 1, "inf": 1}


class TestRegistryExport:
    def test_dump_schema_pinned(self, tmp_path):
        """Field names of the --metrics-out JSON artifact."""
        reg = MetricsRegistry()
        reg.counter("runner.tasks").inc(7)
        reg.gauge("runner.pool_workers").set(4)
        reg.histogram("runner.compute_ns").observe(1000)
        out = tmp_path / "metrics.json"
        reg.dump_json(out)
        payload = json.loads(out.read_text())
        assert set(payload) == {"schema", "metrics"}
        assert payload["schema"] == "repro.obs.metrics/v1"
        metrics = payload["metrics"]
        assert metrics["runner.tasks"] == {"type": "counter", "value": 7}
        assert metrics["runner.pool_workers"] == {"type": "gauge",
                                                  "value": 4}
        hist = metrics["runner.compute_ns"]
        assert set(hist) == {"type", "count", "sum", "min", "max",
                             "mean", "buckets"}
        assert hist["type"] == "histogram"

    def test_merge_counts(self):
        """The worker-telemetry fold: flat name->count mappings sum
        into prefixed counters (how per-worker cache stats aggregate)."""
        reg = MetricsRegistry()
        reg.merge_counts({"hits": 3, "misses": 1},
                         prefix="operand_cache.")
        reg.merge_counts({"hits": 2}, prefix="operand_cache.")
        assert reg.counter("operand_cache.hits").value == 5
        assert reg.counter("operand_cache.misses").value == 1

    def test_render_groups_by_prefix(self):
        reg = MetricsRegistry()
        reg.counter("runner.tasks").inc(2)
        reg.counter("operand_cache.hits").inc(1)
        text = reg.render()
        assert "runner.tasks" in text
        assert "operand_cache.hits" in text
        assert text.index("operand_cache.hits") < text.index("runner.tasks")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.render() == "metrics: (empty)"


class TestDefaultRegistry:
    def test_process_wide_singleton(self):
        assert default_registry() is default_registry()

    def test_reset_default(self):
        default_registry().counter("test.only").inc()
        reset_default_registry()
        assert default_registry().counter("test.only").value == 0


class TestRunnerAggregation:
    """The lost-stats fix, end to end: a parallel run's worker-side
    operand-cache counters land in the parent's registry."""

    @pytest.mark.functional
    def test_worker_cache_stats_survive_pool_exit(self):
        from repro.accel import ZvcgSA
        from repro.eval.runner import LayerSimTask, simulate_layer_tasks
        from repro.models import get_spec
        from repro.workloads.from_spec import default_operand_cache

        layers = get_spec("alexnet").conv_layers[:3]
        tasks = [LayerSimTask(ZvcgSA(), layer, max_m=16)
                 for layer in layers]
        default_operand_cache().clear()
        reset_default_registry()
        simulate_layer_tasks(tasks, jobs=2)
        reg = default_registry()
        # Workers synthesized the operands (parent never did), yet the
        # misses are visible here — returned with the task payloads.
        assert reg.counter("operand_cache.misses").value >= len(layers)
        assert reg.counter("runner.tasks").value == len(tasks)
        assert reg.counter("runner.simulated").value == len(tasks)
        assert reg.histogram("runner.compute_ns").count == len(tasks)
        assert reg.histogram("runner.queue_wait_ns").count == len(tasks)
        assert reg.histogram("runner.tasks_per_worker").count >= 1

    def test_serial_path_stats_also_aggregate(self):
        from repro.accel import ZvcgSA
        from repro.eval.runner import LayerSimTask, simulate_layer_tasks
        from repro.models import get_spec
        from repro.workloads.from_spec import OperandCache

        layers = get_spec("alexnet").conv_layers[:2]
        tasks = [LayerSimTask(ZvcgSA(), layer, max_m=8)
                 for layer in layers]
        reset_default_registry()
        cache = OperandCache()
        simulate_layer_tasks(tasks, jobs=1, operand_cache=cache)
        reg = default_registry()
        assert reg.counter("operand_cache.misses").value == len(layers)
        assert reg.histogram("runner.compute_ns").count == len(tasks)
