"""Tests for technology scaling, cost constants and the energy/area model."""

import pytest

from repro.arch.events import EventCounts
from repro.energy import (
    DEFAULT_COSTS,
    AreaModel,
    CostModel,
    EnergyModel,
    get_tech,
)
from repro.energy.model import EnergyBreakdown


class TestTech:
    def test_nodes_present(self):
        assert get_tech("16nm").energy_scale == 1.0
        assert get_tech("65nm").energy_scale > 1.0
        assert get_tech("45nm").energy_scale > 1.0

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            get_tech("7nm")

    def test_clock_ordering(self):
        # Older nodes clock slower.
        assert get_tech("16nm").clock_ghz > get_tech("65nm").clock_ghz

    def test_cycle_time(self):
        assert get_tech("65nm").cycle_time_ns == pytest.approx(2.0)


class TestCostModel:
    def test_default_valid(self):
        assert DEFAULT_COSTS.mac_pj > 0

    def test_gated_must_be_cheaper(self):
        with pytest.raises(ValueError):
            CostModel(mac_pj=0.05, gated_mac_pj=0.06)
        with pytest.raises(ValueError):
            CostModel(operand_reg_pj=0.03, gated_operand_reg_pj=0.04)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            CostModel(mac_pj=0.0, gated_mac_pj=0.0)


class TestEnergyBreakdown:
    def test_total_and_fractions(self):
        b = EnergyBreakdown(datapath=20, buffers=49, sram=21, actfn=10)
        assert b.total_pj == 100
        fracs = b.fractions()
        assert fracs["buffers"] == pytest.approx(0.49)
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_empty_fractions(self):
        assert EnergyBreakdown().fractions()["sram"] == 0.0

    def test_add_and_scale(self):
        a = EnergyBreakdown(datapath=1, sram=2)
        b = EnergyBreakdown(datapath=3, dap=1)
        c = a + b
        assert c.datapath == 4
        assert c.sram == 2
        assert c.dap == 1
        assert a.scaled(2.0).datapath == 2


class TestEnergyModel:
    def test_tech_scaling_multiplies_everything(self):
        events = EventCounts(mac_ops=1000, operand_reg_ops=2000,
                             sram_a_read_bytes=500, cycles=100)
        e16 = EnergyModel("16nm").total_pj(events)
        e65 = EnergyModel("65nm").total_pj(events)
        assert e65 == pytest.approx(e16 * get_tech("65nm").energy_scale)

    def test_gated_events_cheaper(self):
        model = EnergyModel()
        active = EventCounts(mac_ops=1000)
        gated = EventCounts(gated_mac_ops=1000)
        assert model.total_pj(gated) < model.total_pj(active)

    def test_actfn_charged_per_cycle(self):
        model = EnergyModel()
        short = model.breakdown(EventCounts(cycles=100))
        long = model.breakdown(EventCounts(cycles=200))
        assert long.actfn == pytest.approx(2 * short.actfn)
        assert short.datapath == 0.0

    def test_energy_per_mac(self):
        model = EnergyModel()
        events = EventCounts(mac_ops=50, gated_mac_ops=50)
        per_mac = model.energy_per_mac_pj(events)
        assert per_mac == pytest.approx(
            (50 * DEFAULT_COSTS.mac_pj + 50 * DEFAULT_COSTS.gated_mac_pj) / 100
        )

    def test_average_power(self):
        model = EnergyModel("16nm")
        events = EventCounts(mac_ops=1_000_000, cycles=1000)
        # 1000 cycles @ 1 GHz = 1 us
        expected_w = model.total_pj(events) * 1e-12 / 1e-6
        assert model.average_power_w(events) == pytest.approx(expected_w)

    def test_zero_cycles_power(self):
        assert EnergyModel().average_power_w(EventCounts()) == 0.0


class TestAreaModel:
    def test_table4_sa_zvcg_area(self):
        # 2048 MACs, 6 B/MAC buffers, 2.5 MB SRAM, 4 MCUs -> ~3.7 mm^2.
        area = AreaModel(macs=2048, buffer_bytes_per_mac=6.0)
        assert area.total_mm2 == pytest.approx(3.7, abs=0.15)

    def test_table4_s2ta_aw_area(self):
        area = AreaModel(macs=2048, buffer_bytes_per_mac=4.75, has_dap=True)
        assert area.total_mm2 == pytest.approx(3.8, abs=0.25)

    def test_smt_buffers_cost_area(self):
        sa = AreaModel(macs=2048, buffer_bytes_per_mac=6.0)
        smt = AreaModel(macs=2048, buffer_bytes_per_mac=20.0)
        assert smt.total_mm2 > sa.total_mm2 + 0.3

    def test_tech_scaling(self):
        a16 = AreaModel(macs=2048, buffer_bytes_per_mac=6.0, tech="16nm")
        a65 = AreaModel(macs=2048, buffer_bytes_per_mac=6.0, tech="65nm")
        assert a65.total_mm2 == pytest.approx(a16.total_mm2 * 9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaModel(macs=0, buffer_bytes_per_mac=1.0)
        with pytest.raises(ValueError):
            AreaModel(macs=1, buffer_bytes_per_mac=-1.0)

    def test_breakdown_sums_to_total(self):
        area = AreaModel(macs=2048, buffer_bytes_per_mac=4.75, has_dap=True)
        assert sum(area.breakdown_mm2().values()) == pytest.approx(area.total_mm2)
