"""Tests for the INT8 quantization substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    INT8_MAX,
    INT8_MIN,
    QuantParams,
    QuantizedTensor,
    dequantize,
    quantize,
    quantize_params,
    requantize,
    requantize_multiplier,
    saturating_cast,
)


class TestQuantParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=200)

    def test_symmetric_flag(self):
        assert QuantParams(0.1).is_symmetric
        assert not QuantParams(0.1, zero_point=3).is_symmetric


class TestQuantizeParams:
    def test_symmetric_maps_max_to_127(self):
        params = quantize_params(-2.0, 1.0, symmetric=True)
        assert params.zero_point == 0
        assert quantize(np.array([-2.0]), params)[0] == -127

    def test_asymmetric_covers_range(self):
        params = quantize_params(0.0, 10.0, symmetric=False)
        q = quantize(np.array([0.0, 10.0]), params)
        assert q[0] == params.zero_point
        assert q[1] == INT8_MAX

    def test_zero_always_exact_asymmetric(self):
        params = quantize_params(-3.0, 7.0, symmetric=False)
        assert dequantize(np.array([params.zero_point]), params)[0] == 0.0

    def test_degenerate_range(self):
        params = quantize_params(0.0, 0.0)
        assert params.scale > 0

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            quantize_params(1.0, -1.0)


class TestSaturatingCast:
    def test_saturates_both_ends(self):
        out = saturating_cast(np.array([1000.0, -1000.0]))
        assert out[0] == INT8_MAX
        assert out[1] == INT8_MIN

    def test_rounds_to_nearest(self):
        out = saturating_cast(np.array([1.4, 1.6, -1.6]))
        np.testing.assert_array_equal(out, [1, 2, -2])


class TestRoundTrip:
    @given(st.floats(0.01, 100.0), st.integers(0, 20))
    @settings(max_examples=50)
    def test_property_roundtrip_error_bounded(self, spread, seed):
        rng = np.random.default_rng(seed)
        real = rng.normal(0, spread, size=64)
        params = quantize_params(float(real.min()), float(real.max()))
        recon = dequantize(quantize(real, params), params)
        # Quantization error is at most half a step except at saturation.
        assert np.max(np.abs(recon - real)) <= params.scale * 0.5 + 1e-9

    def test_quantized_tensor_wrapper(self):
        real = np.linspace(-1, 1, 32)
        qt = QuantizedTensor.from_real(real)
        assert qt.q.dtype == np.int8
        assert qt.shape == (32,)
        assert qt.quantization_error(real) < qt.params.scale

    def test_wrapper_rejects_non_int8(self):
        with pytest.raises(ValueError):
            QuantizedTensor(np.zeros(4, dtype=np.int32), QuantParams(0.1))


class TestRequantize:
    def test_multiplier_decomposition(self):
        for real_mult in (0.0003, 0.02, 0.5, 0.99):
            m, shift = requantize_multiplier(real_mult)
            assert (1 << 30) <= m < (1 << 31)
            recon = m / (1 << 31) / (1 << shift) if shift >= 0 else (
                m / (1 << 31) * (1 << -shift))
            assert recon == pytest.approx(real_mult, rel=1e-6)

    def test_invalid_multiplier(self):
        with pytest.raises(ValueError):
            requantize_multiplier(0.0)

    def test_requantize_matches_float_reference(self):
        rng = np.random.default_rng(3)
        acc = rng.integers(-(1 << 20), 1 << 20, size=256)
        real_mult = 0.00217
        m, shift = requantize_multiplier(real_mult)
        out = requantize(acc, m, shift)
        ref = saturating_cast(acc * real_mult)
        # Fixed-point rounding may differ by 1 LSB near .5 boundaries.
        assert np.max(np.abs(out.astype(int) - ref.astype(int))) <= 1

    def test_zero_point_applied(self):
        out = requantize(np.array([0]), 1 << 30, 0, zero_point=5)
        assert out[0] == 5

    @given(st.floats(1e-4, 0.9), st.integers(0, 10))
    @settings(max_examples=30)
    def test_property_requantize_close_to_float(self, real_mult, seed):
        rng = np.random.default_rng(seed)
        acc = rng.integers(-(1 << 16), 1 << 16, size=64)
        m, shift = requantize_multiplier(real_mult)
        out = requantize(acc, m, shift).astype(int)
        ref = saturating_cast(acc * real_mult).astype(int)
        assert np.max(np.abs(out - ref)) <= 1
