"""Tests for the DBB block format (paper Fig. 4/5 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbb import (
    DBBBlock,
    DBBSpec,
    compress,
    compress_block,
    decompress,
    expand_block,
    mask_to_positions,
    pad_to_blocks,
    positions_to_mask,
)


class TestDBBSpec:
    def test_default_is_paper_4_of_8(self):
        spec = DBBSpec()
        assert spec.block_size == 8
        assert spec.max_nnz == 4
        assert spec.ratio == "4/8"

    def test_density_bound(self):
        assert DBBSpec(8, 4).density_bound == 0.5
        assert DBBSpec(8, 2).density_bound == 0.25
        assert DBBSpec(4, 2).density_bound == 0.5

    def test_dense_fallback_spec(self):
        assert DBBSpec(8, 8).is_dense
        assert not DBBSpec(8, 7).is_dense

    def test_invalid_nnz_rejected(self):
        with pytest.raises(ValueError):
            DBBSpec(8, 0)
        with pytest.raises(ValueError):
            DBBSpec(8, 9)

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            DBBSpec(0, 0)

    def test_compressed_bytes_int8(self):
        spec = DBBSpec(8, 4)
        assert spec.compressed_value_bytes(1) == 4
        assert spec.mask_bytes() == 1.0
        assert spec.compressed_block_bytes(1) == 5.0

    def test_compression_ratio(self):
        # 8 dense bytes vs 4 values + 1 mask byte.
        assert DBBSpec(8, 4).compression_ratio(1) == pytest.approx(8 / 5)

    def test_with_nnz(self):
        spec = DBBSpec(8, 4).with_nnz(2)
        assert spec.max_nnz == 2
        assert spec.block_size == 8


class TestBitmask:
    def test_fig5_style_mask(self):
        # Fig. 8: positions {0, 2, 3, 6} encode as 8'h4D.
        assert positions_to_mask([0, 2, 3, 6], 8) == 0x4D

    def test_fig8_top1_mask(self):
        # Fig. 8 Top-1 of [0,4,1,5,2,6,-1,-7]: position 7 (-7)... the figure
        # lists Top-1 M=8'h04? The largest magnitude first selected in the
        # cascade example yields masks 04, 05, 0D, 4D, 4F cumulatively.
        assert positions_to_mask([2], 8) == 0x04
        assert positions_to_mask([0, 2], 8) == 0x05
        assert positions_to_mask([0, 2, 3], 8) == 0x0D
        assert positions_to_mask([0, 2, 3, 6], 8) == 0x4D
        assert positions_to_mask([0, 1, 2, 3, 6], 8) == 0x4F

    def test_roundtrip(self):
        for positions in ([], [0], [7], [1, 3, 5], list(range(8))):
            mask = positions_to_mask(positions, 8)
            assert mask_to_positions(mask, 8) == sorted(positions)

    def test_duplicate_position_rejected(self):
        with pytest.raises(ValueError):
            positions_to_mask([1, 1], 8)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            positions_to_mask([8], 8)
        with pytest.raises(ValueError):
            mask_to_positions(1 << 8, 8)

    @given(st.sets(st.integers(0, 7)))
    def test_property_roundtrip(self, positions):
        mask = positions_to_mask(sorted(positions), 8)
        assert set(mask_to_positions(mask, 8)) == positions


class TestCompressBlock:
    def test_fig5_example(self):
        # A 4/8 block keeps 4 values and the bitmask of their positions.
        spec = DBBSpec(8, 4)
        block = compress_block(np.array([0, 5, 0, -3, 0, 0, 7, 1]), spec)
        assert block.nnz == 4
        assert block.positions == [1, 3, 6, 7]
        assert list(block.values) == [5, -3, 7, 1]

    def test_underfull_block_padded_with_zeros(self):
        spec = DBBSpec(8, 4)
        block = compress_block(np.array([0, 0, 9, 0, 0, 0, 0, 0]), spec)
        assert block.nnz == 1
        assert list(block.values) == [9, 0, 0, 0]

    def test_overfull_block_rejected(self):
        spec = DBBSpec(8, 2)
        with pytest.raises(ValueError, match="exceeds bound"):
            compress_block(np.array([1, 1, 1, 0, 0, 0, 0, 0]), spec)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            compress_block(np.zeros(7), DBBSpec(8, 4))

    def test_expand_roundtrip(self):
        spec = DBBSpec(8, 4)
        dense = np.array([0, 5, 0, -3, 0, 0, 7, 1], dtype=np.int8)
        block = compress_block(dense, spec)
        np.testing.assert_array_equal(expand_block(block, dtype=np.int8), dense)

    def test_block_invariant_checked_on_construction(self):
        spec = DBBSpec(8, 2)
        with pytest.raises(ValueError):
            DBBBlock(spec=spec, values=(1, 2), mask=0b111)
        with pytest.raises(ValueError):
            DBBBlock(spec=spec, values=(1, 2, 3), mask=0b11)

    @given(
        st.lists(st.integers(-128, 127), min_size=8, max_size=8),
        st.integers(1, 8),
    )
    @settings(max_examples=200)
    def test_property_compress_expand_roundtrip(self, values, nnz):
        arr = np.array(values, dtype=np.int8)
        spec = DBBSpec(8, nnz)
        if np.count_nonzero(arr) > nnz:
            with pytest.raises(ValueError):
                compress_block(arr, spec)
        else:
            block = compress_block(arr, spec)
            np.testing.assert_array_equal(expand_block(block, np.int8), arr)
            assert block.nnz == np.count_nonzero(arr)


class TestPadToBlocks:
    def test_exact_multiple_untouched(self):
        v = np.arange(16)
        assert pad_to_blocks(v, 8) is v

    def test_padding_appended(self):
        v = np.arange(10)
        out = pad_to_blocks(v, 8)
        assert out.shape == (16,)
        np.testing.assert_array_equal(out[10:], 0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            pad_to_blocks(np.zeros((2, 8)), 8)


class TestDBBTensor:
    def test_compress_decompress_2d(self):
        rng = np.random.default_rng(0)
        spec = DBBSpec(8, 4)
        from repro.core.sparsity import random_dbb_tensor

        dense = random_dbb_tensor((6, 32), spec, rng=rng)
        tensor = compress(dense, spec)
        np.testing.assert_array_equal(decompress(tensor, dtype=np.int8), dense)

    def test_unpadded_shape_preserved(self):
        spec = DBBSpec(8, 8)  # dense spec accepts anything
        dense = np.arange(1, 2 * 11 + 1, dtype=np.int8).reshape(2, 11)
        tensor = compress(dense, spec)
        assert tensor.shape == (2, 11)
        assert tensor.blocks_per_row == 2
        np.testing.assert_array_equal(decompress(tensor, dtype=np.int8), dense)

    def test_1d_input_treated_as_row(self):
        spec = DBBSpec(8, 8)
        tensor = compress(np.arange(8, dtype=np.int8), spec)
        assert tensor.shape == (1, 8)

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError):
            compress(np.zeros((2, 2, 8)), DBBSpec(8, 4))

    def test_density_and_nnz(self):
        spec = DBBSpec(8, 4)
        dense = np.zeros((2, 16), dtype=np.int8)
        dense[0, 0] = 1
        dense[1, 8] = 2
        tensor = compress(dense, spec)
        assert tensor.nnz == 2
        assert tensor.density == pytest.approx(2 / 32)

    def test_storage_bytes_fixed_payload(self):
        # 4/8 INT8: 4 value bytes + 1 mask byte per block, independent of
        # actual NNZ (fixed worst-case payload is the point of DBB).
        spec = DBBSpec(8, 4)
        dense = np.zeros((4, 32), dtype=np.int8)
        tensor = compress(dense, spec)
        assert tensor.storage_bytes(1) == 4 * 4 * 5.0
        assert tensor.dense_bytes(1) == 4 * 32

    def test_repr_mentions_ratio(self):
        spec = DBBSpec(8, 4)
        tensor = compress(np.zeros((1, 8), dtype=np.int8), spec)
        assert "4/8" in repr(tensor)

    @given(st.integers(1, 5), st.integers(1, 4), st.integers(0, 4))
    @settings(max_examples=50)
    def test_property_roundtrip_random_dbb(self, rows, blocks, nnz_seed):
        rng = np.random.default_rng(nnz_seed)
        spec = DBBSpec(8, max(1, nnz_seed) if nnz_seed else 1)
        from repro.core.sparsity import random_dbb_tensor

        nnz = min(spec.max_nnz, spec.block_size)
        dense = random_dbb_tensor((rows, blocks * 8), spec, rng=rng, nnz=nnz)
        tensor = compress(dense, spec)
        np.testing.assert_array_equal(decompress(tensor, dtype=np.int8), dense)
