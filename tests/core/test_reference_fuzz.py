"""Bit-exactness fuzz: vectorized array backend vs the naive reference.

The struct-of-arrays :class:`DBBTensor` and every vectorized consumer
(``compress``/``decompress``, both sparse GEMMs, the systolic simulator's
event counting) must be bit-identical with the retained per-block
reference in :mod:`repro.core.reference` — including the awkward corners:
K not divisible by BZ (padded last blocks), NNZ == BZ dense bypass, and
all-zero operands.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.events import EventCounts
from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec, compress, decompress
from repro.core.gemm import (
    compress_operands,
    dbb_gemm,
    dense_gemm,
    joint_dbb_gemm,
)
from repro.core.pruning import prune_weights_dbb
from repro.core.reference import (
    naive_awdbb_fired,
    naive_compress_blocks,
    naive_dbb_gemm,
    naive_decompress,
    naive_joint_dbb_gemm,
    naive_wdbb_fired,
)
from repro.core.sparsity import random_unstructured


def _operands(seed, m, k, n, bz, w_nnz, a_nnz, a_density):
    """Random (A, W) with W strictly w_nnz/bz compliant and A DAP-pruned."""
    rng = np.random.default_rng(seed)
    w_spec = DBBSpec(bz, w_nnz)
    a_spec = DBBSpec(bz, a_nnz)
    a = random_unstructured((m, k), a_density, rng=rng)
    a = dap_prune(a, a_spec).pruned
    w = random_unstructured((k, n), 0.9, rng=rng)
    pad = (-k) % bz
    wt = np.concatenate([w.T, np.zeros((n, pad), dtype=w.dtype)], axis=1)
    w = prune_weights_dbb(wt, w_spec)[:, :k].T
    return a, w, a_spec, w_spec


_shapes = st.tuples(
    st.integers(0, 10_000),   # seed
    st.integers(1, 5),        # m
    st.integers(1, 37),       # k — deliberately not BZ-aligned
    st.integers(1, 5),        # n
    st.sampled_from([4, 8]),  # bz
)


class TestCompressEquivalence:
    @given(_shapes, st.integers(1, 8), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_blocks_view_matches_naive(self, shape, nnz_seed, density):
        seed, m, k, _n, bz = shape
        nnz = min(nnz_seed, bz)
        spec = DBBSpec(bz, nnz)
        rng = np.random.default_rng(seed)
        x = random_unstructured((m, k), density, rng=rng)
        x = dap_prune(x, spec).pruned
        tensor = compress(x, spec)
        reference = naive_compress_blocks(x, spec)
        assert tensor.num_rows == len(reference)
        assert tensor.blocks_per_row == len(reference[0])
        for r in range(tensor.num_rows):
            for got, want in zip(tensor.row_blocks(r), reference[r]):
                assert got.mask == want.mask
                assert [int(v) for v in got.values] == \
                    [int(v) for v in want.values]
        np.testing.assert_array_equal(
            decompress(tensor, dtype=np.int64),
            naive_decompress(reference, k, dtype=np.int64),
        )
        np.testing.assert_array_equal(decompress(tensor, dtype=np.int8), x)

    def test_all_zero_blocks(self):
        spec = DBBSpec(8, 3)
        tensor = compress(np.zeros((3, 20), dtype=np.int8), spec)
        assert tensor.nnz == 0
        np.testing.assert_array_equal(
            decompress(tensor, dtype=np.int8), np.zeros((3, 20)))

    def test_overfull_block_rejected_like_naive(self):
        spec = DBBSpec(8, 2)
        x = np.zeros((2, 16), dtype=np.int8)
        x[1, 8:11] = 1
        with pytest.raises(ValueError, match="exceeds bound"):
            compress(x, spec)
        with pytest.raises(ValueError, match="exceeds bound"):
            naive_compress_blocks(x, spec)


class TestGemmEquivalence:
    @given(_shapes, st.integers(1, 8), st.integers(1, 8),
           st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_both_kernels_match_naive(self, shape, w_nnz_seed, a_nnz_seed,
                                      a_density):
        seed, m, k, n, bz = shape
        w_nnz = min(w_nnz_seed, bz)
        a_nnz = min(a_nnz_seed, bz)
        a, w, a_spec, w_spec = _operands(
            seed, m, k, n, bz, w_nnz, a_nnz, a_density)
        a_dbb, w_dbb = compress_operands(a, w, a_spec, w_spec)
        np.testing.assert_array_equal(
            dbb_gemm(a, w_dbb), naive_dbb_gemm(a, w_dbb))
        np.testing.assert_array_equal(
            joint_dbb_gemm(a_dbb, w_dbb),
            naive_joint_dbb_gemm(a_dbb, w_dbb))
        np.testing.assert_array_equal(dbb_gemm(a, w_dbb), dense_gemm(a, w))
        np.testing.assert_array_equal(
            joint_dbb_gemm(a_dbb, w_dbb), dense_gemm(a, w))


def _reference_wdbb_result(config: SystolicConfig, a, w):
    """Per-block reference for ``_run_wdbb``, event for event.

    Tracks the analytic-model-aligned event accounting (operand reuse at
    half the C-way, accumulator gating on miss) introduced with the
    functional full-model pipeline; the fired-MAC count still comes from
    the frozen naive per-block walk.
    """
    spec = config.w_spec
    m, k = a.shape
    n = w.shape[1]
    bz = spec.block_size
    k_blocks = math.ceil(k / bz)
    tiles_m = math.ceil(m / config.eff_rows)
    tiles_n = math.ceil(n / config.eff_cols)
    tiles = tiles_m * tiles_n
    skew = config.rows + config.cols - 2
    # Tiles pipeline back to back; the wavefront skew is paid once.
    cycles = tiles * k_blocks + skew
    w_dbb = compress(w.T, spec)
    events = EventCounts(cycles=cycles)
    slots = tiles * config.eff_rows * config.eff_cols * k_blocks * spec.max_nnz
    fired = naive_wdbb_fired(a, w_dbb)
    events.mac_ops = fired
    events.gated_mac_ops = slots - fired
    events.mux_ops = n * k_blocks * spec.max_nnz * m
    a_hops_bytes = tiles_n * config.cols * m * k
    w_hops_bytes = (tiles_m * config.rows * n * k_blocks
                    * (spec.max_nnz + int(spec.mask_bytes())))
    events.operand_reg_ops = (a_hops_bytes // max(1, config.tpe_c // 2)
                              + w_hops_bytes // config.tpe_a)
    acc_slots = m * n * k_blocks
    events.acc_reg_ops = min(acc_slots, fired)
    events.gated_acc_reg_ops = acc_slots - events.acc_reg_ops
    w_bytes_per_pass = n * k_blocks * math.ceil(spec.compressed_block_bytes(1))
    events.sram_a_read_bytes += m * k * tiles_n
    events.sram_w_read_bytes += w_bytes_per_pass * tiles_m
    events.sram_a_write_bytes += m * n
    events.mcu_elementwise_ops += m * n
    return naive_dbb_gemm(a, w_dbb), cycles, events


def _reference_awdbb_result(config: SystolicConfig, a, w, a_nnz):
    """Per-block reference for ``_run_awdbb``, event for event.

    Tracks the analytic-model-aligned event accounting (mux-width cap on
    activation broadcast reuse, accumulator gating on miss, uncompressed
    dense-bypass blocks); fired MACs come from the frozen naive walk.
    """
    w_spec = config.w_spec
    a_spec = config.a_spec
    nnz_a = a_spec.max_nnz if a_nnz is None else a_nnz
    m, k = a.shape
    n = w.shape[1]
    bz = a_spec.block_size
    k_blocks = math.ceil(k / bz)
    if nnz_a < bz:
        a_pruned = dap_prune(a, a_spec, nnz=nnz_a).pruned
    else:
        a_pruned = a
    a_dbb = compress(a_pruned, a_spec.with_nnz(min(nnz_a, bz)))
    w_dbb = compress(w.T, w_spec)
    tiles_m = math.ceil(m / config.eff_rows)
    tiles_n = math.ceil(n / config.eff_cols)
    tiles = tiles_m * tiles_n
    skew = config.rows + config.cols - 2
    steps_per_block = nnz_a if nnz_a < bz else bz
    # Pipelined tiles: one wavefront skew per GEMM, serialized steps.
    cycles = (tiles * k_blocks + skew) * steps_per_block
    events = EventCounts(cycles=cycles)
    slots = (tiles * config.eff_rows * config.eff_cols
             * k_blocks * steps_per_block)
    if nnz_a < bz:
        fired = naive_awdbb_fired(a_dbb, w_dbb)
    else:
        a_nz = (a_pruned != 0).astype(np.int64)
        w_nz = (w != 0).astype(np.int64)
        fired = int((a_nz @ w_nz).sum())
    events.mac_ops = fired
    events.gated_mac_ops = slots - fired
    events.mux_ops = m * n * k_blocks * steps_per_block
    if steps_per_block < bz:
        a_block_bytes = steps_per_block + int(a_spec.mask_bytes())
    else:
        a_block_bytes = bz
    w_block_bytes = w_spec.max_nnz + int(w_spec.mask_bytes())
    a_hops_bytes = tiles_n * config.cols * m * k_blocks * a_block_bytes
    w_hops_bytes = tiles_m * config.rows * n * k_blocks * w_block_bytes
    a_reuse = max(1, min(config.tpe_c, w_spec.max_nnz))
    events.operand_reg_ops = (a_hops_bytes // a_reuse
                              + w_hops_bytes // config.tpe_a)
    acc_slots = m * n * k_blocks * steps_per_block
    events.acc_reg_ops = min(acc_slots, fired)
    events.gated_acc_reg_ops = acc_slots - events.acc_reg_ops
    if nnz_a < bz:
        events.dap_compare_ops = m * k_blocks * (bz - 1) * nnz_a
    events.sram_a_read_bytes += m * k_blocks * a_block_bytes * tiles_n
    events.sram_w_read_bytes += n * k_blocks * w_block_bytes * tiles_m
    # Activations write back through the DAP port in compressed form.
    events.sram_a_write_bytes += m * k_blocks * a_block_bytes
    events.mcu_elementwise_ops += m * n
    return dense_gemm(a_pruned, w), cycles, events


class TestRunGemmEquivalence:
    """Vectorized SystolicArray vs a frozen copy of the seed event model."""

    @given(st.integers(0, 5_000), st.integers(1, 6), st.integers(1, 33),
           st.integers(1, 6), st.integers(1, 4), st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_wdbb(self, seed, m, k, n, w_nnz, a_density):
        a, w, _a_spec, w_spec = _operands(
            seed, m, k, n, 8, w_nnz, 8, a_density)
        config = SystolicConfig(rows=2, cols=2, mode=Mode.WDBB,
                                w_spec=w_spec, tpe_a=2, tpe_c=2)
        result = SystolicArray(config).run_gemm(a, w)
        ref_out, ref_cycles, ref_events = _reference_wdbb_result(config, a, w)
        np.testing.assert_array_equal(result.output, ref_out)
        assert result.cycles == ref_cycles
        assert result.events == ref_events

    @given(st.integers(0, 5_000), st.integers(1, 6), st.integers(1, 33),
           st.integers(1, 6), st.integers(1, 4), st.integers(1, 8),
           st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_awdbb(self, seed, m, k, n, w_nnz, a_nnz, a_density):
        # a_nnz == 8 exercises the dense-bypass branch.
        a, w, _a_spec, w_spec = _operands(
            seed, m, k, n, 8, w_nnz, 8, a_density)
        config = SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                                w_spec=w_spec, a_spec=DBBSpec(8, 4),
                                tpe_a=2, tpe_c=2)
        result = SystolicArray(config).run_gemm(a, w, a_nnz=a_nnz)
        ref_out, ref_cycles, ref_events = _reference_awdbb_result(
            config, a, w, a_nnz)
        np.testing.assert_array_equal(result.output, ref_out)
        assert result.cycles == ref_cycles
        assert result.events == ref_events

    def test_all_zero_operands(self):
        a = np.zeros((4, 24), dtype=np.int8)
        w = np.zeros((24, 4), dtype=np.int8)
        config = SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                                tpe_a=2, tpe_c=2)
        result = SystolicArray(config).run_gemm(a, w, a_nnz=2)
        assert result.events.mac_ops == 0
        np.testing.assert_array_equal(result.output, np.zeros((4, 4)))
        _ref_out, ref_cycles, ref_events = _reference_awdbb_result(
            config, a, w, 2)
        assert result.cycles == ref_cycles
        assert result.events == ref_events
