"""Tests for Dynamic Activation Pruning (Sec. 5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dap import (
    DAP_MAX_HARDWARE_NNZ,
    dap_keep_fraction,
    dap_prune,
    dap_prune_blocks,
    tune_layer_nnz,
)
from repro.core.dbb import DBBSpec
from repro.core.pruning import is_dbb_compliant
from repro.core.sparsity import random_unstructured


class TestDapPrune:
    def test_enforces_bound(self):
        spec = DBBSpec(8, 4)
        x = np.ones((4, 32), dtype=np.int8)
        result = dap_prune(x, spec)
        assert is_dbb_compliant(result.pruned, spec)

    def test_keeps_top_magnitudes(self):
        spec = DBBSpec(8, 2)
        x = np.array([[1, -9, 3, 0, 7, 0, -2, 5]], dtype=np.int8)
        result = dap_prune(x, spec)
        np.testing.assert_array_equal(result.pruned, [[0, -9, 0, 0, 7, 0, 0, 0]])

    def test_keep_mask_matches_pruned(self):
        spec = DBBSpec(8, 3)
        x = random_unstructured((8, 64), 0.7, rng=np.random.default_rng(0))
        result = dap_prune(x, spec)
        np.testing.assert_array_equal(result.keep_mask, result.pruned != 0)

    def test_already_sparse_untouched(self):
        spec = DBBSpec(8, 4)
        x = np.zeros((2, 16), dtype=np.int8)
        x[0, 3] = 5
        result = dap_prune(x, spec)
        np.testing.assert_array_equal(result.pruned, x)
        assert result.pruned_fraction == 0.0

    def test_pruned_fraction(self):
        spec = DBBSpec(8, 4)
        x = np.ones((1, 8), dtype=np.int8)  # 8 non-zeros -> keep 4
        result = dap_prune(x, spec)
        assert result.pruned_fraction == pytest.approx(0.5)

    def test_non_multiple_channel_padded(self):
        spec = DBBSpec(8, 2)
        x = np.arange(1, 11, dtype=np.int8)[None, :]  # 10 channels
        result = dap_prune(x, spec)
        assert result.pruned.shape == (1, 10)
        # first block [1..8] keeps {7, 8}; second block [9, 10] fits as-is.
        np.testing.assert_array_equal(
            result.pruned, [[0, 0, 0, 0, 0, 0, 7, 8, 9, 10]]
        )

    def test_explicit_nnz_override(self):
        spec = DBBSpec(8, 4)
        x = np.ones((1, 8), dtype=np.int8)
        result = dap_prune(x, spec, nnz=1)
        assert np.count_nonzero(result.pruned) == 1
        assert result.spec.max_nnz == 1

    def test_invalid_nnz(self):
        with pytest.raises(ValueError):
            dap_prune(np.ones(8), DBBSpec(8, 4), nnz=0)
        with pytest.raises(ValueError):
            dap_prune(np.ones(8), DBBSpec(8, 4), nnz=9)

    def test_3d_activation_tensor(self):
        # NHWC-ish layout: blocks along the channel (last) axis only.
        spec = DBBSpec(8, 2)
        x = random_unstructured((2, 3, 16), 0.9, rng=np.random.default_rng(1))
        result = dap_prune(x, spec)
        assert result.pruned.shape == x.shape
        assert is_dbb_compliant(result.pruned.reshape(-1, 16), spec)

    def test_dtype_preserved(self):
        spec = DBBSpec(8, 4)
        x = np.ones((1, 8), dtype=np.int8)
        assert dap_prune(x, spec).pruned.dtype == np.int8

    @given(st.integers(0, 500), st.integers(1, 8))
    @settings(max_examples=60)
    def test_property_compliance_and_subset(self, seed, nnz):
        spec = DBBSpec(8, nnz)
        x = random_unstructured((4, 32), 0.8, rng=np.random.default_rng(seed))
        result = dap_prune(x, spec)
        assert is_dbb_compliant(result.pruned, spec)
        # Pruning only ever zeroes elements; survivors keep their value.
        survivors = result.pruned != 0
        np.testing.assert_array_equal(result.pruned[survivors], x[survivors])

    @given(st.integers(0, 500))
    @settings(max_examples=30)
    def test_property_keeps_max_magnitude(self, seed):
        spec = DBBSpec(8, 1)
        x = random_unstructured((1, 8), 1.0, rng=np.random.default_rng(seed))
        result = dap_prune(x, spec)
        kept = result.pruned[result.pruned != 0]
        if kept.size:
            assert np.abs(kept).max() == np.abs(x).max()


class TestDapPruneBlocks:
    def test_matches_dap_prune(self):
        spec = DBBSpec(8, 3)
        x = random_unstructured((4, 8), 0.9, rng=np.random.default_rng(2))
        out = dap_prune_blocks(x, 3)
        np.testing.assert_array_equal(out, dap_prune(x, spec).pruned)


class TestKeepFraction:
    def test_zero_tensor(self):
        assert dap_keep_fraction(np.zeros(8), DBBSpec(8, 4), 4) == 1.0

    def test_monotone_in_nnz(self):
        x = random_unstructured((16, 64), 0.9, rng=np.random.default_rng(3))
        spec = DBBSpec(8, 4)
        fracs = [dap_keep_fraction(x, spec, n) for n in range(1, 9)]
        assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))
        assert fracs[-1] == pytest.approx(1.0)


class TestTuneLayerNNZ:
    def test_sparse_layer_gets_low_nnz(self):
        x = random_unstructured((32, 64), 0.15, rng=np.random.default_rng(4))
        nnz = tune_layer_nnz(x, DBBSpec(8, 4), keep_threshold=0.95)
        assert nnz <= 3

    def test_dense_layer_bypasses(self):
        x = random_unstructured((32, 64), 1.0, rng=np.random.default_rng(5))
        nnz = tune_layer_nnz(x, DBBSpec(8, 4), keep_threshold=0.999)
        assert nnz == 8  # dense bypass (> 5-stage DAP hardware cap)

    def test_hardware_cap_respected(self):
        x = random_unstructured((32, 64), 0.9, rng=np.random.default_rng(6))
        nnz = tune_layer_nnz(x, DBBSpec(8, 4), keep_threshold=0.99)
        assert nnz <= DAP_MAX_HARDWARE_NNZ or nnz == 8

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            tune_layer_nnz(np.ones(8), DBBSpec(8, 4), keep_threshold=0.0)
