"""Tests for sparsity statistics and synthetic tensor generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbb import DBBSpec
from repro.core.sparsity import (
    block_nnz,
    block_nnz_histogram,
    dbb_violation_rate,
    density,
    effective_block_density,
    random_dbb_tensor,
    random_unstructured,
    relu_activations,
    sparsity,
)


class TestDensity:
    def test_all_zero(self):
        assert density(np.zeros(10)) == 0.0

    def test_all_nonzero(self):
        assert density(np.ones(10)) == 1.0

    def test_half(self):
        assert density(np.array([0, 1, 0, 2])) == 0.5
        assert sparsity(np.array([0, 1, 0, 2])) == 0.5

    def test_empty(self):
        assert density(np.array([])) == 0.0


class TestBlockNNZ:
    def test_counts_per_block(self):
        x = np.array([1, 0, 0, 0, 2, 3, 0, 4])
        np.testing.assert_array_equal(block_nnz(x, 4), [1, 3])

    def test_padding_blocks(self):
        x = np.ones(10)
        counts = block_nnz(x, 8)
        np.testing.assert_array_equal(counts, [8, 2])

    def test_histogram(self):
        x = np.array([1, 0, 0, 0, 2, 3, 0, 4])
        assert block_nnz_histogram(x, 4) == {1: 1, 3: 1}


class TestViolationRate:
    def test_compliant_tensor_zero_rate(self):
        spec = DBBSpec(8, 4)
        x = random_dbb_tensor((4, 32), spec, rng=np.random.default_rng(1))
        assert dbb_violation_rate(x, spec) == 0.0

    def test_dense_tensor_full_violation(self):
        spec = DBBSpec(8, 4)
        x = np.ones((2, 16))
        assert dbb_violation_rate(x, spec) == 1.0

    def test_random_dense50_violates_sometimes(self):
        # Bernoulli(0.5) over BZ=8 exceeds 4 non-zeros ~36% of the time.
        spec = DBBSpec(8, 4)
        x = random_unstructured((100, 80), 0.5, rng=np.random.default_rng(2))
        rate = dbb_violation_rate(x, spec)
        assert 0.25 < rate < 0.45


class TestGenerators:
    def test_unstructured_density_close(self):
        x = random_unstructured((200, 200), 0.3, rng=np.random.default_rng(3))
        assert density(x) == pytest.approx(0.3, abs=0.02)

    def test_unstructured_dtype_and_range(self):
        x = random_unstructured((50, 50), 0.5, rng=np.random.default_rng(4))
        assert x.dtype == np.int8
        assert x.max() <= 127 and x.min() >= -127

    def test_unstructured_invalid_density(self):
        with pytest.raises(ValueError):
            random_unstructured((4,), 1.5)

    def test_dbb_tensor_exact_nnz(self):
        spec = DBBSpec(8, 3)
        x = random_dbb_tensor((10, 64), spec, rng=np.random.default_rng(5))
        counts = block_nnz(x, 8)
        assert np.all(counts == 3)

    def test_dbb_tensor_custom_nnz(self):
        spec = DBBSpec(8, 4)
        x = random_dbb_tensor((2, 16), spec, rng=np.random.default_rng(6), nnz=1)
        assert np.all(block_nnz(x, 8) == 1)

    def test_dbb_tensor_shape_validation(self):
        with pytest.raises(ValueError):
            random_dbb_tensor((2, 10), DBBSpec(8, 4))
        with pytest.raises(ValueError):
            random_dbb_tensor((2, 16), DBBSpec(8, 4), nnz=9)

    def test_relu_activations_nonnegative(self):
        x = relu_activations((64, 64), 0.4, rng=np.random.default_rng(7))
        assert x.min() >= 0
        assert density(x) == pytest.approx(0.4, abs=0.05)

    @given(st.floats(0.1, 0.9), st.integers(0, 10))
    @settings(max_examples=20)
    def test_property_unstructured_density(self, target, seed):
        x = random_unstructured((64, 64), target, rng=np.random.default_rng(seed))
        assert density(x) == pytest.approx(target, abs=0.06)


class TestEffectiveBlockDensity:
    def test_dense_input_clamps_to_bound(self):
        spec = DBBSpec(8, 4)
        assert effective_block_density(np.ones(16), spec) == pytest.approx(0.5)

    def test_sparse_input_below_bound(self):
        spec = DBBSpec(8, 4)
        x = np.zeros(16)
        x[0] = 1.0
        # one block with 1 nnz, one with 0 -> mean 0.5 nnz / 8
        assert effective_block_density(x, spec) == pytest.approx(0.5 / 8)
