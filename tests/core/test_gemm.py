"""Tests for dense/DBB GEMM kernels — functional ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbb import DBBSpec, compress
from repro.core.gemm import (
    compress_operands,
    dbb_gemm,
    dense_gemm,
    gemm_mac_count,
    joint_dbb_gemm,
)
from repro.core.sparsity import random_dbb_tensor, random_unstructured


def _random_case(seed, m=5, k=16, n=6, w_nnz=4, a_nnz=None):
    rng = np.random.default_rng(seed)
    w_spec = DBBSpec(8, w_nnz)
    w = random_dbb_tensor((n, k), w_spec, rng=rng).T  # (K, N), column-blocked
    if a_nnz is None:
        a = random_unstructured((m, k), 0.6, rng=rng)
    else:
        a_spec = DBBSpec(8, a_nnz)
        a = random_dbb_tensor((m, k), a_spec, rng=rng)
    return a, w


class TestDenseGemm:
    def test_matches_numpy(self):
        a, w = _random_case(0)
        np.testing.assert_array_equal(
            dense_gemm(a, w), a.astype(np.int64) @ w.astype(np.int64)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dense_gemm(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_mac_count(self):
        assert gemm_mac_count(2, 3, 4) == 24


class TestDbbGemm:
    def test_matches_dense(self):
        a, w = _random_case(1)
        w_dbb = compress(w.T, DBBSpec(8, 4))
        np.testing.assert_array_equal(dbb_gemm(a, w_dbb), dense_gemm(a, w))

    def test_unpadded_k(self):
        # K not a multiple of BZ: compression pads with zeros; the kernel
        # must skip padded positions.
        rng = np.random.default_rng(2)
        a = random_unstructured((3, 12), 0.8, rng=rng)
        w = random_unstructured((12, 4), 0.3, rng=rng)
        # Enforce the bound on the padded column blocks before compressing.
        from repro.core.pruning import prune_weights_dbb

        wt = np.concatenate([w.T, np.zeros((4, 4), dtype=w.dtype)], axis=1)
        w = prune_weights_dbb(wt, DBBSpec(8, 4))[:, :12].T
        w_dbb = compress(w.T, DBBSpec(8, 4))
        np.testing.assert_array_equal(dbb_gemm(a, w_dbb), dense_gemm(a, w))

    def test_all_zero_weights(self):
        a = np.ones((2, 8), dtype=np.int8)
        w_dbb = compress(np.zeros((3, 8), dtype=np.int8), DBBSpec(8, 4))
        np.testing.assert_array_equal(dbb_gemm(a, w_dbb), np.zeros((2, 3)))

    @given(st.integers(0, 300), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_dense(self, seed, w_nnz):
        a, w = _random_case(seed, w_nnz=w_nnz)
        w_dbb = compress(w.T, DBBSpec(8, w_nnz))
        np.testing.assert_array_equal(dbb_gemm(a, w_dbb), dense_gemm(a, w))


class TestJointDbbGemm:
    def test_matches_dense(self):
        a, w = _random_case(3, a_nnz=3)
        a_dbb, w_dbb = compress_operands(a, w, DBBSpec(8, 3), DBBSpec(8, 4))
        np.testing.assert_array_equal(joint_dbb_gemm(a_dbb, w_dbb), dense_gemm(a, w))

    def test_disjoint_masks_give_zero(self):
        spec = DBBSpec(8, 4)
        a = np.zeros((1, 8), dtype=np.int8)
        a[0, :4] = 1
        w = np.zeros((8, 1), dtype=np.int8)
        w[4:, 0] = 1
        a_dbb, w_dbb = compress_operands(a, w, spec, spec)
        np.testing.assert_array_equal(joint_dbb_gemm(a_dbb, w_dbb), [[0]])

    def test_block_size_mismatch_rejected(self):
        a_dbb = compress(np.zeros((1, 8), dtype=np.int8), DBBSpec(8, 4))
        w_dbb = compress(np.zeros((1, 4), dtype=np.int8), DBBSpec(4, 2))
        with pytest.raises(ValueError, match="block sizes"):
            joint_dbb_gemm(a_dbb, w_dbb)

    def test_reduction_length_mismatch_rejected(self):
        a_dbb = compress(np.zeros((1, 16), dtype=np.int8), DBBSpec(8, 4))
        w_dbb = compress(np.zeros((1, 8), dtype=np.int8), DBBSpec(8, 4))
        with pytest.raises(ValueError, match="reduction"):
            joint_dbb_gemm(a_dbb, w_dbb)

    @given(st.integers(0, 300), st.integers(1, 8), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_dense(self, seed, w_nnz, a_nnz):
        a, w = _random_case(seed, m=3, k=16, n=4, w_nnz=w_nnz, a_nnz=a_nnz)
        a_dbb, w_dbb = compress_operands(a, w, DBBSpec(8, a_nnz), DBBSpec(8, w_nnz))
        np.testing.assert_array_equal(joint_dbb_gemm(a_dbb, w_dbb), dense_gemm(a, w))

    def test_int8_extremes_no_overflow(self):
        # -128 * -128 * K accumulations must not overflow int64 (they
        # wouldn't overflow INT32 either at this K, as in hardware).
        a = np.full((1, 16), -128, dtype=np.int8)
        w = np.zeros((16, 1), dtype=np.int8)
        w[:4, 0] = -128
        w[8:12, 0] = -128
        a_spec, w_spec = DBBSpec(8, 8), DBBSpec(8, 4)
        from repro.core.dap import dap_prune

        a_ok = dap_prune(a, a_spec).pruned
        a_dbb, w_dbb = compress_operands(a_ok, w, a_spec, w_spec)
        np.testing.assert_array_equal(
            joint_dbb_gemm(a_dbb, w_dbb), dense_gemm(a_ok, w)
        )
