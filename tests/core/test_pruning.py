"""Tests for static weight DBB pruning (Sec. 4, 8.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbb import DBBSpec
from repro.core.pruning import (
    PruningSchedule,
    is_dbb_compliant,
    prune_blocks,
    prune_weights_dbb,
    topk_block_mask,
)


class TestTopkBlockMask:
    def test_keeps_largest_magnitudes(self):
        blocks = np.array([[1, -9, 3, 0, 7, 0, -2, 5]])
        mask = topk_block_mask(blocks, 3)
        np.testing.assert_array_equal(
            mask, [[False, True, False, False, True, False, False, True]]
        )

    def test_ties_break_to_lowest_index(self):
        blocks = np.array([[4, -4, 4, 4, 0, 0, 0, 0]])
        mask = topk_block_mask(blocks, 2)
        np.testing.assert_array_equal(
            mask, [[True, True, False, False, False, False, False, False]]
        )

    def test_never_keeps_zeros(self):
        blocks = np.array([[0, 0, 1, 0, 0, 0, 0, 0]])
        mask = topk_block_mask(blocks, 4)
        assert mask.sum() == 1

    def test_keep_zero(self):
        mask = topk_block_mask(np.ones((2, 8)), 0)
        assert not mask.any()

    def test_keep_all(self):
        blocks = np.array([[1, 2, 0, 4, 5, 6, 7, 8]])
        mask = topk_block_mask(blocks, 8)
        assert mask.sum() == 7  # the zero is never kept

    def test_validation(self):
        with pytest.raises(ValueError):
            topk_block_mask(np.zeros(8), 4)  # 1-D rejected
        with pytest.raises(ValueError):
            topk_block_mask(np.zeros((1, 8)), 9)

    @given(
        st.lists(st.integers(-128, 127), min_size=8, max_size=8),
        st.integers(0, 8),
    )
    @settings(max_examples=200)
    def test_property_bound_and_magnitude(self, values, keep):
        blocks = np.array([values])
        mask = topk_block_mask(blocks, keep)
        assert mask.sum() <= keep
        kept = np.abs(blocks[mask])
        dropped = np.abs(blocks[~mask & (blocks != 0)])
        if kept.size and dropped.size:
            assert kept.min() >= dropped.max()


class TestPruneWeights:
    def test_result_is_compliant(self):
        rng = np.random.default_rng(0)
        spec = DBBSpec(8, 4)
        w = rng.integers(-127, 128, size=(16, 64)).astype(np.int8)
        pruned = prune_weights_dbb(w, spec)
        assert is_dbb_compliant(pruned, spec)
        assert pruned.dtype == w.dtype
        assert pruned.shape == w.shape

    def test_survivors_unchanged(self):
        spec = DBBSpec(8, 2)
        w = np.array([[10, -20, 3, 4, 0, 0, 0, 1]], dtype=np.int8)
        pruned = prune_weights_dbb(w, spec)
        np.testing.assert_array_equal(
            pruned, [[10, -20, 0, 0, 0, 0, 0, 0]]
        )

    def test_already_compliant_unchanged(self):
        spec = DBBSpec(8, 4)
        w = np.array([[10, -20, 3, 0, 0, 0, 0, 1]], dtype=np.int8)
        np.testing.assert_array_equal(prune_weights_dbb(w, spec), w)

    def test_non_multiple_size_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            prune_weights_dbb(np.zeros((2, 7)), DBBSpec(8, 4))

    def test_prune_blocks_values(self):
        out = prune_blocks(np.array([[5, 1, -7, 2]]), 2)
        np.testing.assert_array_equal(out, [[5, 0, -7, 0]])

    @given(st.integers(0, 1000), st.integers(1, 8))
    @settings(max_examples=50)
    def test_property_compliance(self, seed, nnz):
        rng = np.random.default_rng(seed)
        spec = DBBSpec(8, nnz)
        w = rng.integers(-127, 128, size=(4, 32)).astype(np.int8)
        assert is_dbb_compliant(prune_weights_dbb(w, spec), spec)


class TestIsCompliant:
    def test_handles_padding(self):
        spec = DBBSpec(8, 1)
        assert is_dbb_compliant(np.array([0, 0, 0, 0, 0, 0, 0, 0, 5]), spec)

    def test_detects_violation(self):
        spec = DBBSpec(8, 1)
        assert not is_dbb_compliant(np.array([1, 2, 0, 0, 0, 0, 0, 0]), spec)


class TestPruningSchedule:
    def test_ramp_endpoints(self):
        sched = PruningSchedule(DBBSpec(8, 4), start_epoch=0, end_epoch=20)
        assert sched.keep_at(0) == 8
        assert sched.keep_at(20) == 4
        assert sched.keep_at(100) == 4

    def test_monotonic_nonincreasing(self):
        sched = PruningSchedule(DBBSpec(8, 2), start_epoch=5, end_epoch=25)
        keeps = [sched.keep_at(e) for e in range(30)]
        assert all(a >= b for a, b in zip(keeps, keeps[1:]))
        assert keeps[0] == 8
        assert keeps[-1] == 2

    def test_apply_is_compliant_when_done(self):
        spec = DBBSpec(8, 3)
        sched = PruningSchedule(spec, 0, 10)
        w = np.random.default_rng(1).normal(size=(4, 32))
        assert is_dbb_compliant(sched.apply(w, 10), spec)
        assert sched.done(10)
        assert not sched.done(9)

    def test_invalid_schedule(self):
        with pytest.raises(ValueError):
            PruningSchedule(DBBSpec(8, 4), start_epoch=5, end_epoch=1)
