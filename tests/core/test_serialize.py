"""Tests for the DBB byte-stream format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbb import DBBSpec, compress, decompress
from repro.core.serialize import pack, packed_size_bytes, unpack
from repro.core.sparsity import random_dbb_tensor


def _tensor(seed=0, rows=4, cols=32, nnz=4):
    spec = DBBSpec(8, nnz)
    dense = random_dbb_tensor((rows, cols), spec,
                              rng=np.random.default_rng(seed))
    return compress(dense, spec), dense


class TestPackUnpack:
    def test_roundtrip(self):
        tensor, dense = _tensor()
        recovered = unpack(pack(tensor))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)
        assert recovered.spec == tensor.spec
        assert recovered.shape == tensor.shape

    def test_size_matches_energy_model_bytes(self):
        # The stream body must be exactly the bytes the energy model
        # charges per block (values + mask).
        tensor, _ = _tensor(rows=3, cols=40)
        data = pack(tensor)
        expected = packed_size_bytes(tensor.spec, 3, 40)
        assert len(data) == expected
        body = len(data) - 10  # header
        blocks = 3 * 5
        assert body == blocks * tensor.spec.compressed_block_bytes(1)

    def test_unpadded_cols(self):
        spec = DBBSpec(8, 8)
        dense = np.arange(1, 23, dtype=np.int8).reshape(2, 11)
        tensor = compress(dense, spec)
        recovered = unpack(pack(tensor))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)

    def test_truncated_stream_rejected(self):
        tensor, _ = _tensor()
        data = pack(tensor)
        with pytest.raises(ValueError, match="truncated"):
            unpack(data[:-1])
        with pytest.raises(ValueError, match="truncated"):
            unpack(data[:4])

    def test_negative_values_roundtrip(self):
        spec = DBBSpec(8, 2)
        dense = np.zeros((1, 8), dtype=np.int8)
        dense[0, 0] = -128
        dense[0, 7] = 127
        recovered = unpack(pack(compress(dense, spec)))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)

    @given(st.integers(0, 500), st.integers(1, 8), st.integers(1, 6),
           st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, seed, nnz, rows, blocks):
        spec = DBBSpec(8, nnz)
        dense = random_dbb_tensor((rows, blocks * 8), spec,
                                  rng=np.random.default_rng(seed))
        tensor = compress(dense, spec)
        recovered = unpack(pack(tensor))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)


class TestArrayBackendRoundTrip:
    """Round-trip corners of the struct-of-arrays backend: padded last
    blocks (cols not a multiple of BZ) and sub-NNZ (underfull) blocks."""

    def test_padded_last_block_roundtrip(self):
        # 21 cols at BZ=8: the last block holds 5 real + 3 padded lanes.
        spec = DBBSpec(8, 4)
        dense = np.zeros((3, 21), dtype=np.int8)
        dense[0, 18] = -7   # non-zero inside the padded last block
        dense[1, 20] = 5    # non-zero at the final real column
        dense[2, 0] = 1
        tensor = compress(dense, spec)
        recovered = unpack(pack(tensor))
        assert recovered.shape == (3, 21)
        assert recovered.blocks_per_row == 3
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)
        np.testing.assert_array_equal(recovered.masks, tensor.masks)
        np.testing.assert_array_equal(recovered.values, tensor.values)

    def test_sub_nnz_blocks_roundtrip(self):
        # Every block underfull (0..2 non-zeros under a 4/8 bound): the
        # stream's explicit zero slots must come back as zero-valued slots
        # aimed at zero positions, keeping the scatter collision-free.
        spec = DBBSpec(8, 4)
        dense = np.zeros((2, 24), dtype=np.int8)
        dense[0, 1] = 3
        dense[0, 9] = -2
        dense[0, 15] = 4
        dense[1, 17] = 127
        tensor = compress(dense, spec)
        recovered = unpack(pack(tensor))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)
        assert recovered.nnz == 4
        # Unused slots carry explicit zeros (fixed worst-case payload).
        from repro.core.dbb import popcount

        stored = popcount(recovered.masks)
        slot = np.arange(spec.max_nnz)
        unused = slot[None, None, :] >= stored[..., None]
        assert np.all(recovered.values[unused] == 0)

    def test_sub_nnz_padded_combined_property(self):
        rng = np.random.default_rng(11)
        spec = DBBSpec(8, 3)
        for cols in (1, 7, 9, 19, 27):
            dense = random_dbb_tensor((4, 32), spec, rng=rng,
                                      nnz=2)[:, :cols]
            tensor = compress(dense, spec)
            recovered = unpack(pack(tensor))
            assert recovered.shape == (4, cols)
            np.testing.assert_array_equal(
                decompress(recovered, dtype=np.int8), dense)

    def test_corrupt_mask_over_bound_rejected(self):
        spec = DBBSpec(8, 2)
        tensor = compress(np.zeros((1, 8), dtype=np.int8), spec)
        data = bytearray(pack(tensor))
        data[-1] = 0b0000_0111  # 3 bits set under a 2/8 bound
        with pytest.raises(ValueError, match="density bound"):
            unpack(bytes(data))
