"""Tests for the DBB byte-stream format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dbb import DBBSpec, compress, decompress
from repro.core.serialize import pack, packed_size_bytes, unpack
from repro.core.sparsity import random_dbb_tensor


def _tensor(seed=0, rows=4, cols=32, nnz=4):
    spec = DBBSpec(8, nnz)
    dense = random_dbb_tensor((rows, cols), spec,
                              rng=np.random.default_rng(seed))
    return compress(dense, spec), dense


class TestPackUnpack:
    def test_roundtrip(self):
        tensor, dense = _tensor()
        recovered = unpack(pack(tensor))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)
        assert recovered.spec == tensor.spec
        assert recovered.shape == tensor.shape

    def test_size_matches_energy_model_bytes(self):
        # The stream body must be exactly the bytes the energy model
        # charges per block (values + mask).
        tensor, _ = _tensor(rows=3, cols=40)
        data = pack(tensor)
        expected = packed_size_bytes(tensor.spec, 3, 40)
        assert len(data) == expected
        body = len(data) - 10  # header
        blocks = 3 * 5
        assert body == blocks * tensor.spec.compressed_block_bytes(1)

    def test_unpadded_cols(self):
        spec = DBBSpec(8, 8)
        dense = np.arange(1, 23, dtype=np.int8).reshape(2, 11)
        tensor = compress(dense, spec)
        recovered = unpack(pack(tensor))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)

    def test_truncated_stream_rejected(self):
        tensor, _ = _tensor()
        data = pack(tensor)
        with pytest.raises(ValueError, match="truncated"):
            unpack(data[:-1])
        with pytest.raises(ValueError, match="truncated"):
            unpack(data[:4])

    def test_negative_values_roundtrip(self):
        spec = DBBSpec(8, 2)
        dense = np.zeros((1, 8), dtype=np.int8)
        dense[0, 0] = -128
        dense[0, 7] = 127
        recovered = unpack(pack(compress(dense, spec)))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)

    @given(st.integers(0, 500), st.integers(1, 8), st.integers(1, 6),
           st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, seed, nnz, rows, blocks):
        spec = DBBSpec(8, nnz)
        dense = random_dbb_tensor((rows, blocks * 8), spec,
                                  rng=np.random.default_rng(seed))
        tensor = compress(dense, spec)
        recovered = unpack(pack(tensor))
        np.testing.assert_array_equal(
            decompress(recovered, dtype=np.int8), dense)
