"""Edge cases across module boundaries.

Non-default block sizes, ragged shapes, extreme densities and degenerate
geometries — the configurations a downstream user will eventually feed
the library that the main reproduction paths never exercise.
"""

import numpy as np
import pytest

from repro.arch.dap_hw import DAPHardware
from repro.arch.smt import SMTArrayModel
from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec, compress, decompress
from repro.core.gemm import dense_gemm
from repro.core.pruning import prune_weights_dbb
from repro.core.serialize import pack, unpack
from repro.core.sparsity import random_unstructured


class TestNonDefaultBlockSizes:
    @pytest.mark.parametrize("bz,nnz", [(4, 2), (16, 8), (16, 3), (32, 4)])
    def test_compress_roundtrip(self, bz, nnz):
        spec = DBBSpec(bz, nnz)
        rng = np.random.default_rng(0)
        dense = rng.integers(-127, 128, size=(3, bz * 2)).astype(np.int8)
        pruned = prune_weights_dbb(dense, spec)
        tensor = compress(pruned, spec)
        np.testing.assert_array_equal(decompress(tensor, np.int8), pruned)

    @pytest.mark.parametrize("bz,nnz", [(4, 2), (16, 8)])
    def test_serialize_roundtrip(self, bz, nnz):
        spec = DBBSpec(bz, nnz)
        rng = np.random.default_rng(1)
        dense = prune_weights_dbb(
            rng.integers(-127, 128, size=(2, bz * 3)).astype(np.int8), spec)
        tensor = compress(dense, spec)
        np.testing.assert_array_equal(
            decompress(unpack(pack(tensor)), np.int8), dense)

    def test_dap_hardware_bz16(self):
        hw = DAPHardware(block_size=16, max_stages=10)
        block = np.arange(-8, 8)
        compressed, _, events = hw.prune_block(block, nnz=4)
        assert compressed.nnz == 4
        assert events.dap_compare_ops == 4 * 15
        reference = dap_prune(block[None, :], DBBSpec(16, 4)).pruned[0]
        expanded = np.zeros(16, dtype=np.int64)
        for pos, val in compressed.nonzero_pairs():
            expanded[pos] = val
        np.testing.assert_array_equal(expanded, reference)


class TestDegenerateGemms:
    def test_single_row_single_col(self):
        a = np.array([[1, 2, 3, 4, 5, 6, 7, 8]], dtype=np.int64)
        w = np.ones((8, 1), dtype=np.int64)
        w = prune_weights_dbb(w.T, DBBSpec(8, 4)).T
        sim = SystolicArray(SystolicConfig(rows=2, cols=2, mode=Mode.WDBB,
                                           tpe_a=2, tpe_c=2))
        result = sim.run_gemm(a, w)
        np.testing.assert_array_equal(result.output, dense_gemm(a, w))

    def test_all_zero_activations_awdbb(self):
        a = np.zeros((4, 16), dtype=np.int64)
        rng = np.random.default_rng(2)
        w = prune_weights_dbb(
            rng.integers(-5, 6, size=(8, 16)).astype(np.int64),
            DBBSpec(8, 4)).T
        sim = SystolicArray(SystolicConfig(rows=2, cols=2, mode=Mode.AWDBB,
                                           tpe_a=2, tpe_c=2))
        result = sim.run_gemm(a, w, a_nnz=2)
        np.testing.assert_array_equal(result.output, 0)
        assert result.events.mac_ops == 0

    def test_k_smaller_than_block(self):
        rng = np.random.default_rng(3)
        a = random_unstructured((4, 5), 0.8, rng=rng).astype(np.int64)
        w = rng.integers(-5, 6, size=(5, 4)).astype(np.int64)
        # pad weights' reduction axis to the block, prune, slice back
        wt = np.concatenate([w.T, np.zeros((4, 3), dtype=w.dtype)], axis=1)
        w = prune_weights_dbb(wt, DBBSpec(8, 4))[:, :5].T
        sim = SystolicArray(SystolicConfig(rows=2, cols=2, mode=Mode.WDBB,
                                           tpe_a=2, tpe_c=2))
        result = sim.run_gemm(a, w)
        np.testing.assert_array_equal(result.output, dense_gemm(a, w))

    def test_one_by_one_scalar_array(self):
        a = np.array([[3, -2]], dtype=np.int64)
        w = np.array([[1], [4]], dtype=np.int64)
        sim = SystolicArray(SystolicConfig(rows=1, cols=1, mode=Mode.ZVCG))
        result = sim.run_gemm(a, w)
        assert result.output[0, 0] == 3 - 8


class TestExtremeDensities:
    def test_dap_on_all_equal_values(self):
        # All-equal magnitudes: hardware tie-break keeps lowest indices.
        spec = DBBSpec(8, 3)
        x = np.full((1, 8), 7, dtype=np.int8)
        pruned = dap_prune(x, spec).pruned
        np.testing.assert_array_equal(pruned[0], [7, 7, 7, 0, 0, 0, 0, 0])

    def test_smt_with_zero_density(self):
        model = SMTArrayModel(threads=2, fifo_depth=2, pes=8)
        result = model.simulate(0.0, 0.0, 128,
                                rng=np.random.default_rng(0))
        assert result.events.mac_ops == 0
        assert result.speedup > 1.5  # nothing to do: full T2 throughput

    def test_four_thread_smt(self):
        model = SMTArrayModel(threads=4, fifo_depth=4, pes=8)
        result = model.simulate(0.3, 0.3, 512,
                                rng=np.random.default_rng(1))
        assert 1.0 < result.speedup <= 4.0


class TestAcceleratorEdges:
    def test_tiny_layer_on_big_array(self):
        # One output pixel on a 2048-MAC array: padding dominates, but
        # events stay consistent.
        from repro.accel import S2TAAW, ZvcgSA
        from repro.models.specs import LayerKind, LayerSpec

        layer = LayerSpec("tiny", LayerKind.CONV, m=1, k=8, n=1,
                          w_nnz=4, a_nnz=2)
        for accel in (ZvcgSA(), S2TAAW()):
            result = accel.run_layer(layer)
            assert result.cycles > 0
            assert result.events.mac_ops <= result.events.total_mac_slots

    def test_microbench_density_extremes(self):
        from repro.accel import S2TAAW

        aw = S2TAAW()
        low = aw.microbench_layer(0.125, 0.125, w_nnz=1, a_nnz=1)
        high = aw.microbench_layer(1.0, 1.0, w_nnz=8, a_nnz=8)
        assert low.energy_pj < high.energy_pj
        assert low.cycles < high.cycles

    def test_design_point_scalar_geometry(self):
        from repro.design import DesignPoint, generate_structure

        scalar = DesignPoint(tpe_a=1, tpe_c=1, rows=32, cols=64)
        assert scalar.is_scalar
        text = generate_structure(scalar)
        assert "2048x tpe" in text
