"""Chaos suite: the ISSUE-10 acceptance runs (``make chaos``).

Every test arms the deterministic fault registry (:mod:`repro.faults`)
or kills real processes, then asserts the system converges to the
fault-free answer:

- a serve instance under a fault storm (worker crashes, task hangs,
  claim failures, HTTP 500s) finishes every job either ``done`` with a
  result bit-equal to the clean run or ``failed``/``quarantined`` with
  a recorded error — never hung, never silently wrong;
- corrupted result-cache entries are quarantined on read and
  recomputed, converging back to bit-equal results and clean hits;
- a SIGKILLed ``repro dse --checkpoint`` run, resumed from its last
  snapshot, produces an artifact identical to the uninterrupted run.

Marked ``slow``: these boot HTTP services, fork worker pools and kill
subprocesses — nightly tier, excluded from the default run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.accel import ZvcgSA
from repro.eval.resultcache import ResultCache
from repro.eval.runner import LayerSimTask, simulate_layer_tasks
from repro.models import get_spec
from repro.serve.api import ServeService, http_json, submit_job

pytestmark = pytest.mark.slow

TERMINAL = ("done", "failed", "quarantined")


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ------------------------------------------------------------------ #
# serve under a fault storm
# ------------------------------------------------------------------ #


#: Four distinct analytic requests — small enough that the clean
#: baseline is sub-second, varied enough that a cross-wired result
#: (job A served job B's payload) cannot pass the bit-equal check.
REQUESTS = [
    {"model": "lenet5", "accelerator": accel, "tier": "analytic",
     "seed": seed}
    for accel in ("s2ta-aw", "sa") for seed in (0, 1)
]

#: The storm: most task executions crash a pool worker once, half hang
#: once (cut short by the 1 s task timeout), the scheduler's first two
#: claims raise, and half the HTTP requests 500 (twice per endpoint).
STORM = ("seed=3,worker_crash:p=0.7,task_hang:p=0.5:s=60,"
         "claim_fail:p=1:n=2,http_error:p=0.5:n=2")


def _submit_tolerant(base_url, request, attempts=10):
    """Submit, riding out injected HTTP 500s (each endpoint's fault
    budget is finite, so persistence always wins)."""
    for attempt in range(attempts):
        try:
            return submit_job(base_url, request)
        except (RuntimeError, OSError):
            if attempt == attempts - 1:
                raise
            time.sleep(0.1)


def _wait_tolerant(base_url, job_id, timeout_s=120.0):
    """Poll to a terminal state, tolerating injected 500s on the way."""
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        status, body = http_json("GET", f"{base_url}/jobs/{job_id}",
                                 timeout_s=30.0)
        if status == 200 and body["state"] in TERMINAL:
            return body
        time.sleep(0.2)
    raise TimeoutError(f"job {job_id} not terminal after {timeout_s} s")


class TestServeUnderFaultStorm:
    def test_every_job_converges_bit_equal_or_cleanly_failed(
            self, tmp_path, monkeypatch):
        # Clean baseline results, one per distinct request.
        baseline = {}
        with ServeService(tmp_path / "clean.sqlite3", port=0,
                          workers=1, jobs=2,
                          result_cache=None) as service:
            ids = [submit_job(service.base_url, req)["id"]
                   for req in REQUESTS]
            for req, jid in zip(REQUESTS, ids):
                job = _wait_tolerant(service.base_url, jid)
                assert job["state"] == "done", job
                baseline[(req["accelerator"], req["seed"])] = \
                    job["result"]

        # Same requests under the storm. The 1 s task timeout turns
        # injected hangs into degraded (serial, bit-equal) re-runs.
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "1.0")
        faults.configure(STORM)
        try:
            with ServeService(tmp_path / "chaos.sqlite3", port=0,
                              workers=1, jobs=2, result_cache=None,
                              lease_s=30.0) as service:
                ids = [_submit_tolerant(service.base_url, req)["id"]
                       for req in REQUESTS]
                jobs = [_wait_tolerant(service.base_url, jid)
                        for jid in ids]
                for req, job in zip(REQUESTS, jobs):
                    if job["state"] == "done":
                        key = (req["accelerator"], req["seed"])
                        assert job["result"] == baseline[key], \
                            f"result diverged under faults: {req}"
                    else:
                        assert job.get("error"), \
                            f"terminal without an error: {job}"
                counts = service.store.counts()
                assert counts["pending"] == 0
                assert counts["running"] == 0
                assert service.store.integrity_check() == "ok"
                fired = faults.active().counts()
        finally:
            faults.reset()
        # The storm must have actually hit something, or this test
        # proves nothing. claim_fail is p=1, so it always fires.
        assert fired.get("claim_fail", 0) >= 1, fired
        assert sum(fired.values()) >= 3, fired


# ------------------------------------------------------------------ #
# result-cache corruption
# ------------------------------------------------------------------ #


ALEXNET = get_spec("alexnet")
CONV2 = ALEXNET.conv_layers[1]


class TestCacheCorruptionChaos:
    def test_corrupt_entries_quarantined_then_recomputed(self, tmp_path):
        tasks = [LayerSimTask(ZvcgSA(), CONV2, seed=seed, max_m=32)
                 for seed in (0, 1)]
        clean = simulate_layer_tasks(tasks, jobs=1, result_cache=None)

        cache = ResultCache(tmp_path / "cache")
        # Every key's *first* write lands corrupted (per-key budget of
        # one fire); rewrites after quarantine are clean.
        faults.configure("seed=1,cache_corrupt:p=1")
        try:
            cold = simulate_layer_tasks(tasks, jobs=1,
                                        result_cache=cache)
            assert cold == clean  # computed fresh; corruption is at rest
            # The poisoned entries are detected on read, quarantined,
            # recomputed bit-equal and re-written clean.
            warm = simulate_layer_tasks(tasks, jobs=1,
                                        result_cache=cache)
            assert warm == clean
            assert cache.corrupt == len(tasks)
            quarantined = list(
                (tmp_path / "cache" / "corrupt").glob("*.json"))
            assert len(quarantined) == len(tasks)
            # Third pass: the rewritten entries serve as real hits.
            third = simulate_layer_tasks(tasks, jobs=1,
                                         result_cache=cache)
            assert third == clean
            assert cache.hits >= len(tasks)
            assert cache.corrupt == len(tasks)  # no new detections
        finally:
            faults.reset()


# ------------------------------------------------------------------ #
# SIGKILLed DSE resumed from its checkpoint
# ------------------------------------------------------------------ #


#: One style, one B, three A-DBB bounds: a ~114-point coarse sample
#: plus refinement — seconds of work, so the SIGKILL below lands
#: mid-run with near-certainty (and a fast finish is still correct:
#: resuming a finished checkpoint is idempotent).
DSE_AXES = ["--styles", "tu", "--weight-nnz", "4",
            "--a-nnz", "2,4,8", "--sram-mb", "2.5",
            "--coarse-stride", "3", "--jobs", "1",
            "--no-result-cache"]


def _sans_meta(artifact):
    return {k: v for k, v in artifact.items() if k != "meta"}


def _run_dse_cli(extra, timeout_s=120):
    subprocess.run(
        [sys.executable, "-m", "repro", "dse", *DSE_AXES, *extra],
        check=True, timeout=timeout_s, env=_child_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestDseSigkillResume:
    def test_resumed_artifact_identical_to_uninterrupted(self, tmp_path):
        base_out = tmp_path / "base.json"
        _run_dse_cli(["--out", str(base_out)])
        base = json.loads(base_out.read_text())

        ckpt = tmp_path / "ck.json"
        killed_out = tmp_path / "killed.json"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "dse", *DSE_AXES,
             "--checkpoint", str(ckpt), "--checkpoint-every", "1",
             "--out", str(killed_out)],
            env=_child_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.time() + 60
            while not ckpt.exists() and proc.poll() is None:
                if time.time() > deadline:
                    raise TimeoutError("no checkpoint within 60 s")
                time.sleep(0.01)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert ckpt.exists()

        resumed_out = tmp_path / "resumed.json"
        _run_dse_cli(["--resume", str(ckpt), "--out", str(resumed_out)])
        resumed = json.loads(resumed_out.read_text())
        assert _sans_meta(resumed) == _sans_meta(base)


# ------------------------------------------------------------------ #
# environment plumbing
# ------------------------------------------------------------------ #


class TestEnvArming:
    def test_repro_faults_env_arms_a_fresh_interpreter(self):
        """Pool workers are fresh interpreters that self-arm from
        ``$REPRO_FAULTS`` at import — the mechanism the whole worker
        fault family rides on."""
        env = _child_env()
        env[faults.ENV_VAR] = "worker_crash:p=0.25"
        code = ("import sys\n"
                "from repro import faults\n"
                "reg = faults.active()\n"
                "sys.exit(0 if reg is not None and\n"
                "         reg.specs[0].name == 'worker_crash' else 1)\n")
        assert subprocess.run([sys.executable, "-c", code],
                              env=env, timeout=60).returncode == 0
