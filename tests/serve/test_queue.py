"""The persistent SQLite job store (:mod:`repro.serve.queue`).

The contracts the service leans on: atomic claim (no job runs twice
concurrently, across threads *and* processes), a journal that survives
process death (reopen after SIGKILL -> consistent, nothing committed is
lost), and bounded crash recovery (a stale running job re-queues
exactly once under the default budget, then fails).
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve.queue import DEFAULT_MAX_ATTEMPTS, Job, JobStore, STATES


REQ = {"model": "lenet5", "accelerator": "s2ta-aw", "tier": "analytic"}


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "jobs.sqlite3") as s:
        yield s


class TestSubmit:
    def test_roundtrip(self, store):
        job_id, deduped = store.submit(REQ, "fp-1", priority=3)
        assert not deduped
        job = store.get(job_id)
        assert job.state == "pending"
        assert job.request == REQ
        assert job.priority == 3
        assert job.attempts == 0
        assert job.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert job.result is None and job.error is None

    def test_dedupe_returns_existing(self, store):
        first, _ = store.submit(REQ, "fp-1")
        second, deduped = store.submit(REQ, "fp-1")
        assert deduped and second == first
        assert store.counts()["pending"] == 1

    def test_distinct_fingerprints_both_insert(self, store):
        a, _ = store.submit(REQ, "fp-a")
        b, deduped = store.submit(REQ, "fp-b")
        assert not deduped and b != a

    def test_dedupe_opt_out(self, store):
        first, _ = store.submit(REQ, "fp-1")
        second, deduped = store.submit(REQ, "fp-1", dedupe=False)
        assert not deduped and second != first

    def test_done_job_absorbs_duplicate(self, store):
        job_id, _ = store.submit(REQ, "fp-1")
        store.claim("w")
        store.complete(job_id, {"answer": 42})
        again, deduped = store.submit(REQ, "fp-1")
        assert deduped and again == job_id
        assert store.get(again).result == {"answer": 42}

    def test_failed_job_never_absorbs(self, store):
        job_id, _ = store.submit(REQ, "fp-1")
        store.claim("w")
        store.fail(job_id, "boom")
        again, deduped = store.submit(REQ, "fp-1")
        assert not deduped and again != job_id

    def test_unknown_max_attempts_rejected(self, store):
        with pytest.raises(ValueError):
            store.submit(REQ, "fp", max_attempts=0)


class TestClaim:
    def test_priority_then_fifo(self, store):
        low, _ = store.submit(REQ, "fp-low", priority=0)
        hi1, _ = store.submit(REQ, "fp-hi1", priority=5)
        hi2, _ = store.submit(REQ, "fp-hi2", priority=5)
        claimed = store.claim("w", limit=3)
        assert [j.id for j in claimed] == [hi1, hi2, low]
        assert all(j.state == "running" and j.attempts == 1
                   for j in claimed)

    def test_claim_is_exclusive(self, store):
        for i in range(8):
            store.submit(REQ, f"fp-{i}")
        seen, lock = [], threading.Lock()

        def worker(name):
            while True:
                got = store.claim(name, limit=2)
                if not got:
                    return
                with lock:
                    seen.extend(j.id for j in got)

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(1, 9))
        assert len(set(seen)) == 8  # nobody claimed a job twice

    def test_cross_process_claim_exclusive(self, store, tmp_path):
        for i in range(6):
            store.submit(REQ, f"fp-{i}")
        script = (
            "import json, sys\n"
            "from repro.serve.queue import JobStore\n"
            "store = JobStore(sys.argv[1])\n"
            "ids = [j.id for j in store.claim('other-proc', limit=3)]\n"
            "print(json.dumps(ids))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, store.path],
            capture_output=True, text=True, env=_child_env(), timeout=60)
        assert proc.returncode == 0, proc.stderr
        import json

        theirs = set(json.loads(proc.stdout))
        mine = {j.id for j in store.claim("me", limit=6)}
        assert theirs and mine and not (theirs & mine)
        assert theirs | mine == set(range(1, 7))

    def test_finish_transitions(self, store):
        a, _ = store.submit(REQ, "fp-a")
        b, _ = store.submit(REQ, "fp-b")
        store.claim("w", limit=2)
        store.complete(a, {"ok": 1})
        store.fail(b, "nope")
        assert store.get(a).state == "done"
        assert store.get(b).state == "failed"
        assert store.get(b).error == "nope"
        counts = store.counts()
        assert counts == {"pending": 0, "running": 0, "done": 1,
                          "failed": 1}

    def test_finish_requires_running(self, store):
        job_id, _ = store.submit(REQ, "fp")
        with pytest.raises(ValueError):
            store.complete(job_id, {})
        with pytest.raises(ValueError):
            store.fail(job_id, "x")

    def test_release_requeues_without_losing_fifo_slot(self, store):
        job_id, _ = store.submit(REQ, "fp")
        store.claim("w")
        store.release(job_id)
        job = store.get(job_id)
        assert job.state == "pending" and job.owner is None
        assert store.claim("w2")[0].id == job_id


class TestPersistence:
    def test_survives_reopen(self, store, tmp_path):
        job_id, _ = store.submit(REQ, "fp", priority=7)
        store.claim("w")
        store.complete(job_id, {"cycles": 99})
        store.close()
        with JobStore(store.path) as reopened:
            job = reopened.get(job_id)
            assert job.state == "done"
            assert job.result == {"cycles": 99}
            assert job.priority == 7
            assert reopened.integrity_check() == "ok"


class TestRecover:
    def test_requeues_stale_running_once(self, store):
        job_id, _ = store.submit(REQ, "fp")
        store.claim("dead-worker")
        requeued, failed = store.recover()
        assert requeued == [job_id] and failed == []
        job = store.get(job_id)
        assert job.state == "pending" and job.owner is None
        assert job.attempts == 1  # the crashed claim stays charged

    def test_budget_exhausted_fails(self, store):
        job_id, _ = store.submit(REQ, "fp")
        for _ in range(DEFAULT_MAX_ATTEMPTS):
            assert store.claim("dead")  # crash-loop: claim, die
            requeued, failed = store.recover()
        assert requeued == [] and failed == [job_id]
        job = store.get(job_id)
        assert job.state == "failed"
        assert "attempt budget" in job.error

    def test_noop_on_clean_store(self, store):
        store.submit(REQ, "fp")
        assert store.recover() == ([], [])

    def test_untouched_states_survive(self, store):
        done_id, _ = store.submit(REQ, "fp-done")
        store.claim("w")
        store.complete(done_id, {})
        pend_id, _ = store.submit(REQ, "fp-pend")
        run_id, _ = store.submit(REQ, "fp-run")
        store.claim("dead")
        store.recover()
        assert store.get(done_id).state == "done"
        assert store.get(pend_id).state == "pending"
        assert store.get(run_id).state == "pending"


class TestIntrospection:
    def test_list_jobs_newest_first_and_filtered(self, store):
        ids = [store.submit(REQ, f"fp-{i}")[0] for i in range(3)]
        store.claim("w", limit=1)  # claims ids[0] (FIFO)
        listed = store.list_jobs()
        assert [j.id for j in listed] == ids[::-1]
        pending = store.list_jobs(state="pending")
        assert {j.id for j in pending} == set(ids[1:])

    def test_list_jobs_validates(self, store):
        with pytest.raises(ValueError):
            store.list_jobs(state="zombie")
        with pytest.raises(ValueError):
            store.list_jobs(limit=0)

    def test_counts_all_states_present(self, store):
        assert store.counts() == {state: 0 for state in STATES}


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestSigkillWorker:
    """A worker process SIGKILLed mid-job: the claim it made survives
    in the journal, recovery re-queues the job exactly once, and the
    database stays consistent."""

    WORKER = (
        "import sys, time\n"
        "from repro.serve.queue import JobStore\n"
        "store = JobStore(sys.argv[1])\n"
        "claimed = store.claim('doomed-worker', limit=1)\n"
        "assert claimed, 'nothing to claim'\n"
        "print('claimed', claimed[0].id, flush=True)\n"
        "time.sleep(120)\n"  # simulated mid-job work; killed long before
    )

    def _claim_and_kill(self, db_path):
        proc = subprocess.Popen(
            [sys.executable, "-c", self.WORKER, str(db_path)],
            stdout=subprocess.PIPE, text=True, env=_child_env())
        try:
            line = proc.stdout.readline()  # blocks until the claim landed
            assert line.startswith("claimed"), line
        finally:
            proc.kill()  # SIGKILL — no atexit, no rollback, no cleanup
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

    def test_sigkill_mid_job_requeued_once_then_failed(self, store):
        job_id, _ = store.submit(REQ, "fp")

        # Crash 1: claim charged, job comes back exactly once.
        self._claim_and_kill(store.path)
        assert store.get(job_id).state == "running"  # stale, no owner alive
        requeued, failed = store.recover()
        assert requeued == [job_id] and failed == []
        assert store.get(job_id).attempts == 1
        assert store.integrity_check() == "ok"

        # Recovery is idempotent — nothing left running to re-queue.
        assert store.recover() == ([], [])

        # Crash 2: budget (default 2 attempts) is gone -> failed, not a
        # crash loop.
        self._claim_and_kill(store.path)
        requeued, failed = store.recover()
        assert requeued == [] and failed == [job_id]
        assert store.get(job_id).state == "failed"
        assert store.integrity_check() == "ok"
