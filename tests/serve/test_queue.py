"""The persistent SQLite job store (:mod:`repro.serve.queue`).

The contracts the service leans on: atomic claim (no job runs twice
concurrently, across threads *and* processes), a journal that survives
process death (reopen after SIGKILL -> consistent, nothing committed is
lost), and bounded crash recovery (a stale running job re-queues
exactly once under the default budget, then fails).
"""

import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.queue import (
    DEFAULT_MAX_ATTEMPTS,
    Job,
    JobStore,
    STATES,
    backoff_s,
)


REQ = {"model": "lenet5", "accelerator": "s2ta-aw", "tier": "analytic"}


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "jobs.sqlite3") as s:
        yield s


class TestSubmit:
    def test_roundtrip(self, store):
        job_id, deduped = store.submit(REQ, "fp-1", priority=3)
        assert not deduped
        job = store.get(job_id)
        assert job.state == "pending"
        assert job.request == REQ
        assert job.priority == 3
        assert job.attempts == 0
        assert job.max_attempts == DEFAULT_MAX_ATTEMPTS
        assert job.result is None and job.error is None

    def test_dedupe_returns_existing(self, store):
        first, _ = store.submit(REQ, "fp-1")
        second, deduped = store.submit(REQ, "fp-1")
        assert deduped and second == first
        assert store.counts()["pending"] == 1

    def test_distinct_fingerprints_both_insert(self, store):
        a, _ = store.submit(REQ, "fp-a")
        b, deduped = store.submit(REQ, "fp-b")
        assert not deduped and b != a

    def test_dedupe_opt_out(self, store):
        first, _ = store.submit(REQ, "fp-1")
        second, deduped = store.submit(REQ, "fp-1", dedupe=False)
        assert not deduped and second != first

    def test_done_job_absorbs_duplicate(self, store):
        job_id, _ = store.submit(REQ, "fp-1")
        store.claim("w")
        store.complete(job_id, {"answer": 42})
        again, deduped = store.submit(REQ, "fp-1")
        assert deduped and again == job_id
        assert store.get(again).result == {"answer": 42}

    def test_failed_job_never_absorbs(self, store):
        job_id, _ = store.submit(REQ, "fp-1")
        store.claim("w")
        store.fail(job_id, "boom")
        again, deduped = store.submit(REQ, "fp-1")
        assert not deduped and again != job_id

    def test_unknown_max_attempts_rejected(self, store):
        with pytest.raises(ValueError):
            store.submit(REQ, "fp", max_attempts=0)


class TestClaim:
    def test_priority_then_fifo(self, store):
        low, _ = store.submit(REQ, "fp-low", priority=0)
        hi1, _ = store.submit(REQ, "fp-hi1", priority=5)
        hi2, _ = store.submit(REQ, "fp-hi2", priority=5)
        claimed = store.claim("w", limit=3)
        assert [j.id for j in claimed] == [hi1, hi2, low]
        assert all(j.state == "running" and j.attempts == 1
                   for j in claimed)

    def test_claim_is_exclusive(self, store):
        for i in range(8):
            store.submit(REQ, f"fp-{i}")
        seen, lock = [], threading.Lock()

        def worker(name):
            while True:
                got = store.claim(name, limit=2)
                if not got:
                    return
                with lock:
                    seen.extend(j.id for j in got)

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(1, 9))
        assert len(set(seen)) == 8  # nobody claimed a job twice

    def test_cross_process_claim_exclusive(self, store, tmp_path):
        for i in range(6):
            store.submit(REQ, f"fp-{i}")
        script = (
            "import json, sys\n"
            "from repro.serve.queue import JobStore\n"
            "store = JobStore(sys.argv[1])\n"
            "ids = [j.id for j in store.claim('other-proc', limit=3)]\n"
            "print(json.dumps(ids))\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, store.path],
            capture_output=True, text=True, env=_child_env(), timeout=60)
        assert proc.returncode == 0, proc.stderr
        import json

        theirs = set(json.loads(proc.stdout))
        mine = {j.id for j in store.claim("me", limit=6)}
        assert theirs and mine and not (theirs & mine)
        assert theirs | mine == set(range(1, 7))

    def test_finish_transitions(self, store):
        a, _ = store.submit(REQ, "fp-a")
        b, _ = store.submit(REQ, "fp-b")
        store.claim("w", limit=2)
        store.complete(a, {"ok": 1})
        store.fail(b, "nope")
        assert store.get(a).state == "done"
        assert store.get(b).state == "failed"
        assert store.get(b).error == "nope"
        counts = store.counts()
        assert counts == {"pending": 0, "running": 0, "done": 1,
                          "failed": 1, "quarantined": 0}

    def test_finish_requires_running(self, store):
        job_id, _ = store.submit(REQ, "fp")
        with pytest.raises(ValueError):
            store.complete(job_id, {})
        with pytest.raises(ValueError):
            store.fail(job_id, "x")

    def test_release_requeues_without_losing_fifo_slot(self, store):
        job_id, _ = store.submit(REQ, "fp")
        store.claim("w")
        store.release(job_id)
        job = store.get(job_id)
        assert job.state == "pending" and job.owner is None
        assert store.claim("w2")[0].id == job_id


class TestPersistence:
    def test_survives_reopen(self, store, tmp_path):
        job_id, _ = store.submit(REQ, "fp", priority=7)
        store.claim("w")
        store.complete(job_id, {"cycles": 99})
        store.close()
        with JobStore(store.path) as reopened:
            job = reopened.get(job_id)
            assert job.state == "done"
            assert job.result == {"cycles": 99}
            assert job.priority == 7
            assert reopened.integrity_check() == "ok"


class TestRecover:
    """Recovery is lease-based: a running job whose lease expired (the
    worker stopped heartbeating — crashed, hung, or SIGKILLed) is swept
    back to pending with backoff, or quarantined out of attempts."""

    def test_live_lease_is_not_swept(self, store):
        store.submit(REQ, "fp")
        store.claim("busy-worker", now=100.0, lease_s=30.0)
        assert store.sweep_expired(now=120.0) == ([], [])
        assert store.get(1).state == "running"

    def test_requeues_stale_running_once(self, store):
        job_id, _ = store.submit(REQ, "fp")
        store.claim("dead-worker", now=100.0, lease_s=5.0)
        requeued, quarantined = store.sweep_expired(now=106.0)
        assert requeued == [job_id] and quarantined == []
        job = store.get(job_id)
        assert job.state == "pending" and job.owner is None
        assert job.attempts == 1  # the crashed claim stays charged
        assert job.not_before_s > 106.0  # backoff gates the retry

    def test_backoff_gates_the_reclaim(self, store):
        job_id, _ = store.submit(REQ, "fp")
        store.claim("dead", now=100.0, lease_s=5.0)
        store.sweep_expired(now=106.0)
        not_before = store.get(job_id).not_before_s
        assert store.claim("w2", now=not_before - 0.01) == []
        assert [j.id for j in store.claim("w2", now=not_before)] \
            == [job_id]

    def test_heartbeat_extends_the_lease(self, store):
        job_id, _ = store.submit(REQ, "fp")
        store.claim("w", now=100.0, lease_s=5.0)
        assert store.heartbeat([job_id], now=104.0, lease_s=5.0) == 1
        assert store.sweep_expired(now=106.0) == ([], [])   # renewed
        assert store.sweep_expired(now=109.5) == ([job_id], [])

    def test_heartbeat_ignores_non_running(self, store):
        job_id, _ = store.submit(REQ, "fp")
        assert store.heartbeat([job_id], now=100.0) == 0

    def test_budget_exhausted_quarantines(self, store):
        job_id, _ = store.submit(REQ, "fp")
        now = 100.0
        for _ in range(DEFAULT_MAX_ATTEMPTS):
            now += 1000.0  # far past any backoff gate
            assert store.claim("dead", now=now, lease_s=5.0)
            requeued, quarantined = store.sweep_expired(now=now + 10.0)
        assert requeued == [] and quarantined == [job_id]
        job = store.get(job_id)
        assert job.state == "quarantined"
        assert "lease expired" in job.error
        # Quarantine is terminal: never claimed, never swept again.
        assert store.claim("w", now=now + 2000.0) == []
        assert store.sweep_expired(now=now + 2000.0) == ([], [])

    def test_noop_on_clean_store(self, store):
        store.submit(REQ, "fp")
        assert store.recover() == ([], [])

    def test_untouched_states_survive(self, store):
        done_id, _ = store.submit(REQ, "fp-done")
        store.claim("w", now=100.0, lease_s=5.0)
        store.complete(done_id, {})
        pend_id, _ = store.submit(REQ, "fp-pend")
        run_id, _ = store.submit(REQ, "fp-run")
        store.claim("dead", now=100.0, lease_s=5.0)
        store.sweep_expired(now=200.0)
        assert store.get(done_id).state == "done"
        assert store.get(pend_id).state == "pending"
        assert store.get(run_id).state == "pending"


class TestIntrospection:
    def test_list_jobs_newest_first_and_filtered(self, store):
        ids = [store.submit(REQ, f"fp-{i}")[0] for i in range(3)]
        store.claim("w", limit=1)  # claims ids[0] (FIFO)
        listed = store.list_jobs()
        assert [j.id for j in listed] == ids[::-1]
        pending = store.list_jobs(state="pending")
        assert {j.id for j in pending} == set(ids[1:])

    def test_list_jobs_validates(self, store):
        with pytest.raises(ValueError):
            store.list_jobs(state="zombie")
        with pytest.raises(ValueError):
            store.list_jobs(limit=0)

    def test_counts_all_states_present(self, store):
        assert store.counts() == {state: 0 for state in STATES}


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestSigkillWorker:
    """A worker process SIGKILLed mid-job: the claim it made survives
    in the journal, recovery re-queues the job exactly once, and the
    database stays consistent."""

    WORKER = (
        "import sys, time\n"
        "from repro.serve.queue import JobStore\n"
        "store = JobStore(sys.argv[1])\n"
        "claimed = store.claim('doomed-worker', limit=1,\n"
        "                      now=float(sys.argv[2]), lease_s=5.0)\n"
        "assert claimed, 'nothing to claim'\n"
        "print('claimed', claimed[0].id, flush=True)\n"
        "time.sleep(120)\n"  # simulated mid-job work; killed long before
    )

    def _claim_and_kill(self, db_path, now):
        proc = subprocess.Popen(
            [sys.executable, "-c", self.WORKER, str(db_path), str(now)],
            stdout=subprocess.PIPE, text=True, env=_child_env())
        try:
            line = proc.stdout.readline()  # blocks until the claim landed
            assert line.startswith("claimed"), line
        finally:
            proc.kill()  # SIGKILL — no atexit, no rollback, no cleanup
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

    def test_sigkill_mid_job_requeued_once_then_quarantined(self, store):
        job_id, _ = store.submit(REQ, "fp")

        # Crash 1: claim charged; once the lease runs out the job comes
        # back exactly once. (Forged clocks keep it deterministic — the
        # SIGKILLed worker can never heartbeat either way.)
        self._claim_and_kill(store.path, now=1e6)
        assert store.get(job_id).state == "running"  # stale, no owner alive
        requeued, quarantined = store.recover(now=1e6 + 10.0)
        assert requeued == [job_id] and quarantined == []
        assert store.get(job_id).attempts == 1
        assert store.integrity_check() == "ok"

        # Recovery is idempotent — nothing left running to re-queue.
        assert store.recover(now=1e6 + 10.0) == ([], [])

        # Crash 2: budget (default 2 attempts) is gone -> quarantined,
        # not a crash loop.
        self._claim_and_kill(store.path, now=2e6)
        requeued, quarantined = store.recover(now=2e6 + 10.0)
        assert requeued == [] and quarantined == [job_id]
        assert store.get(job_id).state == "quarantined"
        assert store.integrity_check() == "ok"


class TestBackoff:
    def test_deterministic_exponential_with_jitter(self):
        vals = [backoff_s(a, job_id=7) for a in (1, 2, 3)]
        assert vals == [backoff_s(a, job_id=7) for a in (1, 2, 3)]
        for attempts, val in zip((1, 2, 3), vals):
            raw = 0.5 * 2 ** (attempts - 1)
            assert raw <= val < raw * 1.5
        # Jitter de-synchronizes jobs expiring in the same sweep.
        assert backoff_s(1, job_id=7) != backoff_s(1, job_id=8)

    def test_capped(self):
        assert backoff_s(50, job_id=1) < 60.0 * 1.5
        assert backoff_s(0, job_id=1) == backoff_s(1, job_id=1)


class TestTransitionProperties:
    """Hypothesis laws for the lease/backoff/quarantine machinery: a
    crash-loop scenario replays bit-identically (claims, sweeps and
    final states are a pure function of the submissions), never drops
    or duplicates a fingerprint, and claims keep the queue's total
    (priority DESC, id ASC) order at every pass."""

    @given(st.lists(
        st.tuples(st.integers(0, 3),                       # priority
                  st.integers(0, DEFAULT_MAX_ATTEMPTS)),   # crashes
        min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_crash_loop_replay(self, jobs_spec):
        def scenario():
            with tempfile.TemporaryDirectory() as tmp:
                with JobStore(os.path.join(tmp, "q.sqlite3")) as store:
                    for i, (prio, _) in enumerate(jobs_spec):
                        store.submit(REQ, f"fp-{i}", priority=prio)
                    crashes_left = {i + 1: n
                                    for i, (_, n) in enumerate(jobs_spec)}
                    trace, now = [], 1000.0
                    for _ in range(DEFAULT_MAX_ATTEMPTS + 1):
                        now += 1000.0  # far past every backoff gate
                        claimed = store.claim("w", limit=99, now=now,
                                              lease_s=5.0)
                        trace.append(tuple(j.id for j in claimed))
                        for job in claimed:
                            if crashes_left[job.id] > 0:
                                crashes_left[job.id] -= 1  # die holding it
                            else:
                                store.complete(job.id, {"ok": job.id})
                        trace.append(store.sweep_expired(now=now + 10.0))
                    jobs = store.list_jobs(limit=100)
                    return (trace,
                            sorted(j.fingerprint for j in jobs),
                            {j.id: j.state for j in jobs})

        trace, fingerprints, states = scenario()
        assert (trace, fingerprints, states) == scenario()  # replay law
        # Nothing dropped, nothing duplicated.
        assert fingerprints == sorted(
            f"fp-{i}" for i in range(len(jobs_spec)))
        # Terminal state follows the crash budget exactly.
        for i, (_, crashes) in enumerate(jobs_spec):
            expected = ("done" if crashes < DEFAULT_MAX_ATTEMPTS
                        else "quarantined")
            assert states[i + 1] == expected
        # Every claim pass preserves the total deterministic order.
        prio = {i + 1: p for i, (p, _) in enumerate(jobs_spec)}
        for entry in trace[::2]:
            assert list(entry) == sorted(entry,
                                         key=lambda i: (-prio[i], i))


_V1_SCHEMA = """
CREATE TABLE jobs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint    TEXT    NOT NULL,
    request        TEXT    NOT NULL,
    priority       INTEGER NOT NULL DEFAULT 0,
    state          TEXT    NOT NULL DEFAULT 'pending'
        CHECK (state IN ('pending', 'running', 'done', 'failed')),
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL DEFAULT 2,
    owner          TEXT,
    claim_token    TEXT,
    result         TEXT,
    error          TEXT,
    created_s      REAL    NOT NULL,
    started_s      REAL,
    finished_s     REAL
);
CREATE INDEX jobs_by_state ON jobs (state, priority DESC, id);
CREATE INDEX jobs_by_fingerprint ON jobs (fingerprint, state);
"""


class TestMigration:
    """Opening a pre-lease (PR 9) database rebuilds the table in place:
    rows survive verbatim, the new lease columns appear, and a legacy
    running row (NULL lease) counts as expired on the first sweep."""

    def _v1_db(self, tmp_path):
        path = tmp_path / "v1.sqlite3"
        conn = sqlite3.connect(path)
        conn.executescript(_V1_SCHEMA)
        conn.execute(
            "INSERT INTO jobs (fingerprint, request, priority, state,"
            " attempts, owner, created_s, started_s) VALUES"
            " ('fp-run', '{\"model\": \"lenet5\"}', 2, 'running', 1,"
            "  'w-old', 100.0, 101.0)")
        conn.execute(
            "INSERT INTO jobs (fingerprint, request, state, created_s)"
            " VALUES ('fp-pend', '{\"model\": \"lenet5\"}', 'pending',"
            " 102.0)")
        conn.commit()
        conn.close()
        return path

    def test_rows_survive_and_leases_appear(self, tmp_path):
        path = self._v1_db(tmp_path)
        with JobStore(path) as store:
            running = store.get(1)
            assert running.state == "running"
            assert running.priority == 2 and running.attempts == 1
            assert running.lease_expires_s is None
            assert running.not_before_s == 0.0
            assert store.get(2).state == "pending"
            assert store.integrity_check() == "ok"

    def test_legacy_running_row_sweeps_as_expired(self, tmp_path):
        path = self._v1_db(tmp_path)
        with JobStore(path) as store:
            requeued, quarantined = store.sweep_expired(now=200.0)
            assert requeued == [1] and quarantined == []
            assert store.get(1).state == "pending"

    def test_migrated_store_accepts_quarantine(self, tmp_path):
        path = self._v1_db(tmp_path)
        with JobStore(path, max_attempts=1) as store:
            job_id, _ = store.submit(REQ, "fp-new", max_attempts=1)
            store.claim("w", now=300.0, lease_s=5.0)
            # claims FIFO: id 2 (pending, prio 0) vs new job... claim
            # takes the highest (priority DESC, id ASC) single job.
            store.sweep_expired(now=400.0)
            assert store.counts()["quarantined"] >= 0  # no CHECK abort

    def test_migration_is_idempotent(self, tmp_path):
        path = self._v1_db(tmp_path)
        with JobStore(path) as store:
            store.submit(REQ, "fp-x")
        with JobStore(path) as store:   # second open: no rebuild
            assert store.get(1).fingerprint == "fp-run"
            assert store.integrity_check() == "ok"
            # both indexes came back with the rebuilt table
            names = {r[0] for r in store._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='index'")}
            assert {"jobs_by_state", "jobs_by_fingerprint"} <= names
