"""End-to-end service tests: real HTTP on an ephemeral port, real
scheduler threads, real SIGKILL.

The headline acceptance test submits the same fig12-class quick
functional job twice concurrently, asserts the second dedupes onto the
first, that exactly one simulation executed, that the served result is
bit-equal to a direct in-process ``run_model_functional`` call, and
that ``/metrics`` reconciles. A second suite SIGKILLs the server
process and proves the queue reloads consistently.
"""

import contextlib
import json
import os
import signal
import subprocess
import sys
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.eval.experiments import QUICK_MAX_M
from repro.obs import metrics as obs_metrics
from repro.serve.api import ServeService, http_json, submit_job, \
    wait_for_job
from repro.serve.jobs import parse_request, request_tasks, result_payload
from repro.serve.queue import JobStore


FIG12_QUICK = {"model": "alexnet", "accelerator": "s2ta-aw",
               "tier": "functional", "quick": True, "seed": 0}
ANALYTIC = {"model": "lenet5", "accelerator": "s2ta-aw",
            "tier": "analytic"}


@contextlib.contextmanager
def _service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("jobs", 1)
    kwargs.setdefault("result_cache", None)
    with ServeService(tmp_path / "jobs.sqlite3", port=0,
                      **kwargs) as service:
        yield service


class TestEndToEnd:
    def test_concurrent_duplicate_submits_one_simulation(self, tmp_path):
        obs_metrics.reset_default_registry()
        with _service(tmp_path) as service:
            responses = [None, None]

            def post(slot):
                responses[slot] = submit_job(service.base_url,
                                             FIG12_QUICK)

            threads = [threading.Thread(target=post, args=(i,))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            # Same job id for both clients; exactly one was deduped
            # (the store serializes admissions, so exactly one insert).
            assert responses[0]["id"] == responses[1]["id"]
            assert sorted(r["deduped"] for r in responses) \
                == [False, True]

            job = wait_for_job(service.base_url, responses[0]["id"],
                               timeout_s=300)
            assert job["state"] == "done", job.get("error")

            # Bit-equal to a direct in-process run at the same request.
            request = parse_request(FIG12_QUICK)
            accel, spec, _ = request_tasks(request)
            direct = result_payload(accel.run_model_functional(
                spec, conv_only=True, seed=0, max_m=QUICK_MAX_M))
            assert job["result"] == direct

            # /metrics reconciles: two admissions, one dedupe hit, one
            # simulation completed, nothing failed or left in flight.
            service.wait_idle(timeout_s=60)
            _, payload = http_json("GET",
                                   f"{service.base_url}/metrics")
            assert payload["schema"] == "repro.obs.metrics/v1"
            metrics = payload["metrics"]
            assert metrics["serve.jobs_submitted"]["value"] == 2
            assert metrics["serve.dedupe_hits"]["value"] == 1
            assert metrics["serve.jobs_completed"]["value"] == 1
            assert metrics.get("serve.jobs_failed",
                               {"value": 0})["value"] == 0
            assert metrics["serve.queue_depth"]["value"] == 0
            assert metrics["serve.jobs_running"]["value"] == 0
            assert metrics["serve.job_wall_ns"]["count"] == 1

    def test_resubmit_after_done_dedupes_instantly(self, tmp_path):
        with _service(tmp_path) as service:
            first = submit_job(service.base_url, ANALYTIC)
            done = wait_for_job(service.base_url, first["id"],
                                timeout_s=60)
            assert done["state"] == "done"
            again = submit_job(service.base_url, ANALYTIC)
            assert again["deduped"] and again["id"] == first["id"]
            assert again["state"] == "done"  # result served immediately

    def test_smoke_selftest(self, tmp_path):
        from repro.serve.api import run_smoke

        report = run_smoke(tmp_path / "smoke.sqlite3", result_cache=None)
        assert report.startswith("serve smoke OK")


class TestApiSurface:
    def test_healthz_and_listing(self, tmp_path):
        with _service(tmp_path, workers=0) as service:
            status, health = http_json("GET",
                                       f"{service.base_url}/healthz")
            assert status == 200 and health["ok"]
            assert health["counts"]["pending"] == 0

            submit_job(service.base_url, ANALYTIC)
            submit_job(service.base_url, dict(ANALYTIC, seed=1))
            status, body = http_json(
                "GET", f"{service.base_url}/jobs?state=pending&limit=10")
            assert status == 200 and len(body["jobs"]) == 2
            status, body = http_json(
                "GET", f"{service.base_url}/jobs?state=done")
            assert status == 200 and body["jobs"] == []

    def test_error_statuses(self, tmp_path):
        with _service(tmp_path, workers=0) as service:
            base = service.base_url
            status, body = http_json("POST", f"{base}/jobs",
                                     {"model": "not-a-model",
                                      "accelerator": "sa"})
            assert status == 400 and "unknown model" in body["error"]
            status, body = http_json("POST", f"{base}/jobs",
                                     dict(ANALYTIC, sed=1))
            assert status == 400 and "unknown request field" in body["error"]
            assert http_json("GET", f"{base}/jobs/999")[0] == 404
            assert http_json("GET", f"{base}/jobs/abc")[0] == 400
            assert http_json("GET", f"{base}/nope")[0] == 404
            assert http_json("POST", f"{base}/nope", {})[0] == 404
            assert http_json("GET", f"{base}/jobs?state=zombie")[0] == 400

    def test_malformed_json_body(self, tmp_path):
        with _service(tmp_path, workers=0) as service:
            req = urllib.request.Request(
                f"{service.base_url}/jobs", data=b"{not json",
                method="POST",
                headers={"Content-Type": "application/json"})
            try:
                urllib.request.urlopen(req, timeout=30)
                raise AssertionError("expected HTTP 400")
            except urllib.error.HTTPError as exc:
                assert exc.code == 400
                assert "bad JSON" in json.loads(exc.read())["error"]

    def test_backlog_admission_control(self, tmp_path):
        obs_metrics.reset_default_registry()
        with _service(tmp_path, workers=0, max_pending=1) as service:
            submit_job(service.base_url, ANALYTIC)
            status, body = http_json("POST", f"{service.base_url}/jobs",
                                     dict(ANALYTIC, seed=1))
            assert status == 503 and "backlog full" in body["error"]
            with pytest.raises(RuntimeError, match="503"):
                submit_job(service.base_url, dict(ANALYTIC, seed=2))
            registry = obs_metrics.default_registry()
            assert registry.counter("serve.jobs_rejected").value == 2


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestSigkillServer:
    """Kill -9 the whole server process with jobs queued; the journal
    must reload consistently and a restarted service must finish the
    work."""

    SERVER = (
        "import sys, time\n"
        "from repro.serve.api import ServeService\n"
        "service = ServeService(sys.argv[1], port=0, workers=0,\n"
        "                       result_cache=None)\n"
        "service.start()\n"
        "print(service.port, flush=True)\n"
        "time.sleep(300)\n"  # SIGKILLed long before
    )

    def test_queue_survives_server_sigkill(self, tmp_path):
        db = tmp_path / "jobs.sqlite3"
        proc = subprocess.Popen(
            [sys.executable, "-c", self.SERVER, str(db)],
            stdout=subprocess.PIPE, text=True, env=_child_env())
        try:
            port = int(proc.stdout.readline())
            base = f"http://127.0.0.1:{port}"
            first = submit_job(base, ANALYTIC)
            second = submit_job(base, dict(ANALYTIC, seed=1))
            assert not first["deduped"] and not second["deduped"]
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # The journal reloads consistently: both admissions survived.
        with JobStore(db) as store:
            assert store.integrity_check() == "ok"
            counts = store.counts()
            assert counts["pending"] == 2 and counts["running"] == 0

        # A restarted service drains the recovered queue to done.
        with _service(tmp_path) as service:
            service.wait_idle(timeout_s=120)
            with JobStore(db) as store:
                assert store.counts()["done"] == 2


class TestCliVerbs:
    def test_serve_smoke_verb(self, tmp_path):
        out = main(["serve", "--smoke",
                    "--db", str(tmp_path / "smoke.sqlite3")])
        assert out.startswith("serve smoke OK")

    def test_submit_wait_and_jobs(self, tmp_path):
        with _service(tmp_path) as service:
            net = ["--host", service.host, "--port", str(service.port)]
            out = main(["submit", "lenet5", "--accelerator", "s2ta-aw",
                        "--tier", "analytic", "--wait"] + net)
            assert "queued as job" in out
            assert "cycles" in out and "lenet5" in out
            out = main(["submit", "lenet5", "--accelerator", "s2ta-aw",
                        "--tier", "analytic"] + net)
            assert "deduped onto job" in out
            out = main(["jobs"] + net)
            assert "done=1" in out and "lenet5" in out

    def test_jobs_straight_off_db_file(self, tmp_path):
        with _service(tmp_path, workers=0) as service:
            submit_job(service.base_url, ANALYTIC)
            db = service.db_path
        out = main(["jobs", "--db", db])  # no server running anymore
        assert "pending=1" in out and "s2ta-aw" in out

    def test_submit_unreachable_server_exits(self, tmp_path):
        from repro.serve.api import _free_port

        with pytest.raises(SystemExit, match="failed"):
            main(["submit", "lenet5", "--accelerator", "sa",
                  "--host", "127.0.0.1", "--port", str(_free_port())])

    def test_warm_populates_cache(self):
        out = main(["warm", "--models", "lenet5",
                    "--accelerators", "s2ta-aw,sa",
                    "--tier", "analytic"])
        assert "warmed 2 request(s)" in out
        # A second pass over the same pairs is served from the cache.
        out = main(["warm", "--models", "lenet5",
                    "--accelerators", "s2ta-aw,sa",
                    "--tier", "analytic"])
        assert "+0 put(s)" in out

    def test_warm_requires_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
        with pytest.raises(SystemExit, match="result cache"):
            main(["warm", "--models", "lenet5",
                  "--accelerators", "sa"])
