"""Scheduler property suite + pass-level integration.

The Hypothesis properties pin the three scheduling laws the module
docstring promises: the execution order is total and deterministic with
a FIFO tie-break, dedupe never drops (or merges) a distinct
fingerprint, and batch assembly never mixes fidelity tiers. The
integration tests drive real passes over a real store with the cheap
analytic tier, including the SIGKILL-a-worker-mid-job recovery path.
"""

import os
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics as obs_metrics
from repro.serve.jobs import SimRequest, request_fingerprint
from repro.serve.queue import Job, JobStore
from repro.serve.scheduler import (
    ParsedJob,
    Scheduler,
    assemble_batches,
    dedupe_jobs,
    job_rank,
    order_jobs,
)


def _fake_parsed(index, priority, fp, tier, cost):
    """A ParsedJob for property tests — the request never executes, so
    a hand-built SimRequest (no validation) and an explicit cost do."""
    job = Job(id=index + 1, fingerprint=f"fp-{fp}", request={},
              priority=priority, state="running", attempts=1,
              max_attempts=2, owner="t", result=None, error=None,
              created_s=0.0, started_s=0.0, finished_s=None)
    request = SimRequest(model="lenet5", accelerator="sa", tier=tier)
    return ParsedJob(job, request, cost=cost)


parsed_jobs = st.builds(
    lambda rows: [_fake_parsed(i, *row) for i, row in enumerate(rows)],
    st.lists(
        st.tuples(
            st.integers(min_value=-3, max_value=3),        # priority
            st.integers(min_value=0, max_value=4),         # fingerprint
            st.sampled_from(["functional", "analytic"]),   # tier
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False),                    # cost
        ),
        max_size=12,
    ),
)


class TestOrderingProperties:
    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_order_is_total_and_permutation_invariant(self, jobs):
        forward = [p.job.id for p in order_jobs(jobs)]
        backward = [p.job.id for p in order_jobs(list(reversed(jobs)))]
        assert forward == backward  # deterministic under input order
        assert sorted(forward) == sorted(p.job.id for p in jobs)

    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_priority_cost_fifo_invariants(self, jobs):
        ordered = order_jobs(jobs)
        for a, b in zip(ordered, ordered[1:]):
            assert a.job.priority >= b.job.priority
            if a.job.priority == b.job.priority:
                assert a.cost <= b.cost
                if a.cost == b.cost:
                    assert a.job.id < b.job.id  # FIFO tie-break

    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_rank_keys_are_unique(self, jobs):
        keys = [job_rank(p) for p in jobs]
        assert len(set(keys)) == len(keys)  # ids make every key distinct


class TestDedupeProperties:
    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_every_distinct_fingerprint_survives(self, jobs):
        ranked = order_jobs(jobs)
        leaders, followers = dedupe_jobs(ranked)
        assert {p.fingerprint for p in leaders} \
            == {p.fingerprint for p in jobs}
        leader_fps = [p.fingerprint for p in leaders]
        assert len(set(leader_fps)) == len(leader_fps)

    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_no_job_dropped_and_followers_match_leader(self, jobs):
        ranked = order_jobs(jobs)
        leaders, followers = dedupe_jobs(ranked)
        by_id = {p.job.id: p for p in leaders}
        total = len(leaders) + sum(len(v) for v in followers.values())
        assert total == len(jobs)
        for leader_id, members in followers.items():
            for member in members:
                assert member.fingerprint == by_id[leader_id].fingerprint
                assert member.job.id != leader_id

    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_leader_is_best_ranked_of_its_group(self, jobs):
        ranked = order_jobs(jobs)
        leaders, followers = dedupe_jobs(ranked)
        by_id = {p.job.id: p for p in leaders}
        for leader_id, members in followers.items():
            for member in members:
                assert job_rank(by_id[leader_id]) < job_rank(member)


class TestBatchingProperties:
    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_batches_never_mix_tiers(self, jobs):
        leaders, _ = dedupe_jobs(order_jobs(jobs))
        for batch in assemble_batches(leaders):
            assert batch  # no empty batches
            assert len({p.tier for p in batch}) == 1

    @settings(max_examples=50, deadline=None)
    @given(parsed_jobs)
    def test_batches_partition_leaders_preserving_rank_order(self, jobs):
        leaders, _ = dedupe_jobs(order_jobs(jobs))
        batches = assemble_batches(leaders)
        flat = [p.job.id for batch in batches for p in batch]
        assert sorted(flat) == sorted(p.job.id for p in leaders)
        rank_pos = {p.job.id: i for i, p in enumerate(leaders)}
        for batch in batches:
            positions = [rank_pos[p.job.id] for p in batch]
            assert positions == sorted(positions)  # subsequence of rank


# ------------------------------------------------------------------- #
# Integration: real passes over a real store (cheap analytic tier).
# ------------------------------------------------------------------- #


def _submit(store, request, **kwargs):
    from repro.serve.jobs import parse_request

    parsed = parse_request(request)
    return store.submit(request, request_fingerprint(parsed),
                        priority=parsed.priority, **kwargs)


ANALYTIC = {"model": "lenet5", "accelerator": "s2ta-aw",
            "tier": "analytic"}


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "jobs.sqlite3") as s:
        yield s


@pytest.fixture
def scheduler(store):
    # result_cache=None: these tests pin scheduler behaviour, not the
    # cache; jobs=1 keeps the analytic batches serial and fast.
    return Scheduler(store, jobs=1, result_cache=None)


class TestSchedulerPass:
    def test_duplicates_collapse_to_one_execution(self, store, scheduler):
        obs_metrics.reset_default_registry()
        ids = [_submit(store, ANALYTIC, dedupe=False)[0]
               for _ in range(3)]
        distinct, _ = _submit(store, dict(ANALYTIC, seed=7))
        finished = scheduler.run_once()
        assert finished == 4
        results = [store.get(i).result for i in ids]
        assert all(store.get(i).state == "done" for i in ids + [distinct])
        assert results[0] == results[1] == results[2]
        registry = obs_metrics.default_registry()
        assert registry.counter("serve.dedupe_hits").value == 2
        assert registry.counter("serve.jobs_completed").value == 4
        assert registry.counter("serve.batches").value == 1
        assert registry.gauge("serve.queue_depth").value == 0

    def test_priority_orders_execution_across_passes(self, store,
                                                     scheduler):
        scheduler.batch_limit = 1
        low, _ = _submit(store, dict(ANALYTIC, seed=1, priority=0))
        high, _ = _submit(store, dict(ANALYTIC, seed=2, priority=9))
        scheduler.run_once()
        assert store.get(high).state == "done"
        assert store.get(low).state == "pending"
        scheduler.run_once()
        assert store.get(low).state == "done"

    def test_mixed_tiers_split_into_batches(self, store, scheduler):
        obs_metrics.reset_default_registry()
        a, _ = _submit(store, dict(ANALYTIC, seed=1))
        f, _ = _submit(store, {"model": "lenet5", "accelerator": "sa",
                               "tier": "functional", "quick": True,
                               "seed": 1})
        assert scheduler.run_once() == 2
        assert store.get(a).state == "done"
        assert store.get(f).state == "done"
        registry = obs_metrics.default_registry()
        assert registry.counter("serve.batches").value == 2

    def test_unparseable_row_fails_job_not_pass(self, store, scheduler):
        # The store itself never validates — simulate a row written by
        # a different schema version.
        bad_id, _ = store.submit({"model": "not-a-model"}, "fp-bad")
        ok_id, _ = _submit(store, ANALYTIC)
        assert scheduler.run_once() == 2
        bad = store.get(bad_id)
        assert bad.state == "failed"
        assert "unparseable request" in bad.error
        assert store.get(ok_id).state == "done"

    def test_simulation_failure_isolated_to_its_batch(self, store,
                                                      scheduler):
        # Parses fine (tech is lazily validated) but cannot build; the
        # literal fingerprint mirrors a client that never expands tasks.
        bad_id, _ = store.submit(dict(ANALYTIC, tech="bogus-node"),
                                 "fp-bad-tech")
        scheduler.run_once()
        bad = store.get(bad_id)
        assert bad.state == "failed"
        assert "simulation failed" in bad.error

    def test_drain_empties_queue(self, store, scheduler):
        for seed in range(3):
            _submit(store, dict(ANALYTIC, seed=seed))
        assert scheduler.drain(timeout_s=60) == 3
        assert store.counts()["pending"] == 0

    def test_drain_expired_deadline_raises(self, store):
        for seed in range(3):
            _submit(store, dict(ANALYTIC, seed=seed))
        # batch_limit=1 leaves pending work after the first pass; an
        # already-expired deadline must raise instead of spinning.
        blocked = Scheduler(store, jobs=1, result_cache=None,
                            batch_limit=1)
        with pytest.raises(TimeoutError):
            blocked.drain(timeout_s=-1)

    def test_recover_reports_metrics(self, store):
        obs_metrics.reset_default_registry()
        job_id, _ = _submit(store, ANALYTIC)
        # A claim whose (forged) lease is long expired by real now.
        store.claim("dead-worker", now=0.0, lease_s=1.0)
        scheduler = Scheduler(store, jobs=1, result_cache=None)
        requeued, quarantined = scheduler.recover()
        assert requeued == [job_id] and quarantined == []
        registry = obs_metrics.default_registry()
        assert registry.counter("serve.jobs_requeued").value == 1
        assert registry.gauge("serve.queue_depth").value == 1


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestWorkerCrashRecovery:
    """SIGKILL a real scheduler worker process mid-job, then prove the
    next scheduler instance re-queues the orphaned job exactly once and
    finishes it."""

    WORKER = (
        "import sys, time\n"
        "from repro.serve.queue import JobStore\n"
        "from repro.serve.scheduler import Scheduler\n"
        "store = JobStore(sys.argv[1])\n"
        "sched = Scheduler(store, jobs=1, result_cache=None,\n"
        "                  owner='doomed')\n"
        "claimed = sched.store.claim(sched.owner, limit=1,\n"
        "                            lease_s=0.3)\n"
        "assert claimed, 'nothing to claim'\n"
        "print('claimed', claimed[0].id, flush=True)\n"
        "time.sleep(120)\n"  # 'mid-job'; SIGKILLed long before
    )

    def test_sigkill_worker_mid_job(self, store):
        job_id, _ = _submit(store, ANALYTIC)
        proc = subprocess.Popen(
            [sys.executable, "-c", self.WORKER, store.path],
            stdout=subprocess.PIPE, text=True, env=_child_env())
        try:
            line = proc.stdout.readline()
            assert line.startswith("claimed"), line
        finally:
            proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # A fresh scheduler (the restarted service) sweeps the orphan
        # back once its (short) lease runs out, and runs it to
        # completion — the backoff gate only delays the retry.
        time.sleep(0.4)  # let the dead worker's 0.3 s lease expire
        scheduler = Scheduler(store, jobs=1, result_cache=None)
        requeued, quarantined = scheduler.recover()
        assert requeued == [job_id] and quarantined == []
        assert scheduler.recover() == ([], [])  # exactly once
        scheduler.drain(timeout_s=120)
        job = store.get(job_id)
        assert job.state == "done"
        assert job.result["schema"] == "repro.serve.result/v1"
        assert store.integrity_check() == "ok"


class TestHungWorkerRecovery:
    """SIGSTOP (not kill) a worker process mid-job: the process is
    alive but hung, so it stops heartbeating, its lease runs out, and
    the sweep hands the job to someone else — who produces a result
    bit-equal to an undisturbed run. The stopped process is SIGKILLed
    at the end (cleanup), proving recovery never depended on it."""

    WORKER = (
        "import sys, time\n"
        "from repro.serve.queue import JobStore\n"
        "store = JobStore(sys.argv[1])\n"
        "claimed = store.claim('hung-worker', limit=1, lease_s=0.3)\n"
        "assert claimed, 'nothing to claim'\n"
        "print('claimed', claimed[0].id, flush=True)\n"
        "time.sleep(120)\n"  # stand-in for the wedged simulation
    )

    def test_sigstop_worker_job_retried_bit_equal(self, store, tmp_path):
        job_id, _ = _submit(store, ANALYTIC)

        # Undisturbed baseline of the identical request, out of band.
        with JobStore(tmp_path / "baseline.sqlite3") as clean:
            base_id, _ = _submit(clean, ANALYTIC)
            Scheduler(clean, jobs=1, result_cache=None).drain(
                timeout_s=120)
            baseline = clean.get(base_id).result

        proc = subprocess.Popen(
            [sys.executable, "-c", self.WORKER, store.path],
            stdout=subprocess.PIPE, text=True, env=_child_env())
        try:
            line = proc.stdout.readline()
            assert line.startswith("claimed"), line
            proc.send_signal(signal.SIGSTOP)   # hung, not dead
            time.sleep(0.4)                    # its 0.3 s lease expires

            scheduler = Scheduler(store, jobs=1, result_cache=None)
            requeued, quarantined = scheduler.recover()
            assert requeued == [job_id] and quarantined == []
            scheduler.drain(timeout_s=120)
        finally:
            proc.send_signal(signal.SIGCONT)
            proc.kill()
            proc.wait(timeout=30)

        job = store.get(job_id)
        assert job.state == "done"
        assert job.attempts == 2              # hung claim stays charged
        assert job.result == baseline         # bit-equal retry
        assert store.counts()["running"] == 0  # nothing left hung
        assert store.integrity_check() == "ok"
