"""Cross-cutting model invariants (property-based).

These hold across the whole accelerator-model family and guard the
calibration from regressions: energy falls (weakly) with sparsity,
cycles are monotone in the DBB bounds, technology scaling preserves
architecture ratios, and energy breakdowns are non-negative and sum
consistently.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import (
    SCNN,
    S2TAAW,
    S2TAW,
    S2TAWA,
    DenseSA,
    EyerissV2,
    SmtSA,
    SparTen,
    ZvcgSA,
)

ALL_ACCELERATORS = [DenseSA, ZvcgSA, SmtSA, S2TAW, S2TAAW, S2TAWA,
                    SCNN, SparTen, EyerissV2]
SA_FAMILY = [DenseSA, ZvcgSA, SmtSA, S2TAW, S2TAAW, S2TAWA]


@pytest.fixture(scope="module", params=ALL_ACCELERATORS,
                ids=lambda cls: cls.__name__)
def accelerator(request):
    return request.param()


class TestBreakdownInvariants:
    def test_components_non_negative_and_sum(self, accelerator):
        result = accelerator.microbench_layer(0.5, 0.5)
        b = result.breakdown
        for component in (b.datapath, b.buffers, b.sram, b.dap, b.actfn):
            assert component >= 0.0
        assert b.total_pj == pytest.approx(
            b.datapath + b.buffers + b.sram + b.dap + b.actfn)

    def test_positive_cycles_and_energy(self, accelerator):
        result = accelerator.microbench_layer(0.5, 0.5)
        assert result.cycles > 0
        assert result.energy_pj > 0


class TestSparsityMonotonicity:
    @pytest.mark.parametrize("accel_cls", SA_FAMILY,
                             ids=lambda cls: cls.__name__)
    def test_energy_weakly_decreasing_in_joint_sparsity(self, accel_cls):
        accel = accel_cls()
        energies = []
        for nnz in (8, 6, 4, 2):
            d = nnz / 8
            energies.append(
                accel.microbench_layer(d, d, w_nnz=nnz, a_nnz=nnz).energy_pj)
        assert all(a >= b * 0.999 for a, b in zip(energies, energies[1:]))

    def test_aw_cycles_monotone_in_a_nnz(self):
        aw = S2TAAW()
        cycles = [aw.microbench_layer(0.5, nnz / 8, a_nnz=nnz).compute_cycles
                  for nnz in (1, 2, 3, 4, 5, 8)]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))

    def test_wa_cycles_monotone_in_w_nnz(self):
        wa = S2TAWA()
        cycles = [wa.microbench_layer(nnz / 8, 0.5, w_nnz=nnz).compute_cycles
                  for nnz in (1, 2, 3, 4, 8)]
        assert all(a <= b for a, b in zip(cycles, cycles[1:]))


class TestTechScaling:
    @pytest.mark.parametrize("accel_cls", [ZvcgSA, S2TAW, S2TAAW],
                             ids=lambda cls: cls.__name__)
    def test_node_change_preserves_architecture_ratios(self, accel_cls):
        """Energy ratios between architectures are node-invariant, so the
        65 nm comparisons inherit the 16 nm calibration."""
        layer_args = (0.5, 0.375)
        e16 = (accel_cls().microbench_layer(*layer_args).energy_pj
               / ZvcgSA().microbench_layer(*layer_args).energy_pj)
        e65 = (accel_cls(tech="65nm").microbench_layer(*layer_args).energy_pj
               / ZvcgSA(tech="65nm").microbench_layer(*layer_args).energy_pj)
        assert e16 == pytest.approx(e65, rel=1e-9)

    def test_65nm_costs_more_energy_and_area(self):
        for accel_cls in (ZvcgSA, S2TAAW):
            a16 = accel_cls()
            a65 = accel_cls(tech="65nm")
            assert (a65.microbench_layer(0.5, 0.5).energy_pj
                    > a16.microbench_layer(0.5, 0.5).energy_pj)
            assert a65.area_mm2() > a16.area_mm2()


class TestEventConservation:
    @given(st.floats(0.15, 0.95), st.floats(0.15, 0.95))
    @settings(max_examples=20, deadline=None)
    def test_property_fired_never_exceeds_slots(self, w_density, a_density):
        for accel_cls in (ZvcgSA, S2TAW, S2TAAW, S2TAWA):
            result = accel_cls().microbench_layer(w_density, a_density)
            events = result.events
            assert events.mac_ops <= events.total_mac_slots
            assert events.gated_mac_ops >= 0
            assert events.acc_reg_ops >= 0

    @given(st.floats(0.15, 0.95))
    @settings(max_examples=15, deadline=None)
    def test_property_compressed_never_beats_entropy_floor(self, w_density):
        """DBB weight streams are never smaller than NNZ values + masks."""
        layer = S2TAW().microbench_layer(w_density, 0.5).layer
        stream = S2TAW()._weight_stream_bytes(layer)
        kb = -(-layer.k // 8)
        floor = layer.n * kb * min(layer.w_nnz, 4)
        assert stream >= floor


class TestUtilizationBounds:
    def test_utilization_in_unit_interval(self, accelerator):
        result = accelerator.microbench_layer(0.4, 0.6)
        assert 0.0 <= result.events.mac_utilization <= 1.0

    def test_dense_data_high_utilization_on_dense_sa(self):
        result = DenseSA().microbench_layer(1.0, 1.0)
        assert result.events.mac_utilization > 0.95
