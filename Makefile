# Two test tiers (see pytest.ini and ROADMAP.md):
#
#   make verify   - tier 1: the full default suite minus `slow`-marked
#                   full-size functional runs; stays under a minute and
#                   is what every PR must keep green. Includes the
#                   quick-mode functional checks of all seven
#                   accelerator models (systolic family + SparTen /
#                   Eyeriss v2 / SCNN engines) and the seed-fixed
#                   functional baseline pins.
#   make nightly  - tier 2: the `slow` tier (full-size fig11/fig12
#                   functional runs over every model, no analytic
#                   fallback) plus every benchmarks/bench_*.py artifact
#                   run — bench_functional_vs_analytic enforces the
#                   full-size XVAL_CONTRACT via `repro experiment xval`
#                   semantics — recording a timestamped
#                   BENCH_<utc>.json, then diffing the newest two BENCH
#                   files and failing on >10% throughput regression.
#
#   make bench    - just the benchmark sweep + regression check.
#   make check    - just the regression diff of existing BENCH files.

PY         := PYTHONPATH=src python
STAMP      := $(shell date -u +%Y%m%dT%H%M%SZ)
BENCH_JSON := BENCH_$(STAMP).json

.PHONY: verify nightly bench check

verify:
	$(PY) -m pytest -x -q

nightly:
	$(PY) -m pytest -q -m slow
	$(MAKE) bench

# pytest-benchmark writes its JSON even when assertions fail; stage it
# under a .tmp name (outside the BENCH_*.json glob) and promote it to a
# comparison baseline only after BOTH the benchmark run and the
# regression check are green — a red or regressed nightly must not
# become the baseline that masks its own regression.
bench:
	rm -f BENCH_*.json.tmp
	$(PY) -m pytest -q benchmarks/bench_*.py \
		--benchmark-json=$(BENCH_JSON).tmp
	$(PY) tools/check_bench_regression.py --candidate $(BENCH_JSON).tmp
	mv $(BENCH_JSON).tmp $(BENCH_JSON)

check:
	$(PY) tools/check_bench_regression.py
