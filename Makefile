# Two test tiers (see pytest.ini and ROADMAP.md):
#
#   make verify   - tier 1: the full default suite minus `slow`-marked
#                   full-size functional runs; stays under a minute and
#                   is what every PR must keep green. Includes the
#                   quick-mode functional checks of all seven
#                   accelerator models (systolic family + SparTen /
#                   Eyeriss v2 / SCNN engines) and the seed-fixed
#                   functional baseline pins.
#   make nightly  - tier 2: the `slow` tier (full-size fig11/fig12
#                   functional runs over every model, no analytic
#                   fallback) plus every benchmarks/bench_*.py artifact
#                   run — bench_functional_vs_analytic enforces the
#                   full-size XVAL_CONTRACT via `repro experiment xval`
#                   semantics — recording a timestamped
#                   BENCH_<utc>.json, then diffing the newest two BENCH
#                   files and failing on >10% throughput regression.
#
#   make bench    - just the benchmark sweep + regression check. The
#                   bench_*.py glob includes bench_dse_throughput.py,
#                   so nightly also gates the DSE engine's
#                   configs-evaluated-per-second rate.
#   make check    - just the regression diff of existing BENCH files.
#   make chaos    - the fault-tolerance acceptance suite (tests/chaos,
#                   see docs/robustness.md): a serve instance under a
#                   deterministic fault storm (REPRO_FAULTS worker
#                   crashes / task hangs / claim failures / HTTP 500s)
#                   converging to bit-equal or cleanly-failed jobs,
#                   corrupt result-cache entries quarantined and
#                   recomputed, and a SIGKILLed `repro dse --checkpoint`
#                   resumed to an artifact identical to the
#                   uninterrupted run. Nightly runs it;
#                   bench_fault_overhead.py in the bench sweep gates
#                   the disabled-guard cost (guards_per_s).
#   make serve-smoke - end-to-end self-test of the simulation service
#                   (repro serve --smoke): boots the HTTP service on an
#                   ephemeral port and a throwaway queue DB, submits a
#                   job + a duplicate + a distinct one, and asserts
#                   dedupe, bit-equal results and metric reconciliation.
#                   Nightly runs it; bench_serve_throughput.py in the
#                   bench sweep gates the queue's jobs/s rate.
#   make dse      - full-keyspace adaptive design-space exploration
#                   (repro dse); writes the artifact (evaluations +
#                   Pareto frontier + refinement rounds) to
#                   dse_frontier.json.
#
# Functional-tier execution engine (repro.eval.runner):
#
#   make fig-functional - full-size fig11 + fig12 functional runs on the
#                   parallel, memoized engine (all cores, on-disk result
#                   cache; re-runs skip straight to finalization).
#   make cache-clear    - drop the on-disk functional-result cache
#                   ($REPRO_CACHE_DIR, default ~/.cache/repro/results).
#
# Observability (repro.obs, see docs/observability.md):
#
#   make trace    - record a Chrome trace of a parallel fig12
#                   functional run (trace_fig12.json, viewable at
#                   https://ui.perfetto.dev) and print the offline
#                   phase-attribution summary. Nightly runs this too,
#                   so a wiring break (unmatched spans, missing worker
#                   tracks) surfaces there; bench_obs_overhead.py in
#                   the bench sweep gates the disabled-path cost.
#
# `make nightly` runs the whole functional tier on the parallel runner
# (REPRO_JOBS=0 = one worker per core) and fails when the xval
# agreement contract trips (`repro experiment xval` exits non-zero) or
# when the benchmark gate regresses — including the new end-to-end
# wall-clock metric from bench_experiment_wallclock.py.

PY         := PYTHONPATH=src python
STAMP      := $(shell date -u +%Y%m%dT%H%M%SZ)
BENCH_JSON := BENCH_$(STAMP).json

.PHONY: verify nightly bench check dse fig-functional cache-clear trace \
	serve-smoke chaos

verify:
	$(PY) -m pytest -x -q

# The xval gate always simulates cold (the CLI enforces it): its whole
# point is to re-validate the *current* simulators against the
# contract, which a stale cache entry under an unbumped CODE_VERSION
# salt would mask.
nightly:
	REPRO_JOBS=0 $(PY) -m pytest -q -m slow
	$(PY) -m repro experiment xval --jobs 0
	$(MAKE) serve-smoke
	$(MAKE) chaos
	$(MAKE) trace
	$(MAKE) bench

serve-smoke:
	$(PY) -m repro serve --smoke

# The chaos tests are `slow`-marked (they boot HTTP services and kill
# subprocesses), so the plain nightly `-m slow` sweep already collects
# them; this target runs just the fault-tolerance acceptance suite.
chaos:
	$(PY) -m pytest -q tests/chaos -m ""

# Quick-mode so the traced run stays seconds even on a loaded nightly
# box; --no-result-cache so the trace always covers real simulation
# work (a fully-cached run would attribute everything to finalize).
trace:
	$(PY) -m repro experiment fig12 --functional --quick --jobs 4 \
		--no-result-cache --trace trace_fig12.json
	$(PY) -m repro trace summarize trace_fig12.json

# Analytic per-point evaluation is sub-millisecond, so the sweep stays
# serial (--jobs 1) — a process pool would spend more on pickling than
# simulating. Payloads memoize in the on-disk result cache, so re-runs
# and shard merges skip straight to finalization.
dse:
	$(PY) -m repro dse --jobs 1 --out dse_frontier.json

fig-functional:
	$(PY) -m repro experiment fig11 --functional --jobs 0
	$(PY) -m repro experiment fig12 --functional --jobs 0

cache-clear:
	$(PY) -m repro cache clear

# pytest-benchmark writes its JSON even when assertions fail; stage it
# under a .tmp name (outside the BENCH_*.json glob) and promote it to a
# comparison baseline only after BOTH the benchmark run and the
# regression check are green — a red or regressed nightly must not
# become the baseline that masks its own regression.
bench:
	rm -f BENCH_*.json.tmp
	$(PY) -m pytest -q benchmarks/bench_*.py \
		--benchmark-json=$(BENCH_JSON).tmp
	$(PY) tools/check_bench_regression.py --candidate $(BENCH_JSON).tmp
	mv $(BENCH_JSON).tmp $(BENCH_JSON)

check:
	$(PY) tools/check_bench_regression.py
