"""Beyond CNNs: DBB on I-BERT transformer encoders (Table 3, last rows).

The paper demonstrates A/W-DBB on I-BERT's fully-connected sub-layers
(FC1/FC2 of each encoder), leaving attention projections dense. This
example (1) runs the I-BERT workload through the accelerator models,
showing where DBB pays on a transformer, and (2) reproduces the
fine-tuning dynamic on an FC-shaped proxy.

Run:  python examples/transformer_ibert.py
"""

import numpy as np

from repro.accel import S2TAAW, ZvcgSA
from repro.core.dbb import DBBSpec
from repro.models import ibert_spec
from repro.train import MLP, dbb_finetune, synthetic_classification


def accelerator_view() -> None:
    spec = ibert_spec(a_nnz=4, w_nnz=4)
    zvcg = ZvcgSA()
    aw = S2TAAW()
    base = zvcg.run_model(spec)
    run = aw.run_model(spec)
    print(f"I-BERT base (GLUE-QQP shape): {spec.total_macs / 1e9:.1f} G MACs,"
          f" {len(spec.layers)} GEMM layers")
    print(f"  SA-ZVCG : {base.runtime_s * 1e3:6.2f} ms, "
          f"{base.energy_uj:7.0f} uJ")
    print(f"  S2TA-AW : {run.runtime_s * 1e3:6.2f} ms, "
          f"{run.energy_uj:7.0f} uJ  "
          f"({base.energy_uj / run.energy_uj:.2f}x less energy, "
          f"{base.total_cycles / run.total_cycles:.2f}x speedup)")
    fc1 = run.layer("enc0_fc1")
    q = run.layer("enc0_q")
    print(f"  per-layer: enc0_fc1 (4/8 DBB) runs at "
          f"{base.layer('enc0_fc1').cycles / fc1.cycles:.2f}x; "
          f"enc0_q (dense attention proj) at "
          f"{base.layer('enc0_q').cycles / q.cycles:.2f}x")
    memory_bound = sum(1 for r in run.layer_results if r.memory_bound)
    print(f"  {memory_bound}/{len(run.layer_results)} layers memory bound "
          f"at sequence length 128 (batch-1 FC reuse limit, Sec. 8.3)")


def finetune_view() -> None:
    print("\nFC-sublayer DBB fine-tuning proxy (paper: I-BERT QQP "
          "91.2 -> 90.9 with 4/8 A + 4/8 W):")
    rng = np.random.default_rng(11)
    data = synthetic_classification(rng=rng)
    model = MLP(64, [128, 128], 12, dap_spec=DBBSpec(8, 4), rng=rng)
    report = dbb_finetune(model, data, w_spec=DBBSpec(8, 4), rng=rng)
    print(f"  baseline {report.baseline_acc:.1f}% -> pruned "
          f"{report.pruned_acc:.1f}% -> fine-tuned "
          f"{report.finetuned_acc:.1f}% "
          f"(final loss {report.final_loss:+.1f} pts)")


def main() -> None:
    accelerator_view()
    finetune_view()


if __name__ == "__main__":
    main()
