"""Quickstart: the DBB format, pruning, DAP and sparse GEMM in 5 minutes.

Covers the paper's core pipeline end to end on small tensors:

1. compress a tensor into Density Bound Block (DBB) format (Fig. 5);
2. prune weights to a 4/8 W-DBB bound (Sec. 4);
3. prune activations dynamically with DAP (Sec. 5.1);
4. run the joint-DBB GEMM and check it is bit-exact with dense numpy;
5. compare all accelerator variants on the paper's typical conv layer.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import S2TAAW, S2TAW, DenseSA, SmtSA, ZvcgSA
from repro.core.dbb import DBBSpec, compress, decompress
from repro.core.dap import dap_prune
from repro.core.gemm import compress_operands, dense_gemm, joint_dbb_gemm
from repro.core.pruning import prune_weights_dbb
from repro.core.sparsity import density, random_unstructured
from repro.workloads.typical import typical_conv_layer


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. DBB compression round-trip ---------------------------------- #
    spec = DBBSpec(block_size=8, max_nnz=4)  # the paper's 4/8
    print(f"DBB spec: {spec.ratio} (bound {spec.density_bound:.0%}, "
          f"{spec.compression_ratio():.2f}x compression for INT8)")

    x = np.array([[0, 5, 0, -3, 0, 0, 7, 1]], dtype=np.int8)
    tensor = compress(x, spec)
    block = tensor.row_blocks(0)[0]
    print(f"block values={list(block.values)} mask={block.mask:#04x} "
          f"positions={block.positions}")
    assert np.array_equal(decompress(tensor, dtype=np.int8), x)

    # 2. weight pruning ---------------------------------------------- #
    w = random_unstructured((64, 16), 0.9, rng=rng).astype(np.int64)
    w_pruned = prune_weights_dbb(w.T, spec).T
    print(f"\nweights: density {density(w):.2f} -> {density(w_pruned):.2f} "
          f"after 4/8 magnitude pruning")

    # 3. dynamic activation pruning ---------------------------------- #
    a = random_unstructured((8, 64), 0.8, rng=rng).astype(np.int64)
    dap = dap_prune(a, spec, nnz=3)
    print(f"activations: density {density(a):.2f} -> "
          f"{density(dap.pruned):.2f} after 3/8 DAP "
          f"(pruned {dap.pruned_fraction:.0%} of non-zeros)")

    # 4. joint DBB GEMM, bit-exact ------------------------------------ #
    a_dbb, w_dbb = compress_operands(dap.pruned, w_pruned,
                                     spec.with_nnz(3), spec)
    out_sparse = joint_dbb_gemm(a_dbb, w_dbb)
    out_dense = dense_gemm(dap.pruned, w_pruned)
    assert np.array_equal(out_sparse, out_dense)
    print("joint DBB GEMM matches dense numpy bit-exactly")

    # 5. accelerator comparison on the typical conv ------------------- #
    layer = typical_conv_layer(w_density=0.5, a_density=0.375)
    print(f"\ntypical conv layer: M={layer.m} K={layer.k} N={layer.n}, "
          f"50% W-DBB / 62.5% A-DBB sparsity")
    print(f"{'accelerator':<12} {'cycles':>10} {'energy uJ':>10} "
          f"{'vs ZVCG':>8}")
    baseline = ZvcgSA().run_layer(layer)
    for accel in (DenseSA(), ZvcgSA(), SmtSA(), S2TAW(), S2TAAW()):
        result = accel.run_layer(layer)
        ratio = baseline.energy_pj / result.energy_pj
        print(f"{accel.name:<12} {result.cycles:>10,} "
              f"{result.energy_uj:>10.1f} {ratio:>7.2f}x")


if __name__ == "__main__":
    main()
