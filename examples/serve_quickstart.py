"""Quickstart: the simulation service in 2 minutes, fully in-process.

Boots `repro serve` on an ephemeral port, then walks the client side:

1. submit a quick functional AlexNet job over HTTP and wait for it;
2. submit the identical request again — it dedupes, no re-simulation;
3. verify the served result is bit-equal to a direct in-process run;
4. warm the scheduler with a batch of analytic design points;
5. read the queue listing and the service metrics back.

Run:  PYTHONPATH=src python examples/serve_quickstart.py
"""

import tempfile

from repro.serve import (
    ServeService,
    http_json,
    parse_request,
    request_tasks,
    result_payload,
    submit_job,
    wait_for_job,
)
from repro.eval.experiments import QUICK_MAX_M


REQUEST = {"model": "alexnet", "accelerator": "s2ta-aw",
           "tier": "functional", "quick": True, "seed": 0}


def main() -> None:
    db = tempfile.mktemp(suffix=".sqlite3", prefix="repro-serve-qs-")
    with ServeService(db, port=0, workers=1,
                      result_cache=None) as service:
        print(f"service up on {service.base_url} (db={db})")

        # 1. submit and wait ------------------------------------------ #
        admitted = submit_job(service.base_url, REQUEST)
        print(f"\nsubmitted job {admitted['id']} "
              f"(deduped={admitted['deduped']})")
        job = wait_for_job(service.base_url, admitted["id"])
        result = job["result"]
        print(f"{result['model']} on {result['accelerator']}: "
              f"{result['total_cycles']:,} cycles, "
              f"{result['energy_uj']:,.1f} uJ over "
              f"{len(result['layers'])} layers")

        # 2. the duplicate dedupes ------------------------------------ #
        dup = submit_job(service.base_url, REQUEST)
        assert dup["deduped"] and dup["id"] == admitted["id"]
        print(f"duplicate submission deduped onto job {dup['id']} "
              f"(state {dup['state']} — served from the queue)")

        # 3. bit-equal to the direct in-process run ------------------- #
        accel, spec, _ = request_tasks(parse_request(REQUEST))
        direct = result_payload(accel.run_model_functional(
            spec, conv_only=True, seed=0, max_m=QUICK_MAX_M))
        assert job["result"] == direct
        print("served result is bit-equal to run_model_functional")

        # 4. a batch of analytic design points ------------------------ #
        ids = [submit_job(service.base_url,
                          {"model": "lenet5", "accelerator": accel_key,
                           "tier": "analytic"})["id"]
               for accel_key in ("sa", "sa-zvcg", "s2ta-aw", "sparten")]
        service.wait_idle(timeout_s=120)
        print(f"\nanalytic sweep done ({len(ids)} design points):")
        for job_id in ids:
            _, doc = http_json("GET",
                               f"{service.base_url}/jobs/{job_id}")
            res = doc["result"]
            print(f"  {res['accelerator']:<10} "
                  f"{res['total_cycles']:>12,} cycles "
                  f"{res['energy_uj']:>10,.1f} uJ")

        # 5. queue + metrics ------------------------------------------ #
        _, health = http_json("GET", f"{service.base_url}/healthz")
        _, metrics = http_json("GET", f"{service.base_url}/metrics")
        served = metrics["metrics"]["serve.jobs_completed"]["value"]
        print(f"\nqueue counts: {health['counts']}")
        print(f"metrics: {served:.0f} jobs completed, "
              f"{metrics['metrics']['serve.dedupe_hits']['value']:.0f} "
              f"dedupe hit(s)")


if __name__ == "__main__":
    main()
