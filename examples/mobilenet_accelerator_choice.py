"""Scenario: pick a mobile accelerator for MobileNetV1 vs VGG-16.

The paper's motivating deployment question (Sec. 1): on a mobile SoC
power budget, which sparsity mechanism actually pays? This example runs
two very different networks — compact MobileNetV1 (dense-ish
activations) and heavy VGG-16 (very sparse late activations) — through
every accelerator model and prints per-layer and whole-network PPA.

Run:  python examples/mobilenet_accelerator_choice.py
"""

from repro.accel import S2TAAW, S2TAW, SmtSA, ZvcgSA
from repro.models import get_spec


def compare_network(model_name: str) -> None:
    spec = get_spec(model_name)
    accelerators = [ZvcgSA(), SmtSA(), S2TAW(), S2TAAW()]
    print(f"\n=== {spec.name} ({spec.total_macs / 1e9:.2f} G MACs, "
          f"conv-only evaluation) ===")
    baseline = accelerators[0].run_model(spec, conv_only=True)
    print(f"{'accelerator':<12} {'ms/inf':>8} {'uJ/inf':>9} "
          f"{'speedup':>8} {'energy x':>9} {'TOPS/W':>7}")
    for accel in accelerators:
        run = accel.run_model(spec, conv_only=True)
        print(f"{accel.name:<12} "
              f"{run.runtime_s * 1e3:>8.2f} "
              f"{run.energy_uj:>9.0f} "
              f"{baseline.total_cycles / run.total_cycles:>7.2f}x "
              f"{baseline.energy_uj / run.energy_uj:>8.2f}x "
              f"{run.effective_tops_per_watt:>7.1f}")

    # Per-layer view on S2TA-AW: where does the time-unrolled design
    # win, and where does dense-activation bypass cap it?
    aw_run = S2TAAW().run_model(spec, conv_only=True)
    zv_run = baseline
    print(f"\n  per-layer S2TA-AW vs SA-ZVCG ({spec.name}, first 8 convs):")
    print(f"  {'layer':<14} {'a_nnz':>5} {'speedup':>8} {'energy x':>9}")
    for aw, zv in list(zip(aw_run.layer_results, zv_run.layer_results))[:8]:
        print(f"  {aw.layer.name:<14} {aw.layer.a_nnz:>4}/8 "
              f"{zv.cycles / aw.cycles:>7.2f}x "
              f"{zv.energy_pj / aw.energy_pj:>8.2f}x")


def main() -> None:
    compare_network("mobilenet_v1")
    compare_network("vgg16")
    print(
        "\nTakeaway (matches Fig. 11): VGG-16's sparse late activations let\n"
        "S2TA-AW stretch its variable A-DBB to ~2.3x energy reduction, while\n"
        "MobileNetV1's dense activations (avg 4.8/8) cap the gain — but the\n"
        "time-unrolled design still never loses to SA-ZVCG on energy."
    )


if __name__ == "__main__":
    main()
