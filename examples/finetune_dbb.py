"""Reproduce the Table 3 training dynamic: prune, drop, recover.

Runs the paper's DBB-aware training recipe — progressive per-block
magnitude weight pruning plus the DAP straight-through estimator — on
the proxy model/dataset (ImageNet is unavailable offline; DESIGN.md
Sec. 2 documents the substitution).

Run:  python examples/finetune_dbb.py
"""

import numpy as np

from repro.core.dbb import DBBSpec
from repro.train import MLP, dbb_finetune, synthetic_classification


def run_variant(name, a_spec, w_spec, seed=7):
    rng = np.random.default_rng(seed)
    data = synthetic_classification(rng=rng)
    model = MLP(64, [64, 64], 12, dap_spec=a_spec, rng=rng)
    report = dbb_finetune(model, data, w_spec=w_spec, rng=rng)
    print(f"{name:<22} baseline {report.baseline_acc:5.1f}%  "
          f"pruned {report.pruned_acc:5.1f}%  "
          f"finetuned {report.finetuned_acc:5.1f}%  "
          f"(final loss {report.final_loss:+.1f} pts)")
    return report


def main() -> None:
    print("DBB fine-tuning on the synthetic proxy task "
          "(Table 3 reproduction):\n")
    run_variant("A-DBB 3/8", DBBSpec(8, 3), None)
    run_variant("W-DBB 4/8", None, DBBSpec(8, 4))
    joint = run_variant("A/W-DBB 3/8 + 4/8", DBBSpec(8, 3), DBBSpec(8, 4))
    run_variant("W-DBB 2/8 aggressive", None, DBBSpec(8, 2))
    print(
        "\nThe paper's MobileNetV1 example: 71% -> 56.1% after 4/8 DAP,\n"
        "recovered to 70.2% by 30 epochs of DAP-aware fine-tuning. The\n"
        "same dynamic appears above: pruning costs accuracy, DBB-aware\n"
        f"fine-tuning recovers {joint.recovered:.1f} points of it."
    )


if __name__ == "__main__":
    main()
