"""Reproduce the Sec. 7 methodology: sweep AxBxC_MxN, pick a design.

Enumerates every TPE configuration meeting the 4 TOPS peak constraint,
evaluates PPA on the reference workload, extracts the area-vs-power
Pareto frontier, selects the lowest-power point, and emits the
structural netlist the paper's RTL generator would hand to the EDA flow.

Run:  python examples/design_space_exploration.py
"""

from repro.design import (
    enumerate_design_space,
    evaluate_point,
    generate_structure,
    pareto_frontier,
    select_lowest_power,
)


def main() -> None:
    points = list(enumerate_design_space())
    print(f"{len(points)} feasible time-unrolled design points at "
          f"4 TOPS peak (2048 MACs)")
    evaluations = [evaluate_point(p) for p in points]
    frontier = pareto_frontier(evaluations)
    print(f"\narea-vs-power frontier ({len(frontier)} points):")
    print(f"{'design':<14} {'power mW':>9} {'area mm2':>9} {'energy uJ':>10}")
    for ppa in frontier:
        print(f"{ppa.point.notation:<14} {ppa.power_mw:>9.1f} "
              f"{ppa.area_mm2:>9.2f} {ppa.energy_uj:>10.1f}")

    best = select_lowest_power(evaluations)
    paper = next(e for e in evaluations if e.point.notation == "8x4x4_8x8")
    print(f"\nselected: {best.point.notation} "
          f"({best.power_mw:.0f} mW, {best.area_mm2:.2f} mm2)")
    print(f"paper's 8x4x4_8x8: {paper.power_mw:.0f} mW, "
          f"{paper.area_mm2:.2f} mm2 "
          f"({paper.energy_uj / best.energy_uj - 1:+.1%} energy vs best)")

    print("\nstructural netlist of the paper's design point:")
    print(generate_structure(paper.point))


if __name__ == "__main__":
    main()
