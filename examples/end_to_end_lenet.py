"""End to end: LeNet-5 through the full DBB pipeline and the cycle-level
systolic simulator.

1. build a runnable LeNet-5, prune its weights to 2/8 W-DBB (Table 3's
   LeNet configuration, first conv excluded);
2. run inference with 4/8 DAP and collect the per-layer trace;
3. lower conv2 to its GEMM and execute it on the cycle-level S2TA-AW
   tensor-PE simulator, checking bit-exactness against numpy and
   reporting cycles, MAC utilization and event counts.

Run:  python examples/end_to_end_lenet.py
"""

import numpy as np

from repro.arch.systolic import Mode, SystolicArray, SystolicConfig
from repro.core.dbb import DBBSpec
from repro.core.gemm import dense_gemm
from repro.core.pruning import prune_weights_dbb
from repro.models.zoo import build_lenet5
from repro.quant import QuantizedTensor


def main() -> None:
    rng = np.random.default_rng(3)
    w_spec = DBBSpec(8, 2)
    a_spec = DBBSpec(8, 4)

    # 1. prune the model ---------------------------------------------- #
    model = build_lenet5(rng=rng)
    model.prune_weights(w_spec, skip=["conv1"])
    print("LeNet-5 pruned to 2/8 W-DBB (conv1 excluded)")

    # 2. DAP inference with tracing ----------------------------------- #
    x = rng.normal(size=(2, 28, 28, 1))
    result = model.forward(x, dap_spec=a_spec)
    print(f"\n{'layer':<9} {'GEMM (M,K,N)':<18} {'in density':>10} "
          f"{'DAP nnz':>8}")
    for trace in result.traces:
        if trace.gemm_shape is None:
            continue
        nnz = f"{trace.dap_nnz}/8" if trace.dap_nnz else "-"
        print(f"{trace.name:<9} {str(trace.gemm_shape):<18} "
              f"{trace.input_density:>10.2f} {nnz:>8}")
    print(f"total MACs: {result.total_macs:,}")

    # 3. conv2's GEMM on the cycle-level simulator --------------------- #
    conv2 = model.layer("conv2")
    features = model.layers[0].forward(x)            # conv1
    features = model.layers[1].forward(features)     # relu1
    features = model.layers[2].forward(features)     # pool1
    a_matrix, _, _ = conv2.lower(features)

    # INT8-quantize the lowered operands, as the accelerator runs them.
    a_q = QuantizedTensor.from_real(a_matrix)
    w_q = QuantizedTensor.from_real(conv2.weights)
    w_int = prune_weights_dbb(
        np.concatenate([w_q.q.T, np.zeros((16, 10), dtype=np.int8)], axis=1),
        w_spec,
    )[:, :150].T

    sim = SystolicArray(SystolicConfig(
        rows=2, cols=2, mode=Mode.AWDBB,
        w_spec=w_spec, a_spec=a_spec, tpe_a=4, tpe_c=2,
    ))
    run = sim.run_gemm(a_q.q.astype(np.int64), w_int.astype(np.int64),
                       a_nnz=4)
    from repro.core.dap import dap_prune

    reference = dense_gemm(
        dap_prune(a_q.q.astype(np.int64), a_spec).pruned, w_int)
    assert np.array_equal(run.output, reference)
    events = run.events
    print(f"\nconv2 on a 4x4x2_2x2 time-unrolled TPE array:")
    print(f"  cycles:           {run.cycles:,}")
    print(f"  MACs fired/gated: {events.mac_ops:,} / "
          f"{events.gated_mac_ops:,} "
          f"(utilization {events.mac_utilization:.0%})")
    print(f"  SRAM bytes (A/W): {events.sram_a_read_bytes:,} / "
          f"{events.sram_w_read_bytes:,}")
    print(f"  DAP comparisons:  {events.dap_compare_ops:,}")
    print("  output bit-exact with DAP + dense numpy GEMM")


if __name__ == "__main__":
    main()
