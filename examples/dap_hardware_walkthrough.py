"""Walk through the DAP hardware maxpool cascade (Fig. 8).

Shows each magnitude-maxpool stage selecting the next-largest element,
the cumulative Top-k bitmask after every stage, bit-exactness against
the algorithmic DAP, and per-layer NNZ tuning on real activations from
a runnable CNN.

Run:  python examples/dap_hardware_walkthrough.py
"""

import numpy as np

from repro.arch.dap_hw import DAPHardware
from repro.core.dap import dap_prune, tune_layer_nnz
from repro.core.dbb import DBBSpec
from repro.core.sparsity import density
from repro.models.zoo import build_tiny_cnn


def main() -> None:
    # The Fig. 8 worked example: 4/8 DAP keeps [4, 5, -7, 6], M = 0x4D.
    block = np.array([4, -1, 5, -7, 0, 1, 6, 2])
    hw = DAPHardware(block_size=8, max_stages=5)
    print(f"input block: {block.tolist()}")
    compressed, traces, events = hw.prune_block(block, nnz=5)
    for trace in traces:
        kept = block[trace.selected_position]
        print(f"  stage {trace.stage + 1}: select position "
              f"{trace.selected_position} (value {kept:+d}) "
              f"-> cumulative mask {trace.cumulative_mask:#04x}")
    top4, _, _ = hw.prune_block(block, nnz=4)
    print(f"4/8 output: values {list(top4.values)}, mask {top4.mask:#04x} "
          f"(paper: [4, 5, -7, 6], 0x4D)")
    print(f"comparator ops for 5 stages: {events.dap_compare_ops} "
          f"(= 5 x (BZ-1))")

    # Bit-exact with the algorithmic DAP over a random tensor.
    rng = np.random.default_rng(0)
    x = rng.integers(-128, 128, size=(16, 64)).astype(np.int8)
    hw_out, _ = hw.prune_tensor(x, nnz=3)
    sw_out = dap_prune(x, DBBSpec(8, 3)).pruned
    assert np.array_equal(hw_out, sw_out)
    print("\nhardware cascade == software Top-NNZ, bit-exact over a "
          "16x64 tensor")

    # Per-layer NNZ tuning on real activations (Sec. 5.2: density varies
    # wildly across layers, so S2TA-AW tunes NNZ per layer).
    model = build_tiny_cnn()
    x = np.abs(rng.normal(size=(4, 16, 16, 8)))
    result = model.forward(x)
    print("\nper-layer A-DBB tuning on a runnable CNN "
          "(keep 97% of L1 mass):")
    captured = x
    for layer in model.layers:
        captured = layer.forward(captured)
        if layer.name.startswith("relu"):
            flat = captured.reshape(-1, captured.shape[-1])
            nnz = tune_layer_nnz(flat, DBBSpec(8, 4), keep_threshold=0.97)
            label = f"{nnz}/8" if nnz < 8 else "8/8 (dense bypass)"
            print(f"  after {layer.name:<8} density {density(captured):.2f} "
                  f"-> tuned A-DBB {label}")
    del result


if __name__ == "__main__":
    main()
