"""Run the adaptive design-space exploration engine end to end.

Scales the Sec. 7 sweep beyond the paper's table: enumerates the
AxBxC_MxN x (A-DBB bound, SRAM size) keyspace, coarse-samples it,
evaluates points through the analytic tier, and adaptively refines
around the (energy x cycles x area) Pareto frontier until stable —
then demonstrates that a sharded run (two deterministic slices, merged)
reproduces the unsharded artifact exactly.

Equivalent CLI:

    python -m repro dse --styles tu,dp --weight-nnz 4 --a-nnz 2,4,8 \\
        --sram-mb 1.25,2.5 --coarse-stride 3
    python -m repro dse ... --shard 0/2 --out shard0.json   # per host
    python -m repro dse --merge shard0.json shard1.json

Run:  python examples/dse_sweep.py
"""

from repro.design import DSEAxes, run_dse
from repro.design.dse import merge_artifacts, render_artifact

AXES = DSEAxes(
    styles=(True, False),       # time-unrolled and dot-product
    weight_nnz=(4,),            # the paper's B=4 DBB bound
    a_nnz=(2, 4, 8),            # activation-DBB bound per layer
    sram_mb=(1.25, 2.5),
)


def main() -> None:
    artifact = run_dse(AXES, coarse_stride=3, jobs=1)
    print(render_artifact(artifact, top=8).render())

    frontier = artifact["frontier"]
    rounds = artifact["rounds"]
    print(f"\nrefinement converged in {len(rounds)} round(s):")
    for entry in rounds:
        print(f"  round {entry['round']}: +{entry['new_points']} points "
              f"({entry['evaluated']} total), frontier size "
              f"{entry['frontier_size']}")
    print(f"frontier: {', '.join(frontier)}")

    # Distributed flow: each shard evaluates its slice of the coarse
    # sample; the merge unions them and completes the refinement.
    shards = [run_dse(AXES, coarse_stride=3, jobs=1, shard=(i, 2))
              for i in range(2)]
    merged = merge_artifacts(shards, jobs=1)
    same = all(merged[k] == artifact[k]
               for k in merged if k != "meta")
    print(f"\n2-shard merge reproduces the unsharded artifact: {same}")
    assert same, "shard merge diverged from the unsharded run"


if __name__ == "__main__":
    main()
