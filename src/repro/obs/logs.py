"""Shared standard-library logging configuration.

Two channels, deliberately separate:

- The ``repro`` logger hierarchy carries *diagnostics* — progress,
  warnings, timing notes — to **stderr**. ``-v`` raises it to DEBUG,
  default is WARNING (quiet pipes), ``-q`` silences everything below
  ERROR. Benchmarks and tools log through ``get_logger(__name__)``
  instead of bare ``print`` so one flag governs all noise.
- The ``repro.out`` logger carries the CLI's *payload* (tables,
  artifact summaries) to **stdout** with no decoration, replacing the
  lone ``print`` in ``cli.py``. It stays at INFO regardless of ``-v``
  and is only suppressed by ``-q``, so scripted callers piping stdout
  keep byte-identical output by default.

``configure_logging`` is idempotent (re-running replaces the handlers
it installed rather than stacking duplicates), which keeps repeated
in-process ``main()`` calls — the test suite's usage — well-behaved.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "get_logger", "output_logger",
           "OUT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"
OUT_LOGGER_NAME = "repro.out"

_DIAG_FORMAT = "%(levelname)s %(name)s: %(message)s"
# Tag our handlers so reconfiguration can find and replace exactly
# them, leaving any caller-installed handlers (pytest's caplog, an
# embedding application) alone.
_MANAGED_ATTR = "_repro_obs_managed"


def _replace_managed_handler(logger: logging.Logger,
                             handler: logging.Handler) -> None:
    for existing in list(logger.handlers):
        if getattr(existing, _MANAGED_ATTR, False):
            logger.removeHandler(existing)
    setattr(handler, _MANAGED_ATTR, True)
    logger.addHandler(handler)


def configure_logging(verbosity: int = 0) -> None:
    """Install the shared handler config.

    ``verbosity``: negative = quiet (``-q``), 0 = default, positive =
    verbose (``-v``; any value >= 1 maps to DEBUG — there is only one
    extra rung).
    """
    if verbosity < 0:
        diag_level, out_level = logging.ERROR, logging.CRITICAL
    elif verbosity == 0:
        diag_level, out_level = logging.WARNING, logging.INFO
    else:
        diag_level, out_level = logging.DEBUG, logging.INFO

    root = logging.getLogger(ROOT_LOGGER_NAME)
    diag = logging.StreamHandler(sys.stderr)
    diag.setFormatter(logging.Formatter(_DIAG_FORMAT))
    _replace_managed_handler(root, diag)
    root.setLevel(diag_level)
    root.propagate = False

    out = logging.getLogger(OUT_LOGGER_NAME)
    payload = logging.StreamHandler(sys.stdout)
    payload.setFormatter(logging.Formatter("%(message)s"))
    _replace_managed_handler(out, payload)
    out.setLevel(out_level)
    out.propagate = False  # payload must never hit the stderr handler


def get_logger(name: str) -> logging.Logger:
    """A diagnostics logger under the ``repro`` hierarchy.

    Pass ``__name__``; callers outside the package (benchmarks, tools)
    are re-rooted under ``repro.`` so one configuration governs them.
    """
    if name != ROOT_LOGGER_NAME and not name.startswith(
            ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(name)


def output_logger() -> logging.Logger:
    """The stdout payload channel (see module docstring)."""
    return logging.getLogger(OUT_LOGGER_NAME)
