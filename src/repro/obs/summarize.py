"""Offline analysis of a merged Chrome-trace artifact.

``repro trace summarize FILE`` answers "where did the time go" without
opening Perfetto: per-track (process) wall-clock coverage, per-phase
(category) attribution by *self time* (a span's duration minus its
children's, so nested spans never double-count), and the top-k
individual spans by total duration.

Works on anything this repo's tracer wrote — and, because it only
relies on the standard trace-event fields, on most externally produced
Chrome traces too (unknown phases are ignored, unmatched ``B``/``E``
events are counted and reported rather than fatal).
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict
from typing import Dict, List, Tuple

__all__ = ["summarize_trace", "load_trace_events", "render_summary"]


def load_trace_events(path) -> List[dict]:
    """Events from a Chrome-trace artifact (object or bare-array form)."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    if isinstance(payload, dict):
        events = payload.get("traceEvents", [])
    else:
        events = payload
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    return [e for e in events if isinstance(e, dict)]


def _pair_spans(events: List[dict]) -> Tuple[List[dict], int]:
    """Match B/E pairs per (pid, tid) stack; returns (spans, unmatched).

    Each span dict carries name/cat/pid/tid/start/end/dur_us/self_us,
    with ``self_us`` already reduced by enclosed child time.
    """
    stacks: Dict[Tuple[int, int], List[dict]] = defaultdict(list)
    spans: List[dict] = []
    unmatched = 0
    for event in events:
        ph = event.get("ph")
        if ph not in ("B", "E"):
            continue
        key = (event.get("pid", 0), event.get("tid", 0))
        stack = stacks[key]
        if ph == "B":
            stack.append({
                "name": event.get("name", "?"),
                "cat": event.get("cat", "?"),
                "pid": key[0],
                "tid": key[1],
                "start": event.get("ts", 0),
                "child_us": 0,
            })
        else:
            if not stack:
                unmatched += 1
                continue
            span = stack.pop()
            span["end"] = event.get("ts", span["start"])
            span["dur_us"] = max(0, span["end"] - span["start"])
            span["self_us"] = max(0, span["dur_us"] - span.pop("child_us"))
            if stack:
                stack[-1]["child_us"] += span["dur_us"]
            spans.append(span)
    unmatched += sum(len(s) for s in stacks.values())  # dangling B's
    return spans, unmatched


def summarize_trace(path, top: int = 10) -> dict:
    """Aggregate a trace artifact into a summary dict (JSON-ready)."""
    events = load_trace_events(path)
    spans, unmatched = _pair_spans(events)

    # Wall-clock per process track: span of [min B ts, max E ts].
    tracks: Dict[int, dict] = {}
    for span in spans:
        track = tracks.setdefault(span["pid"], {
            "start": span["start"], "end": span["end"],
            "spans": 0, "top_self_us": 0})
        track["start"] = min(track["start"], span["start"])
        track["end"] = max(track["end"], span["end"])
        track["spans"] += 1
        track["top_self_us"] += span["self_us"]

    # Per-category and per-name self-time attribution (no
    # double-counting: self time partitions each track's covered time).
    by_cat: Dict[str, int] = defaultdict(int)
    by_name: Dict[Tuple[str, str], dict] = {}
    for span in spans:
        by_cat[span["cat"]] += span["self_us"]
        agg = by_name.setdefault((span["name"], span["cat"]), {
            "count": 0, "total_us": 0, "self_us": 0})
        agg["count"] += 1
        agg["total_us"] += span["dur_us"]
        agg["self_us"] += span["self_us"]

    wall_us = sum(max(0, t["end"] - t["start"]) for t in tracks.values())
    attributed_us = sum(t["top_self_us"] for t in tracks.values())
    coverage = attributed_us / wall_us if wall_us else 1.0

    top_spans = sorted(
        ({"name": name, "cat": cat, **agg}
         for (name, cat), agg in by_name.items()),
        key=lambda r: r["total_us"], reverse=True)[:top]

    process_names = {
        e.get("pid"): (e.get("args") or {}).get("name")
        for e in events
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }

    return {
        "path": str(path),
        "events": len(events),
        "spans": len(spans),
        "unmatched_events": unmatched,
        "tracks": {
            str(pid): {
                "label": process_names.get(pid) or f"pid {pid}",
                "wall_us": max(0, t["end"] - t["start"]),
                "spans": t["spans"],
            }
            for pid, t in sorted(tracks.items())
        },
        "wall_us": wall_us,
        "attributed_us": attributed_us,
        "coverage": coverage,
        "by_category_self_us": dict(
            sorted(by_cat.items(), key=lambda kv: kv[1], reverse=True)),
        "top_spans": top_spans,
    }


def _fmt_us(us: float) -> str:
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.1f}ms"
    return f"{us:.0f}us"


def render_summary(summary: dict) -> str:
    """Human-readable form of :func:`summarize_trace`'s output."""
    lines: List[str] = []
    lines.append(f"trace    : {summary['path']}")
    lines.append(f"events   : {summary['events']} "
                 f"({summary['spans']} spans, "
                 f"{summary['unmatched_events']} unmatched)")
    lines.append(f"tracks   : {len(summary['tracks'])}")
    for pid, track in summary["tracks"].items():
        lines.append(f"  pid {pid:<8} {_fmt_us(track['wall_us']):>10}  "
                     f"{track['spans']:>5} spans  {track['label']}")
    lines.append(f"coverage : {summary['coverage'] * 100:.1f}% of "
                 f"{_fmt_us(summary['wall_us'])} wall-clock attributed "
                 f"to named spans")
    lines.append("")
    lines.append("per-phase self time")
    total_self = sum(summary["by_category_self_us"].values()) or 1
    for cat, self_us in summary["by_category_self_us"].items():
        share = 100.0 * self_us / total_self
        lines.append(f"  {cat:<16} {_fmt_us(self_us):>10}  {share:5.1f}%")
    lines.append("")
    lines.append(f"top spans by total time")
    lines.append(f"  {'name':<28} {'count':>6} {'total':>10} "
                 f"{'self':>10}  cat")
    for row in summary["top_spans"]:
        lines.append(
            f"  {row['name']:<28} {row['count']:>6} "
            f"{_fmt_us(row['total_us']):>10} "
            f"{_fmt_us(row['self_us']):>10}  {row['cat']}")
    return "\n".join(lines)
