"""Zero-dependency observability layer: tracing, metrics, logging.

The experiment engine got fast (PR 5) and distributed (PR 7) before it
got observable: a single ``print`` in the CLI, process-local cache
counters that died with their pool workers, and an offline profiling
script were the only windows into where wall-clock and energy-model
time go. This package is the cross-cutting fix:

- :mod:`repro.obs.trace` — a span/event tracer with injected monotonic
  clocks emitting Chrome trace-event JSON (open the artifact in
  Perfetto / ``chrome://tracing``). Spans nest experiment -> model ->
  layer -> (synthesize, simulate, memory-walk, finalize); pool workers
  write per-process shard files the parent merges into one trace with
  per-worker tracks. Off by default, and provably free when off: the
  disabled path is one module-global load and a shared no-op context
  manager (frozen by ``benchmarks/bench_obs_overhead.py``).
- :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and histograms. The runner aggregates worker-side telemetry
  (operand-cache hits/misses/evictions/races, per-worker load balance,
  queue-wait vs compute time) into it, fixing the lost-stats gap where
  pool workers' cache counters vanished on exit; the result cache
  additionally persists lifetime hit/miss totals beside its entries.
- :mod:`repro.obs.logs` — the shared standard-library ``logging``
  configuration behind the CLI's ``-v``/``-q`` flags and the
  benchmark/tool diagnostics.
- :mod:`repro.obs.summarize` — ``repro trace summarize FILE``: top-k
  spans, per-phase (category) attribution and per-track coverage, so
  "where did the time go" is a one-command diagnosis.

Instrumentation points import this package only at module load (no
per-call imports in hot loops) and guard every emission on
:func:`repro.obs.trace.tracing_enabled`, so the bit-exact hot paths
are unchanged when tracing is off — the golden pins cannot move, and
the ``CODE_VERSION`` cache salt is untouched because event accounting
never changes.
"""

from repro.obs import logs, metrics, trace  # noqa: F401
from repro.obs.logs import configure_logging, get_logger  # noqa: F401
from repro.obs.metrics import MetricsRegistry, default_registry  # noqa: F401
from repro.obs.trace import (  # noqa: F401
    TraceSession,
    Tracer,
    span,
    start_tracing,
    stop_tracing,
    tracing_enabled,
)

__all__ = [
    "configure_logging",
    "get_logger",
    "MetricsRegistry",
    "default_registry",
    "TraceSession",
    "Tracer",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing_enabled",
]
