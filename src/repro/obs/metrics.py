"""Process-local metrics registry: counters, gauges, histograms.

The runner aggregates its own telemetry plus worker-returned cache
statistics into the process-wide :func:`default_registry`; the CLI
renders it as a summary table (``--metrics``) and dumps the JSON form
next to artifacts (``--metrics-out``). Everything is plain dicts of
numbers so the dump round-trips through ``json`` with no custom
encoders; the field layout is pinned in ``tests/obs/test_metrics.py``.

Counters only go up (``inc``); gauges hold the last ``set`` value and
take ``inc``/``dec`` deltas for level-style quantities; histograms keep
count/sum/min/max plus fixed buckets so per-worker load-balance and
queue-wait distributions survive aggregation without storing every
observation. Worker processes never touch this module's registry
directly — they return raw numbers with their task payloads and the
parent folds them in (see ``eval/runner.py``), which is what fixes the
lost-stats gap called out in the ROADMAP.

The serve subsystem (:mod:`repro.serve`) registers the service-level
family under the ``serve.`` prefix — ``serve.jobs_submitted`` /
``serve.jobs_completed`` / ``serve.jobs_failed`` /
``serve.jobs_requeued`` counters, ``serve.dedupe_hits`` (submit-time
*and* in-batch request dedupe), ``serve.batches``,
``serve.queue_depth`` / ``serve.jobs_running`` gauges and the
``serve.job_wall_ns`` latency histogram — next to the existing
``runner.`` / ``operand_cache.`` / ``result_cache.`` families, so one
``GET /metrics`` snapshot reconciles service work against engine work
(asserted in ``tests/serve/test_service.py``).
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
]

#: Default histogram bucket upper bounds (inclusive), in the unit of
#: whatever is observed; chosen to resolve both task counts (small
#: integers) and nanosecond durations (wide range) tolerably.
DEFAULT_BUCKETS = (
    1, 2, 5, 10, 25, 50, 100, 1_000, 10_000, 100_000,
    1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
    10_000_000_000,
)


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        self.value += amount

    def as_dict(self):
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-value gauge. ``inc``/``dec`` adjust the held value by a
    delta — what level-style gauges (queue depth, in-flight jobs) need
    when no single site knows the absolute value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, delta: float = 1.0) -> None:
        self.value += delta

    def dec(self, delta: float = 1.0) -> None:
        self.value -= delta

    def as_dict(self):
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("name", "buckets", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, buckets=DEFAULT_BUCKETS):
        self.name = name
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self):
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            # Sparse bucket map keeps the JSON small: only non-empty
            # buckets appear, keyed by their (stringified) upper bound.
            "buckets": {
                ("inf" if i == len(self.buckets) else str(self.buckets[i])):
                    n
                for i, n in enumerate(self.bucket_counts) if n
            },
        }


class MetricsRegistry:
    """Thread-safe named collection of counters, gauges and histograms.

    Names are dotted paths (``runner.tasks``, ``operand_cache.hits``);
    the first segment groups the rendered table. Getter methods create
    on first use so instrumentation points never pre-register.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is {type(metric).__name__}, "
                    f"not {cls.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    # --------------------------------------------------------------- #
    # export / import
    # --------------------------------------------------------------- #

    def as_dict(self) -> dict:
        """JSON-ready snapshot, sorted by metric name."""
        with self._lock:
            return {name: self._metrics[name].as_dict()
                    for name in sorted(self._metrics)}

    def merge_counts(self, counts: Dict[str, int],
                     prefix: str = "") -> None:
        """Fold a flat ``{name: count}`` mapping (e.g. one worker's
        returned cache stats) into this registry's counters."""
        for name, value in counts.items():
            full = f"{prefix}{name}" if prefix else name
            self.counter(full).inc(int(value))

    def json_payload(self) -> dict:
        """The schema-stamped JSON document ``dump_json`` writes —
        also what the serve API's ``GET /metrics`` returns, so offline
        dumps and the live endpoint share one pinned shape."""
        return {"schema": "repro.obs.metrics/v1",
                "metrics": self.as_dict()}

    def dump_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.json_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        """Fixed-width summary table grouped by dotted-name prefix."""
        snap = self.as_dict()
        if not snap:
            return "metrics: (empty)"
        lines: List[str] = ["metrics"]
        width = max(len(name) for name in snap)
        last_group = None
        for name, data in snap.items():
            group = name.split(".", 1)[0]
            if group != last_group:
                if last_group is not None:
                    lines.append("")
                last_group = group
            if data["type"] == "histogram":
                value = (f"count={data['count']} mean={data['mean']:.1f} "
                         f"min={data['min']} max={data['max']}")
            else:
                value = data["value"]
                if isinstance(value, float) and value == int(value):
                    value = int(value)
            lines.append(f"  {name:<{width}} : {value}")
        return "\n".join(lines)


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumentation points write into."""
    return _DEFAULT


def reset_default_registry() -> None:
    """Clear the process-wide registry (tests, pool-worker init)."""
    _DEFAULT.reset()
