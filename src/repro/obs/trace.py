"""Span/event tracer emitting Chrome trace-event JSON.

One :class:`Tracer` serves one process: it appends trace events as JSON
lines to a per-process *shard* file (line-buffered, so a ``fork``-ed
pool worker never inherits half-written buffers) and the parent's
:class:`TraceSession` merges every shard into a single Chrome
trace-event artifact — ``{"traceEvents": [...]}`` — that Perfetto and
``chrome://tracing`` open directly, with one track per process (the
parent plus every pool worker).

Clock discipline: a tracer samples the **injected** ``clock`` callable
it was constructed with (default :func:`time.perf_counter_ns` —
``CLOCK_MONOTONIC``, comparable across fork-started processes on the
same host) exactly once per event. Nothing in this module reaches for
an ambient wall clock in a hot loop, and tests inject fake clocks for
deterministic timestamps.

Disabled-mode contract: when no tracer is installed, :func:`span` is a
module-global ``None`` check returning one shared no-op context
manager — no allocation, no clock read, no string formatting.
``benchmarks/bench_obs_overhead.py`` freezes that cost (<< 1% of any
experiment's wall-clock at per-layer span granularity); the hot
*inner* loops (per-tile simulation) are deliberately never
instrumented.

Event schema (pinned in ``tests/obs/test_trace.py``): every record
carries ``name``/``cat``/``ph``/``ts``/``pid``/``tid``; ``ph`` is
``"B"``/``"E"`` for span begin/end (always emitted as a matched pair
by the context manager), ``"i"`` for instants and ``"M"`` for the
process-name metadata. ``ts`` is integer microseconds.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import shutil
import threading
import time
from typing import Callable, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "TRACE_ENV",
    "Tracer",
    "TraceSession",
    "span",
    "instant",
    "traced",
    "tracing_enabled",
    "current_tracer",
    "active_shard_dir",
    "start_tracing",
    "stop_tracing",
    "reset_for_worker",
]

#: Environment variable the CLI honors as the default ``--trace FILE``.
TRACE_ENV = "REPRO_TRACE"

#: Bumped whenever the emitted event schema changes field names or
#: semantics (tests pin the schema against this).
SCHEMA_VERSION = 1


class _NullSpan:
    """Shared no-op context manager — the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live begin/end pair bound to one tracer."""

    __slots__ = ("_tracer", "_name", "_cat", "_args")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[dict]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._tracer._emit("B", self._name, self._cat, self._args)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._tracer._emit("E", self._name, self._cat, None)
        return False


class Tracer:
    """Appends this process's trace events to one JSONL shard file."""

    def __init__(self, shard_path, clock: Callable[[], int] = None,
                 process_label: str = "repro"):
        self.shard_path = pathlib.Path(shard_path)
        self._clock = clock if clock is not None else time.perf_counter_ns
        self.pid = os.getpid()
        self.events_emitted = 0
        self._lock = threading.Lock()
        # Line-buffered: each event flushes as one complete line, so a
        # fork sees an empty buffer and a killed worker loses at most
        # its final partial line (the merge tolerates that).
        self._file = open(self.shard_path, "a", buffering=1,
                          encoding="utf-8")
        self._emit("M", "process_name", "__metadata",
                   {"name": process_label})

    # ------------------------------------------------------------- #

    def _emit(self, ph: str, name: str, cat: str,
              args: Optional[dict]) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": ph,
            "ts": self._clock() // 1000,  # integer microseconds
            "pid": self.pid,
            "tid": threading.get_native_id(),
        }
        if args:
            event["args"] = args
        line = json.dumps(event, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if not self._file.closed:
                self._file.write(line + "\n")
                self.events_emitted += 1

    def span(self, name: str, cat: str = "repro", **args) -> _Span:
        """Context manager emitting a matched B/E pair around its body."""
        return _Span(self, name, cat, args or None)

    def instant(self, name: str, cat: str = "repro", **args) -> None:
        self._emit("i", name, cat, args or None)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()


class TraceSession:
    """Parent-side lifecycle: shard directory, parent tracer, merge.

    ``out_path`` names the final Chrome-trace JSON; shards accumulate
    under ``<out_path>.shards/`` until :meth:`finalize` merges them and
    removes the directory. Worker processes join the session through
    :func:`reset_for_worker` (called by the pool initializer with
    :func:`active_shard_dir`).
    """

    def __init__(self, out_path, clock: Callable[[], int] = None):
        self.out_path = pathlib.Path(out_path)
        if self.out_path.parent and not self.out_path.parent.exists():
            self.out_path.parent.mkdir(parents=True, exist_ok=True)
        self.shard_dir = pathlib.Path(str(self.out_path) + ".shards")
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        # A crashed earlier session must not leak its shards into ours.
        for stale in self.shard_dir.glob("*.jsonl"):
            stale.unlink()
        self._clock = clock
        self.tracer = Tracer(
            self.shard_dir / f"parent-{os.getpid()}.jsonl",
            clock=clock, process_label="repro")

    def read_events(self) -> List[dict]:
        """Parse every shard's events (tolerating a truncated tail)."""
        events: List[dict] = []
        for shard in sorted(self.shard_dir.glob("*.jsonl")):
            for line in shard.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except ValueError:
                    continue  # half-written final line of a dead worker
        return events

    def finalize(self) -> pathlib.Path:
        """Merge all shards into the Chrome-trace artifact and clean up.

        Events sort by timestamp; Python's stable sort preserves each
        shard's emit order for equal timestamps, so B/E pairs on one
        track never invert.
        """
        self.tracer.close()
        events = self.read_events()
        events.sort(key=lambda e: e.get("ts", 0))
        payload = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro.obs",
                          "schemaVersion": SCHEMA_VERSION},
        }
        self.out_path.write_text(
            json.dumps(payload, separators=(",", ":")) + "\n",
            encoding="utf-8")
        shutil.rmtree(self.shard_dir, ignore_errors=True)
        return self.out_path


# ----------------------------------------------------------------- #
# module-global state (one tracer per process)
# ----------------------------------------------------------------- #

_TRACER: Optional[Tracer] = None
_SESSION: Optional[TraceSession] = None


def tracing_enabled() -> bool:
    """True when a tracer is installed in this process."""
    return _TRACER is not None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def span(name: str, cat: str = "repro", **args):
    """A span against the installed tracer, or the shared no-op when
    tracing is disabled — the guard every instrumentation point uses."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def instant(name: str, cat: str = "repro", **args) -> None:
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, cat, **args)


def traced(name: str, cat: str = "repro"):
    """Decorator form of :func:`span` for whole-function spans (the
    experiment runners); adds one guard check per call when disabled."""

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name, cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def active_shard_dir() -> Optional[str]:
    """The running session's shard directory (what the pool initializer
    forwards to workers), or ``None`` when tracing is off."""
    return None if _SESSION is None else str(_SESSION.shard_dir)


def start_tracing(out_path, clock: Callable[[], int] = None
                  ) -> TraceSession:
    """Install a session + parent tracer for this process."""
    global _TRACER, _SESSION
    if _SESSION is not None:
        raise RuntimeError(
            f"a trace session is already active "
            f"(writing {_SESSION.out_path})")
    _SESSION = TraceSession(out_path, clock=clock)
    _TRACER = _SESSION.tracer
    return _SESSION


def stop_tracing() -> Optional[pathlib.Path]:
    """Finalize the active session (merge shards, write the artifact);
    returns the artifact path, or ``None`` when tracing was off."""
    global _TRACER, _SESSION
    if _SESSION is None:
        return None
    session, _SESSION, _TRACER = _SESSION, None, None
    return session.finalize()


def reset_for_worker(shard_dir: Optional[str]) -> None:
    """Pool-worker initializer hook.

    A ``fork``-started worker inherits the parent's module globals —
    including an open tracer whose shard must stay the parent's alone.
    This drops the inherited state and, when the session is tracing,
    opens this worker's own shard so its spans land on a separate
    pid track in the merged artifact.
    """
    global _TRACER, _SESSION
    _SESSION = None
    if _TRACER is not None:
        # Close the inherited handle (line buffering means there is
        # nothing of the parent's left to flush from this copy).
        _TRACER.close()
        _TRACER = None
    if shard_dir:
        pid = os.getpid()
        _TRACER = Tracer(
            pathlib.Path(shard_dir) / f"worker-{pid}.jsonl",
            process_label=f"repro pool worker {pid}")
