"""Thin stdlib HTTP/JSON front-end for the simulation service.

Endpoints (all JSON; schema details in ``docs/serve.md``):

- ``POST /jobs`` — admit one request (see
  :func:`repro.serve.jobs.parse_request` for the document). Responds
  ``201`` with ``{"id", "state", "deduped": false}`` on insert, ``200``
  with ``deduped: true`` when an identical live/done job absorbed the
  submission, ``400`` on a malformed request and ``503`` when
  admission control is on (``max_pending``) and the backlog is full.
- ``GET /jobs/<id>`` — the queue row, request and (when done) result
  document included; ``404`` for unknown ids.
- ``GET /jobs[?state=...&limit=N]`` — most recent jobs first.
- ``GET /metrics`` — the process metrics registry
  (``repro.obs.metrics/v1`` — the exact document ``--metrics-out``
  writes), queue-depth gauges refreshed at read time.
- ``GET /healthz`` — liveness plus per-state queue counts.

The service object (:class:`ServeService`) owns the store, the HTTP
server (`ThreadingHTTPServer`; ``port=0`` binds an ephemeral port for
tests) and one scheduler thread (``workers=0`` = admission-only: jobs
queue up but nothing executes — the crash/SIGKILL tests and
multi-process deployments where separate worker processes drain the
same SQLite file use this). Startup always runs crash recovery before
the first claim.

:func:`http_json`, :func:`submit_job` and :func:`wait_for_job` are the
stdlib urllib client helpers the CLI verbs (``repro submit`` /
``repro jobs``) and the smoke test build on.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro import faults
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.serve.jobs import (
    RequestError,
    parse_request,
    request_fingerprint,
)
from repro.serve.queue import DEFAULT_LEASE_S, STATES, JobStore
from repro.serve.scheduler import _DEFAULT_CACHE, Scheduler

__all__ = [
    "ServeService",
    "http_json",
    "run_smoke",
    "submit_job",
    "wait_for_job",
]

log = obs_logs.get_logger(__name__)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The default handler prints every request to stderr; route it to
    # the debug log instead so the payload channel stays clean.
    def log_message(self, fmt, *args):  # noqa: A003 — stdlib hook
        log.debug("%s %s", self.address_string(), fmt % args)

    @property
    def service(self) -> "ServeService":
        return self.server.service

    # --------------------------------------------------------- #

    def _send_json(self, code: int, payload: Dict) -> None:
        blob = json.dumps(payload, sort_keys=True).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _faults_ok(self) -> bool:
        """Chaos-suite injection point: a fired ``http_error`` fault
        becomes a plain 500 — the client sees a clean retryable error,
        never a half-written response."""
        try:
            faults.inject("http_handler", f"{self.command} {self.path}")
        except faults.InjectedFault as exc:
            self._send_json(500, {"error": str(exc)})
            return False
        return True

    def do_POST(self) -> None:  # noqa: N802 — stdlib hook
        if not self._faults_ok():
            return
        if self.path.rstrip("/") != "/jobs":
            self._send_json(404, {"error": f"no such endpoint "
                                           f"{self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            data = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError) as exc:
            self._send_json(400, {"error": f"bad JSON body: {exc}"})
            return
        try:
            job_id, deduped, state = self.service.admit(data)
        except RequestError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        except BacklogFull as exc:
            self._send_json(503, {"error": str(exc)})
            return
        self._send_json(200 if deduped else 201,
                        {"id": job_id, "deduped": deduped,
                         "state": state})

    def do_GET(self) -> None:  # noqa: N802 — stdlib hook
        if not self._faults_ok():
            return
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            counts = self.service.scheduler.refresh_gauges()
            self._send_json(200, {"ok": True, "db": self.service.db_path,
                                  "counts": counts})
            return
        if path == "/metrics":
            self.service.scheduler.refresh_gauges()
            self._send_json(
                200, obs_metrics.default_registry().json_payload())
            return
        if path == "/jobs":
            params = dict(
                pair.split("=", 1) for pair in query.split("&") if "=" in pair)
            state = params.get("state")
            try:
                limit = int(params.get("limit", "50"))
                jobs = self.service.store.list_jobs(state=state,
                                                    limit=limit)
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(200, {"jobs": [job.to_dict() for job in jobs]})
            return
        if path.startswith("/jobs/"):
            try:
                job_id = int(path[len("/jobs/"):])
            except ValueError:
                self._send_json(400, {"error": f"bad job id in "
                                               f"{self.path!r}"})
                return
            job = self.service.store.get(job_id)
            if job is None:
                self._send_json(404, {"error": f"no job {job_id}"})
                return
            self._send_json(200, job.to_dict())
            return
        self._send_json(404, {"error": f"no such endpoint {self.path!r}"})


class BacklogFull(RuntimeError):
    """Admission control rejected a submission (pending backlog at
    ``max_pending``)."""


class ServeService:
    """Store + scheduler thread(s) + HTTP server, one lifecycle."""

    def __init__(self, db_path, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 1, jobs="auto",
                 result_cache=_DEFAULT_CACHE, batch_limit: int = 16,
                 poll_s: float = 0.1, max_pending: Optional[int] = None,
                 lease_s: float = DEFAULT_LEASE_S):
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        self.db_path = str(db_path)
        self.store = JobStore(self.db_path)
        self.scheduler = Scheduler(self.store, jobs=jobs,
                                   result_cache=result_cache,
                                   batch_limit=batch_limit,
                                   poll_s=poll_s, lease_s=lease_s)
        self.workers = workers
        self.max_pending = max_pending
        self.recovered = self.scheduler.recover()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self
        self._started = False

    # --------------------------------------------------------- #

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # --------------------------------------------------------- #

    def admit(self, data: Dict) -> Tuple[int, bool, str]:
        """Validate + fingerprint + enqueue one wire-format request;
        returns ``(job_id, deduped, state)``. Shared by the HTTP POST
        handler and in-process callers (smoke test)."""
        request = parse_request(data)
        if self.max_pending is not None:
            counts = self.store.counts()
            if counts["pending"] >= self.max_pending:
                obs_metrics.default_registry().counter(
                    "serve.jobs_rejected").inc()
                raise BacklogFull(
                    f"backlog full ({counts['pending']} pending >= "
                    f"max_pending={self.max_pending}); retry later")
        fingerprint = request_fingerprint(request)
        job_id, deduped = self.store.submit(
            request.as_dict(), fingerprint, priority=request.priority)
        registry = obs_metrics.default_registry()
        registry.counter("serve.jobs_submitted").inc()
        if deduped:
            registry.counter("serve.dedupe_hits").inc()
        self.scheduler.refresh_gauges()
        job = self.store.get(job_id)
        return job_id, deduped, job.state if job else "pending"

    # --------------------------------------------------------- #

    def start(self) -> None:
        """Start the HTTP thread and ``workers`` scheduler thread(s)
        (idempotent). The sockets are bound in ``__init__``, so
        ``port`` is valid before and after."""
        if self._started:
            return
        self._started = True
        http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http",
            daemon=True)
        http_thread.start()
        self._threads.append(http_thread)
        for i in range(self.workers):
            worker = threading.Thread(
                target=self.scheduler.run_forever, args=(self._stop,),
                name=f"serve-worker-{i}", daemon=True)
            worker.start()
            self._threads.append(worker)
        log.info("serving on %s (db=%s, workers=%d)", self.base_url,
                 self.db_path, self.workers)

    def stop(self) -> None:
        """Stop the HTTP server and scheduler threads, close the
        store. Safe to call twice; running jobs finish their pass."""
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        for thread in self._threads:
            thread.join(timeout=30)
        self._threads.clear()
        self.store.close()

    def __enter__(self) -> "ServeService":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def wait_idle(self, timeout_s: float = 60.0) -> None:
        """Block until no pending/running jobs remain (tests, smoke)."""
        deadline = time.time() + timeout_s
        while time.time() < deadline:
            counts = self.store.counts()
            if counts["pending"] == 0 and counts["running"] == 0:
                return
            time.sleep(0.05)
        raise TimeoutError(
            f"service not idle after {timeout_s} s: {self.store.counts()}")


# ------------------------------------------------------------------ #
# stdlib client helpers
# ------------------------------------------------------------------ #


def http_json(method: str, url: str, payload: Optional[Dict] = None,
              timeout_s: float = 30.0) -> Tuple[int, Dict]:
    """One JSON request/response roundtrip; HTTP error statuses return
    normally as ``(status, body)`` so callers branch on the code."""
    body = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def submit_job(base_url: str, request: Dict,
               timeout_s: float = 30.0) -> Dict:
    """POST one job; returns the admission document. Raises
    :class:`RuntimeError` on any non-2xx status (body's error
    included)."""
    status, body = http_json("POST", f"{base_url}/jobs", request,
                             timeout_s=timeout_s)
    if status not in (200, 201):
        raise RuntimeError(
            f"submit rejected ({status}): {body.get('error', body)}")
    return body


def wait_for_job(base_url: str, job_id: int, timeout_s: float = 120.0,
                 poll_s: float = 0.2,
                 request_timeout_s: float = 30.0) -> Dict:
    """Poll ``GET /jobs/<id>`` until the job reaches a terminal state;
    returns the final job document (done, failed *or* quarantined —
    the caller distinguishes). Every poll carries its own socket
    timeout (``request_timeout_s``), so a wedged server cannot hold
    the client past ``timeout_s`` + one request."""
    deadline = time.time() + timeout_s
    while True:
        status, body = http_json("GET", f"{base_url}/jobs/{job_id}",
                                 timeout_s=request_timeout_s)
        if status != 200:
            raise RuntimeError(f"job {job_id} lookup failed "
                               f"({status}): {body.get('error', body)}")
        if body["state"] in ("done", "failed", "quarantined"):
            return body
        if time.time() > deadline:
            raise TimeoutError(
                f"job {job_id} still {body['state']} after {timeout_s} s")
        time.sleep(poll_s)


def _free_port(host: str = "127.0.0.1") -> int:
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def run_smoke(db_path, result_cache=_DEFAULT_CACHE) -> str:
    """End-to-end self-test (the ``make serve-smoke`` body).

    Boots a full service on an ephemeral port, submits one analytic
    lenet5 job, a duplicate of it and one distinct request over real
    HTTP, and asserts: the duplicate deduped onto the first id, every
    job finished ``done``, the duplicate's result document is
    byte-identical to the original's, and ``/metrics`` reconciles
    (completed jobs == distinct requests). Raises on any violation;
    returns a one-paragraph report.
    """
    base = {"model": "lenet5", "accelerator": "s2ta-aw",
            "tier": "analytic"}
    other = dict(base, accelerator="sa")
    with ServeService(db_path, port=0, workers=1,
                      result_cache=result_cache) as service:
        first = submit_job(service.base_url, base)
        dup = submit_job(service.base_url, base)
        distinct = submit_job(service.base_url, other)
        if not dup["deduped"] or dup["id"] != first["id"]:
            raise RuntimeError(
                f"duplicate submission did not dedupe: {first} vs {dup}")
        if distinct["deduped"]:
            raise RuntimeError(
                f"distinct request wrongly deduped: {distinct}")
        jobs = [wait_for_job(service.base_url, jid, timeout_s=60)
                for jid in (first["id"], distinct["id"])]
        for job in jobs:
            if job["state"] != "done":
                raise RuntimeError(f"job {job['id']} finished "
                                   f"{job['state']}: {job.get('error')}")
        dup_doc = wait_for_job(service.base_url, dup["id"])
        if dup_doc["result"] != jobs[0]["result"]:
            raise RuntimeError("deduped job's result diverged from the "
                               "original's")
        _, metrics = http_json("GET", f"{service.base_url}/metrics")
        completed = metrics["metrics"].get(
            "serve.jobs_completed", {}).get("value", 0)
        if completed < 2:
            raise RuntimeError(
                f"metrics reconcile failed: serve.jobs_completed = "
                f"{completed}, expected >= 2")
        counts = service.store.counts()
    return ("serve smoke OK: "
            f"3 submissions -> {counts['done']} done job(s), "
            f"1 deduped (id {dup['id']}), results bit-equal, "
            f"metrics reconciled (completed={completed}) "
            f"[db={service.db_path}]")
