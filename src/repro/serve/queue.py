"""Persistent SQLite-backed job store for the simulation service.

One table, five states::

    pending --claim--> running --complete--> done
       ^                  |   \\--fail-----> failed
       |                  \\--(lease expires)--> sweep_expired()
       +--(backoff: not_before_s)----/        \\--> quarantined
                                                   (budget exhausted)

Design constraints (each asserted in ``tests/serve/test_queue.py``):

- **Durability** — the store is a plain SQLite database in WAL mode:
  every submit/claim/complete commits before returning, so the journal
  survives a SIGKILL of any process mid-write and reopens consistent
  (``PRAGMA integrity_check`` stays ``ok``; at most the single
  uncommitted statement is lost).
- **Atomic claim** — :meth:`JobStore.claim` marks its victims with a
  single ``UPDATE`` (unique claim token, ``state='pending'`` guard in
  the WHERE clause), so two workers — threads *or* processes — can
  never claim the same job; the claimed rows are then read back by
  token outside any transaction.
- **Leases, not liveness guesses** — every claim carries a time-based
  lease (``lease_expires_s``); long batches renew it via
  :meth:`heartbeat`. A worker that *dies* stops renewing; a worker
  that *hangs* (SIGSTOP, deadlock, runaway loop) also stops renewing —
  both look identical to :meth:`sweep_expired`, which any process can
  run at any time: it only ever takes expired leases, so an honest
  in-flight job (live heartbeat) is never yanked even with multiple
  worker processes on one DB file.
- **Backoff + quarantine** — a swept job with attempt budget left goes
  back to pending gated by ``not_before_s`` (exponential backoff with
  deterministic jitter, :func:`backoff_s`), so a poison job cannot hog
  the claim loop; one that already burned ``max_attempts`` moves to
  the terminal ``quarantined`` state (``repro jobs --quarantined`` is
  the triage path) instead of crash-looping a worker forever. A clean
  *execution* error still moves to ``failed`` via :meth:`fail` —
  ``quarantined`` specifically means "repeatedly took a worker down".
- **Admission dedupe** — :meth:`JobStore.submit` with a fingerprint of
  an existing live (pending/running) or done job returns that job's id
  with ``deduped=True`` instead of inserting, inside one immediate
  transaction so concurrent duplicate submissions collapse to a single
  row. Failed and quarantined jobs never absorb new submissions —
  resubmitting is the retry path.

The store object is thread-safe (one connection, one lock); separate
processes open their own :class:`JobStore` on the same path and
coordinate through SQLite's own locking (``busy_timeout`` 30 s).
Databases created before the lease columns existed are migrated in
place on open (table rebuild: SQLite cannot alter a CHECK constraint).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

__all__ = ["Job", "JobStore", "STATES", "TERMINAL_STATES",
           "DEFAULT_LEASE_S", "backoff_s", "default_db_path"]

#: Job lifecycle states (the ``state`` column's whole domain).
STATES = ("pending", "running", "done", "failed", "quarantined")

#: States no transition ever leaves.
TERMINAL_STATES = ("done", "failed", "quarantined")

#: Default claim budget: a job is attempted at most twice (one crash
#: re-queue) before the sweep quarantines it.
DEFAULT_MAX_ATTEMPTS = 2

#: Default claim lease. Long batches renew via :meth:`JobStore.heartbeat`
#: well inside this window; a hung or dead worker loses the job one
#: lease after its last renewal.
DEFAULT_LEASE_S = 30.0

#: Re-queue backoff: base * 2^(attempts-1), capped, plus deterministic
#: jitter (see :func:`backoff_s`).
DEFAULT_BACKOFF_BASE_S = 0.5
DEFAULT_BACKOFF_MAX_S = 60.0

_SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS jobs (
        id             INTEGER PRIMARY KEY AUTOINCREMENT,
        fingerprint    TEXT    NOT NULL,
        request        TEXT    NOT NULL,
        priority       INTEGER NOT NULL DEFAULT 0,
        state          TEXT    NOT NULL DEFAULT 'pending'
                       CHECK (state IN ('pending','running','done',
                                        'failed','quarantined')),
        attempts       INTEGER NOT NULL DEFAULT 0,
        max_attempts   INTEGER NOT NULL DEFAULT 2,
        owner          TEXT,
        claim_token    TEXT,
        result         TEXT,
        error          TEXT,
        created_s      REAL    NOT NULL,
        started_s      REAL,
        finished_s     REAL,
        lease_expires_s REAL,
        not_before_s   REAL    NOT NULL DEFAULT 0
    )
    """,
    "CREATE INDEX IF NOT EXISTS jobs_by_state"
    "    ON jobs (state, priority DESC, id ASC)",
    "CREATE INDEX IF NOT EXISTS jobs_by_fingerprint"
    "    ON jobs (fingerprint, state)",
)

# Columns shared by every schema generation, in order — what the
# migration rebuild copies across.
_V1_COLUMNS = ("id", "fingerprint", "request", "priority", "state",
               "attempts", "max_attempts", "owner", "claim_token",
               "result", "error", "created_s", "started_s", "finished_s")


@dataclasses.dataclass(frozen=True)
class Job:
    """One row of the job table, request/result JSON already parsed."""

    id: int
    fingerprint: str
    request: Dict
    priority: int
    state: str
    attempts: int
    max_attempts: int
    owner: Optional[str]
    result: Optional[Dict]
    error: Optional[str]
    created_s: float
    started_s: Optional[float]
    finished_s: Optional[float]
    lease_expires_s: Optional[float] = None
    not_before_s: float = 0.0

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


def default_db_path() -> str:
    """``$REPRO_SERVE_DB`` or the user-level default location."""
    env = os.environ.get("REPRO_SERVE_DB")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "jobs.sqlite3")


def backoff_s(attempts: int, job_id: int,
              base_s: float = DEFAULT_BACKOFF_BASE_S,
              max_s: float = DEFAULT_BACKOFF_MAX_S) -> float:
    """Deterministic exponential backoff with jitter for a re-queue.

    ``base * 2^(attempts-1)`` capped at ``max_s``, then stretched by a
    jitter factor in [1.0, 1.5) derived from ``(job_id, attempts)`` —
    deterministic (the Hypothesis ordering laws depend on it) yet
    de-synchronized across jobs, so a burst of lease expiries does not
    re-arrive as a burst.
    """
    if attempts < 1:
        attempts = 1
    raw = min(max_s, base_s * (2.0 ** min(attempts - 1, 20)))
    digest = hashlib.sha256(
        f"backoff|{job_id}|{attempts}".encode()).digest()
    jitter = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return raw * (1.0 + 0.5 * jitter)


def _row_to_job(row: sqlite3.Row) -> Job:
    def _loads(text):
        return None if text is None else json.loads(text)

    return Job(
        id=row["id"],
        fingerprint=row["fingerprint"],
        request=_loads(row["request"]),
        priority=row["priority"],
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        owner=row["owner"],
        result=_loads(row["result"]),
        error=row["error"],
        created_s=row["created_s"],
        started_s=row["started_s"],
        finished_s=row["finished_s"],
        lease_expires_s=row["lease_expires_s"],
        not_before_s=row["not_before_s"],
    )


class JobStore:
    """Thread-safe handle on the persistent queue (see module docs)."""

    def __init__(self, path, max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
                 backoff_max_s: float = DEFAULT_BACKOFF_MAX_S):
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base_s < 0 or backoff_max_s < backoff_base_s:
            raise ValueError(
                f"need 0 <= backoff_base_s <= backoff_max_s, got "
                f"{backoff_base_s}/{backoff_max_s}")
        self.path = str(path)
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        # Autocommit mode: each statement commits on its own, explicit
        # BEGIN IMMEDIATE brackets the few multi-statement sections.
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None,
            timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._migrate()
            for statement in _SCHEMA_STATEMENTS:
                self._conn.execute(statement)

    def _migrate(self) -> None:
        """Rebuild a pre-lease ``jobs`` table in place.

        The v1 schema (PR 9) lacks the lease columns *and* lists only
        four states in its CHECK constraint; SQLite cannot alter a
        CHECK, so the migration is the standard rebuild: copy into a
        fresh table, drop the old one. Runs under one immediate
        transaction — a crash mid-migration rolls back to the old
        table intact.
        """
        row = self._conn.execute(
            "SELECT sql FROM sqlite_master WHERE type = 'table' AND "
            "name = 'jobs'").fetchone()
        if row is None or "quarantined" in row["sql"]:
            return  # fresh database, or already current
        cols = ", ".join(_V1_COLUMNS)
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute("DROP INDEX IF EXISTS jobs_by_state")
            self._conn.execute("DROP INDEX IF EXISTS jobs_by_fingerprint")
            self._conn.execute(
                "ALTER TABLE jobs RENAME TO jobs_migrate_v1")
            for statement in _SCHEMA_STATEMENTS:
                self._conn.execute(statement)
            self._conn.execute(
                f"INSERT INTO jobs ({cols}) "
                f"SELECT {cols} FROM jobs_migrate_v1")
            self._conn.execute("DROP TABLE jobs_migrate_v1")
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------- #
    # admission
    # ------------------------------------------------------------- #

    def submit(self, request: Dict, fingerprint: str,
               priority: int = 0, dedupe: bool = True,
               max_attempts: Optional[int] = None,
               now: Optional[float] = None) -> Tuple[int, bool]:
        """Enqueue one request; returns ``(job_id, deduped)``.

        With ``dedupe`` (the default), a fingerprint that already has a
        live (pending/running) or done job returns that job instead of
        inserting — the whole check-then-insert runs under an immediate
        transaction, so concurrent duplicate submissions from any mix
        of threads and processes yield exactly one row.
        """
        now = time.time() if now is None else now
        budget = self.max_attempts if max_attempts is None else max_attempts
        if budget < 1:
            raise ValueError(f"max_attempts must be >= 1, got {budget}")
        blob = json.dumps(request, sort_keys=True)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if dedupe:
                    row = self._conn.execute(
                        "SELECT id FROM jobs WHERE fingerprint = ? AND "
                        "state IN ('pending','running','done') "
                        "ORDER BY id ASC LIMIT 1",
                        (fingerprint,)).fetchone()
                    if row is not None:
                        self._conn.execute("COMMIT")
                        return row["id"], True
                cursor = self._conn.execute(
                    "INSERT INTO jobs (fingerprint, request, priority, "
                    "state, max_attempts, created_s) "
                    "VALUES (?, ?, ?, 'pending', ?, ?)",
                    (fingerprint, blob, priority, budget, now))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return cursor.lastrowid, False

    # ------------------------------------------------------------- #
    # worker protocol
    # ------------------------------------------------------------- #

    def claim(self, owner: str, limit: int = 1,
              now: Optional[float] = None,
              lease_s: float = DEFAULT_LEASE_S) -> List[Job]:
        """Atomically move up to ``limit`` eligible pending jobs to
        running, each under a ``lease_s``-second lease.

        Eligible means ``not_before_s <= now`` — a job in its backoff
        window is invisible to the claim, so retries of a flaky job
        cannot starve the rest of the queue. Claim order is priority
        DESC then id ASC (FIFO within a priority class). The claim
        itself is one ``UPDATE`` whose WHERE clause re-checks
        ``state='pending'``, so a job can only ever be claimed by one
        worker; ``attempts`` increments here, which is what bounds
        crash re-queues (see :meth:`sweep_expired`).
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        now = time.time() if now is None else now
        token = uuid.uuid4().hex
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = 'running', owner = ?, "
                "claim_token = ?, attempts = attempts + 1, "
                "started_s = ?, lease_expires_s = ? "
                "WHERE state = 'pending' AND id IN ("
                "  SELECT id FROM jobs WHERE state = 'pending' "
                "  AND not_before_s <= ? "
                "  ORDER BY priority DESC, id ASC LIMIT ?)",
                (owner, token, now, now + lease_s, now, limit))
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE claim_token = ? "
                "ORDER BY priority DESC, id ASC", (token,)).fetchall()
        return [_row_to_job(row) for row in rows]

    def heartbeat(self, job_ids: List[int],
                  now: Optional[float] = None,
                  lease_s: float = DEFAULT_LEASE_S) -> int:
        """Renew the lease on still-running jobs; returns how many
        renewed. A job the sweep already took back (the worker was
        presumed dead/hung) is *not* renewed — the late worker finds
        out here that it lost the claim.
        """
        if not job_ids:
            return 0
        now = time.time() if now is None else now
        marks = ",".join("?" for _ in job_ids)
        with self._lock:
            cursor = self._conn.execute(
                f"UPDATE jobs SET lease_expires_s = ? "
                f"WHERE state = 'running' AND id IN ({marks})",
                (now + lease_s, *job_ids))
        return cursor.rowcount

    def complete(self, job_id: int, result: Dict,
                 now: Optional[float] = None) -> None:
        """running -> done with a JSON result document."""
        self._finish(job_id, "done", result=result, now=now)

    def fail(self, job_id: int, error: str,
             now: Optional[float] = None) -> None:
        """running -> failed with a diagnostic message."""
        self._finish(job_id, "failed", error=error, now=now)

    def _finish(self, job_id: int, state: str, result: Optional[Dict] = None,
                error: Optional[str] = None,
                now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        blob = None if result is None else json.dumps(result,
                                                      sort_keys=True)
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = ?, "
                "claim_token = NULL, lease_expires_s = NULL, "
                "finished_s = ? "
                "WHERE id = ? AND state = 'running'",
                (state, blob, error, now, job_id))
        if cursor.rowcount != 1:
            raise ValueError(
                f"job {job_id} is not running (finish to {state!r})")

    def release(self, job_id: int) -> None:
        """running -> pending (voluntary give-back, e.g. graceful
        shutdown mid-claim). Does not count against ``max_attempts``
        beyond the claim that already happened, and carries no backoff
        — the give-back was deliberate, not a failure."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'pending', owner = NULL, "
                "claim_token = NULL, started_s = NULL, "
                "lease_expires_s = NULL "
                "WHERE id = ? AND state = 'running'", (job_id,))
        if cursor.rowcount != 1:
            raise ValueError(f"job {job_id} is not running (release)")

    # ------------------------------------------------------------- #
    # lease sweep (crash + hang recovery)
    # ------------------------------------------------------------- #

    def sweep_expired(self, now: Optional[float] = None
                      ) -> Tuple[List[int], List[int]]:
        """Take back every running job whose lease has expired.

        Returns ``(requeued_ids, quarantined_ids)``. A dead worker
        stopped renewing; a *hung* one (SIGSTOP, deadlock) also stopped
        renewing — the sweep cannot and need not tell them apart. Jobs
        with attempt budget left go back to pending behind an
        exponential-backoff gate (``not_before_s``, :func:`backoff_s`);
        jobs that burned their budget move to the terminal
        ``quarantined`` state with a diagnostic, for ``repro jobs
        --quarantined`` triage. Safe to run from any process at any
        time: an honest in-flight job has a live (renewed) lease and is
        untouched. Legacy rows with no lease (pre-migration claims)
        count as expired.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                expired = self._conn.execute(
                    "SELECT id, attempts, max_attempts FROM jobs "
                    "WHERE state = 'running' AND "
                    "(lease_expires_s IS NULL OR lease_expires_s <= ?) "
                    "ORDER BY id ASC", (now,)).fetchall()
                requeued, quarantined = [], []
                for row in expired:
                    if row["attempts"] >= row["max_attempts"]:
                        quarantined.append(row["id"])
                        self._conn.execute(
                            "UPDATE jobs SET state = 'quarantined', "
                            "error = ?, owner = NULL, claim_token = NULL, "
                            "lease_expires_s = NULL, finished_s = ? "
                            "WHERE id = ?",
                            (f"lease expired on attempt "
                             f"{row['attempts']}/{row['max_attempts']}; "
                             f"worker presumed crashed or hung — "
                             f"quarantined", now, row["id"]))
                    else:
                        requeued.append(row["id"])
                        delay = backoff_s(
                            row["attempts"], row["id"],
                            self.backoff_base_s, self.backoff_max_s)
                        self._conn.execute(
                            "UPDATE jobs SET state = 'pending', "
                            "owner = NULL, claim_token = NULL, "
                            "started_s = NULL, lease_expires_s = NULL, "
                            "not_before_s = ? WHERE id = ?",
                            (now + delay, row["id"]))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return requeued, quarantined

    def recover(self, now: Optional[float] = None
                ) -> Tuple[List[int], List[int]]:
        """Startup-time alias for :meth:`sweep_expired`.

        Kept for the PR 9 call sites; since recovery went lease-based
        it is safe (and now routine — the scheduler loop calls it
        periodically) to run while other workers are live.
        """
        return self.sweep_expired(now=now)

    # ------------------------------------------------------------- #
    # introspection
    # ------------------------------------------------------------- #

    def get(self, job_id: int) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return None if row is None else _row_to_job(row)

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 50) -> List[Job]:
        """Most recent jobs first, optionally filtered by state."""
        if state is not None and state not in STATES:
            raise ValueError(f"unknown state {state!r}; choose from "
                             f"{', '.join(STATES)}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            if state is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY id DESC LIMIT ?",
                    (limit,)).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE state = ? "
                    "ORDER BY id DESC LIMIT ?", (state, limit)).fetchall()
        return [_row_to_job(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: row count}`` with every state present (0s kept)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs "
                "GROUP BY state").fetchall()
        out = {state: 0 for state in STATES}
        for row in rows:
            out[row["state"]] = row["n"]
        return out

    def integrity_check(self) -> str:
        """SQLite's own journal/btree consistency verdict (``ok`` when
        healthy) — what the crash tests assert after a SIGKILL."""
        with self._lock:
            row = self._conn.execute("PRAGMA integrity_check").fetchone()
        return row[0]
