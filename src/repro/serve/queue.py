"""Persistent SQLite-backed job store for the simulation service.

One table, four states::

    pending --claim--> running --complete--> done
                          |   \\--fail-----> failed
                          \\--(crash)--> recover() --> pending or failed

Design constraints (each asserted in ``tests/serve/test_queue.py``):

- **Durability** — the store is a plain SQLite database in WAL mode:
  every submit/claim/complete commits before returning, so the journal
  survives a SIGKILL of any process mid-write and reopens consistent
  (``PRAGMA integrity_check`` stays ``ok``; at most the single
  uncommitted statement is lost).
- **Atomic claim** — :meth:`JobStore.claim` marks its victims with a
  single ``UPDATE`` (unique claim token, ``state='pending'`` guard in
  the WHERE clause), so two workers — threads *or* processes — can
  never claim the same job; the claimed rows are then read back by
  token outside any transaction.
- **Crash recovery** — a worker that dies mid-job leaves its jobs
  ``running`` with a stale owner. :meth:`JobStore.recover` (run on
  every service startup) re-queues them — once: ``attempts`` is
  incremented at claim time, so a job whose attempts already reached
  ``max_attempts`` moves to ``failed`` instead of crash-looping the
  scheduler forever.
- **Admission dedupe** — :meth:`JobStore.submit` with a fingerprint of
  an existing live (pending/running) or done job returns that job's id
  with ``deduped=True`` instead of inserting, inside one immediate
  transaction so concurrent duplicate submissions collapse to a single
  row. Failed jobs never absorb new submissions — resubmitting a
  failed request is the retry path.

The store object is thread-safe (one connection, one lock); separate
processes open their own :class:`JobStore` on the same path and
coordinate through SQLite's own locking (``busy_timeout`` 30 s).
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Job", "JobStore", "STATES", "default_db_path"]

#: Job lifecycle states (the ``state`` column's whole domain).
STATES = ("pending", "running", "done", "failed")

#: Default claim budget: a job is attempted at most twice (one crash
#: re-queue) before recovery marks it failed.
DEFAULT_MAX_ATTEMPTS = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint  TEXT    NOT NULL,
    request      TEXT    NOT NULL,
    priority     INTEGER NOT NULL DEFAULT 0,
    state        TEXT    NOT NULL DEFAULT 'pending'
                 CHECK (state IN ('pending','running','done','failed')),
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 2,
    owner        TEXT,
    claim_token  TEXT,
    result       TEXT,
    error        TEXT,
    created_s    REAL    NOT NULL,
    started_s    REAL,
    finished_s   REAL
);
CREATE INDEX IF NOT EXISTS jobs_by_state
    ON jobs (state, priority DESC, id ASC);
CREATE INDEX IF NOT EXISTS jobs_by_fingerprint
    ON jobs (fingerprint, state);
"""


@dataclasses.dataclass(frozen=True)
class Job:
    """One row of the job table, request/result JSON already parsed."""

    id: int
    fingerprint: str
    request: Dict
    priority: int
    state: str
    attempts: int
    max_attempts: int
    owner: Optional[str]
    result: Optional[Dict]
    error: Optional[str]
    created_s: float
    started_s: Optional[float]
    finished_s: Optional[float]

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


def default_db_path() -> str:
    """``$REPRO_SERVE_DB`` or the user-level default location."""
    env = os.environ.get("REPRO_SERVE_DB")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "jobs.sqlite3")


def _row_to_job(row: sqlite3.Row) -> Job:
    def _loads(text):
        return None if text is None else json.loads(text)

    return Job(
        id=row["id"],
        fingerprint=row["fingerprint"],
        request=_loads(row["request"]),
        priority=row["priority"],
        state=row["state"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        owner=row["owner"],
        result=_loads(row["result"]),
        error=row["error"],
        created_s=row["created_s"],
        started_s=row["started_s"],
        finished_s=row["finished_s"],
    )


class JobStore:
    """Thread-safe handle on the persistent queue (see module docs)."""

    def __init__(self, path, max_attempts: int = DEFAULT_MAX_ATTEMPTS):
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        self.path = str(path)
        self.max_attempts = max_attempts
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        # Autocommit mode: each statement commits on its own, explicit
        # BEGIN IMMEDIATE brackets the few multi-statement sections.
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None,
            timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------- #
    # admission
    # ------------------------------------------------------------- #

    def submit(self, request: Dict, fingerprint: str,
               priority: int = 0, dedupe: bool = True,
               max_attempts: Optional[int] = None,
               now: Optional[float] = None) -> Tuple[int, bool]:
        """Enqueue one request; returns ``(job_id, deduped)``.

        With ``dedupe`` (the default), a fingerprint that already has a
        live (pending/running) or done job returns that job instead of
        inserting — the whole check-then-insert runs under an immediate
        transaction, so concurrent duplicate submissions from any mix
        of threads and processes yield exactly one row.
        """
        now = time.time() if now is None else now
        budget = self.max_attempts if max_attempts is None else max_attempts
        if budget < 1:
            raise ValueError(f"max_attempts must be >= 1, got {budget}")
        blob = json.dumps(request, sort_keys=True)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if dedupe:
                    row = self._conn.execute(
                        "SELECT id FROM jobs WHERE fingerprint = ? AND "
                        "state IN ('pending','running','done') "
                        "ORDER BY id ASC LIMIT 1",
                        (fingerprint,)).fetchone()
                    if row is not None:
                        self._conn.execute("COMMIT")
                        return row["id"], True
                cursor = self._conn.execute(
                    "INSERT INTO jobs (fingerprint, request, priority, "
                    "state, max_attempts, created_s) "
                    "VALUES (?, ?, ?, 'pending', ?, ?)",
                    (fingerprint, blob, priority, budget, now))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return cursor.lastrowid, False

    # ------------------------------------------------------------- #
    # worker protocol
    # ------------------------------------------------------------- #

    def claim(self, owner: str, limit: int = 1,
              now: Optional[float] = None) -> List[Job]:
        """Atomically move up to ``limit`` pending jobs to running.

        Claim order is priority DESC then id ASC (FIFO within a
        priority class). The claim itself is one ``UPDATE`` whose WHERE
        clause re-checks ``state='pending'``, so a job can only ever be
        claimed by one worker; ``attempts`` increments here, which is
        what bounds crash re-queues (see :meth:`recover`).
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        now = time.time() if now is None else now
        token = uuid.uuid4().hex
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = 'running', owner = ?, "
                "claim_token = ?, attempts = attempts + 1, "
                "started_s = ? "
                "WHERE state = 'pending' AND id IN ("
                "  SELECT id FROM jobs WHERE state = 'pending' "
                "  ORDER BY priority DESC, id ASC LIMIT ?)",
                (owner, token, now, limit))
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE claim_token = ? "
                "ORDER BY priority DESC, id ASC", (token,)).fetchall()
        return [_row_to_job(row) for row in rows]

    def complete(self, job_id: int, result: Dict,
                 now: Optional[float] = None) -> None:
        """running -> done with a JSON result document."""
        self._finish(job_id, "done", result=result, now=now)

    def fail(self, job_id: int, error: str,
             now: Optional[float] = None) -> None:
        """running -> failed with a diagnostic message."""
        self._finish(job_id, "failed", error=error, now=now)

    def _finish(self, job_id: int, state: str, result: Optional[Dict] = None,
                error: Optional[str] = None,
                now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        blob = None if result is None else json.dumps(result,
                                                      sort_keys=True)
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = ?, "
                "claim_token = NULL, finished_s = ? "
                "WHERE id = ? AND state = 'running'",
                (state, blob, error, now, job_id))
        if cursor.rowcount != 1:
            raise ValueError(
                f"job {job_id} is not running (finish to {state!r})")

    def release(self, job_id: int) -> None:
        """running -> pending (voluntary give-back, e.g. graceful
        shutdown mid-claim). Does not count against ``max_attempts``
        beyond the claim that already happened."""
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'pending', owner = NULL, "
                "claim_token = NULL, started_s = NULL "
                "WHERE id = ? AND state = 'running'", (job_id,))
        if cursor.rowcount != 1:
            raise ValueError(f"job {job_id} is not running (release)")

    # ------------------------------------------------------------- #
    # crash recovery
    # ------------------------------------------------------------- #

    def recover(self, now: Optional[float] = None
                ) -> Tuple[List[int], List[int]]:
        """Re-queue jobs a dead worker left ``running``.

        Returns ``(requeued_ids, failed_ids)``: jobs with attempt
        budget left go back to pending (each crash consumes the attempt
        its claim charged, so a job is re-queued at most
        ``max_attempts - 1`` times); jobs that already burned their
        budget move to failed with a crash diagnostic. Run this on
        service startup *before* starting workers — while no claimant
        is live — so an honest in-flight job is never yanked.
        """
        now = time.time() if now is None else now
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                failed = [row["id"] for row in self._conn.execute(
                    "SELECT id FROM jobs WHERE state = 'running' AND "
                    "attempts >= max_attempts ORDER BY id ASC")]
                self._conn.execute(
                    "UPDATE jobs SET state = 'failed', "
                    "error = 'worker died mid-job; attempt budget "
                    "exhausted', claim_token = NULL, finished_s = ? "
                    "WHERE state = 'running' AND "
                    "attempts >= max_attempts", (now,))
                requeued = [row["id"] for row in self._conn.execute(
                    "SELECT id FROM jobs WHERE state = 'running' "
                    "ORDER BY id ASC")]
                self._conn.execute(
                    "UPDATE jobs SET state = 'pending', owner = NULL, "
                    "claim_token = NULL, started_s = NULL "
                    "WHERE state = 'running'")
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return requeued, failed

    # ------------------------------------------------------------- #
    # introspection
    # ------------------------------------------------------------- #

    def get(self, job_id: int) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return None if row is None else _row_to_job(row)

    def list_jobs(self, state: Optional[str] = None,
                  limit: int = 50) -> List[Job]:
        """Most recent jobs first, optionally filtered by state."""
        if state is not None and state not in STATES:
            raise ValueError(f"unknown state {state!r}; choose from "
                             f"{', '.join(STATES)}")
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            if state is None:
                rows = self._conn.execute(
                    "SELECT * FROM jobs ORDER BY id DESC LIMIT ?",
                    (limit,)).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT * FROM jobs WHERE state = ? "
                    "ORDER BY id DESC LIMIT ?", (state, limit)).fetchall()
        return [_row_to_job(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """``{state: row count}`` with every state present (0s kept)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs "
                "GROUP BY state").fetchall()
        out = {state: 0 for state in STATES}
        for row in rows:
            out[row["state"]] = row["n"]
        return out

    def integrity_check(self) -> str:
        """SQLite's own journal/btree consistency verdict (``ok`` when
        healthy) — what the crash tests assert after a SIGKILL."""
        with self._lock:
            row = self._conn.execute("PRAGMA integrity_check").fetchone()
        return row[0]
