"""Priority scheduler: dedupe, rank, batch, execute.

One scheduler pass (:meth:`Scheduler.run_once`) drains a slice of the
queue through the experiment engine:

1. **claim** — up to ``batch_limit`` pending jobs move to running
   atomically (priority DESC, FIFO within a class — the store's claim
   order);
2. **rank** — claimed jobs order by :func:`job_rank`:
   ``(-priority, estimated_cost, id)``. Within a priority class cheap
   jobs run first (shortest-expected-job-first keeps mean latency low
   when a 30 s full-size run and five quick jobs share the queue), and
   the submission id breaks every remaining tie, so the order is total
   and deterministic — the Hypothesis property suite in
   ``tests/serve/test_scheduler.py`` pins both;
3. **dedupe** — jobs sharing a request fingerprint collapse to one
   *leader* per fingerprint (first in rank order); followers never
   touch the engine and are completed with the leader's result
   document, bit-equal by construction. Distinct fingerprints are
   never merged (property-tested);
4. **batch** — leaders group into per-fidelity-tier batches (rank
   order preserved; a batch never mixes analytic with functional work,
   property-tested) and each batch executes as ONE
   :func:`~repro.serve.jobs.run_requests` engine fan-out, so queued
   jobs share pool occupancy, in-batch layer dedupe and the result
   cache exactly like one big experiment;
5. **complete/fail** — per-job results land in the store; a request
   that fails to parse or simulate fails its job (and its followers)
   with the diagnostic, never the whole pass.

Fault tolerance around the pass:

- every pass first runs the **lease sweep** (rate-limited to
  ``sweep_every_s``), so one long-lived service takes back jobs from
  hung *and* crashed peers without a restart — startup recovery is
  just the first sweep;
- claimed jobs execute under a **heartbeat**: a daemon thread renews
  the batch's leases every ``lease_s / 3`` while the engine runs, so a
  multi-minute functional batch is never mistaken for a hang;
- the claim step is a :mod:`repro.faults` injection point
  (``queue_claim``), which the chaos suite uses to prove a failed
  claim never loses or duplicates work.

Service metrics stream into :mod:`repro.obs.metrics` under the
``serve.`` prefix (catalog in that module's docstring); queue-depth
gauges refresh on every pass and on demand via :meth:`refresh_gauges`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.serve.jobs import (
    RequestError,
    SimRequest,
    estimated_cost,
    parse_request,
    run_requests,
)
from repro.serve.queue import DEFAULT_LEASE_S, Job, JobStore

__all__ = [
    "ParsedJob",
    "Scheduler",
    "assemble_batches",
    "dedupe_jobs",
    "job_rank",
    "order_jobs",
]

log = obs_logs.get_logger(__name__)

#: Marker distinguishing "use the process default result cache" from an
#: explicit None (= caching disabled).
_DEFAULT_CACHE = object()


class ParsedJob:
    """A claimed queue row joined with its validated request and the
    scheduling attributes derived from it (cost, fingerprint)."""

    __slots__ = ("job", "request", "cost")

    def __init__(self, job: Job, request: SimRequest,
                 cost: Optional[float] = None):
        self.job = job
        self.request = request
        self.cost = estimated_cost(request) if cost is None else cost

    @property
    def fingerprint(self) -> str:
        return self.job.fingerprint

    @property
    def tier(self) -> str:
        return self.request.tier


def job_rank(parsed: ParsedJob) -> Tuple[float, float, int]:
    """Total, deterministic execution order within a claimed slice:
    priority DESC, then expected runtime ASC, then FIFO (id ASC — ids
    are unique, so no two jobs ever compare equal)."""
    return (-parsed.job.priority, parsed.cost, parsed.job.id)


def order_jobs(parsed: Sequence[ParsedJob]) -> List[ParsedJob]:
    return sorted(parsed, key=job_rank)


def dedupe_jobs(ranked: Sequence[ParsedJob]
                ) -> Tuple[List[ParsedJob], Dict[int, List[ParsedJob]]]:
    """Collapse same-fingerprint jobs onto one leader each.

    Returns ``(leaders, followers)`` where ``leaders`` keeps rank order
    (first occurrence of each fingerprint) and ``followers`` maps a
    leader's job id to the jobs that will receive its result. Every
    distinct fingerprint in the input survives as exactly one leader.
    """
    leaders: List[ParsedJob] = []
    followers: Dict[int, List[ParsedJob]] = {}
    leader_by_fp: Dict[str, ParsedJob] = {}
    for parsed in ranked:
        leader = leader_by_fp.get(parsed.fingerprint)
        if leader is None:
            leader_by_fp[parsed.fingerprint] = parsed
            leaders.append(parsed)
            followers[parsed.job.id] = []
        else:
            followers[leader.job.id].append(parsed)
    return leaders, followers


def assemble_batches(leaders: Sequence[ParsedJob]
                     ) -> List[List[ParsedJob]]:
    """Group rank-ordered leaders into engine batches by fidelity tier.

    Batches preserve rank order within themselves and emit in order of
    each tier's first appearance; a batch never mixes tiers — analytic
    points are sub-millisecond closed forms and functional points are
    seconds of cycle simulation, so a mixed batch would let a flood of
    cheap analytic work delay a functional job's pool slot (and vice
    versa make jobs="auto" mis-size the pool).
    """
    batches: Dict[str, List[ParsedJob]] = {}
    order: List[str] = []
    for parsed in leaders:
        if parsed.tier not in batches:
            batches[parsed.tier] = []
            order.append(parsed.tier)
        batches[parsed.tier].append(parsed)
    return [batches[tier] for tier in order]


class _LeaseHeartbeat:
    """Renews the leases of in-flight jobs while a batch executes.

    A daemon thread beats every ``lease_s / 3`` (floor 10 ms), so an
    honestly-working batch always renews well before expiry, while a
    hung batch (the thread is alive but the *worker pool* is stuck —
    or the whole process is SIGSTOPped, freezing this thread too)
    stops renewing and loses the jobs to the sweep. Renewal counts
    stream to ``serve.lease_renewals``.
    """

    def __init__(self, store: JobStore, job_ids: List[int],
                 lease_s: float):
        self.store = store
        self.job_ids = job_ids
        self.lease_s = lease_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True)

    def _run(self) -> None:
        interval = max(self.lease_s / 3.0, 0.01)
        while not self._stop.wait(interval):
            try:
                renewed = self.store.heartbeat(
                    self.job_ids, lease_s=self.lease_s)
            except Exception:  # noqa: BLE001 — beat must not kill batch
                log.exception("lease heartbeat failed; will retry")
                continue
            obs_metrics.default_registry().counter(
                "serve.lease_renewals").inc(renewed)

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class Scheduler:
    """Drains a :class:`~repro.serve.queue.JobStore` through the
    experiment engine (see module docstring for the pass anatomy)."""

    def __init__(self, store: JobStore, jobs="auto",
                 result_cache=_DEFAULT_CACHE, batch_limit: int = 16,
                 poll_s: float = 0.1, owner: Optional[str] = None,
                 lease_s: float = DEFAULT_LEASE_S,
                 sweep_every_s: Optional[float] = None):
        if batch_limit < 1:
            raise ValueError(
                f"batch_limit must be >= 1, got {batch_limit}")
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        self.store = store
        self.jobs = jobs
        if result_cache is _DEFAULT_CACHE:
            from repro.eval.resultcache import default_result_cache

            result_cache = default_result_cache()
        self.result_cache = result_cache
        self.batch_limit = batch_limit
        self.poll_s = poll_s
        self.owner = owner or f"scheduler-{os.getpid()}"
        self.lease_s = lease_s
        # Sweeping twice per lease keeps worst-case hang detection
        # latency at ~1.5 leases while staying cheap (one indexed
        # SELECT per sweep on an idle queue).
        self.sweep_every_s = (lease_s / 2.0 if sweep_every_s is None
                              else sweep_every_s)
        self._last_sweep_mono: Optional[float] = None

    # ------------------------------------------------------------- #

    def sweep(self) -> Tuple[List[int], List[int]]:
        """Take back expired-lease jobs now (see
        ``JobStore.sweep_expired``); returns
        ``(requeued_ids, quarantined_ids)``."""
        self._last_sweep_mono = time.monotonic()
        requeued, quarantined = self.store.sweep_expired()
        registry = obs_metrics.default_registry()
        registry.counter("serve.jobs_requeued").inc(len(requeued))
        registry.counter("serve.jobs_quarantined").inc(len(quarantined))
        if requeued or quarantined:
            log.warning("lease sweep: re-queued %d job(s) with backoff, "
                        "quarantined %d out of attempts",
                        len(requeued), len(quarantined))
        self.refresh_gauges()
        return requeued, quarantined

    def maybe_sweep(self) -> Tuple[List[int], List[int]]:
        """Rate-limited sweep: runs at most every ``sweep_every_s``
        seconds; every scheduler pass calls this, which is what makes
        a single long-lived service self-heal without restart."""
        now = time.monotonic()
        if (self._last_sweep_mono is not None
                and now - self._last_sweep_mono < self.sweep_every_s):
            return [], []
        return self.sweep()

    def recover(self) -> Tuple[List[int], List[int]]:
        """Startup crash recovery — since recovery went lease-based
        this is just the first sweep (and is safe while peer worker
        processes are live: their leases are current)."""
        return self.sweep()

    def refresh_gauges(self) -> Dict[str, int]:
        counts = self.store.counts()
        registry = obs_metrics.default_registry()
        registry.gauge("serve.queue_depth").set(counts["pending"])
        registry.gauge("serve.jobs_running").set(counts["running"])
        return counts

    # ------------------------------------------------------------- #

    def run_once(self) -> int:
        """One sweep-claim-dedupe-batch-execute pass; returns jobs
        finished (done + failed, followers included). 0 means the queue
        had no claimable work."""
        self.maybe_sweep()
        faults.inject("queue_claim", self.owner)
        claimed = self.store.claim(self.owner, limit=self.batch_limit,
                                   lease_s=self.lease_s)
        if not claimed:
            self.refresh_gauges()
            return 0
        registry = obs_metrics.default_registry()
        finished = 0
        parsed: List[ParsedJob] = []
        for job in claimed:
            try:
                parsed.append(ParsedJob(job, parse_request(job.request)))
            except RequestError as exc:
                # Admission validates too, so this only triggers for
                # rows written by a newer/older schema or by hand.
                self.store.fail(job.id, f"unparseable request: {exc}")
                registry.counter("serve.jobs_failed").inc()
                finished += 1
        leaders, followers = dedupe_jobs(order_jobs(parsed))
        dedupe_hits = sum(len(v) for v in followers.values())
        registry.counter("serve.dedupe_hits").inc(dedupe_hits)
        for batch in assemble_batches(leaders):
            registry.counter("serve.batches").inc()
            finished += self._run_batch(batch, followers)
        self.refresh_gauges()
        return finished

    def _run_batch(self, batch: List[ParsedJob],
                   followers: Dict[int, List[ParsedJob]]) -> int:
        registry = obs_metrics.default_registry()
        member_ids = [m.job.id for p in batch
                      for m in [p] + followers.get(p.job.id, [])]
        now = time.time()
        try:
            with _LeaseHeartbeat(self.store, member_ids, self.lease_s):
                results = run_requests([p.request for p in batch],
                                       jobs=self.jobs,
                                       result_cache=self.result_cache)
        except Exception as exc:  # noqa: BLE001 — job-level isolation
            log.exception("batch of %d job(s) failed", len(batch))
            finished = 0
            for parsed in batch:
                message = f"simulation failed: {exc}"
                for member in [parsed] + followers.get(parsed.job.id, []):
                    self.store.fail(member.job.id, message)
                    registry.counter("serve.jobs_failed").inc()
                    finished += 1
            return finished
        finished = 0
        done = time.time()
        for parsed, result in zip(batch, results):
            for member in [parsed] + followers.get(parsed.job.id, []):
                self.store.complete(member.job.id, result)
                registry.counter("serve.jobs_completed").inc()
                registry.histogram("serve.job_wall_ns").observe(
                    max(0.0, done - member.job.created_s) * 1e9)
                finished += 1
        registry.histogram("serve.batch_wall_ns").observe(
            max(0.0, done - now) * 1e9)
        return finished

    # ------------------------------------------------------------- #

    def drain(self, timeout_s: Optional[float] = None) -> int:
        """Run passes until the queue holds no pending jobs; returns
        total jobs finished. Raises :class:`TimeoutError` if a deadline
        is given and pending work remains when it expires."""
        deadline = None if timeout_s is None else time.time() + timeout_s
        finished = 0
        while True:
            progressed = self.run_once()
            finished += progressed
            if (self.store.counts()["pending"] == 0
                    and self.store.counts()["running"] == 0):
                return finished
            if deadline is not None and time.time() > deadline:
                raise TimeoutError(
                    f"queue not drained after {timeout_s} s "
                    f"({self.store.counts()['pending']} pending)")
            if progressed == 0:
                # Pending-but-unclaimable work (backoff gate or an
                # expired lease awaiting the next sweep): wait out a
                # slice of the gate instead of spinning on claims.
                time.sleep(min(self.poll_s, 0.02))

    def run_forever(self, stop: threading.Event) -> None:
        """Poll loop for the service's scheduler thread: busy passes
        run back to back, an idle queue sleeps ``poll_s`` between
        polls (interruptible via ``stop``)."""
        while not stop.is_set():
            try:
                finished = self.run_once()
            except Exception:  # noqa: BLE001 — the loop must survive
                log.exception("scheduler pass crashed; backing off")
                finished = 0
            if finished == 0:
                stop.wait(self.poll_s)
