"""Job request model for the simulation service.

A *job* is one ``(model, accelerator)`` simulation request — a row of a
fig11/fig12-class artifact — expressed as a small JSON document::

    {"model": "alexnet", "accelerator": "s2ta-aw",
     "tier": "functional", "quick": true, "seed": 0, "priority": 5}

This module is the bridge between that wire format and the experiment
engine: it validates requests (:func:`parse_request`), expands them
into the engine's :class:`~repro.eval.runner.LayerSimTask` granules
(:func:`request_tasks`), fingerprints them for dedupe
(:func:`request_fingerprint` — the ordered per-layer
:func:`~repro.eval.resultcache.payload_key` sequence combined through
:func:`~repro.eval.resultcache.combine_keys`, so two requests share a
fingerprint exactly when the result cache would serve them the same
payloads), prices them for scheduling (:func:`estimated_cost`) and
executes whole batches through one
:func:`~repro.eval.runner.simulate_layer_tasks` fan-out
(:func:`run_requests`).

Results serialize through :func:`result_payload`; because the tasks,
finalization and aggregation are the same code the direct
:meth:`~repro.accel.base.AcceleratorModel.run_model_functional` path
uses, a served job's payload is bit-equal to a direct in-process run at
the same request (asserted in ``tests/serve/test_service.py`` — floats
round-trip JSON exactly via ``repr``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.accel.base import AcceleratorModel, AccelRunResult
from repro.eval.resultcache import combine_keys, payload_key
from repro.eval.runner import LayerSimTask, simulate_layer_tasks
from repro.models.specs import LayerSpec, ModelSpec
from repro.models.zoo import MODEL_SPECS, get_spec

__all__ = [
    "RequestError",
    "SimRequest",
    "TIERS",
    "estimated_cost",
    "parse_request",
    "request_fingerprint",
    "request_tasks",
    "result_payload",
    "run_requests",
]

#: Fidelity tiers a job may request; mirrors the runner's task tiers.
TIERS = ("functional", "analytic")

#: Result-document schema stamp (pinned in ``tests/serve/``).
RESULT_SCHEMA = "repro.serve.result/v1"

#: Closed-form analytic evaluation is size-independent and sub-ms; the
#: scheduler prices it per layer so analytic jobs rank by layer count.
ANALYTIC_LAYER_COST = 1.0


class RequestError(ValueError):
    """A job request that cannot be admitted (unknown model /
    accelerator / tier, wrong field type, bad tech node)."""


@dataclasses.dataclass(frozen=True)
class SimRequest:
    """One validated simulation request (the unit the queue stores)."""

    model: str
    accelerator: str
    tech: Optional[str] = None   # None = the accelerator's default node
    tier: str = "functional"
    conv_only: bool = True
    quick: bool = False
    seed: int = 0
    priority: int = 0

    def as_dict(self) -> Dict:
        return dataclasses.asdict(self)


_BOOL_FIELDS = ("conv_only", "quick")
_INT_FIELDS = ("seed", "priority")


def parse_request(data: Dict) -> SimRequest:
    """Validate a wire-format job document into a :class:`SimRequest`.

    Unknown fields are rejected (a typoed ``"sed": 1`` must not
    silently fingerprint as the default seed), as are unknown models,
    accelerators and tiers; the tech node is validated lazily by
    :func:`request_tasks` (the factory owns the node table).
    """
    if not isinstance(data, dict):
        raise RequestError(f"job request must be an object, "
                           f"got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(SimRequest)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise RequestError(f"unknown request field(s): "
                           f"{', '.join(unknown)}")
    try:
        model = data["model"]
        accelerator = data["accelerator"]
    except KeyError as exc:
        raise RequestError(f"missing required field {exc.args[0]!r}") \
            from None
    if model not in MODEL_SPECS:
        raise RequestError(
            f"unknown model {model!r}; choose from "
            f"{', '.join(sorted(MODEL_SPECS))}")
    if accelerator not in _accelerator_factories():
        raise RequestError(
            f"unknown accelerator {accelerator!r}; choose from "
            f"{', '.join(sorted(_accelerator_factories()))}")
    tier = data.get("tier", "functional")
    if tier not in TIERS:
        raise RequestError(f"unknown tier {tier!r}; choose from "
                           f"{', '.join(TIERS)}")
    tech = data.get("tech")
    if tech is not None and not isinstance(tech, str):
        raise RequestError(f"tech must be a string node name, "
                           f"got {tech!r}")
    kwargs = {"model": model, "accelerator": accelerator,
              "tech": tech, "tier": tier}
    for name in _BOOL_FIELDS:
        value = data.get(name, getattr(SimRequest, name))
        if not isinstance(value, bool):
            raise RequestError(f"{name} must be a boolean, got {value!r}")
        kwargs[name] = value
    for name in _INT_FIELDS:
        value = data.get(name, getattr(SimRequest, name))
        if isinstance(value, bool) or not isinstance(value, int):
            raise RequestError(f"{name} must be an integer, got {value!r}")
        kwargs[name] = value
    return SimRequest(**kwargs)


def _accelerator_factories():
    from repro.cli import ACCELERATORS

    return ACCELERATORS


def _quick_max_m() -> int:
    from repro.eval.experiments import QUICK_MAX_M

    return QUICK_MAX_M


def build_accelerator(request: SimRequest) -> AcceleratorModel:
    """Instantiate the request's accelerator design point."""
    factory = _accelerator_factories()[request.accelerator]
    try:
        if request.tech is None:
            return factory()
        return factory(tech=request.tech)
    except KeyError:
        raise RequestError(
            f"unknown tech {request.tech!r} for accelerator "
            f"{request.accelerator!r}") from None


def request_layers(request: SimRequest, spec: ModelSpec
                   ) -> List[LayerSpec]:
    return list(spec.conv_layers if request.conv_only else spec.layers)


def request_tasks(request: SimRequest
                  ) -> Tuple[AcceleratorModel, ModelSpec,
                             List[LayerSimTask]]:
    """Expand one request into its engine task list."""
    spec = get_spec(request.model)
    accel = build_accelerator(request)
    max_m = _quick_max_m() if request.quick else None
    tasks = [LayerSimTask(accel, layer, seed=request.seed, max_m=max_m,
                          analytic=request.tier == "analytic")
             for layer in request_layers(request, spec)]
    return accel, spec, tasks


def request_fingerprint(request: SimRequest,
                        tasks: Optional[Sequence[LayerSimTask]] = None
                        ) -> str:
    """Content fingerprint the scheduler (and the submit-time admission
    path) dedupes on: the ordered per-layer payload keys — each already
    covering the accelerator/memory/energy config, seed, quick cap,
    tier and CODE_VERSION — plus the request-level finalization context
    (model name, layer selection). ``priority`` is deliberately
    excluded: a high-priority duplicate of a queued request must dedupe
    onto it, not re-simulate.
    """
    if tasks is None:
        _, _, tasks = request_tasks(request)
    keys = [payload_key(t.accel, t.layer, seed=t.seed, max_m=t.max_m,
                        tier=t.tier) for t in tasks]
    extra = {"schema": RESULT_SCHEMA, "model": request.model,
             "conv_only": request.conv_only}
    return combine_keys(keys, extra=extra)


def estimated_cost(request: SimRequest) -> float:
    """Expected-runtime proxy for scheduling (arbitrary units, larger =
    slower): the functional tier walks every simulated output row, so
    cost tracks the simulated MAC volume (quick mode caps ``m``);
    analytic evaluation is closed-form and size-independent, so one
    constant per layer. Only the *ordering* matters — the scheduler
    runs cheap jobs first within a priority class.
    """
    spec = get_spec(request.model)
    layers = request_layers(request, spec)
    if request.tier == "analytic":
        return ANALYTIC_LAYER_COST * len(layers)
    max_m = _quick_max_m() if request.quick else None
    total = 0.0
    for layer in layers:
        m = layer.m if max_m is None else min(layer.m, max_m)
        total += m * layer.k * layer.n / 1e6
    return total


def result_payload(run: AccelRunResult) -> Dict:
    """JSON-ready result document for one finished job.

    Floats serialize via ``repr`` so the document round-trips JSON
    bit-exactly — the payload a client reads back equals the in-process
    :class:`AccelRunResult` numbers, which is what lets the e2e test
    assert served == direct ``run_model_functional``.
    """
    return {
        "schema": RESULT_SCHEMA,
        "accelerator": run.accelerator,
        "model": run.model,
        "tech": run.tech,
        "clock_ghz": run.clock_ghz,
        "total_cycles": run.total_cycles,
        "energy_uj": run.energy_uj,
        "layers": [
            {
                "name": r.layer.name,
                "cycles": r.cycles,
                "compute_cycles": r.compute_cycles,
                "memory_cycles": r.memory_cycles,
                "energy_uj": r.energy_uj,
            }
            for r in run.layer_results
        ],
    }


def run_requests(requests: Sequence[SimRequest], jobs="auto",
                 result_cache=None) -> List[Dict]:
    """Execute many requests as ONE engine batch; results in order.

    Every request's layer tasks flatten into a single
    :func:`~repro.eval.runner.simulate_layer_tasks` fan-out (pool
    occupancy and in-batch dedupe work across jobs — two queued jobs
    sharing AlexNet layers simulate them once), then each request
    finalizes through its own accelerator's memory-hierarchy/energy
    pipeline exactly like the direct ``run_model_functional`` path.
    Callers group requests by tier first (the scheduler's batch
    assembly); mixing tiers is legal for the engine but defeats the
    scheduler's pacing, so :class:`~repro.serve.scheduler.Scheduler`
    never does it.
    """
    built = [request_tasks(request) for request in requests]
    all_tasks: List[LayerSimTask] = []
    for _, _, tasks in built:
        all_tasks.extend(tasks)
    payloads = simulate_layer_tasks(all_tasks, jobs=jobs,
                                    result_cache=result_cache)
    out: List[Dict] = []
    pos = 0
    for accel, spec, tasks in built:
        run = AccelRunResult(
            accelerator=accel.name,
            model=spec.name,
            tech=accel.tech,
            clock_ghz=accel.clock_ghz,
        )
        for task in tasks:
            compute_cycles, events = payloads[pos]
            pos += 1
            run.layer_results.append(
                accel._finalize_layer(task.layer, compute_cycles, events))
        out.append(result_payload(run))
    return out
