"""Simulation as a service (``repro serve``).

Wraps the parallel, memoized experiment engine in a long-running
service: a persistent SQLite job queue (:mod:`repro.serve.queue`), a
priority scheduler with request dedupe and per-tier batching
(:mod:`repro.serve.scheduler`), a stdlib HTTP/JSON API
(:mod:`repro.serve.api`) and the request/result model bridging the
wire format to the engine (:mod:`repro.serve.jobs`). See
``docs/serve.md`` for the operator's view.
"""

from repro.serve.api import (
    ServeService,
    http_json,
    run_smoke,
    submit_job,
    wait_for_job,
)
from repro.serve.jobs import (
    RequestError,
    SimRequest,
    estimated_cost,
    parse_request,
    request_fingerprint,
    request_tasks,
    result_payload,
    run_requests,
)
from repro.serve.queue import (
    DEFAULT_LEASE_S,
    Job,
    JobStore,
    STATES,
    TERMINAL_STATES,
    backoff_s,
    default_db_path,
)
from repro.serve.scheduler import (
    Scheduler,
    assemble_batches,
    dedupe_jobs,
    job_rank,
    order_jobs,
)

__all__ = [
    "DEFAULT_LEASE_S",
    "Job",
    "JobStore",
    "RequestError",
    "STATES",
    "Scheduler",
    "ServeService",
    "SimRequest",
    "TERMINAL_STATES",
    "assemble_batches",
    "backoff_s",
    "dedupe_jobs",
    "default_db_path",
    "estimated_cost",
    "http_json",
    "job_rank",
    "order_jobs",
    "parse_request",
    "request_fingerprint",
    "request_tasks",
    "result_payload",
    "run_requests",
    "run_smoke",
    "submit_job",
    "wait_for_job",
]
