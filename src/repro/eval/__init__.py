"""Experiment runners reproducing every table and figure.

One function per paper artifact (see DESIGN.md Sec. 4 for the index);
each returns an :class:`~repro.eval.tables.ExperimentResult` whose
``render()`` prints the same rows/series the paper reports, side by side
with the paper's published values where applicable.
"""

from repro.eval.ablations import (
    ablation_block_size,
    ablation_dap_stages,
    ablation_unroll_axis,
)
from repro.eval.experiments import (
    functional_operands,
    fig1_energy_breakdown,
    fig3_smt_overhead,
    fig9_microbench,
    fig10_variant_breakdown,
    fig11_full_models,
    fig12_alexnet_per_layer,
    sec7_design_space,
    tbl1_buffer_per_mac,
    tbl2_s2ta_breakdown,
    tbl3_accuracy,
    tbl4_comparison,
    tbl5_summary,
    xval_functional_vs_analytic,
)
from repro.eval.resultcache import ResultCache, default_result_cache
from repro.eval.roofline import dram_bw_sensitivity, roofline_analysis
from repro.eval.runner import (
    LayerSimTask,
    functional_model_runs,
    simulate_layer_tasks,
)
from repro.eval.tables import ExperimentResult, format_table

__all__ = [
    "ExperimentResult",
    "format_table",
    "ResultCache",
    "default_result_cache",
    "LayerSimTask",
    "simulate_layer_tasks",
    "functional_model_runs",
    "roofline_analysis",
    "dram_bw_sensitivity",
    "functional_operands",
    "fig1_energy_breakdown",
    "fig3_smt_overhead",
    "fig9_microbench",
    "fig10_variant_breakdown",
    "fig11_full_models",
    "fig12_alexnet_per_layer",
    "xval_functional_vs_analytic",
    "tbl1_buffer_per_mac",
    "tbl2_s2ta_breakdown",
    "tbl3_accuracy",
    "tbl4_comparison",
    "tbl5_summary",
    "sec7_design_space",
    "ablation_unroll_axis",
    "ablation_block_size",
    "ablation_dap_stages",
]
