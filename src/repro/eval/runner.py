"""Parallel, memoized execution engine for the functional tier.

Every functional experiment decomposes into independent *layer
simulation tasks* — one ``(accelerator, layer, seed, max_m)`` point
whose payload is the measured ``(compute_cycles, EventCounts)`` of
:meth:`repro.accel.base.AcceleratorModel.simulate_layer_functional`.
The tasks are embarrassingly parallel (operand synthesis is seeded
deterministically from the layer spec, so a task's result is
independent of where or when it runs) and perfectly memoizable (the
payload is a pure function of the task fingerprint). This module
exploits both:

- :func:`simulate_layer_tasks` fans a task list out over a process
  pool (``jobs`` workers; ``0`` = all cores; the ``REPRO_JOBS``
  environment variable supplies the default, which is what lets
  ``make nightly`` run the whole functional tier parallel by default)
  and consults a :class:`~repro.eval.resultcache.ResultCache` before
  dispatching, so overlapping experiments (fig11 / fig12 / xval share
  AlexNet layers) and re-runs hit the on-disk store instead of
  re-simulating. Results are returned in task order and are bit-equal
  to a serial run at the same seed regardless of worker count
  (asserted in ``tests/eval/test_runner.py``).
- :func:`functional_model_runs` is the whole-experiment entry point:
  it flattens many ``(accelerator, model)`` requests into one task
  batch — so fig11's 4 models x 4 variants saturate the pool as one
  fan-out, not 16 serial loops — and finalizes each payload through
  the owning accelerator's memory-hierarchy/energy pipeline in the
  parent process (finalization is closed-form and cheap; only the
  simulation fans out).

Worker processes keep their own process-local
:class:`~repro.workloads.from_spec.OperandCache`; the pool initializer
shrinks each worker's byte budget to its share of the parent's, so the
aggregate resident operand bytes stay within the configured budget
(see the OperandCache docs and ``tests/workloads/test_from_spec.py``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro import faults
from repro.accel.base import AcceleratorModel, AccelRunResult
from repro.arch.events import EventCounts
from repro.eval.resultcache import ResultCache
from repro.models.specs import LayerSpec, ModelSpec
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "LayerSimTask",
    "auto_jobs",
    "resolve_jobs",
    "simulate_layer_tasks",
    "functional_model_runs",
]

log = obs_logs.get_logger(__name__)

#: ``$REPRO_TASK_TIMEOUT`` supplies the default per-task pool timeout
#: (seconds; unset/empty = wait forever, the pre-robustness behavior).
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: Floor on a pool worker's operand-cache byte budget — a worker must
#: always be able to hold at least one large layer's operands while it
#: simulates them (entries above the budget are synthesized but not
#: retained, so correctness never depends on this; only re-synthesis
#: rate does).
MIN_WORKER_OPERAND_BUDGET = 64 * 1024 * 1024


@dataclass(frozen=True, eq=False)
class LayerSimTask:
    """One layer-simulation work unit (the fan-out granule).

    ``analytic=True`` evaluates the closed-form tier
    (:meth:`~repro.accel.base.AcceleratorModel._layer_events`) instead
    of the cycle simulator — the DSE engine fans thousands of analytic
    design-point evaluations through the same pool, dedupe and result
    cache as the functional experiments; the two tiers never share
    cache keys (the fingerprint carries the tier).
    """

    accel: AcceleratorModel
    layer: LayerSpec
    seed: int = 0
    max_m: Optional[int] = None
    analytic: bool = False

    @property
    def tier(self) -> str:
        return "analytic" if self.analytic else "functional"


#: Below this many tasks a pool's startup/pickling overhead dominates
#: the simulation work, so ``auto`` stays serial (the BENCH small-host
#: inversion: quick fig12 parallel-cold 1.22 s vs 0.64 s serial).
AUTO_MIN_TASKS = 4

#: ``auto`` never spins up a worker for fewer than this many tasks —
#: each worker must amortize its fork + operand-cache warmup over at
#: least a couple of simulations.
AUTO_TASKS_PER_WORKER = 2


def auto_jobs(task_count: int, cpu_count: Optional[int] = None) -> int:
    """Serial-vs-pool decision for one batch of ``task_count`` tasks.

    The decision table (regression-pinned in
    ``tests/eval/test_runner.py``):

    - single-core host -> 1 (a pool can only add overhead);
    - fewer than :data:`AUTO_MIN_TASKS` tasks -> 1 (startup dominates);
    - otherwise ``min(cpu_count, task_count // AUTO_TASKS_PER_WORKER)``
      workers, so every worker amortizes its fork over >= 2 tasks and
      the pool never exceeds the host.
    """
    if task_count < 0:
        raise ValueError(f"task_count must be >= 0, got {task_count}")
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    if cpu_count <= 1 or task_count < AUTO_MIN_TASKS:
        return 1
    return max(1, min(cpu_count, task_count // AUTO_TASKS_PER_WORKER))


def resolve_jobs(jobs, task_count: Optional[int] = None) -> int:
    """Worker count: ``None`` defers to ``$REPRO_JOBS`` (default 1,
    i.e. serial); ``0`` means one worker per core; ``"auto"`` (also
    accepted from ``$REPRO_JOBS``) picks serial vs pool from
    ``task_count`` and the host's cores via :func:`auto_jobs`.
    ``task_count=None`` with ``auto`` sizes for a large batch (one
    worker per core) — batch-level callers pass the real count."""
    source = "jobs"
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = env
            source = "REPRO_JOBS"
        else:
            jobs = 1
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            if task_count is None:
                return os.cpu_count() or 1
            return auto_jobs(task_count)
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"{source} must be an integer worker count (0 = one "
                f"per core) or 'auto', got {jobs!r}") from None
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return jobs


def _worker_init(operand_budget: int,
                 shard_dir: Optional[str] = None) -> None:
    """Pool initializer: cap this worker's process-local operand cache
    at its share of the parent's byte budget, zero the fork-inherited
    cache counters (so the stats this worker returns with its payloads
    are pure deltas), and — when the parent is tracing — open this
    worker's trace shard."""
    from repro.workloads.from_spec import default_operand_cache

    obs_trace.reset_for_worker(shard_dir)
    # Arm worker-only faults (worker_crash / task_hang): they must
    # never fire on the parent's serial fallback path, which is what
    # guarantees degradation converges.
    faults.mark_worker()
    cache = default_operand_cache()
    cache.resize(operand_budget)
    cache.reset_stats()


def _simulate_task(task: LayerSimTask) -> Tuple[int, EventCounts]:
    """The bare simulation body for one task."""
    if task.analytic:
        return task.accel._layer_events(task.layer)
    return task.accel.simulate_layer_functional(
        task.layer, seed=task.seed, max_m=task.max_m)


def _task_fault_key(task: LayerSimTask) -> str:
    """Stable identity for fault-injection decisions — same fields the
    result-cache fingerprint covers, minus the (expensive) config hash:
    deterministic across processes and re-orderings."""
    return (f"{task.accel.name}|{task.layer.name}|{task.seed}|"
            f"{task.max_m}|{task.tier}")


def _run_task(task: LayerSimTask
              ) -> Tuple[Tuple[int, EventCounts], dict]:
    """Worker body — module-level so the pool can pickle it.

    Returns ``(payload, telemetry)``: the simulation result plus this
    worker's pid, the task's monotonic start/end, and a *cumulative*
    snapshot of the worker's operand-cache counters. Shipping counters
    with payloads is what makes worker-side cache statistics survive
    pool teardown — the parent folds the final snapshot per pid into
    the process-wide metrics registry (see ``_merge_worker_telemetry``).
    """
    from repro.workloads.from_spec import default_operand_cache

    faults.inject("task_execute", _task_fault_key(task))
    start_ns = time.perf_counter_ns()
    with obs_trace.span(task.layer.name, "layer",
                        accel=task.accel.name, tier=task.tier):
        payload = _simulate_task(task)
    end_ns = time.perf_counter_ns()
    stats = default_operand_cache().stats()
    telemetry = {
        "pid": os.getpid(),
        "start_ns": start_ns,
        "end_ns": end_ns,
        "operand_cache": {key: stats[key] for key in
                          ("hits", "misses", "evictions", "races")},
    }
    return payload, telemetry


def _merge_worker_telemetry(registry, dispatch_ns: int,
                            telemetry: Sequence[dict]) -> None:
    """Fold per-task worker telemetry into the parent's registry.

    Queue wait is measured from batch dispatch to the task's start on
    a worker (tasks that sat behind others accumulate it); compute is
    the span on the worker. Operand-cache counters arrive cumulative
    per worker, so only each pid's largest (= last) snapshot counts,
    summed across pids.
    """
    per_worker_tasks: Dict[int, int] = {}
    cache_final: Dict[int, Dict[str, int]] = {}
    queue_wait = registry.histogram("runner.queue_wait_ns")
    compute = registry.histogram("runner.compute_ns")
    for record in telemetry:
        pid = record["pid"]
        per_worker_tasks[pid] = per_worker_tasks.get(pid, 0) + 1
        queue_wait.observe(max(0, record["start_ns"] - dispatch_ns))
        compute.observe(max(0, record["end_ns"] - record["start_ns"]))
        snap = cache_final.setdefault(pid, {})
        for key, value in record["operand_cache"].items():
            snap[key] = max(snap.get(key, 0), value)
    load = registry.histogram("runner.tasks_per_worker")
    for count in per_worker_tasks.values():
        load.observe(count)
    totals: Dict[str, int] = {}
    for snap in cache_final.values():
        for key, value in snap.items():
            totals[key] = totals.get(key, 0) + value
    registry.merge_counts(totals, prefix="operand_cache.")


def _copy_events(payload: Tuple[int, EventCounts]
                 ) -> Tuple[int, EventCounts]:
    """Fresh ``EventCounts`` per consumer — finalization mutates the
    counters (cycles, DRAM bytes), so deduplicated tasks and cache
    entries must never share one object."""
    compute_cycles, events = payload
    return compute_cycles, EventCounts(**events.as_dict())


def _pool_context():
    """Prefer ``fork`` (cheap start, copy-on-write operand cache);
    fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _resolve_task_timeout(task_timeout_s: Optional[float]
                          ) -> Optional[float]:
    """Per-task pool timeout: explicit value wins, else
    ``$REPRO_TASK_TIMEOUT`` (seconds), else None (wait forever)."""
    if task_timeout_s is not None:
        if task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0, got {task_timeout_s}")
        return task_timeout_s
    env = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
    if not env:
        return None
    value = float(env)
    if value <= 0:
        raise ValueError(
            f"{TASK_TIMEOUT_ENV} must be > 0 seconds, got {env!r}")
    return value


def _run_serial(tasks: Sequence[LayerSimTask], indices: Sequence[int],
                registry, operand_cache
                ) -> Dict[int, Tuple[int, EventCounts]]:
    """The serial execution body — also the degradation target: the
    pool path re-executes its failed slice here, bit-equal by
    construction (same simulation entry points, same seeds)."""
    from repro.workloads.from_spec import default_operand_cache

    op_cache = (operand_cache if operand_cache is not None
                else default_operand_cache())
    before = op_cache.stats()
    compute = registry.histogram("runner.compute_ns")
    payloads: Dict[int, Tuple[int, EventCounts]] = {}
    for i in indices:
        task = tasks[i]
        start_ns = time.perf_counter_ns()
        with obs_trace.span(task.layer.name, "layer",
                            accel=task.accel.name,
                            tier=task.tier):
            if task.analytic:
                payload = task.accel._layer_events(task.layer)
            else:
                payload = task.accel.simulate_layer_functional(
                    task.layer, seed=task.seed,
                    max_m=task.max_m, cache=operand_cache)
        compute.observe(time.perf_counter_ns() - start_ns)
        payloads[i] = payload
    after = op_cache.stats()
    registry.merge_counts(
        {key: after[key] - before[key]
         for key in ("hits", "misses", "evictions", "races")},
        prefix="operand_cache.")
    return payloads


def _run_pool(tasks: Sequence[LayerSimTask], indices: Sequence[int],
              workers: int, budget: int,
              task_timeout_s: Optional[float]
              ) -> Tuple[Dict[int, Tuple[int, EventCounts]],
                         List[dict], List[int]]:
    """Fan ``indices`` out over a process pool, surviving pool death.

    Returns ``(payloads_by_index, telemetry, redo_indices)``. A worker
    crash (``BrokenProcessPool``) or a per-task timeout stops
    collection, salvages every already-finished future, and reports the
    rest in ``redo_indices`` for the caller's serial fallback — the
    pool path never aborts the experiment. A timeout additionally
    terminates the (hung) worker processes so the interpreter is not
    held hostage at exit. A task that raises a *real* simulation error
    still propagates: degradation is for infrastructure failures, not
    for masking bugs.
    """
    payloads: Dict[int, Tuple[int, EventCounts]] = {}
    telemetry: List[dict] = []
    redo: List[int] = []
    hung = False
    pool = ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context(),
        initializer=_worker_init,
        initargs=(budget, obs_trace.active_shard_dir()))
    try:
        futures = {i: pool.submit(_run_task, tasks[i]) for i in indices}
        to_collect = list(indices)
        while to_collect:
            i = to_collect[0]
            try:
                payload, record = futures[i].result(
                    timeout=task_timeout_s)
            except FuturesTimeout:
                hung = True
                log.warning(
                    "pool task timed out after %.3g s; degrading the "
                    "remaining %d task(s) to the serial path",
                    task_timeout_s, len(to_collect))
                break
            except BrokenProcessPool:
                log.warning(
                    "process pool broke (worker died); degrading the "
                    "remaining %d task(s) to the serial path",
                    len(to_collect))
                break
            payloads[i] = payload
            telemetry.append(record)
            to_collect.pop(0)
        for j in to_collect:
            future = futures[j]
            if future.done() and not future.cancelled():
                try:
                    payload, record = future.result(timeout=0)
                except Exception:  # noqa: BLE001 — broken future
                    redo.append(j)
                else:
                    payloads[j] = payload
                    telemetry.append(record)
            else:
                future.cancel()
                redo.append(j)
    finally:
        if hung:
            # cancel_futures keeps queued work off the dying pool; the
            # hung workers themselves only die when terminated. The
            # process handles must be snapshotted first — shutdown
            # clears the executor's bookkeeping.
            procs = list((getattr(pool, "_processes", None) or {})
                         .values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                try:
                    proc.terminate()
                except Exception:  # noqa: BLE001 — already dead
                    pass
        pool.shutdown(wait=True, cancel_futures=True)
    return payloads, telemetry, redo


def simulate_layer_tasks(
    tasks: Sequence[LayerSimTask],
    jobs=None,
    result_cache: Optional[ResultCache] = None,
    operand_cache=None,
    task_timeout_s: Optional[float] = None,
) -> List[Tuple[int, EventCounts]]:
    """Simulate every task, parallel and memoized; results in task order.

    Cache hits (and in-batch duplicates — the same key appearing twice
    in ``tasks``) never dispatch to the pool; misses fan out over
    ``jobs`` workers (serial when 1 or when only one miss remains) and
    are frozen into ``result_cache`` as they complete. ``jobs="auto"``
    resolves per batch from the number of *misses* (cache hits never
    need a pool) via :func:`auto_jobs`. Task fingerprints are computed
    whether or not a cache is attached, so in-batch duplicates collapse
    to one simulation even under ``--no-result-cache``.
    ``operand_cache`` overrides the process-default operand memo on the
    *serial* path only — worker processes always use their own
    process-local caches.

    **Graceful degradation**: a dying pool (``BrokenProcessPool``) or a
    per-task timeout (``task_timeout_s``, default from
    ``$REPRO_TASK_TIMEOUT``) does not abort the batch — finished
    futures are salvaged and the rest re-execute on the serial path,
    bit-equal by construction (``runner.degraded`` counts batches,
    ``runner.retries`` counts re-executed tasks).
    """
    from repro.eval.resultcache import payload_key

    registry = obs_metrics.default_registry()
    registry.counter("runner.tasks").inc(len(tasks))
    results: Dict[int, Tuple[int, EventCounts]] = {}
    keys: List[str] = []
    pending: List[int] = []
    dup_of: Dict[int, int] = {}
    first_with_key: Dict[str, int] = {}
    for i, task in enumerate(tasks):
        key = payload_key(task.accel, task.layer, seed=task.seed,
                          max_m=task.max_m, tier=task.tier)
        keys.append(key)
        if result_cache is not None:
            hit = result_cache.get(key)
            if hit is not None:
                results[i] = hit
                continue
        if key in first_with_key:
            dup_of[i] = first_with_key[key]
            continue
        first_with_key[key] = i
        pending.append(i)

    registry.counter("runner.deduped").inc(len(dup_of))
    registry.counter("runner.simulated").inc(len(pending))
    # Resolved against the post-dedupe/post-cache miss count: a batch
    # that is mostly cache hits must not pay pool startup for the tail.
    jobs = resolve_jobs(jobs, task_count=len(pending))
    task_timeout_s = _resolve_task_timeout(task_timeout_s)
    if pending:
        if jobs > 1 and len(pending) > 1:
            from repro.workloads.from_spec import default_operand_cache

            workers = min(jobs, len(pending))
            budget = max(default_operand_cache().max_bytes // workers,
                         MIN_WORKER_OPERAND_BUDGET)
            registry.counter("runner.pool_batches").inc()
            registry.gauge("runner.pool_workers").set(workers)
            dispatch_ns = time.perf_counter_ns()
            with obs_trace.span("pool", "runner", workers=workers,
                                tasks=len(pending)):
                by_index, telemetry, redo = _run_pool(
                    tasks, pending, workers, budget, task_timeout_s)
            _merge_worker_telemetry(registry, dispatch_ns, telemetry)
            if redo:
                registry.counter("runner.degraded").inc()
                registry.counter("runner.retries").inc(len(redo))
                log.warning(
                    "degraded: re-executing %d of %d pool task(s) "
                    "serially", len(redo), len(pending))
                with obs_trace.span("degraded-serial", "runner",
                                    tasks=len(redo)):
                    by_index.update(_run_serial(
                        tasks, redo, registry, operand_cache))
            payloads = [by_index[i] for i in pending]
        else:
            serial = _run_serial(tasks, pending, registry, operand_cache)
            payloads = [serial[i] for i in pending]
        for i, payload in zip(pending, payloads):
            results[i] = payload
            if result_cache is not None:
                result_cache.put(keys[i], payload[0], payload[1])
    for i, j in dup_of.items():
        results[i] = results[j]
    if result_cache is not None:
        # Fold this batch's hit/miss counts into the cache's on-disk
        # lifetime totals so `repro cache stats` sees cross-run history.
        result_cache.persist_stats()
    return [_copy_events(results[i]) for i in range(len(tasks))]


def functional_model_runs(
    requests: Sequence[Tuple[AcceleratorModel, ModelSpec]],
    *,
    conv_only: bool = False,
    seed: int = 0,
    max_m: Optional[int] = None,
    jobs=None,
    result_cache: Optional[ResultCache] = None,
    operand_cache=None,
) -> List[AccelRunResult]:
    """Run many (accelerator, model) pairs as one parallel fan-out.

    The full-model experiments route through this: all layer tasks of
    every request flatten into a single :func:`simulate_layer_tasks`
    batch (maximizing pool occupancy and cache sharing across
    accelerator variants), then each payload finalizes through its
    accelerator's memory-hierarchy and energy pipeline exactly as the
    serial :meth:`~repro.accel.base.AcceleratorModel.run_model_functional`
    would — the two paths are bit-equal by construction.
    """
    tasks: List[LayerSimTask] = []
    spans: List[Tuple[AcceleratorModel, ModelSpec, List[LayerSpec]]] = []
    for accel, spec in requests:
        layers = list(spec.conv_layers if conv_only else spec.layers)
        spans.append((accel, spec, layers))
        tasks.extend(
            LayerSimTask(accel, layer, seed=seed, max_m=max_m)
            for layer in layers)
    payloads = simulate_layer_tasks(
        tasks, jobs=jobs, result_cache=result_cache,
        operand_cache=operand_cache)
    out: List[AccelRunResult] = []
    pos = 0
    for accel, spec, layers in spans:
        run = AccelRunResult(
            accelerator=accel.name,
            model=spec.name,
            tech=accel.tech,
            clock_ghz=accel.clock_ghz,
        )
        with obs_trace.span(f"{accel.name}:{spec.name}", "model",
                            layers=len(layers)):
            for layer in layers:
                compute_cycles, events = payloads[pos]
                pos += 1
                run.layer_results.append(
                    accel._finalize_layer(layer, compute_cycles, events))
        out.append(run)
    return out
