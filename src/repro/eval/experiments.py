"""Experiment runners — one per paper artifact.

Each function reproduces one table or figure of the paper's evaluation
(Sec. 2 and 8) and returns an :class:`ExperimentResult` carrying the
same rows/series the paper reports, annotated with the paper's published
values where the artifact states them. Absolute joules are model units
(see DESIGN.md Sec. 6 on calibration); the reproduction target is the
shape — orderings, ratios and crossovers.

Two fidelity tiers back the full-model artifacts (Fig. 11 / Fig. 12):

- **Analytic fast path** (default): closed-form layer events from the
  density profile — milliseconds per network, and what the golden
  headline pins in ``tests/test_golden_headlines.py`` freeze.
- **Functional ground truth** (``functional=True``): every conv layer
  synthesizes real INT8 operands at its actual GEMM shape and executes
  on the cycle-level simulator; measured events price through the same
  energy model. ``quick=True`` caps the simulated output rows per layer
  (events extrapolate linearly) so CI can exercise the full pipeline in
  seconds; leave it off for exact nightly runs.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.accel import (
    SCNN,
    S2TAAW,
    S2TAW,
    DenseSA,
    EyerissV2,
    SmtSA,
    SparTen,
    ZvcgSA,
)
from repro.accel.base import AcceleratorModel
from repro.core.dbb import DBBSpec
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.eval.tables import ExperimentResult
from repro.models import get_spec
from repro.obs.trace import traced
from repro.workloads.microbench import SWEEP_SPARSITIES
from repro.workloads.typical import typical_conv_layer

__all__ = [
    "functional_operands",
    "fig1_energy_breakdown",
    "fig3_smt_overhead",
    "fig9_microbench",
    "fig10_variant_breakdown",
    "fig11_full_models",
    "fig12_alexnet_per_layer",
    "xval_functional_vs_analytic",
    "tbl1_buffer_per_mac",
    "tbl2_s2ta_breakdown",
    "tbl3_accuracy",
    "tbl4_comparison",
    "tbl5_summary",
    "sec7_design_space",
]

FULL_MODELS = ("resnet50", "vgg16", "mobilenet_v1", "alexnet")

#: The systolic comparison set of the full-model artifacts (Fig. 11)
#: and the roofline analysis — keep the two artifacts in lockstep.
SYSTOLIC_VARIANTS = ("SA-ZVCG", "SMT-T2Q2", "S2TA-W", "S2TA-AW")

#: ``quick=True`` caps the simulated output-pixel rows per layer at this
#: many (events extrapolate linearly back to the full layer).
QUICK_MAX_M = 128


@lru_cache(maxsize=32)
def functional_operands(
    m: int, k: int, n: int,
    w_nnz: int = 4,
    a_density: float = 0.5,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized concrete INT8 operands for one functional sweep point.

    The DENSE/ZVCG/WDBB/AWDBB variant sweeps (and the per-layer ``a_nnz``
    density sweep inside AWDBB) all drive the *same* workload through the
    functional simulator; this memo materializes each workload's operands
    once, and — because the simulator compresses weights through
    :func:`repro.core.gemm.compress_cached` — each weight tensor is also
    *compressed* once for the entire sweep instead of per mode and per
    density point. Returned arrays are shared: treat them as read-only
    (they are flagged unwriteable and tested so).

    This entry-count memo serves the small fixed set of microbench sweep
    points; the full-model functional pipeline synthesizes per-layer
    operands through :class:`repro.workloads.from_spec.OperandCache`,
    which evicts under a byte budget instead.
    """
    from repro.workloads.microbench import microbench_operands, sweep_layer

    w_sparsity = 1.0 - (w_nnz / 8.0)
    layer = sweep_layer(w_sparsity, 1.0 - a_density, m=m, k=k, n=n)
    a, w = microbench_operands(layer, rng=np.random.default_rng(seed))
    a.setflags(write=False)
    w.setflags(write=False)
    return a, w


def _costs(dram_pj_per_byte: Optional[float] = None) -> CostModel:
    """The default cost model, optionally re-pricing the off-chip DRAM
    interface (``--dram-pj-per-byte``). The DRAM component is reported
    beside — never inside — the die-only calibrated totals, so changing
    it cannot move a golden headline (pinned in the test suite)."""
    if dram_pj_per_byte is None:
        return DEFAULT_COSTS
    return dataclasses.replace(DEFAULT_COSTS,
                               dram_pj_per_byte=dram_pj_per_byte)


def _sa_variants(tech: str = "16nm",
                 dram_gbps: Optional[float] = None,
                 costs: CostModel = DEFAULT_COSTS
                 ) -> Dict[str, AcceleratorModel]:
    kwargs = {"tech": tech, "dram_gbps": dram_gbps, "costs": costs}
    return {
        "SA": DenseSA(**kwargs),
        "SA-ZVCG": ZvcgSA(**kwargs),
        "SMT-T2Q2": SmtSA(fifo_depth=2, **kwargs),
        "SMT-T2Q4": SmtSA(fifo_depth=4, **kwargs),
        "S2TA-W": S2TAW(**kwargs),
        "S2TA-AW": S2TAAW(**kwargs),
    }


# --------------------------------------------------------------------- #
# Figure 1
# --------------------------------------------------------------------- #

def fig1_energy_breakdown() -> ExperimentResult:
    """Energy breakdown of a dense INT8 SA at typical 50% sparsity."""
    layer = typical_conv_layer(0.5, 0.5)
    result = DenseSA().run_layer(layer)
    fracs = result.breakdown.fractions()
    paper = {"sram": 21, "buffers": 49, "datapath": 20, "actfn": 10}
    labels = {
        "sram": "SRAM buffers",
        "buffers": "PE-array buffers (operands+acc)",
        "datapath": "MAC datapath",
        "actfn": "Activation fn (MCU cluster)",
    }
    rows = [
        [labels[key], round(fracs[key] * 100, 1), paper[key]]
        for key in ("sram", "buffers", "datapath", "actfn")
    ]
    return ExperimentResult(
        artifact="Figure 1",
        title="Dense INT8 systolic array energy breakdown (50% sparsity)",
        headers=["component", "model %", "paper %"],
        rows=rows,
        notes=["the INT8 MAC datapath is dwarfed by operand/result buffers"],
    )


# --------------------------------------------------------------------- #
# Figure 3
# --------------------------------------------------------------------- #

def fig3_smt_overhead() -> ExperimentResult:
    """SA vs SA-ZVCG vs SMT variants: energy/area and speedup at 50/50."""
    layer = typical_conv_layer(0.5, 0.5)
    variants = {k: v for k, v in _sa_variants().items()
                if k in ("SA", "SA-ZVCG", "SMT-T2Q2", "SMT-T2Q4")}
    baseline = variants["SA-ZVCG"].run_layer(layer)
    rows = []
    paper_speedups = {"SA": 1.0, "SA-ZVCG": 1.0,
                      "SMT-T2Q2": 1.6, "SMT-T2Q4": 1.8}
    for name, accel in variants.items():
        result = accel.run_layer(layer)
        rows.append([
            name,
            round(result.energy_pj / baseline.energy_pj, 2),
            round((result.breakdown.datapath) / baseline.energy_pj, 2),
            round((result.breakdown.buffers) / baseline.energy_pj, 2),
            round(accel.area_mm2(), 2),
            round(baseline.cycles / result.cycles, 2),
            paper_speedups[name],
        ])
    return ExperimentResult(
        artifact="Figure 3",
        title="SMT staging-FIFO overhead at 50%/50% sparsity (vs SA-ZVCG)",
        headers=["variant", "energy", "macs part", "buffers part",
                 "area mm2", "speedup", "paper speedup"],
        rows=rows,
        notes=["SMT achieves speedup but its buffers make it *less* "
               "energy-efficient than even SA-ZVCG"],
    )


# --------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------- #

def tbl1_buffer_per_mac() -> ExperimentResult:
    """Buffer bytes per INT8 MAC across architectures."""
    paper = [
        ("SCNN", 1280.0, 384.0, 1650.0),
        ("SparTen", 864.0, 128.0, 992.0),
        ("Eyeriss v2", 165.0, 40.0, 205.0),
        ("SA-SMT", 16.0, 4.0, 20.0),
        ("Systolic Array", 2.0, 4.0, 6.0),
        ("S2TA-W", 0.375, 0.5, 0.875),
        ("S2TA-AW", 0.75, 4.0, 4.75),
    ]
    from repro.accel import SCNN

    model = {
        "SCNN": SCNN().buffer_bytes_per_mac,
        "SparTen": SparTen().buffer_bytes_per_mac,
        "Eyeriss v2": EyerissV2().buffer_bytes_per_mac,
        "SA-SMT": SmtSA().buffer_bytes_per_mac,
        "Systolic Array": DenseSA().buffer_bytes_per_mac,
        "S2TA-W": S2TAW().buffer_bytes_per_mac,
        "S2TA-AW": S2TAAW().buffer_bytes_per_mac,
    }
    rows = [
        [name, operands, accs, total,
         round(model[name], 3) if name in model else "-"]
        for name, operands, accs, total in paper
    ]
    return ExperimentResult(
        artifact="Table 1",
        title="PE buffer storage per INT8 MAC",
        headers=["architecture", "paper operands B", "paper acc B",
                 "paper total B", "model total B"],
        rows=rows,
        notes=["outer-product unstructured designs need KBs per MAC; "
               "S2TA's TPE shares buffers across many MACs"],
    )


# --------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------- #

def tbl2_s2ta_breakdown() -> ExperimentResult:
    """S2TA-AW power/area breakdown at the Table 2 operating point
    (4/8 weights, dense activations, 16 nm)."""
    aw = S2TAAW()
    layer = typical_conv_layer(0.5, 1.0)  # dense activations
    result = aw.run_layer(layer)
    b = result.breakdown
    costs = aw.costs
    wb = result.events.sram_w_read_bytes * costs.sram_wb_read_pj
    ab = b.sram - wb
    total = b.total_pj
    power = {
        "MAC Datapath and Buffers": (b.datapath + b.buffers) / total * 100,
        "Weight SRAM (512KB)": wb / total * 100,
        "Activation SRAM (2MB)": ab / total * 100,
        "Cortex-M33 MCU x4": b.actfn / total * 100,
        "DAP Array": b.dap / total * 100,
    }
    area = aw.area_breakdown_mm2()
    total_area = sum(area.values())
    area_pct = {
        "MAC Datapath and Buffers": area["pe_array"] / total_area * 100,
        "Weight SRAM (512KB)": area["sram"] * 0.2 / total_area * 100,
        "Activation SRAM (2MB)": area["sram"] * 0.8 / total_area * 100,
        "Cortex-M33 MCU x4": area["mcu"] / total_area * 100,
        "DAP Array": area["dap"] / total_area * 100,
    }
    paper_power = {
        "MAC Datapath and Buffers": 58.7,
        "Weight SRAM (512KB)": 12.8,
        "Activation SRAM (2MB)": 17.2,
        "Cortex-M33 MCU x4": 9.3,
        "DAP Array": 2.0,
    }
    paper_area = {
        "MAC Datapath and Buffers": 19.1,
        "Weight SRAM (512KB)": 14.3,
        "Activation SRAM (2MB)": 57.3,
        "Cortex-M33 MCU x4": 8.0,
        "DAP Array": 1.3,
    }
    rows = [
        [name, round(power[name], 1), paper_power[name],
         round(area_pct[name], 1), paper_area[name]]
        for name in paper_power
    ]
    return ExperimentResult(
        artifact="Table 2",
        title="S2TA-AW component power/area breakdown (16 nm, 8x4x4_8x8)",
        headers=["component", "model power %", "paper power %",
                 "model area %", "paper area %"],
        rows=rows,
        notes=[f"total area {aw.area_mm2():.2f} mm^2 (paper 3.77)",
               "DAP bypassed at dense activations; its power share is "
               "reported at the A-DBB operating point in Fig. 10"],
    )


# --------------------------------------------------------------------- #
# Figure 9
# --------------------------------------------------------------------- #

def fig9_microbench(panel: str) -> ExperimentResult:
    """The Sec. 8.2 synthetic sweeps. ``panel`` is one of a/b/c/d."""
    if panel not in "abcd" or len(panel) != 1:
        raise ValueError(f"panel must be one of 'a'..'d', got {panel!r}")
    accel = {
        "a": ZvcgSA(),
        "b": SmtSA(fifo_depth=2),
        "c": S2TAW(),
        "d": S2TAAW(),
    }[panel]
    titles = {
        "a": "SA-ZVCG: energy scales weakly, no speedup",
        "b": "SA-SMT: speedup but higher energy than SA-ZVCG",
        "c": "S2TA-W: fixed 2x speedup step at >=50% weight sparsity",
        "d": "S2TA-AW: speedup and energy scale with activation sparsity",
    }
    zvcg = ZvcgSA()
    # Normalization anchor: SA-ZVCG at 50% weight / 50% act sparsity.
    anchor = zvcg.microbench_layer(0.5, 0.5)
    rows = []
    for sparsity in SWEEP_SPARSITIES:
        if panel == "d":
            # x-axis: activation DBB sparsity; series: W-DBB 50% / 80%.
            a_density = 1.0 - sparsity
            a_nnz = max(1, round(a_density * 8))
            r50 = accel.microbench_layer(0.5, a_density, a_nnz=a_nnz)
            r80 = accel.microbench_layer(0.2, a_density, w_nnz=2,
                                         a_nnz=a_nnz)
            ref = zvcg.microbench_layer(0.5, a_density)
        else:
            w_density = 1.0 - sparsity
            w_nnz = max(1, round(w_density * 8))
            r50 = accel.microbench_layer(w_density, 0.5, w_nnz=w_nnz)
            r80 = accel.microbench_layer(w_density, 0.2, w_nnz=w_nnz)
            ref = zvcg.microbench_layer(w_density, 0.5)
        rows.append([
            f"{sparsity * 100:g}%",
            round(r50.energy_pj / anchor.energy_pj, 3),
            round(r80.energy_pj / anchor.energy_pj, 3),
            round(ref.cycles / r50.cycles, 2),
        ])
    x_label = ("activation DBB sparsity" if panel == "d"
               else "weight DBB sparsity")
    series = ("W-DBB" if panel == "d" else "act")
    from repro.eval.plots import series_chart

    chart = series_chart(
        [row[0] for row in rows],
        {"energy": [row[1] for row in rows],
         "speedup": [row[3] for row in rows]},
    )
    return ExperimentResult(
        artifact=f"Figure 9{panel}",
        title=titles[panel],
        headers=[x_label, f"energy ({series} 50%)", f"energy ({series} 80%)",
                 "speedup vs SA-ZVCG"],
        rows=rows,
        notes=["energy normalized to SA-ZVCG at 50%/50% sparsity",
               "series view:\n" + chart],
    )


# --------------------------------------------------------------------- #
# Figure 10
# --------------------------------------------------------------------- #

def fig10_variant_breakdown() -> ExperimentResult:
    """Energy breakdown + speedup on the typical conv (50% W, 62.5% A)."""
    layer = typical_conv_layer(0.5, 0.375)
    variants = _sa_variants()
    baseline = variants["SA-ZVCG"].run_layer(layer)
    paper_speedup = {"SA": 1.0, "SA-ZVCG": 1.0, "SMT-T2Q2": 1.7,
                     "SMT-T2Q4": 1.9, "S2TA-W": 2.0, "S2TA-AW": 2.7}
    rows = []
    for name, accel in variants.items():
        r = accel.run_layer(layer)
        scale = baseline.energy_pj
        rows.append([
            name,
            round(r.breakdown.datapath / scale, 3),
            round(r.breakdown.buffers / scale, 3),
            round(r.breakdown.sram / scale, 3),
            round(r.breakdown.dap / scale, 3),
            round(r.breakdown.actfn / scale, 3),
            round(r.energy_pj / scale, 3),
            round(baseline.cycles / r.cycles, 2),
            paper_speedup[name],
        ])
    aw_sram = rows[-1][3]
    w_sram = rows[-2][3]
    return ExperimentResult(
        artifact="Figure 10",
        title="Variant energy breakdown at 50% W / 62.5% A sparsity "
              "(normalized to SA-ZVCG)",
        headers=["variant", "datapath", "buffers", "sram", "dap", "actfn",
                 "total", "speedup", "paper speedup"],
        rows=rows,
        notes=[f"S2TA-AW SRAM energy is {w_sram / max(aw_sram, 1e-9):.1f}x "
               f"lower than S2TA-W (paper: 3.1x)"],
    )


# --------------------------------------------------------------------- #
# Table 3
# --------------------------------------------------------------------- #

PAPER_TABLE3 = [
    # (model, dataset, baseline, a_dbb, w_dbb, accuracy)
    ("LeNet-5", "MNIST", 99.0, "3/8", "-", 98.9),
    ("LeNet-5", "MNIST", 99.0, "-", "2/8", 98.9),
    ("LeNet-5", "MNIST", 99.0, "4/8", "2/8", 98.8),
    ("MobileNetV1", "ImageNet", 70.1, "3.8/8", "-", 69.4),
    ("MobileNetV1", "ImageNet", 70.1, "-", "4/8", 69.8),
    ("MobileNetV1*", "ImageNet", 70.1, "4.8/8", "4/8", 68.9),
    ("AlexNet", "ImageNet", 55.7, "3.8/8", "-", 54.7),
    ("AlexNet", "ImageNet", 55.7, "-", "4/8", 54.9),
    ("AlexNet*", "ImageNet", 55.7, "3.9/8", "4/8", 54.6),
    ("VGG-16", "ImageNet", 71.5, "3.1/8", "-", 71.8),
    ("VGG-16", "ImageNet", 71.5, "-", "3/8", 71.4),
    ("VGG-16*", "ImageNet", 71.5, "3.1/8", "3/8", 71.9),
    ("ResNet-50V1", "ImageNet", 75.0, "-", "4/8", 74.5),
    ("ResNet-50V1", "ImageNet", 75.0, "3.49/8", "-", 74.4),
    ("ResNet-50V1*", "ImageNet", 75.0, "3.49/8", "3/8", 73.9),
    ("I-BERT (QQP)", "GLUE", 91.2, "4/8", "4/8", 90.9),
]


def tbl3_accuracy(quick: bool = False,
                  seed: int = 7) -> ExperimentResult:
    """DBB fine-tuning accuracy — proxy-model reproduction of Table 3.

    Runs the actual prune-then-finetune pipeline on the synthetic proxy
    (ImageNet training is unavailable offline; see DESIGN.md Sec. 2) for
    the paper's sparsity variants, and lists the paper's published rows
    for reference. ``quick`` shrinks the epoch counts for CI use.
    """
    from repro.train import MLP, dbb_finetune, synthetic_classification

    epochs = 4 if quick else 14
    variants = [
        ("A-DBB 3/8", DBBSpec(8, 3), None),
        ("W-DBB 4/8", None, DBBSpec(8, 4)),
        ("A/W-DBB 3/8+4/8", DBBSpec(8, 3), DBBSpec(8, 4)),
        ("W-DBB 2/8 (aggressive)", None, DBBSpec(8, 2)),
    ]
    rows = []
    for name, a_spec, w_spec in variants:
        rng = np.random.default_rng(seed)
        data = synthetic_classification(rng=rng)
        model = MLP(64, [64, 64], 12,
                    dap_spec=a_spec,
                    dap_nnz=a_spec.max_nnz if a_spec else None,
                    rng=rng)
        report = dbb_finetune(model, data, w_spec=w_spec, rng=rng,
                              baseline_epochs=epochs,
                              finetune_epochs=epochs)
        rows.append([
            name,
            round(report.baseline_acc, 1),
            round(report.pruned_acc, 1),
            round(report.finetuned_acc, 1),
            round(report.final_loss, 1),
        ])
    notes = ["proxy MLP on synthetic data; the reproduced claim is the "
             "recovery dynamic (prune -> drop -> finetune -> ~baseline)"]
    notes.append("paper-published Table 3 (for reference):")
    for model_name, dataset, base, a, w, acc in PAPER_TABLE3:
        notes.append(
            f"  {model_name:<14s} {dataset:<9s} base {base:.1f}  "
            f"A {a:<7s} W {w:<4s} -> {acc:.1f}"
        )
    return ExperimentResult(
        artifact="Table 3",
        title="DBB pruning + fine-tuning accuracy (proxy reproduction)",
        headers=["variant", "baseline %", "after prune %",
                 "after finetune %", "final loss pts"],
        rows=rows,
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Figure 11
# --------------------------------------------------------------------- #

def _functional_runs(accels: Dict[str, AcceleratorModel], specs,
                     seed: int, max_m: Optional[int],
                     jobs: Optional[int], result_cache
                     ) -> Dict[Tuple[str, str], "AccelRunResult"]:
    """One parallel fan-out over every (variant, model) pair.

    Flattening the whole experiment into a single task batch is what
    lets the process pool stay saturated across models and the result
    cache deduplicate shared layers; results come back keyed by
    ``(variant, model-name)`` and are bit-equal to per-model serial
    runs at the same seed.
    """
    from repro.eval.runner import functional_model_runs

    pairs = [(name, spec) for spec in specs for name in accels]
    runs = functional_model_runs(
        [(accels[name], spec) for name, spec in pairs],
        conv_only=True, seed=seed, max_m=max_m,
        jobs=jobs, result_cache=result_cache)
    return {(name, spec.name): run
            for (name, spec), run in zip(pairs, runs)}


@traced("fig11", "experiment")
def fig11_full_models(functional: bool = False, quick: bool = False,
                      seed: int = 0,
                      dram_gbps: Optional[float] = None,
                      dram_pj_per_byte: Optional[float] = None,
                      jobs: Optional[int] = None,
                      result_cache=None,
                      ) -> ExperimentResult:
    """Full-model energy reduction and speedup vs SA-ZVCG (16 nm).

    ``functional=True`` switches from the analytic fast path to honest
    functional simulation: every conv layer of all four networks runs as
    a concrete INT8 GEMM on the cycle simulator (see the module
    docstring's fidelity-tier notes). ``quick=True`` subsamples each
    layer to at most ``QUICK_MAX_M`` output rows for CI. ``dram_gbps``
    replaces the default DRAM channel (32 B/cycle with the paper's conv
    staging assumption) with an explicit bandwidth and the honest
    roofline wall on every layer — the memory-sensitivity axis;
    ``dram_pj_per_byte`` re-prices the reported off-chip component.
    ``jobs``/``result_cache`` drive the functional tier through the
    parallel, memoized runner (:mod:`repro.eval.runner`; bit-equal to
    serial at the same seed).
    """
    variants = {k: v for k, v in _sa_variants(
                    dram_gbps=dram_gbps,
                    costs=_costs(dram_pj_per_byte)).items()
                if k in SYSTOLIC_VARIANTS}
    max_m = QUICK_MAX_M if quick else None
    specs = [get_spec(name) for name in FULL_MODELS]
    functional_runs = (
        _functional_runs(variants, specs, seed, max_m, jobs, result_cache)
        if functional else {})

    def _run(name, accel, spec):
        if functional:
            return functional_runs[name, spec.name]
        return accel.run_model(spec, conv_only=True)

    rows = []
    aw_energy, aw_speed = [], []
    for spec in specs:
        model_name = spec.name
        runs = {k: _run(k, a, spec) for k, a in variants.items()}
        base = runs["SA-ZVCG"]
        row = [model_name]
        for key in ("SMT-T2Q2", "S2TA-W", "S2TA-AW"):
            row.append(round(base.energy_uj / runs[key].energy_uj, 2))
            row.append(round(base.total_cycles / runs[key].total_cycles, 2))
        rows.append(row)
        aw_energy.append(base.energy_uj / runs["S2TA-AW"].energy_uj)
        aw_speed.append(base.total_cycles / runs["S2TA-AW"].total_cycles)
    rows.append([
        "average", "-", "-", "-", "-",
        round(float(np.mean(aw_energy)), 2),
        round(float(np.mean(aw_speed)), 2),
    ])
    notes = ["paper: S2TA-AW averages 2.08x energy reduction and "
             "2.11x speedup vs SA-ZVCG (ranges 1.76-2.79x / 1.67-2.58x)"]
    if dram_gbps is not None:
        notes.append(
            f"DRAM channel {dram_gbps:g} GB/s with the roofline wall "
            "enforced on every layer (default: 32 B/cycle, conv operands "
            "staged ahead of compute)")
    if functional:
        notes.append(
            "functional tier: measured events from concrete INT8 GEMMs "
            + (f"(quick mode, layers subsampled to m<={QUICK_MAX_M})"
               if quick else "at full layer sizes"))
    return ExperimentResult(
        artifact="Figure 11",
        title="Full-model energy reduction / speedup vs SA-ZVCG (16 nm, "
              "conv layers)"
              + (" — functional simulation" if functional else ""),
        headers=["model", "SMT energy x", "SMT speedup",
                 "S2TA-W energy x", "S2TA-W speedup",
                 "S2TA-AW energy x", "S2TA-AW speedup"],
        rows=rows,
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Figure 12
# --------------------------------------------------------------------- #

@traced("fig12", "experiment")
def fig12_alexnet_per_layer(functional: bool = False, quick: bool = False,
                            seed: int = 0,
                            dram_gbps: Optional[float] = None,
                            dram_pj_per_byte: Optional[float] = None,
                            jobs: Optional[int] = None,
                            result_cache=None,
                            ) -> ExperimentResult:
    """AlexNet per-layer energy across five accelerators (65/45 nm).

    ``functional=True`` runs *every* row on concrete INT8 operands —
    the systolic family on the cycle simulator, SparTen on the bitmask
    inner-join engine, Eyeriss v2 on the CSC row-stationary mesh: no
    analytic fallback remains in the comparison. ``quick=True``
    subsamples each layer to ``QUICK_MAX_M`` output rows. ``dram_gbps``
    swaps in an explicit DRAM channel (each accelerator converts
    against its own clock) with the honest roofline wall;
    ``dram_pj_per_byte`` re-prices the reported off-chip component
    (die-only totals are unaffected by construction).
    ``jobs``/``result_cache`` drive the functional tier through the
    parallel, memoized runner (bit-equal to serial at the same seed).
    """
    spec = get_spec("alexnet")
    kwargs = {"dram_gbps": dram_gbps, "costs": _costs(dram_pj_per_byte)}
    accels = {
        "Eyeriss v2 (65nm)": EyerissV2(**kwargs),
        "SparTen (45nm)": SparTen(**kwargs),
        "SA-ZVCG (65nm)": ZvcgSA(tech="65nm", **kwargs),
        "S2TA-W (65nm)": S2TAW(tech="65nm", **kwargs),
        "S2TA-AW (65nm)": S2TAAW(tech="65nm", **kwargs),
    }
    max_m = QUICK_MAX_M if quick else None
    if functional:
        functional_runs = _functional_runs(
            accels, [spec], seed, max_m, jobs, result_cache)
        runs = {name: functional_runs[name, spec.name] for name in accels}
    else:
        runs = {name: accel.run_model(spec, conv_only=True)
                for name, accel in accels.items()}
    layer_names = [l.name for l in spec.conv_layers]
    rows = []
    for name, run in runs.items():
        row = [name]
        row.extend(round(r.energy_uj, 1) for r in run.layer_results)
        row.append(round(run.energy_uj, 1))
        rows.append(row)
    aw = runs["S2TA-AW (65nm)"].energy_uj
    notes = []
    if dram_gbps is not None:
        notes.append(f"DRAM channel {dram_gbps:g} GB/s, roofline wall "
                     "enforced on every layer")
    notes += [
        f"SparTen/S2TA-AW = "
        f"{runs['SparTen (45nm)'].energy_uj / aw:.2f}x (paper ~2.2x)",
        f"Eyeriss v2/S2TA-AW = "
        f"{runs['Eyeriss v2 (65nm)'].energy_uj / aw:.2f}x (paper ~3.1x)",
        "SparTen wins only on the high-sparsity layers (conv3-5)",
    ]
    if functional:
        notes.append(
            "functional tier for every row: systolic family on the "
            "cycle simulator, SparTen on the bitmask inner-join engine, "
            "Eyeriss v2 on the CSC row-stationary mesh"
            + (f"; quick mode, layers subsampled to m<={QUICK_MAX_M}"
               if quick else ""))
    return ExperimentResult(
        artifact="Figure 12",
        title="AlexNet per-layer energy per inference (uJ)"
              + (" — functional simulation" if functional else ""),
        headers=["accelerator"] + layer_names + ["total"],
        rows=rows,
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Functional-vs-analytic cross-validation
# --------------------------------------------------------------------- #

@dataclasses.dataclass(frozen=True)
class XvalContract:
    """Per-accelerator agreement tolerances (functional = reference).

    ``fired``/``energy`` are relative bounds enforced on every conv
    layer; ``cycles`` is the relative compute-cycle bound (``0.0`` =
    bit-equal, ``None`` = reported but not enforced); ``exact`` asserts
    bit-equal SRAM bytes and per-operand-class DRAM bytes. Quick
    (row-subsampled) runs extrapolate events linearly, so they enforce
    the relaxed ``quick_fired``/``quick_energy`` bounds and waive the
    cycle and exactness checks.
    """

    fired: float = 0.01
    energy: float = 0.06
    cycles: Optional[float] = 0.0
    exact: bool = True
    quick_fired: float = 0.05
    quick_energy: float = 0.12


#: The seven-model agreement contract of the cross-validation artifact
#: (plus the dense SA reference row). Systolic modes are cycle-bit-equal
#: by the shared pipelined-tile skew convention; SMT keeps a statistical
#: bound from its queueing post-pass; SparTen/Eyeriss v2 differ only by
#: the measured schedule imbalance on top of the shared pipeline
#: efficiency; SCNN's cycles are reported unenforced — its 4x4
#: multiplier quantization measures the published small-feature-map
#: fragmentation the flat analytic utilization cannot represent.
XVAL_CONTRACT: Dict[str, XvalContract] = {
    "SA": XvalContract(),
    "SA-ZVCG": XvalContract(),
    "SMT-T2Q2": XvalContract(cycles=0.10),
    "S2TA-W": XvalContract(),
    "S2TA-AW": XvalContract(),
    "SparTen": XvalContract(cycles=0.05),
    "Eyeriss-v2": XvalContract(cycles=0.10),
    "SCNN": XvalContract(cycles=None),
}


@traced("xval", "experiment")
def xval_functional_vs_analytic(
    model: str = "alexnet",
    tech: str = "16nm",
    seed: int = 0,
    max_m: Optional[int] = None,
    jobs: Optional[int] = None,
    result_cache=None,
) -> ExperimentResult:
    """Per-layer analytic-vs-functional deltas for one benchmark network.

    For every conv layer and every accelerator in the paper's comparison
    — the systolic family *and* the fixed-dataflow baselines (SparTen,
    Eyeriss v2, SCNN) — runs both fidelity tiers and reports the
    relative deltas in cycles, fired MACs and energy (functional as the
    denominator) plus whether the structurally exact counters (SRAM
    bytes, MAC slots, per-class DRAM bytes from the memory-hierarchy
    model) match. This is the validation artifact behind the functional
    migration: the analytic models are the *fast path*, and this table
    is the evidence they track the measured ground truth.

    Every row is checked against :data:`XVAL_CONTRACT`; violations land
    in ``result.failures`` and make ``repro experiment xval`` exit
    non-zero. ``max_m`` subsamples layers (the CLI's ``--quick``),
    switching to the contract's relaxed statistical bounds.
    ``jobs``/``result_cache`` fan the functional simulations out through
    the parallel, memoized runner (the analytic side is closed-form and
    stays serial); deltas are bit-equal to a serial run at the same
    seed.
    """
    from repro.eval.runner import LayerSimTask, simulate_layer_tasks

    spec = get_spec(model)
    variants: Dict[str, AcceleratorModel] = {
        "SA": DenseSA(tech=tech),
        "SA-ZVCG": ZvcgSA(tech=tech),
        "SMT-T2Q2": SmtSA(tech=tech),
        "S2TA-W": S2TAW(tech=tech),
        "S2TA-AW": S2TAAW(tech=tech),
        # The fixed-dataflow baselines run at their published nodes.
        "SparTen": SparTen(),
        "Eyeriss-v2": EyerissV2(),
        "SCNN": SCNN(),
    }
    quick = max_m is not None

    def _rel(ana: float, fun: float) -> float:
        if fun == 0:
            return 0.0 if ana == 0 else float("inf")
        return (ana - fun) / fun

    # Functional tier: one parallel, memoized fan-out over every
    # (accelerator, layer) pair; finalization runs in-process.
    tasks = [LayerSimTask(accel, layer, seed=seed, max_m=max_m)
             for accel in variants.values() for layer in spec.conv_layers]
    payloads = simulate_layer_tasks(tasks, jobs=jobs,
                                    result_cache=result_cache)
    functional = {
        (id(task.accel), task.layer.name):
            task.accel._finalize_layer(task.layer, cycles, events)
        for task, (cycles, events) in zip(tasks, payloads)
    }

    rows = []
    failures = []
    worst = {"cycles": 0.0, "fired": 0.0, "energy": 0.0}
    for name, accel in variants.items():
        contract = XVAL_CONTRACT[name]
        for layer in spec.conv_layers:
            ana = accel.run_layer(layer)
            fun = functional[id(accel), layer.name]
            d_cycles = _rel(ana.compute_cycles, fun.compute_cycles)
            d_fired = _rel(ana.events.mac_ops, fun.events.mac_ops)
            d_energy = _rel(ana.energy_pj, fun.energy_pj)
            sram_exact = (
                ana.events.sram_a_read_bytes == fun.events.sram_a_read_bytes
                and ana.events.sram_w_read_bytes == fun.events.sram_w_read_bytes
                and ana.events.sram_a_write_bytes == fun.events.sram_a_write_bytes
            )
            slots_exact = (ana.events.total_mac_slots
                           == fun.events.total_mac_slots)
            dram_exact = (ana.memory.by_class() == fun.memory.by_class())
            cycles_exact = ana.compute_cycles == fun.compute_cycles
            rows.append([
                name, layer.name,
                round(d_cycles * 100, 2),
                round(d_fired * 100, 2),
                round(d_energy * 100, 2),
                "yes" if sram_exact else "NO",
                "yes" if slots_exact else "no",
                "yes" if dram_exact else "NO",
                "yes" if cycles_exact else "no",
            ])
            worst["cycles"] = max(worst["cycles"], abs(d_cycles))
            worst["fired"] = max(worst["fired"], abs(d_fired))
            worst["energy"] = max(worst["energy"], abs(d_energy))
            # --- contract enforcement ---
            tag = f"{name}/{layer.name}"
            fired_tol = contract.quick_fired if quick else contract.fired
            energy_tol = contract.quick_energy if quick else contract.energy
            if abs(d_fired) > fired_tol:
                failures.append(
                    f"{tag}: fired-MAC delta {d_fired * 100:.2f}% exceeds "
                    f"{fired_tol * 100:g}%")
            if abs(d_energy) > energy_tol:
                failures.append(
                    f"{tag}: energy delta {d_energy * 100:.2f}% exceeds "
                    f"{energy_tol * 100:g}%")
            if not quick:
                if contract.cycles is not None and (
                        abs(d_cycles) > contract.cycles):
                    failures.append(
                        f"{tag}: cycle delta {d_cycles * 100:.2f}% exceeds "
                        f"{contract.cycles * 100:g}%")
                if contract.exact and not (sram_exact and dram_exact):
                    failures.append(
                        f"{tag}: SRAM/DRAM byte counters not bit-equal "
                        "between tiers")
    return ExperimentResult(
        artifact="Cross-validation",
        title=f"Analytic vs functional per-layer deltas ({model}, {tech})",
        headers=["accelerator", "layer", "cycles %", "fired MACs %",
                 "energy %", "SRAM exact", "slots exact", "DRAM exact",
                 "cycles exact"],
        rows=rows,
        notes=[
            f"worst |delta|: cycles {worst['cycles'] * 100:.2f}%, "
            f"fired MACs {worst['fired'] * 100:.2f}%, "
            f"energy {worst['energy'] * 100:.2f}%",
            "cycle models share the pipelined-tile skew convention and "
            "are bit-equal for the systolic modes; SMT's slots derive "
            "from its queueing-simulated cycles and keep a small "
            "statistical delta; SparTen/Eyeriss v2 differ by measured "
            "schedule imbalance; SCNN cycles are unenforced (multiplier "
            "fragmentation on small feature maps is emergent in the "
            "functional tier)",
            "DRAM exact = per-operand-class off-chip bytes (weights, "
            "activations, partial sums, DBB metadata, outputs) agree "
            "bit-for-bit between tiers",
            "contract: " + "; ".join(
                f"{name} fired<{c.fired * 100:g}% energy<{c.energy * 100:g}%"
                + (" cycles=bit-equal" if c.cycles == 0.0
                   else (f" cycles<{c.cycles * 100:g}%"
                         if c.cycles is not None else " cycles=reported"))
                for name, c in XVAL_CONTRACT.items()),
        ],
        failures=failures,
    )


# --------------------------------------------------------------------- #
# Table 4
# --------------------------------------------------------------------- #

def _peak_stats(accel: AcceleratorModel, w_density: float = 0.5,
                a_density: float = 0.5) -> Dict[str, float]:
    result = accel.microbench_layer(w_density, a_density)
    ops = 2.0 * result.layer.macs
    runtime_s = result.cycles / (accel.clock_ghz * 1e9)
    energy_j = result.energy_pj * 1e-12
    return {
        "tops": ops / runtime_s / 1e12,
        "tops_per_w": ops / energy_j / 1e12,
    }


def tbl4_comparison(tech: str = "16nm") -> ExperimentResult:
    """The big cross-accelerator comparison (Table 4) at one node."""
    if tech == "16nm":
        accels: Dict[str, AcceleratorModel] = {
            "SA-ZVCG": ZvcgSA(),
            "SA-SMT": SmtSA(),
            "S2TA-W": S2TAW(),
            "S2TA-AW": S2TAAW(),
        }
        paper = {
            # name: (area, peak_tops, peak_topsw, alexnet kinf/s, kinf/J,
            #        mobilenet kinf/s, kinf/J) — conv-only (footnote 5)
            "SA-ZVCG": (3.7, 4.0, 10.5, 3.0, 7.5, 3.6, 8.4),
            "SA-SMT": (4.2, 8.0, 8.01, 4.0, 6.73, 5.4, 8.0),
            "S2TA-W": (3.4, 8.0, 12.4, 5.0, 8.7, 7.3, 9.9),
            "S2TA-AW": (3.8, 8.0, 14.3, 6.3, 13.1, 9.7, 14.9),
        }
    elif tech == "65nm":
        accels = {
            "Eyeriss v2": EyerissV2(),
            "SA-ZVCG": ZvcgSA(tech="65nm"),
            "S2TA-W": S2TAW(tech="65nm"),
            "S2TA-AW": S2TAAW(tech="65nm"),
        }
        paper = {
            "Eyeriss v2": (3.38, 0.152, None, 0.34, 0.74, 0.13, 0.22),
            "SA-ZVCG": (21.0, 2.0, 0.78, 1.5, 0.67, 1.82, 0.68),
            "S2TA-W": (None, 4.0, 0.87, 2.5, 0.66, 3.64, 0.76),
            "S2TA-AW": (24.0, 4.0, 1.1, 3.2, 1.02, 4.85, 1.04),
        }
    else:
        raise ValueError(f"tech must be 16nm or 65nm, got {tech!r}")

    alexnet = get_spec("alexnet")
    mobilenet = get_spec("mobilenet_v1")
    rows = []
    for name, accel in accels.items():
        peak = _peak_stats(accel)
        run_a = accel.run_model(alexnet, conv_only=True)
        run_m = accel.run_model(mobilenet, conv_only=True)
        p = paper[name]
        rows.append([
            name,
            round(accel.area_mm2(), 2), p[0] if p[0] is not None else "-",
            round(peak["tops"], 2), p[1],
            round(peak["tops_per_w"], 2), p[2] if p[2] is not None else "-",
            round(run_a.inferences_per_second / 1e3, 2), p[3],
            round(run_a.inferences_per_joule / 1e3, 2), p[4],
            round(run_m.inferences_per_second / 1e3, 2), p[5],
            round(run_m.inferences_per_joule / 1e3, 2), p[6],
        ])
    return ExperimentResult(
        artifact=f"Table 4 ({tech})",
        title="Cross-accelerator comparison (conv-only full models; "
              "'paper' columns are Table 4's footnote-5 values)",
        headers=["accelerator",
                 "area", "p.area",
                 "TOPS@50%", "p.TOPS",
                 "TOPS/W", "p.TOPS/W",
                 "AlexNet kI/s", "p.", "AlexNet kI/J", "p.",
                 "MobNet kI/s", "p.", "MobNet kI/J", "p."],
        rows=rows,
        notes=["peak stats at 50% weight/activation sparsity"],
    )


# --------------------------------------------------------------------- #
# Table 5
# --------------------------------------------------------------------- #

def tbl5_summary() -> ExperimentResult:
    """Qualitative design summary (Table 5)."""
    rows = [
        ["SA", "dense", "dense", "none", "no", "no"],
        ["SA-ZVCG", "dense", "dense", "none", "yes", "no"],
        ["SA-SMT", "random", "random", "gather (FIFOs)", "yes", "no"],
        ["SCNN", "random", "random", "scatter (accum buffer)", "yes", "no"],
        ["SparTen", "random", "random", "gather (prefix sums)", "yes", "no"],
        ["Kang", "2/8 DBB", "dense", "none", "yes", "no"],
        ["STA", "4/8 DBB", "dense", "none", "yes", "no"],
        ["A100", "2/4 DBB", "dense", "none", "-", "no"],
        ["S2TA-W", "4/8 DBB", "dense", "none", "yes", "no"],
        ["S2TA-AW", "4/8 DBB", "(1-5)/8 DBB", "none", "yes", "yes"],
    ]
    return ExperimentResult(
        artifact="Table 5",
        title="Design summary: sparsity support and overhead structures",
        headers=["architecture", "weight sparsity", "activation sparsity",
                 "hardware overhead", "ZVCG", "variable DBB (time-unrolled)"],
        rows=rows,
        notes=["structured sparsity gives speedup without gather/scatter "
               "overhead structures; only S2TA-AW supports variable "
               "activation DBB via time-unrolling"],
    )


# --------------------------------------------------------------------- #
# Section 7: design-space exploration
# --------------------------------------------------------------------- #

def sec7_design_space(top: int = 8) -> ExperimentResult:
    """The AxBxC_MxN sweep and its area/power frontier (Sec. 7)."""
    from repro.design import (
        enumerate_design_space,
        evaluate_point,
        pareto_frontier,
        select_lowest_power,
    )

    evaluations = [evaluate_point(p) for p in enumerate_design_space()]
    frontier = pareto_frontier(evaluations)
    best = select_lowest_power(evaluations)
    ranked = sorted(evaluations, key=lambda e: e.energy_uj)[:top]
    rows = [
        [e.point.notation,
         round(e.power_mw, 1),
         round(e.area_mm2, 2),
         round(e.energy_uj, 1),
         "yes" if e in frontier else "no",
         "<-- selected" if e is best else ""]
        for e in ranked
    ]
    return ExperimentResult(
        artifact="Section 7",
        title="Design-space sweep at 4 TOPS peak (time-unrolled TPEs, "
              "typical conv at 50%/50%)",
        headers=["design", "power mW", "area mm2", "energy uJ",
                 "on frontier", ""],
        rows=rows,
        notes=[f"{len(evaluations)} feasible points; the paper selects "
               f"8x4x4_8x8 — the same 8x4x4 TPE wins here (grid "
               f"{best.point.rows}x{best.point.cols}, within a few "
               f"percent of the 8x8 grid)"],
    )
