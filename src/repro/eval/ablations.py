"""Ablation studies over S2TA's design choices.

Three ablations the paper's design rests on:

- **Unrolling axis** (footnote 2): serialize activation blocks (S2TA-AW)
  vs weight blocks (S2TA-WA). AW wins because per-layer *activation*
  density varies 8/8..2/8 while weight density is fixed per model —
  the variable axis should be the one with per-layer dynamic range.
- **Block size** (Sec. 8.1): BZ=8 balances accuracy (larger blocks keep
  more signal at the same density bound — this is why 4/8 beats A100's
  2/4 despite the equal ratio) against hardware cost (mux width, mask
  bits, DAP comparators all grow with BZ).
- **DAP stage cap** (Sec. 6.2): the cascade is capped at 5 stages;
  more stages buy almost nothing because layers needing >5/8 run dense
  anyway, while fewer stages force denser layers to bypass.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.accel import S2TAAW, S2TAWA, ZvcgSA
from repro.core.dap import dap_keep_fraction
from repro.core.dbb import DBBSpec
from repro.core.sparsity import random_unstructured
from repro.eval.tables import ExperimentResult
from repro.models import get_spec

__all__ = [
    "ablation_unroll_axis",
    "ablation_block_size",
    "ablation_dap_stages",
]

FULL_MODELS = ("resnet50", "vgg16", "mobilenet_v1", "alexnet")


def ablation_unroll_axis() -> ExperimentResult:
    """S2TA-AW (variable A) vs S2TA-WA (variable W) on the full models."""
    zvcg = ZvcgSA()
    aw = S2TAAW()
    wa = S2TAWA()
    rows = []
    for name in FULL_MODELS:
        spec = get_spec(name)
        base = zvcg.run_model(spec, conv_only=True)
        run_aw = aw.run_model(spec, conv_only=True)
        run_wa = wa.run_model(spec, conv_only=True)
        pruned = [l for l in spec.conv_layers if l.weight_pruned]
        w_nnz = pruned[0].w_nnz if pruned else 8
        rows.append([
            name,
            f"{w_nnz}/8",
            round(spec.mac_weighted_a_nnz(), 2),
            round(base.total_cycles / run_aw.total_cycles, 2),
            round(base.total_cycles / run_wa.total_cycles, 2),
            round(base.energy_uj / run_aw.energy_uj, 2),
            round(base.energy_uj / run_wa.energy_uj, 2),
        ])
    return ExperimentResult(
        artifact="Ablation: unrolling axis",
        title="Serialize activations (AW) vs weights (WA), vs SA-ZVCG",
        headers=["model", "W-DBB", "avg a_nnz",
                 "AW speedup", "WA speedup",
                 "AW energy x", "WA energy x"],
        rows=rows,
        notes=["WA's speedup is locked to the per-model weight ratio; "
               "AW tracks the per-layer activation range — and WA's "
               "forced fixed 4/8 A-DBB would cost accuracy on dense-"
               "activation layers that AW's tuning bypasses"],
    )


def ablation_block_size(
    densities: Optional[List[float]] = None,
    rng: Optional[np.random.Generator] = None,
) -> ExperimentResult:
    """Accuracy-proxy vs hardware cost across DBB block sizes.

    Keep-fraction: the share of activation L1 mass a 50%-density bound
    preserves under Top-NNZ pruning — larger blocks give the selector
    more freedom (8/16 > 4/8 > 2/4 = A100's format at the same ratio).
    Hardware cost: mask bits per block byte, steering-mux width and DAP
    comparators all scale with BZ.
    """
    rng = rng or np.random.default_rng(0)
    densities = densities or [0.7]
    x = random_unstructured((256, 128), densities[0], rng=rng)
    rows = []
    for bz in (4, 8, 16):
        nnz = bz // 2  # 50% bound throughout (2/4, 4/8, 8/16)
        spec = DBBSpec(bz, nnz)
        keep = dap_keep_fraction(x, spec, nnz)
        mask_overhead = spec.mask_bytes() / spec.compressed_value_bytes()
        rows.append([
            spec.ratio,
            round(keep * 100, 1),
            bz,                      # steering mux width
            round(mask_overhead * 100, 1),
            (bz - 1) * nnz,          # DAP comparators per block
            "A100 format" if bz == 4 else
            ("paper's choice" if bz == 8 else ""),
        ])
    return ExperimentResult(
        artifact="Ablation: block size",
        title="DBB block size at a fixed 50% density bound",
        headers=["format", "L1 mass kept %", "mux width",
                 "mask overhead %", "DAP compares/block", ""],
        rows=rows,
        notes=["larger blocks keep more signal at equal density but "
               "grow every per-block hardware structure; BZ=8 is the "
               "paper's accuracy/efficiency balance (Sec. 6.2)"],
    )


def ablation_dap_stages() -> ExperimentResult:
    """Effect of the DAP cascade depth cap on full-model coverage."""
    rows = []
    aw = S2TAAW()
    zvcg = ZvcgSA()
    for max_stages in (3, 4, 5, 6, 7):
        bypassed_macs = 0
        total_macs = 0
        energy_ratio_acc = []
        for name in FULL_MODELS:
            spec = get_spec(name)
            capped_layers = []
            for layer in spec.conv_layers:
                total_macs += layer.macs
                if 8 > layer.a_nnz > max_stages:
                    # layer must bypass DAP and run dense
                    import dataclasses

                    bypassed_macs += layer.macs
                    capped_layers.append(dataclasses.replace(
                        layer, a_nnz=8,
                        act_density=min(1.0, layer.a_density * 2)))
                else:
                    capped_layers.append(layer)
            from repro.models.specs import ModelSpec

            capped = ModelSpec(name + f"_cap{max_stages}", spec.dataset,
                               capped_layers)
            base = zvcg.run_model(capped, conv_only=True)
            run = aw.run_model(capped, conv_only=True)
            energy_ratio_acc.append(base.energy_uj / run.energy_uj)
        rows.append([
            max_stages,
            round(bypassed_macs / total_macs * 100, 1),
            round(float(np.mean(energy_ratio_acc)), 2),
            "paper's cap" if max_stages == 5 else "",
        ])
    return ExperimentResult(
        artifact="Ablation: DAP stages",
        title="DAP cascade depth vs dense-bypass coverage and energy",
        headers=["max stages", "MACs forced to dense bypass %",
                 "AW energy gain vs ZVCG", ""],
        rows=rows,
        notes=["beyond 5 stages the marginal energy gain is negligible "
               "(layers tuned above 5/8 barely benefit from DBB), which "
               "is the paper's Sec. 6.2 rationale for capping at 5"],
    )
