"""Roofline analysis and DRAM-bandwidth sensitivity artifacts.

Built on the memory-hierarchy subsystem (:mod:`repro.arch.memory`):
every layer's :class:`~repro.arch.memory.LayerMemoryProfile` carries
exact per-operand-class DRAM bytes and the honest fill time, so the
classic roofline quantities fall out directly:

- *operational intensity* ``OI = ops / total DRAM bytes`` (x-axis),
- the *memory roof* ``ops / operand-fill time`` (reads only, burst- and
  row-aware — slightly above the idealized ``OI * bytes_per_cycle``
  line because write-back is posted and drains overlapped) and the
  layer's *compute roof* ``ops / compute_cycles``, both in ops/cycle
  (clock independent),
- the *achieved* throughput ``ops / cycles`` under the enforced cap.

``roofline_analysis`` reports these per layer for the systolic variant
family; ``dram_bw_sensitivity`` sweeps the DRAM bandwidth axis over the
Fig. 11 models and shows where the published S2TA-AW speedup hits the
memory wall. Both are analytic-tier (milliseconds per network).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.eval.tables import ExperimentResult
from repro.models import get_spec

__all__ = ["roofline_analysis", "dram_bw_sensitivity", "DEFAULT_BANDWIDTHS"]

#: GB/s points of the sensitivity sweep (default channel: 32 B/cycle,
#: i.e. 32 GB/s at the 16 nm design point's 1 GHz clock).
DEFAULT_BANDWIDTHS: Tuple[float, ...] = (4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def _variants(tech: str, dram_gbps: Optional[float]):
    from repro.eval.experiments import SYSTOLIC_VARIANTS, _sa_variants

    variants = _sa_variants(tech, dram_gbps=dram_gbps)
    return {k: variants[k] for k in SYSTOLIC_VARIANTS}


def roofline_analysis(model: str = "alexnet", tech: str = "16nm",
                      dram_gbps: Optional[float] = None) -> ExperimentResult:
    """Per-layer roofline placement of one network (all layer kinds).

    The ``bound`` column uses the honest fill time of the memory
    profile; the ``achieved`` column reflects the enforced cap (at the
    default channel the paper's staging assumption applies to conv
    layers — pass ``dram_gbps`` to enforce the wall everywhere).
    """
    spec = get_spec(model)
    variants = _variants(tech, dram_gbps)
    rows = []
    bound_count = {}
    for name, accel in variants.items():
        run = accel.run_model(spec)
        for r in run.layer_results:
            prof = r.memory
            ops = 2.0 * r.layer.macs
            oi = prof.intensity(ops)
            compute_roof = ops / r.compute_cycles
            mem_roof = (ops / prof.fill_cycles if prof.fill_cycles
                        else float("inf"))
            achieved = ops / r.cycles
            bound = "memory" if prof.memory_bound else "compute"
            bound_count[name] = bound_count.get(name, 0) + prof.memory_bound
            # Fill-skew overhead the double-buffered tile timeline cannot
            # hide: the exposed first fill + any per-tile pacing beyond
            # the ideal max(compute, fill) roofline bound.
            ideal = max(prof.compute_cycles, prof.memory_cycles)
            overlap_pct = (prof.overlapped_cycles / ideal - 1.0) * 100 \
                if ideal else 0.0
            rows.append([
                name, r.layer.name, r.layer.kind.value,
                round(oi, 1),
                round(compute_roof, 1),
                round(mem_roof, 1) if mem_roof != float("inf") else "inf",
                round(achieved, 1),
                bound,
                round(prof.total_dram_bytes / 1024, 1),
                round(overlap_pct, 2),
            ])
    layers = len(spec.layers)
    notes = [
        "ops = 2 * dense MACs; roofs in ops/cycle (clock independent); "
        "memory roof = ops / honest operand-fill time",
        "bound column uses the honest fill time; 'achieved' reflects the "
        "enforced cap (default channel stages conv operands ahead of "
        "compute, the paper's Sec. 8.3 semantics — pass --dram-bw to "
        "enforce the wall on every layer)",
        "DMA skew % = double-buffered per-tile timeline overhead beyond "
        "the ideal max(compute, fill) bound (exposed first-tile fill + "
        "per-tile pacing)",
    ]
    for name, count in bound_count.items():
        notes.append(f"{name}: {count}/{layers} layers over the memory "
                     f"wall at {variants[name].memory.dram.bytes_per_cycle:g} "
                     f"B/cycle")
    bw = ("default 32 B/cycle" if dram_gbps is None
          else f"{dram_gbps:g} GB/s")
    return ExperimentResult(
        artifact="Roofline",
        title=f"Per-layer roofline placement ({model}, {tech}, {bw})",
        headers=["accelerator", "layer", "kind", "OI ops/B",
                 "compute roof", "memory roof", "achieved", "bound",
                 "DRAM KiB", "DMA skew %"],
        rows=rows,
        notes=notes,
    )


def dram_bw_sensitivity(
    tech: str = "16nm",
    bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS,
    models: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """S2TA-AW speedup vs SA-ZVCG as the DRAM channel narrows.

    For each bandwidth the full networks (conv + FC + depthwise) run
    with the honest roofline wall enforced on every layer; the table
    shows the whole-network speedup and the fraction of S2TA-AW layers
    that are memory bound. The published Fig. 11 speedups need the
    channel to keep up with the sparse datapath — this is the sweepable
    axis the flat DMA cap could not express.
    """
    from repro.eval.experiments import FULL_MODELS

    from repro.accel import S2TAAW, ZvcgSA

    models = list(FULL_MODELS) if models is None else list(models)
    rows = []
    for bw in bandwidths:
        # Only the compared pair is needed; both depend on the bandwidth
        # alone, so build them once per sweep point.
        zvcg = ZvcgSA(tech=tech, dram_gbps=bw)
        s2ta_aw = S2TAAW(tech=tech, dram_gbps=bw)
        row = [f"{bw:g}"]
        for model_name in models:
            spec = get_spec(model_name)
            base = zvcg.run_model(spec)
            aw = s2ta_aw.run_model(spec)
            speedup = base.total_cycles / aw.total_cycles
            frac = (sum(1 for r in aw.layer_results if r.memory_bound)
                    / len(aw.layer_results))
            row.append(round(speedup, 2))
            row.append(round(frac * 100, 0))
        rows.append(row)
    headers = ["DRAM GB/s"]
    for model_name in models:
        headers.append(f"{model_name} speedup")
        headers.append(f"{model_name} mem%")
    return ExperimentResult(
        artifact="Roofline BW sweep",
        title="S2TA-AW vs SA-ZVCG across DRAM bandwidth "
              f"({tech}, whole networks, honest wall)",
        headers=headers,
        rows=rows,
        notes=["speedup = SA-ZVCG cycles / S2TA-AW cycles; mem% = share "
               "of S2TA-AW layers with fill time above compute time",
               "the default evaluation channel is 32 B/cycle (32 GB/s at "
               "1 GHz) with the paper's conv staging assumption"],
    )
