"""ASCII bar/series rendering for experiment results.

The paper's figures are bar charts and line series; these helpers give
the benchmark outputs a figure-like view in plain text, next to the
numeric tables from :mod:`repro.eval.tables`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["bar_chart", "series_chart"]

_FULL = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    reference: Optional[float] = None,
) -> str:
    """Horizontal bar chart; optionally marks a reference value with '|'."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels ({len(labels)}) and values ({len(values)}) differ"
        )
    if not values:
        return ""
    peak = max(max(values), reference or 0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(l) for l in labels)
    lines: List[str] = []
    ref_col = (min(width - 1, round(reference / peak * width))
               if reference is not None else None)
    for label, value in zip(labels, values):
        filled = round(value / peak * width)
        bar = list(_FULL * filled + " " * (width - filled))
        if ref_col is not None and 0 <= ref_col < width:
            bar[ref_col] = "|"
        lines.append(
            f"{label.ljust(label_width)}  {''.join(bar)} "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def series_chart(
    x_labels: Sequence[str],
    series: dict,
    height: int = 10,
    width_per_point: int = 8,
) -> str:
    """Plot one or more y-series over shared x labels as ASCII columns."""
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("all series must match the x-label count")
    markers = "ox+*@%"
    all_values = [v for vals in series.values() for v in vals]
    top = max(all_values)
    bottom = min(0.0, min(all_values))
    span = (top - bottom) or 1.0
    grid = [[" "] * (len(x_labels) * width_per_point)
            for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        marker = markers[s_idx % len(markers)]
        for i, value in enumerate(values):
            row = height - 1 - round((value - bottom) / span * (height - 1))
            col = i * width_per_point + width_per_point // 2
            grid[row][col] = marker
    lines = [f"{top:8.2f} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " |" + "".join(row))
    lines.append(f"{bottom:8.2f} +" + "".join(grid[-1]))
    axis = " " * 10
    for label in x_labels:
        axis += label[:width_per_point - 1].center(width_per_point)
    lines.append(axis)
    legend = "   ".join(f"{markers[i % len(markers)]}={name}"
                        for i, name in enumerate(series))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
