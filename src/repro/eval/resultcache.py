"""Content-addressed on-disk cache for functional-simulation results.

Full-size functional runs re-simulate the same (layer, accelerator,
seed) points over and over: fig11, fig12, xval and the roofline sweeps
all share AlexNet conv layers, and every re-invocation starts from
scratch. This module gives the functional tier the evaluation-cache
structure real simulator infrastructure uses (Timeloop/Accelergy-style
caches keyed on config hashes): each simulated layer's *measured*
``(compute_cycles, EventCounts)`` payload is frozen to disk under a
content hash of everything that determines it —

- the layer spec (GEMM shape, DBB bounds, densities, window),
- the accelerator design point (class, functional simulator config,
  per-layer GEMM knobs, technology node),
- the energy cost model and the memory-channel/staging configuration,
- the operand-synthesis seed and the quick-mode row cap,
- a code-version salt (:data:`CODE_VERSION` — bump it whenever a
  simulator's event accounting changes, or stale entries would silently
  survive the change).

Payloads are cached *pre-finalization* (before the memory-hierarchy
profile and energy pricing run), which is exactly what the parallel
runner's workers return; finalization re-runs on every consumption, so
a cached result is bit-equal to a cold simulation by construction
(asserted in ``tests/eval/test_runner.py``). Entries are small JSON
files (a few hundred bytes each), written atomically, evicted oldest
first once the directory exceeds ``max_bytes``. A corrupt or truncated
entry reads as a miss — but a *counted* one: the bad file moves to the
``corrupt/`` subdirectory (so it can never be re-hit, and stays around
for forensics), ``result_cache.corrupt`` increments, and the lifetime
sidecar accumulates the count across runs. ``repro cache
stats|clear|prune`` manages the default cache from the CLI.

The default location is ``$REPRO_CACHE_DIR`` (falling back to
``~/.cache/repro/results``); set ``REPRO_RESULT_CACHE=0`` to disable
the default cache entirely (explicit :class:`ResultCache` instances
still work — the test suite uses tmpdir caches).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Optional, Tuple

from repro import faults
from repro.arch.events import EventCounts
from repro.obs import metrics as obs_metrics

__all__ = ["CODE_VERSION", "CORRUPT_SUBDIR", "ResultCache",
           "combine_keys", "default_result_cache", "payload_key"]

#: Lifetime-stats sidecar filename. Deliberately *not* ``*.json`` so
#: the entry glob (and byte accounting / eviction) never sees it.
STATS_SIDECAR = "stats.meta"

#: Quarantine subdirectory for corrupt entries. The entry glob is
#: non-recursive, so quarantined files are invisible to get/prune —
#: a bad entry can never be re-hit, re-counted or "evicted" as if it
#: were data.
CORRUPT_SUBDIR = "corrupt"

#: Version salt folded into every cache key. Bump whenever any
#: functional simulator's event accounting or operand synthesis
#: changes, so stale entries can never masquerade as fresh results.
#: (pr7: key schema gained the fidelity-tier field — the DSE engine
#: caches analytic payloads beside the functional ones.)
CODE_VERSION = "pr7-v1"

DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def _canonical(obj):
    """Recursively normalize ``obj`` into JSON-stable primitives.

    Dataclasses flatten to ``[class-name, sorted field dict]``, enums to
    their values, floats through ``repr`` (distinguishes 0.1 from
    0.1000000001 without platform drift). Anything unknown falls back to
    ``repr`` — stable for the config objects this module fingerprints.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return [type(obj).__name__,
                {f.name: _canonical(getattr(obj, f.name))
                 for f in dataclasses.fields(obj)}]
    if isinstance(obj, enum.Enum):
        return [type(obj).__name__, _canonical(obj.value)]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, float):
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    return repr(obj)


def payload_key(accel, layer, seed: int = 0, max_m: Optional[int] = None,
                tier: str = "functional") -> str:
    """Content hash of everything that determines one layer's simulation
    payload (see the module docstring for the component list).

    Module-level so callers without a cache — the parallel runner's
    in-batch dedupe under ``--no-result-cache``, the DSE engine's
    keyspace sharding — fingerprint tasks the exact same way the cache
    does. ``tier`` separates the two fidelity tiers: a ``"functional"``
    payload is measured on the cycle simulator, an ``"analytic"`` one is
    the closed-form ``_layer_events`` result; the two must never share a
    key even when every config component matches.
    """
    try:
        sim_config = _canonical(accel.functional_sim_config())
        gemm_kwargs = _canonical(accel._functional_gemm_kwargs(layer))
    except NotImplementedError:
        if tier == "functional":
            raise
        # Analytic payloads exist for every model; the class name plus
        # the design-point fields below still pin the configuration.
        sim_config = None
        gemm_kwargs = None
    fingerprint = {
        "code_version": CODE_VERSION,
        "tier": tier,
        "accel_class": type(accel).__qualname__,
        "accel_name": accel.name,
        "tech": accel.tech,
        "sim_config": sim_config,
        "gemm_kwargs": gemm_kwargs,
        "costs": _canonical(accel.costs),
        "dram": _canonical(accel.memory.dram),
        "sram": _canonical(accel.memory.sram),
        "layer": _canonical(layer),
        "seed": int(seed),
        "max_m": None if max_m is None else int(max_m),
    }
    blob = json.dumps(fingerprint, sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def combine_keys(keys, extra=None) -> str:
    """Order-sensitive content hash over per-layer payload keys.

    The request-level fingerprint of the serve subsystem
    (:mod:`repro.serve`): a whole-job identity is the ordered sequence
    of its layer-task fingerprints (each already covering layer spec,
    accelerator/memory/energy config, seed, quick cap, tier and the
    :data:`CODE_VERSION` salt) plus any ``extra`` request-level context
    (model name, conv-only flag) canonicalized the same way the
    payload keys are. Two requests share a fingerprint iff every
    simulation *and* finalization input matches — which is exactly when
    the scheduler may serve one simulation to both.
    """
    digest = hashlib.sha256()
    if extra is not None:
        blob = json.dumps(_canonical(extra), sort_keys=True,
                          separators=(",", ":"))
        digest.update(blob.encode())
        digest.update(b"\x00")
    for key in keys:
        digest.update(key.encode())
        digest.update(b"\n")
    return digest.hexdigest()


class ResultCache:
    """Content-addressed store of simulated-layer payloads.

    One entry = one ``(compute_cycles, EventCounts)`` pair, the
    pre-finalization output of
    :meth:`repro.accel.base.AcceleratorModel.simulate_layer_functional`.
    ``get`` returns a *fresh* :class:`EventCounts` per call — callers
    (finalization) mutate the counters, so entries must never alias.
    """

    def __init__(self, path, max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt = 0
        # Counts already folded into the on-disk lifetime sidecar, so
        # repeated persist_stats() calls only add the new delta.
        self._persisted = {"hits": 0, "misses": 0, "puts": 0,
                           "evictions": 0, "corrupt": 0}
        # Running size estimate so ``put`` does not re-scan the whole
        # directory per insert: seeded by one scan on the first put,
        # advanced per entry, re-anchored whenever eviction runs.
        # Concurrent writers make any in-process total approximate;
        # eviction is best-effort by design.
        self._approx_bytes: Optional[int] = None

    # ------------------------------------------------------------- #
    # keys
    # ------------------------------------------------------------- #

    def key(self, accel, layer, seed: int = 0,
            max_m: Optional[int] = None, tier: str = "functional") -> str:
        """Content hash of everything that determines one layer's
        simulation payload — :func:`payload_key` bound to an instance
        for call-site convenience."""
        return payload_key(accel, layer, seed=seed, max_m=max_m, tier=tier)

    def _entry_path(self, key: str) -> pathlib.Path:
        return self.path / f"{key}.json"

    # ------------------------------------------------------------- #
    # get / put
    # ------------------------------------------------------------- #

    def get(self, key: str) -> Optional[Tuple[int, EventCounts]]:
        """The cached payload, or ``None`` on miss / corrupt entry.

        A file that exists but fails to parse is *corruption*, not a
        plain miss: it is counted separately (``result_cache.corrupt``
        metric, ``corrupt`` in the lifetime sidecar) and quarantined to
        the ``corrupt/`` subdirectory so the next lookup of the same
        key re-simulates instead of re-hitting the bad bytes. Either
        way the caller sees ``None`` and the engine recomputes — a
        corrupt entry can degrade performance, never correctness.
        """
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            obs_metrics.default_registry().counter(
                "result_cache.misses").inc()
            return None
        raw = faults.mangle("cache_read", key, raw)
        try:
            payload = json.loads(raw)
            compute_cycles = payload["compute_cycles"]
            events = EventCounts(**payload["events"])
        except (ValueError, TypeError, KeyError):
            self._quarantine_entry(path)
            self.corrupt += 1
            self.misses += 1
            registry = obs_metrics.default_registry()
            registry.counter("result_cache.corrupt").inc()
            registry.counter("result_cache.misses").inc()
            return None
        self.hits += 1
        obs_metrics.default_registry().counter("result_cache.hits").inc()
        return int(compute_cycles), events

    def _quarantine_entry(self, path: pathlib.Path) -> None:
        """Move a corrupt entry to ``corrupt/`` (best-effort: a
        concurrent reader may have moved it first; an unwritable store
        falls back to deleting the bad file — leaving it in place to be
        re-hit forever is the one unacceptable outcome)."""
        target_dir = self.path / CORRUPT_SUBDIR
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, key: str, compute_cycles: int,
            events: EventCounts) -> None:
        """Freeze one payload (atomic write, then size-cap eviction)."""
        self.path.mkdir(parents=True, exist_ok=True)
        blob = json.dumps({
            "code_version": CODE_VERSION,
            "compute_cycles": int(compute_cycles),
            "events": events.as_dict(),
        }, sort_keys=True)
        # Chaos-suite injection point: a fired cache_corrupt fault
        # garbles the entry on its way to disk, exercising the
        # read-side quarantine end to end.
        blob = faults.mangle("cache_write", key, blob.encode()).decode(
            "utf-8", errors="replace")
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        entry = self._entry_path(key)
        # An overwritten entry's bytes leave the store when os.replace
        # lands, so they must leave the running estimate too — otherwise
        # repeated re-puts of the same keys inflate it until eviction
        # triggers on a store that is nowhere near the cap.
        try:
            replaced_bytes = entry.stat().st_size
        except OSError:
            replaced_bytes = 0
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
            os.replace(tmp, entry)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        obs_metrics.default_registry().counter("result_cache.puts").inc()
        obs_metrics.default_registry().counter(
            "result_cache.bytes_written").inc(len(blob))
        if self._approx_bytes is None:
            self._approx_bytes = sum(size for _, size, _ in self._entries())
        else:
            self._approx_bytes += len(blob) - replaced_bytes
        if self._approx_bytes > self.max_bytes:
            self.prune(self.max_bytes)

    # ------------------------------------------------------------- #
    # maintenance
    # ------------------------------------------------------------- #

    def _entries(self):
        if not self.path.is_dir():
            return []
        out = []
        for path in self.path.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_size, stat.st_mtime))
        return out

    def stats(self) -> Dict[str, int]:
        entries = self._entries()
        lifetime = self.lifetime_stats()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "lifetime_hits": lifetime["hits"] + self.hits
            - self._persisted["hits"],
            "lifetime_misses": lifetime["misses"] + self.misses
            - self._persisted["misses"],
            "lifetime_corrupt": lifetime["corrupt"] + self.corrupt
            - self._persisted["corrupt"],
        }

    # ------------------------------------------------------------- #
    # lifetime stats (cross-run, cross-process)
    # ------------------------------------------------------------- #

    def _sidecar_path(self) -> pathlib.Path:
        return self.path / STATS_SIDECAR

    def lifetime_stats(self) -> Dict[str, int]:
        """Totals persisted across runs/processes (zeros when absent).

        Before PR 8 these counts were unrecoverable: each process (and
        each pool run) started its in-memory counters at zero and threw
        them away on exit. The sidecar accumulates them instead.
        """
        base = {"hits": 0, "misses": 0, "puts": 0, "evictions": 0,
                "corrupt": 0}
        try:
            data = json.loads(self._sidecar_path().read_text())
        except (OSError, ValueError):
            return base
        for key in base:
            value = data.get(key)
            if isinstance(value, int) and value >= 0:
                base[key] = value
        return base

    def persist_stats(self) -> None:
        """Fold this instance's not-yet-persisted counter deltas into
        the on-disk lifetime sidecar (atomic replace; the cross-process
        read-modify-write is best-effort, like eviction)."""
        current = {"hits": self.hits, "misses": self.misses,
                   "puts": self.puts, "evictions": self.evictions,
                   "corrupt": self.corrupt}
        delta = {key: current[key] - self._persisted[key]
                 for key in current}
        if not any(delta.values()):
            return
        totals = self.lifetime_stats()
        for key, value in delta.items():
            totals[key] += value
        self.path.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(totals, handle, sort_keys=True)
            os.replace(tmp, self._sidecar_path())
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._persisted = current

    def prune(self, max_bytes: int) -> int:
        """Evict oldest entries until the store fits ``max_bytes``;
        returns the number of entries removed."""
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        entries = sorted(self._entries(), key=lambda e: e[2])
        total = sum(size for _, size, _ in entries)
        removed = 0
        for path, size, _ in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        self._approx_bytes = total
        self.evictions += removed
        obs_metrics.default_registry().counter(
            "result_cache.evictions").inc(removed)
        return removed

    def clear(self) -> int:
        """Remove every entry (and the lifetime-stats sidecar);
        returns the number of entries removed."""
        removed = 0
        for path, _, _ in self._entries():
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        corrupt_dir = self.path / CORRUPT_SUBDIR
        if corrupt_dir.is_dir():
            for path in corrupt_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            self._sidecar_path().unlink()
        except OSError:
            pass
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt = 0
        self._persisted = {"hits": 0, "misses": 0, "puts": 0,
                           "evictions": 0, "corrupt": 0}
        self._approx_bytes = 0
        return removed


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` or the user-level default location."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "results"


def default_result_cache() -> Optional[ResultCache]:
    """The process-default on-disk cache (what the CLI uses), or
    ``None`` when ``REPRO_RESULT_CACHE=0`` disables it."""
    if os.environ.get("REPRO_RESULT_CACHE", "1") == "0":
        return None
    return ResultCache(default_cache_dir())
