"""Plain-text table/series rendering for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["ExperimentResult", "format_table"]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned monospace table."""
    table = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in table:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One reproduced artifact: identity, data rows and commentary.

    ``failures`` carries contract violations (e.g. the cross-validation
    artifact's per-model agreement tolerances); a non-empty list makes
    the CLI exit non-zero after rendering the table.
    """

    artifact: str            # e.g. "Figure 9d"
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.artifact}: {self.title} =="]
        parts.append(format_table(self.headers, self.rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        for failure in self.failures:
            parts.append(f"FAIL: {failure}")
        return "\n".join(parts)

    def column(self, header: str) -> List:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def row(self, key) -> List:
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r} in {self.artifact}")
