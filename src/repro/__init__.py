"""S2TA reproduction library.

A from-scratch Python reproduction of *S2TA: Exploiting Structured Sparsity
for Energy-Efficient Mobile CNN Acceleration* (HPCA 2022). The library
contains:

- ``repro.core``: Density Bound Block (DBB) sparsity — block format,
  weight pruning, dynamic activation pruning (DAP), sparse GEMM kernels.
- ``repro.quant``: INT8 quantization substrate.
- ``repro.nn``: a small numpy CNN inference substrate (conv/fc/pool layers,
  im2col lowering).
- ``repro.models``: model zoo with per-layer GEMM shapes and density
  profiles (LeNet-5, AlexNet, VGG-16, MobileNetV1, ResNet-50V1, I-BERT).
- ``repro.arch``: cycle-level functional models of the datapaths, the
  DAP hardware array, staging FIFOs and the systolic (tensor) array.
- ``repro.energy``: technology scaling and calibrated component costs.
- ``repro.accel``: accelerator PPA models (SA, SA-ZVCG, SA-SMT, S2TA-W,
  S2TA-AW, SparTen, Eyeriss v2).
- ``repro.design``: design-space exploration ("RTL generator" analogue).
- ``repro.train``: minimal autograd + DBB-aware fine-tuning.
- ``repro.workloads``: layer/GEMM workload descriptions.
- ``repro.eval``: experiment runners reproducing every table and figure.
"""

from repro.core.dap import dap_prune, tune_layer_nnz
from repro.core.dbb import DBBBlock, DBBSpec, DBBTensor, compress, decompress
from repro.core.pruning import is_dbb_compliant, prune_weights_dbb

__version__ = "1.0.0"

__all__ = [
    "DBBSpec",
    "DBBBlock",
    "DBBTensor",
    "compress",
    "decompress",
    "dap_prune",
    "tune_layer_nnz",
    "prune_weights_dbb",
    "is_dbb_compliant",
    "__version__",
]
