"""Per-event energy and per-structure area constants (16 nm).

These constants are the calibration layer between event counts and
joules/mm². They are anchored to the paper's own published data points
(see DESIGN.md Sec. 6); the derivation:

- SA-ZVCG runs 2048 MACs at 1 GHz and 10.5 TOPS/W at 50%/50% sparsity
  (Table 4) -> total ~0.19 pJ per MAC slot; ZVCG saves 25% vs dense
  (Sec. 8.4) -> dense total ~0.253 pJ/slot.
- Fig. 1 splits that dense total: MAC 20% (0.0506 pJ), PE-array buffers
  49% (0.124 pJ = 2 operand hops + 1 accumulator RMW), SRAM 21%
  (0.053 pJ amortized over the 32x64 array's reuse -> per-byte costs),
  activation function 10% (0.0253 pJ/slot = ~52 pJ/cycle for the whole
  MCU cluster — which independently matches Table 2's 50.4 mW at 1 GHz).
- The 25% ZVCG saving fixes the gated-event residual at ~45% of the
  active cost (clock tree + leakage left after gating).
- SA-SMT's +43% energy vs SA-ZVCG (Fig. 10) fixes the FIFO op cost.
- Table 2's 2% DAP power share fixes the comparator cost.
- Table 4's 16 nm areas, combined with Table 1's buffer bytes/MAC, fix
  the per-MAC and per-buffer-byte areas.

Absolute pJ values are plausible for 16 nm INT8 but the reproduction
target is the *ratios*; all of the paper's comparisons are relative.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COSTS", "GATED_RESIDUAL"]

# Fraction of an event's active energy still burned when clock-gated.
GATED_RESIDUAL = 0.45


@dataclass(frozen=True)
class CostModel:
    """Energy per event (pJ) and area per structure (um^2 / mm^2), 16 nm."""

    # --- datapath ---
    mac_pj: float = 0.0506          # INT8 multiply-accumulate
    gated_mac_pj: float = 0.0506 * GATED_RESIDUAL
    mux_pj: float = 0.002           # DBB steering mux select
    # --- PE-array buffers ---
    operand_reg_pj: float = 0.031   # 8-bit operand pipeline register hop
    gated_operand_reg_pj: float = 0.031 * GATED_RESIDUAL
    acc_reg_pj: float = 0.062       # 32-bit local accumulator RMW
    gated_acc_reg_pj: float = 0.062 * GATED_RESIDUAL
    fifo_op_pj: float = 0.24        # SMT staging FIFO push or pop
    scatter_acc_pj: float = 0.65    # outer-product distributed-accum RMW
    gather_op_pj: float = 0.22      # non-zero matching / prefix-sum step
    # --- SRAM (per byte); AB is 4x larger, banking keeps the gap mild ---
    sram_ab_read_pj: float = 1.30   # 2 MB activation buffer
    sram_wb_read_pj: float = 1.05   # 0.5 MB weight buffer
    sram_ab_write_pj: float = 1.30
    # --- DAP (per comparator op, incl. pipeline registers) ---
    dap_compare_pj: float = 0.20
    # --- DRAM (per byte over the channel, LPDDR4-class interface +
    # array access). Off-chip energy is outside the paper's scope (its
    # comparisons are die-only), so this prices the *reported* off-chip
    # component next to the calibrated on-chip totals — it is not folded
    # into them, and it does not scale with the logic node (the DRAM
    # interface is its own process). ---
    dram_pj_per_byte: float = 20.0
    # --- MCU cluster background (per accelerator cycle): activation
    # functions, pooling, requantization, DMA control on 4x Cortex-M33 ---
    mcu_cluster_pj_per_cycle: float = 51.8

    # --- area (um^2 / mm^2), fitted to Table 4's 16 nm areas ---
    mac_area_um2: float = 237.0     # INT8 MAC incl. local control
    buffer_area_um2_per_byte: float = 17.4   # FF-based PE buffer storage
    sram_area_mm2_per_mb: float = 1.08
    mcu_area_mm2: float = 0.075     # Cortex-M33 + 64 KB control store
    dap_area_mm2: float = 0.05      # the full 5-stage DAP array

    def __post_init__(self) -> None:
        for name in ("mac_pj", "operand_reg_pj", "acc_reg_pj",
                     "sram_ab_read_pj", "sram_wb_read_pj",
                     "mcu_cluster_pj_per_cycle", "dram_pj_per_byte"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.gated_mac_pj > self.mac_pj:
            raise ValueError("gated MAC cannot cost more than a fired MAC")
        if self.gated_operand_reg_pj > self.operand_reg_pj:
            raise ValueError("gated register cannot cost more than active")
        if self.gated_acc_reg_pj > self.acc_reg_pj:
            raise ValueError("gated accumulator cannot cost more than active")


DEFAULT_COSTS = CostModel()
