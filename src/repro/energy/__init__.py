"""Energy and area models.

Event-based costing: the microarchitecture models (:mod:`repro.arch`,
:mod:`repro.accel`) count hardware events; this package prices them.

- :mod:`repro.energy.tech`: technology nodes (16 nm, 65 nm, 45 nm) with
  energy/area/frequency scale factors.
- :mod:`repro.energy.costs`: per-event energy and per-structure area
  constants in 16 nm, calibrated to the paper's published breakdowns
  (Fig. 1, Table 1, Table 2 — see DESIGN.md Sec. 6).
- :mod:`repro.energy.model`: converts :class:`~repro.arch.events.EventCounts`
  into a per-component energy breakdown, and structural parameters into
  area.
"""

from repro.energy.costs import CostModel, DEFAULT_COSTS
from repro.energy.model import AreaModel, EnergyBreakdown, EnergyModel
from repro.energy.tech import TECH_NODES, TechNode, get_tech

__all__ = [
    "TechNode",
    "TECH_NODES",
    "get_tech",
    "CostModel",
    "DEFAULT_COSTS",
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
]
