"""Event-to-energy conversion and structural area model.

:class:`EnergyModel` turns an :class:`~repro.arch.events.EventCounts`
into a per-component :class:`EnergyBreakdown` using a :class:`CostModel`
and a :class:`~repro.energy.tech.TechNode`. Components follow the
paper's figures: ``datapath`` (MAC + muxes), ``buffers`` (operand/acc
registers, FIFOs, scatter accumulators), ``sram``, ``dap`` and
``actfn`` (the MCU cluster's background power times runtime).

The ``dram`` component prices off-chip traffic from the
memory-hierarchy model (:mod:`repro.arch.memory`). The paper's energy
comparisons are die-only, so ``dram`` is reported *beside* the
calibrated on-chip totals: ``total_pj`` stays on-chip (keeping every
published ratio intact) and ``total_with_dram_pj`` adds the off-chip
interface on top. DRAM energy does not scale with the logic node.

:class:`AreaModel` prices a design's structural parameters (MAC count,
per-MAC buffer bytes, SRAM capacity, MCUs, DAP) in mm².
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.events import EventCounts
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.energy.tech import TechNode, get_tech

__all__ = ["EnergyBreakdown", "EnergyModel", "AreaModel"]

COMPONENTS = ("datapath", "buffers", "sram", "dap", "actfn")


@dataclass
class EnergyBreakdown:
    """Energy per component, in picojoules."""

    datapath: float = 0.0
    buffers: float = 0.0
    sram: float = 0.0
    dap: float = 0.0
    actfn: float = 0.0
    # Off-chip DRAM interface — reported beside the on-chip total, not
    # inside it (the paper's comparisons are die-only).
    dram: float = 0.0

    @property
    def total_pj(self) -> float:
        """On-chip (die) total — the paper-calibrated quantity."""
        return self.datapath + self.buffers + self.sram + self.dap + self.actfn

    @property
    def total_with_dram_pj(self) -> float:
        """On-chip total plus the off-chip DRAM interface."""
        return self.total_pj + self.dram

    @property
    def total_uj(self) -> float:
        return self.total_pj * 1e-6

    def fractions(self) -> Dict[str, float]:
        """Per-component share of the total (Fig. 1-style breakdown)."""
        total = self.total_pj
        if total <= 0:
            return {name: 0.0 for name in COMPONENTS}
        return {name: getattr(self, name) / total for name in COMPONENTS}

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            datapath=self.datapath + other.datapath,
            buffers=self.buffers + other.buffers,
            sram=self.sram + other.sram,
            dap=self.dap + other.dap,
            actfn=self.actfn + other.actfn,
            dram=self.dram + other.dram,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            datapath=self.datapath * factor,
            buffers=self.buffers * factor,
            sram=self.sram * factor,
            dap=self.dap * factor,
            actfn=self.actfn * factor,
            dram=self.dram * factor,
        )


class EnergyModel:
    """Prices event counts at a technology node."""

    def __init__(self, tech: str = "16nm", costs: CostModel = DEFAULT_COSTS):
        self.tech: TechNode = get_tech(tech) if isinstance(tech, str) else tech
        self.costs = costs

    def breakdown(self, events: EventCounts) -> EnergyBreakdown:
        """Convert events into a per-component energy breakdown (pJ)."""
        c = self.costs
        datapath = (
            events.mac_ops * c.mac_pj
            + events.gated_mac_ops * c.gated_mac_pj
            + events.mux_ops * c.mux_pj
        )
        buffers = (
            events.operand_reg_ops * c.operand_reg_pj
            + events.gated_operand_reg_ops * c.gated_operand_reg_pj
            + events.acc_reg_ops * c.acc_reg_pj
            + events.gated_acc_reg_ops * c.gated_acc_reg_pj
            + (events.fifo_push_ops + events.fifo_pop_ops) * c.fifo_op_pj
            + events.gather_ops * c.gather_op_pj
            + events.scatter_acc_ops * c.scatter_acc_pj
        )
        sram = (
            events.sram_a_read_bytes * c.sram_ab_read_pj
            + events.sram_w_read_bytes * c.sram_wb_read_pj
            + events.sram_a_write_bytes * c.sram_ab_write_pj
        )
        dap = events.dap_compare_ops * c.dap_compare_pj
        # Off-chip traffic: per byte over the channel; the DRAM interface
        # is its own process, so no logic-node scaling.
        dram = (events.dram_read_bytes
                + events.dram_write_bytes) * c.dram_pj_per_byte
        # The MCU cluster runs for the whole layer (activation functions,
        # pooling, requant, DMA control): background power x runtime, so
        # speedup directly shrinks this component.
        actfn = events.cycles * c.mcu_cluster_pj_per_cycle
        scale = self.tech.energy_scale
        return EnergyBreakdown(
            datapath=datapath * scale,
            buffers=buffers * scale,
            sram=sram * scale,
            dap=dap * scale,
            actfn=actfn * scale,
            dram=dram,
        )

    def total_pj(self, events: EventCounts) -> float:
        return self.breakdown(events).total_pj

    def energy_per_mac_pj(self, events: EventCounts) -> float:
        """Effective energy per issued MAC slot (the paper's per-MAC metric)."""
        slots = events.total_mac_slots
        return self.breakdown(events).total_pj / slots if slots else 0.0

    def runtime_s(self, cycles: int) -> float:
        return cycles * self.tech.cycle_time_ns * 1e-9

    def average_power_w(self, events: EventCounts) -> float:
        """Average power over the run (energy / runtime)."""
        if events.cycles <= 0:
            return 0.0
        return self.total_pj(events) * 1e-12 / self.runtime_s(events.cycles)


@dataclass
class AreaModel:
    """Structural area model (fitted to Table 4 via Table 1, 16 nm).

    ``buffer_bytes_per_mac`` is the Table 1 metric: total PE-array buffer
    storage (operands + accumulators + FIFOs) per hardware MAC.
    """

    macs: int
    buffer_bytes_per_mac: float
    sram_mb: float = 2.5
    mcus: int = 4
    has_dap: bool = False
    tech: str = "16nm"
    costs: CostModel = field(default_factory=lambda: DEFAULT_COSTS)

    def __post_init__(self) -> None:
        if self.macs < 1:
            raise ValueError(f"macs must be >= 1, got {self.macs}")
        if self.buffer_bytes_per_mac < 0 or self.sram_mb < 0:
            raise ValueError("storage parameters must be non-negative")

    @property
    def pe_array_mm2(self) -> float:
        c = self.costs
        per_mac = c.mac_area_um2 + self.buffer_bytes_per_mac * c.buffer_area_um2_per_byte
        return self.macs * per_mac * 1e-6

    @property
    def sram_mm2(self) -> float:
        return self.sram_mb * self.costs.sram_area_mm2_per_mb

    @property
    def mcu_mm2(self) -> float:
        return self.mcus * self.costs.mcu_area_mm2

    @property
    def dap_mm2(self) -> float:
        return self.costs.dap_area_mm2 if self.has_dap else 0.0

    @property
    def total_mm2(self) -> float:
        node = get_tech(self.tech)
        base = self.pe_array_mm2 + self.sram_mm2 + self.mcu_mm2 + self.dap_mm2
        return base * node.area_scale

    def breakdown_mm2(self) -> Dict[str, float]:
        node = get_tech(self.tech)
        return {
            "pe_array": self.pe_array_mm2 * node.area_scale,
            "sram": self.sram_mm2 * node.area_scale,
            "mcu": self.mcu_mm2 * node.area_scale,
            "dap": self.dap_mm2 * node.area_scale,
        }
