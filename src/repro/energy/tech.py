"""Technology nodes and scaling.

The paper implements S2TA in TSMC 16 nm FinFET (1 GHz) and TSMC 65 nm
(500 MHz), and compares against SparTen's 45 nm numbers (Sec. 7).
Dynamic energy scales roughly with ``C * V^2``; the factors below follow
standard planar->FinFET scaling surveys and are *relative to 16 nm*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["TechNode", "TECH_NODES", "get_tech"]


@dataclass(frozen=True)
class TechNode:
    """One process node's scaling relative to the 16 nm baseline."""

    name: str
    energy_scale: float   # per-event dynamic energy multiplier
    area_scale: float     # per-structure area multiplier
    clock_ghz: float      # nominal accelerator clock at this node

    def __post_init__(self) -> None:
        if self.energy_scale <= 0 or self.area_scale <= 0 or self.clock_ghz <= 0:
            raise ValueError(f"scales must be positive: {self}")

    @property
    def cycle_time_ns(self) -> float:
        return 1.0 / self.clock_ghz


TECH_NODES: Dict[str, TechNode] = {
    # Baseline: the paper's 16 nm FinFET implementation at 1 GHz.
    "16nm": TechNode("16nm", energy_scale=1.0, area_scale=1.0, clock_ghz=1.0),
    # The paper's 65 nm re-implementation runs at 500 MHz; planar 65 nm
    # dynamic energy is ~6x 16 nm FinFET and density ~9x worse.
    "65nm": TechNode("65nm", energy_scale=6.0, area_scale=9.0, clock_ghz=0.5),
    # SparTen's node (used only to re-price its published design point).
    "45nm": TechNode("45nm", energy_scale=3.5, area_scale=5.0, clock_ghz=0.8),
}


def get_tech(name: str) -> TechNode:
    try:
        return TECH_NODES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology node {name!r}; available: {sorted(TECH_NODES)}"
        ) from None
