"""Dense systolic array and SA-ZVCG baselines (1x1x1_32x64).

The paper's primary baseline: a TPU-style INT8 output-stationary array
of 32x64 scalar PEs at 4 TOPS peak. ``ZvcgSA`` adds zero-value clock
gating: identical schedule (no speedup — Fig. 9a), but MAC slots,
operand-register hops and accumulator updates touching zero operands
are gated to their residual cost.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.accel.base import AcceleratorModel
from repro.arch.events import EventCounts
from repro.models.specs import LayerSpec

__all__ = ["DenseSA", "ZvcgSA"]


class DenseSA(AcceleratorModel):
    """Dense 32x64 scalar-PE systolic array (no sparsity support).

    Memory side: both operands stream uncompressed (the base class's
    dense DRAM block layout), tiled ``rows x cols`` output-stationary —
    the scalar array is the degenerate 1x1 TPE, so the effective tile
    equals the array dims.
    """

    name = "SA"
    rows = 32
    cols = 64
    hardware_macs = 2048
    buffer_bytes_per_mac = 6.0  # 2 B operands + 4 B accumulator (Table 1)

    @property
    def eff_rows(self) -> int:
        return self.rows

    @property
    def eff_cols(self) -> int:
        return self.cols

    @property
    def skew(self) -> int:
        return self.rows + self.cols - 2

    def _geometry(self, layer: LayerSpec) -> Tuple[int, int, int]:
        tiles_m = math.ceil(layer.m / self.rows)
        tiles_n = math.ceil(layer.n / self.cols)
        return tiles_m, tiles_n, tiles_m * tiles_n

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        tiles_m, tiles_n, tiles = self._geometry(layer)
        # Tiles pipeline back to back; the wavefront skew is paid once.
        compute_cycles = tiles * layer.k + self.skew
        slots = tiles * self.rows * self.cols * layer.k
        events = EventCounts()
        events.mac_ops = layer.macs
        events.gated_mac_ops = slots - layer.macs  # tile-padding slots
        events.operand_reg_ops = 2 * slots
        events.acc_reg_ops = slots
        events.sram_a_read_bytes = layer.m * layer.k * tiles_n
        events.sram_w_read_bytes = layer.k * layer.n * tiles_m
        events.sram_a_write_bytes = layer.m * layer.n
        events.mcu_elementwise_ops = layer.m * layer.n
        return compute_cycles, events

    # -------------------------------------------------------------- #
    # Functional cross-check bridge
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """The cycle simulator's config for this design point."""
        from repro.arch.systolic import Mode, SystolicConfig

        return SystolicConfig(rows=self.rows, cols=self.cols,
                              mode=Mode.DENSE)


class ZvcgSA(DenseSA):
    """SA with zero-value clock gating — energy savings, no speedup."""

    name = "SA-ZVCG"

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        compute_cycles, events = super()._layer_events(layer)
        slots = events.acc_reg_ops  # dense model issues one acc RMW per slot
        fired = round(layer.macs * layer.w_density * layer.a_density)
        events.mac_ops = fired
        events.gated_mac_ops = slots - fired
        # Operand hops gate independently per operand's density.
        a_active = round(layer.macs * layer.a_density)
        w_active = round(layer.macs * layer.w_density)
        events.operand_reg_ops = a_active + w_active
        events.gated_operand_reg_ops = 2 * slots - events.operand_reg_ops
        events.acc_reg_ops = fired
        events.gated_acc_reg_ops = slots - fired
        return compute_cycles, events

    def functional_sim_config(self):
        """The cycle simulator's config for this design point."""
        from repro.arch.systolic import Mode, SystolicConfig

        return SystolicConfig(rows=self.rows, cols=self.cols,
                              mode=Mode.ZVCG)
