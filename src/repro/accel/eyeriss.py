"""Eyeriss v2 analytical model (Chen et al., JETCAS'19).

Eyeriss v2 is a 384-MAC (INT8) row-stationary accelerator at 200 MHz in
65 nm, with CSC-compressed weights/activations and a hierarchical mesh
NoC. Like SparTen it pays gather machinery per useful pair, but with
smaller per-PE buffering (Table 1: ~205 B/MAC) and NoC traffic instead
of a monolithic scatter buffer.

Calibrated so the published comparison points hold: ~3.1x more AlexNet
energy than 65 nm S2TA-AW (Fig. 12) and ~4.7x worse MobileNet
efficiency (Sec. 8.3), with low absolute throughput (0.2 GHz, 384 MACs
-> ~0.28 kInf/s on AlexNet, Table 4).

The functional tier runs the same design point on the cycle-level CSC
row-stationary mesh (:mod:`repro.arch.eyeriss`): matched pairs, stored
bytes and the cluster/PE occupancy are *measured* on concrete operands,
and the DRAM streams derive from the measured counters through the
shared :class:`~repro.accel.fixed.FixedDataflowModel` machinery — the
cross-validation suite asserts the agreement contract.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.accel.fixed import FixedDataflowModel
from repro.arch.events import EventCounts
from repro.models.specs import LayerSpec

__all__ = ["EyerissV2"]


class EyerissV2(FixedDataflowModel):
    """Eyeriss v2 at its published design point (65 nm, 384 INT8 MACs)."""

    name = "Eyeriss-v2"
    hardware_macs = 384
    buffer_bytes_per_mac = 205.0  # Table 1
    sram_mb = 0.246  # 246 KB
    mcus = 1
    utilization = 0.7
    # CSC decode + address generation per useful pair.
    gather_steps_per_pair = 3
    # NoC hops per operand delivery (hierarchical mesh), priced as
    # operand-register events.
    noc_hops_per_operand = 6
    # CSC streams: the small 246 KB storage forces extra activation
    # refills on large layers (row-stationary tiling).
    stream_group_cols = 64
    stream_pass_cap = 6

    def __init__(self, tech: str = "65nm", **kwargs):
        super().__init__(tech=tech, **kwargs)
        # Eyeriss v2's published clock, below the node's nominal rate.
        # (The memory system builds lazily, so a dram_gbps spec converts
        # against this clock, not the node's nominal one.)
        self.clock_ghz = 0.2

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        useful = max(1, round(layer.macs * layer.w_density * layer.a_density))
        compute_cycles = math.ceil(
            useful / (self.hardware_macs * self.utilization)
        )
        events = EventCounts()
        events.mac_ops = useful
        events.gather_ops = useful * self.gather_steps_per_pair
        events.operand_reg_ops = useful * 2 * self.noc_hops_per_operand
        # Partial sums spiral through the PE cluster and the psum NoC.
        events.acc_reg_ops = useful * 2
        # CSC-compressed operands; the small (246 KB) on-chip storage
        # forces extra refills on large layers.
        n_passes = max(1, math.ceil(layer.n / self.stream_group_cols))
        a_stored = round(layer.m * layer.k * layer.a_density) + layer.m * layer.k // 8
        w_stored = round(layer.k * layer.n * layer.w_density) + layer.k * layer.n // 8
        events.sram_a_read_bytes = a_stored * min(n_passes, self.stream_pass_cap)
        events.sram_w_read_bytes = w_stored
        events.sram_a_write_bytes = layer.m * layer.n
        events.mcu_elementwise_ops = layer.m * layer.n
        return compute_cycles, events

    # -------------------------------------------------------------- #
    # Functional tier: the CSC row-stationary mesh
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """The row-stationary mesh's config for this design point."""
        from repro.arch.eyeriss import EyerissV2Config

        config = EyerissV2Config(
            gather_steps_per_pair=self.gather_steps_per_pair,
            noc_hops_per_operand=self.noc_hops_per_operand,
            pipeline_utilization=self.utilization,
            group_cols=self.stream_group_cols,
            pass_cap=self.stream_pass_cap,
        )
        # The mesh factorization (clusters x PEs x MACs) lives on the
        # engine config; a design-point change on either side that
        # breaks the cross-tier contract must fail loudly here, not
        # show up as an xval divergence later.
        if config.hardware_macs != self.hardware_macs:
            raise ValueError(
                f"engine mesh provides {config.hardware_macs} MACs but "
                f"the analytic model prices {self.hardware_macs}")
        return config

    def run_gemm_functional(self, a, w, **kwargs):
        from repro.arch.eyeriss import EyerissV2Engine

        return EyerissV2Engine(self.functional_sim_config()).run_gemm(a, w)
