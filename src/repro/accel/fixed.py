"""Shared machinery of the fixed-dataflow comparison points.

The three published non-systolic accelerators the paper compares
against — SCNN, SparTen and Eyeriss v2 — share model structure that is
orthogonal to their datapaths:

- **DRAM streams from counters.** Their sparsity-compressed operand
  streams (CSR coordinates, bitmasks, CSC columns) derive from the SRAM
  byte counters via
  :func:`repro.arch.memory.compressed_stream_traffic_from_events`, so
  the analytic tier (density closed forms) and the functional tier
  (counts measured on concrete operands) route through one derivation —
  bit-equal counters give bit-equal per-operand-class DRAM bytes, the
  same cross-validation mechanism the systolic family uses.
- **No MCU cluster.** Their published numbers include their own
  post-processing, so the S2TA background-power term is replaced with a
  per-output cost (~2 pJ/output, 16 nm-equivalent) in *both* tiers.
- **Weight streams don't subsample.** Quick-mode row subsampling
  shrinks ``m`` only; the weight operand (and its SRAM/stream bytes)
  is independent of ``m``, so the linear event extrapolation exempts
  the weight-read counter.

Each subclass supplies its dataflow constants (stream grouping,
metadata encoding) and its functional engine; the analytic event
formulas stay in the subclass modules.
"""

from __future__ import annotations

from repro.accel.base import AcceleratorModel
from repro.arch.events import EventCounts
from repro.arch.memory import (
    LayerTraffic,
    compressed_stream_traffic_from_events,
)
from repro.models.specs import LayerSpec

__all__ = ["FixedDataflowModel"]


class FixedDataflowModel(AcceleratorModel):
    """Base of the SCNN / SparTen / Eyeriss v2 comparison points."""

    #: Output-channel group width of one activation pass.
    stream_group_cols = 64
    #: Activation refill cap across output-channel groups.
    stream_pass_cap = 8
    #: True for CSR-style one-coordinate-byte-per-non-zero sideband
    #: (SCNN); False for ~1-bit-per-element occupancy masks
    #: (SparTen bitmasks, Eyeriss v2 CSC columns).
    coordinate_meta = False

    def layer_traffic(self, layer: LayerSpec, events: EventCounts
                      ) -> LayerTraffic:
        """Compressed DRAM streams derived from the (analytic or
        measured) SRAM counters — shared by both fidelity tiers."""
        return compressed_stream_traffic_from_events(
            layer, events,
            group_cols=self.stream_group_cols,
            pass_cap=self.stream_pass_cap,
            coordinate_meta=self.coordinate_meta)

    def _finalize_layer(self, layer: LayerSpec, compute_cycles: int,
                        events: EventCounts):
        """Replace the S2TA MCU-cluster background with the design's own
        per-output post-processing cost (both tiers; see module doc)."""
        result = super()._finalize_layer(layer, compute_cycles, events)
        scale = self.energy_model.tech.energy_scale
        result.breakdown.actfn = (
            result.events.mcu_elementwise_ops * 2.0 * scale
        )
        return result

    def _scale_functional_events(self, events: EventCounts,
                                 factor: float) -> EventCounts:
        """Quick-mode extrapolation: every counter scales with the
        simulated output rows except the weight stream, which these
        dataflows fetch in full regardless of ``m``."""
        scaled = events.scaled(factor)
        scaled.sram_w_read_bytes = events.sram_w_read_bytes
        return scaled
