"""SparTen analytical model (Gondimalla et al., MICRO'19).

SparTen exploits fully unstructured weight *and* activation sparsity
with bitmask-encoded vectors: inner joins of the bitmasks locate
matching non-zero pairs (prefix-sum gather), products scatter into a
large output buffer (Table 1: ~1 KB of buffering per MAC). The paper
compares against SparTen's published 45 nm design: 32 MACs at 0.8 GHz.

This is a calibrated analytical model: per *useful* MAC it charges the
gather and scatter machinery, and per stored element the bitmask scan.
The structure makes the paper's Fig. 12 shape emerge naturally: on
high-sparsity layers few useful MACs -> low energy (SparTen wins); on
dense layers useful ~ dense -> the per-pair machinery costs several
times a systolic array's per-slot cost (SparTen loses on conv1/conv2).

The functional tier runs the same design point on the cycle-level
bitmask inner-join engine (:mod:`repro.arch.sparten`): matched pairs,
stored bytes and the greedy filter schedule are *measured* on concrete
operands, and the DRAM streams derive from the measured counters
through the shared :class:`~repro.accel.fixed.FixedDataflowModel`
machinery — the cross-validation suite asserts the agreement contract.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.accel.fixed import FixedDataflowModel
from repro.arch.events import EventCounts
from repro.models.specs import LayerSpec

__all__ = ["SparTen"]


class SparTen(FixedDataflowModel):
    """SparTen at its published design point (45 nm, 32 INT8 MACs)."""

    name = "SparTen"
    hardware_macs = 32
    buffer_bytes_per_mac = 992.0  # Table 1: ~0.99 KB
    sram_mb = 0.5
    mcus = 1
    # Sustained fraction of the 32 MACs doing useful work.
    utilization = 0.65
    # Gather steps per useful pair (bitmask inner-join + prefix sums).
    gather_steps_per_pair = 3
    # Bitmask streams: the tiny PE count forces activation re-streams
    # across the output tiling — one pass per group of ``hardware_macs``
    # filters (each PE owns one filter of the group), so the stream
    # grouping is the PE count by construction.
    stream_group_cols = hardware_macs
    stream_pass_cap = 8

    def __init__(self, tech: str = "45nm", **kwargs):
        super().__init__(tech=tech, **kwargs)

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        useful = max(1, round(layer.macs * layer.w_density * layer.a_density))
        compute_cycles = math.ceil(
            useful / (self.hardware_macs * self.utilization)
        )
        events = EventCounts()
        events.mac_ops = useful
        events.gather_ops = useful * self.gather_steps_per_pair
        # Outer scatter: each product read-modify-writes the big output
        # buffer at the right (non-contiguous) offset.
        events.scatter_acc_ops = useful
        # Bitmask-compressed operand storage, scanned once per use; the
        # tiny PE count forces full re-reads across the output tiling.
        n_passes = max(1, math.ceil(layer.n / self.stream_group_cols))
        a_stored = round(layer.m * layer.k * layer.a_density) + layer.m * layer.k // 8
        w_stored = round(layer.k * layer.n * layer.w_density) + layer.k * layer.n // 8
        events.sram_a_read_bytes = a_stored * min(n_passes, self.stream_pass_cap)
        events.sram_w_read_bytes = w_stored
        events.sram_a_write_bytes = layer.m * layer.n
        events.mcu_elementwise_ops = layer.m * layer.n
        return compute_cycles, events

    # -------------------------------------------------------------- #
    # Functional tier: the bitmask inner-join engine
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """The inner-join engine's config for this design point."""
        from repro.arch.sparten import SparTenConfig

        return SparTenConfig(
            pes=self.hardware_macs,
            gather_steps_per_pair=self.gather_steps_per_pair,
            pipeline_utilization=self.utilization,
            pass_cap=self.stream_pass_cap,
        )

    def run_gemm_functional(self, a, w, **kwargs):
        from repro.arch.sparten import SparTenEngine

        return SparTenEngine(self.functional_sim_config()).run_gemm(a, w)
