"""SA-SMT: unstructured sparsity on a systolic array via staging FIFOs.

The paper's INT8 re-implementation of SMT-SA [38]. Throughput comes from
the queueing simulation in :mod:`repro.arch.smt` (memoized per density
point); the energy cost adds two FIFO events per useful MAC — the
overhead that makes SMT *less* energy-efficient than SA-ZVCG despite its
speedup (Fig. 3, Fig. 10).

Memory side: the staging FIFOs reorder work *inside* the array — the
operand streams are the dense ZVCG ones, so the DRAM traffic profile is
inherited unchanged from :class:`~repro.accel.sa.ZvcgSA`. The speedup
does lower the compute side of the roofline, which is why SMT hits the
memory wall at a higher DRAM bandwidth than the dense baseline.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.accel.sa import ZvcgSA
from repro.arch.events import EventCounts
from repro.arch.smt import SMTArrayModel
from repro.models.specs import LayerSpec

__all__ = ["SmtSA"]


class SmtSA(ZvcgSA):
    """SA-SMT with T threads and depth-Q staging FIFOs (default T2Q2)."""

    buffer_bytes_per_mac = 20.0  # Table 1: SA-SMT (T2Q2, INT8)

    def __init__(self, tech: str = "16nm", threads: int = 2,
                 fifo_depth: int = 2, **kwargs):
        super().__init__(tech=tech, **kwargs)
        self.threads = threads
        self.fifo_depth = fifo_depth
        self.name = f"SA-SMT-T{threads}Q{fifo_depth}"
        self._queue_model = SMTArrayModel(threads=threads,
                                          fifo_depth=fifo_depth)
        self._speedup_cache: Dict[Tuple[int, int], float] = {}

    def speedup_at(self, w_density: float, a_density: float) -> float:
        """Queueing-simulated speedup, cached on a 1% density grid."""
        key = (round(w_density * 100), round(a_density * 100))
        if key not in self._speedup_cache:
            speedup = self._queue_model.speedup(
                w_density, a_density, stream_length=1152,
                rng=np.random.default_rng(key[0] * 101 + key[1]),
            )
            self._speedup_cache[key] = max(1.0, speedup)
        return self._speedup_cache[key]

    def _smt_postpass(self, zvcg_cycles: int, events: EventCounts,
                      w_density: float, a_density: float) -> int:
        """Rescale ZVCG events by the queueing-simulated speedup.

        Shared by both fidelity tiers (the staging-FIFO microarchitecture
        has no systolic-schedule equivalent, so the functional tier also
        post-processes a ZVCG execution): fewer cycles mean fewer gated
        (idle) MAC/acc slots while the operand streams still carry every
        element, and every useful pair goes through the staging FIFO
        once. Mutates ``events`` and returns the rescaled cycle count.
        """
        speedup = self.speedup_at(w_density, a_density)
        compute_cycles = math.ceil(zvcg_cycles / speedup)
        slots = compute_cycles * self.rows * self.cols
        fired = events.mac_ops
        events.gated_mac_ops = max(0, slots - fired)
        events.gated_acc_reg_ops = max(0, slots - fired)
        events.fifo_push_ops = fired
        events.fifo_pop_ops = fired
        return compute_cycles

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        zvcg_cycles, events = super()._layer_events(layer)
        compute_cycles = self._smt_postpass(
            zvcg_cycles, events, layer.w_density, layer.a_density)
        return compute_cycles, events

    # -------------------------------------------------------------- #
    # Functional cross-check bridge
    # -------------------------------------------------------------- #

    def run_gemm_functional(self, a, w, **kwargs):
        """ZVCG functional execution plus the SMT queueing post-pass.

        Exactly like the analytic model, the concrete GEMM executes on
        the ZVCG simulator and ``_smt_postpass`` rescales the result —
        here at the operands' *measured* densities.
        """
        from repro.core.sparsity import density

        result = super().run_gemm_functional(a, w, **kwargs)
        cycles = self._smt_postpass(
            result.cycles, result.events, density(w), density(a))
        result.events.cycles = cycles
        result.cycles = cycles
        return result
