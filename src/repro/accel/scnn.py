"""SCNN analytical model (Parashar et al., ISCA'17).

SCNN is the canonical *result-scatter* (outer-product) unstructured
sparse CNN accelerator (Fig. 2b): every non-zero weight multiplies
every non-zero activation of a tile, and partial products route through
a crossbar into a large distributed accumulator buffer — Table 1's
1.65 KB of buffering per MAC, the highest of any design the paper
quotes. The paper compares against SparTen (which supersedes SCNN) in
the evaluation; SCNN is modelled here to complete Table 1/Table 5 and
the scatter-overhead analysis of Sec. 2.3.

Published design point: 64 PEs x 16 multipliers = 1024 MACs in 16 nm at
1 GHz (original paper); the scatter crossbar and accumulator RMWs are
charged per product.

The functional tier runs the same design point on the cycle-level
Cartesian-product engine (:mod:`repro.arch.scnn`): products, stored
bytes and the per-PE multiplier issue slots are *measured* on concrete
operands, and the DRAM streams derive from the measured counters
through the shared :class:`~repro.accel.fixed.FixedDataflowModel`
machinery. Note the cycle models *diverge by design* on small feature
maps: the analytic tier assumes a flat sustained utilization while the
engine's 4x4 multiplier quantization measures SCNN's published
small-feature-map fragmentation (the cross-validation artifact reports
the divergence; the energy/fired/DRAM contract still holds).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.accel.fixed import FixedDataflowModel
from repro.arch.events import EventCounts
from repro.models.specs import LayerSpec

__all__ = ["SCNN"]


class SCNN(FixedDataflowModel):
    """SCNN at its published design point (16 nm, 1024 INT16->INT8 MACs)."""

    name = "SCNN"
    hardware_macs = 1024
    buffer_bytes_per_mac = 1650.0  # Table 1
    sram_mb = 1.0
    mcus = 1
    utilization = 0.6
    # Crossbar traversal + distributed accumulator RMW per product; the
    # 1.65 KB/MAC buffer hierarchy costs more per access than SparTen's
    # (which the paper credits with "superior results to SCNN").
    scatter_ops_per_product = 3
    # CSR-style streams: 1 coordinate byte per stored non-zero (the
    # DBB-metadata analogue); activations re-stream per output-channel
    # group when they do not stay resident.
    stream_group_cols = 64
    stream_pass_cap = 8
    coordinate_meta = True

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        useful = max(1, round(layer.macs * layer.w_density * layer.a_density))
        compute_cycles = math.ceil(
            useful / (self.hardware_macs * self.utilization)
        )
        events = EventCounts()
        events.mac_ops = useful
        # Outer product needs no operand gather, but every product pays
        # the crossbar + distributed-accumulator read-modify-write.
        events.scatter_acc_ops = useful * self.scatter_ops_per_product
        a_stored = round(layer.m * layer.k * layer.a_density) * 2  # CSR idx
        w_stored = round(layer.k * layer.n * layer.w_density) * 2
        n_passes = max(1, math.ceil(layer.n / self.stream_group_cols))
        events.sram_a_read_bytes = a_stored * min(n_passes, self.stream_pass_cap)
        events.sram_w_read_bytes = w_stored
        events.sram_a_write_bytes = layer.m * layer.n
        events.mcu_elementwise_ops = layer.m * layer.n
        return compute_cycles, events

    # -------------------------------------------------------------- #
    # Functional tier: the Cartesian-product engine
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """The Cartesian-product engine's config for this design point."""
        from repro.arch.scnn import SCNNConfig

        config = SCNNConfig(
            scatter_ops_per_product=self.scatter_ops_per_product,
            group_cols=self.stream_group_cols,
            pass_cap=self.stream_pass_cap,
        )
        # PE-grid factorization (PEs x I x F) lives on the engine
        # config; keep it in lockstep with the analytic MAC count.
        if config.hardware_macs != self.hardware_macs:
            raise ValueError(
                f"engine grid provides {config.hardware_macs} MACs but "
                f"the analytic model prices {self.hardware_macs}")
        return config

    def run_gemm_functional(self, a, w, **kwargs):
        from repro.arch.scnn import SCNNEngine

        return SCNNEngine(self.functional_sim_config()).run_gemm(a, w)
