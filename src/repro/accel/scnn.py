"""SCNN analytical model (Parashar et al., ISCA'17).

SCNN is the canonical *result-scatter* (outer-product) unstructured
sparse CNN accelerator (Fig. 2b): every non-zero weight multiplies
every non-zero activation of a tile, and partial products route through
a crossbar into a large distributed accumulator buffer — Table 1's
1.65 KB of buffering per MAC, the highest of any design the paper
quotes. The paper compares against SparTen (which supersedes SCNN) in
the evaluation; SCNN is modelled here to complete Table 1/Table 5 and
the scatter-overhead analysis of Sec. 2.3.

Published design point: 64 PEs x 16 multipliers = 1024 MACs in 16 nm at
1 GHz (original paper); the scatter crossbar and accumulator RMWs are
charged per product.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.accel.base import AcceleratorModel
from repro.arch.events import EventCounts
from repro.arch.memory import LayerTraffic, compressed_stream_traffic
from repro.models.specs import LayerSpec

__all__ = ["SCNN"]


class SCNN(AcceleratorModel):
    """SCNN at its published design point (16 nm, 1024 INT16->INT8 MACs)."""

    name = "SCNN"
    hardware_macs = 1024
    buffer_bytes_per_mac = 1650.0  # Table 1
    sram_mb = 1.0
    mcus = 1
    utilization = 0.6
    # Crossbar traversal + distributed accumulator RMW per product; the
    # 1.65 KB/MAC buffer hierarchy costs more per access than SparTen's
    # (which the paper credits with "superior results to SCNN").
    scatter_ops_per_product = 3

    def layer_traffic(self, layer: LayerSpec, events: EventCounts
                      ) -> LayerTraffic:
        """CSR-style compressed streams: 1 coordinate byte per stored
        non-zero (the DBB-metadata analogue). The planar dataflow is not
        output-stationary-tiled, so the closed form replaces the base
        derivation; activations re-stream per output-channel group when
        they do not stay resident."""
        return compressed_stream_traffic(layer, group_cols=64, pass_cap=8,
                                         coordinate_meta=True)

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        useful = max(1, round(layer.macs * layer.w_density * layer.a_density))
        compute_cycles = math.ceil(
            useful / (self.hardware_macs * self.utilization)
        )
        events = EventCounts()
        events.mac_ops = useful
        # Outer product needs no operand gather, but every product pays
        # the crossbar + distributed-accumulator read-modify-write.
        events.scatter_acc_ops = useful * self.scatter_ops_per_product
        a_stored = round(layer.m * layer.k * layer.a_density) * 2  # CSR idx
        w_stored = round(layer.k * layer.n * layer.w_density) * 2
        n_passes = max(1, math.ceil(layer.n / 64))
        events.sram_a_read_bytes = a_stored * min(n_passes, 8)
        events.sram_w_read_bytes = w_stored
        events.sram_a_write_bytes = layer.m * layer.n
        events.mcu_elementwise_ops = layer.m * layer.n
        return compute_cycles, events

    def run_layer(self, layer: LayerSpec):
        result = super().run_layer(layer)
        # No M33 cluster; fold post-processing per output as published.
        scale = self.energy_model.tech.energy_scale
        result.breakdown.actfn = (
            result.events.mcu_elementwise_ops * 2.0 * scale
        )
        return result
