"""Accelerator PPA models.

Analytic (closed-form) models of every accelerator the paper evaluates,
operating on :class:`~repro.models.specs.LayerSpec` workloads. Event
formulas mirror the cycle-level simulator in :mod:`repro.arch.systolic`
(validated against it in the test suite) but are parameterized by layer
densities instead of concrete tensors, so whole ImageNet networks cost
microseconds to evaluate.

Models:

- :class:`~repro.accel.sa.DenseSA` / :class:`~repro.accel.sa.ZvcgSA` —
  the classic 32x64 scalar systolic array, without/with zero-value clock
  gating (1x1x1_32x64 in the paper's notation).
- :class:`~repro.accel.smt.SmtSA` — SA-SMT (T2Q2/T2Q4) with the staging
  FIFO queueing model.
- :class:`~repro.accel.s2ta.S2TAW` — S2TA-W, 4x8x4_4x8 DP4M8 TPE array
  (W-DBB only; the A100-featured baseline).
- :class:`~repro.accel.s2ta.S2TAAW` — S2TA-AW, the time-unrolled
  8x4x4_8x8 DP1M4 TPE array (joint A/W-DBB; the paper's design point).
- :class:`~repro.accel.sparten.SparTen` and
  :class:`~repro.accel.eyeriss.EyerissV2` — calibrated analytical models
  of the published non-systolic unstructured-sparse accelerators.
"""

from repro.accel.base import AcceleratorModel, AccelRunResult, LayerResult
from repro.accel.eyeriss import EyerissV2
from repro.accel.fixed import FixedDataflowModel
from repro.accel.s2ta import S2TAW, S2TAAW, S2TAWA
from repro.accel.sa import DenseSA, ZvcgSA
from repro.accel.scnn import SCNN
from repro.accel.smt import SmtSA
from repro.accel.sparten import SparTen
from repro.accel.tiling import TilingAnalysis, analyze_layer, analyze_model

__all__ = [
    "AcceleratorModel",
    "AccelRunResult",
    "LayerResult",
    "FixedDataflowModel",
    "DenseSA",
    "ZvcgSA",
    "SmtSA",
    "S2TAW",
    "S2TAAW",
    "S2TAWA",
    "SCNN",
    "SparTen",
    "EyerissV2",
    "TilingAnalysis",
    "analyze_layer",
    "analyze_model",
]
