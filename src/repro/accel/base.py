"""Common accelerator-model machinery.

An :class:`AcceleratorModel` prices one :class:`LayerSpec` at a time in
either of two fidelity tiers:

- **Analytic fast path** (:meth:`AcceleratorModel.run_model`): the
  subclass provides closed-form compute cycles and hardware events from
  the layer's density parameters (:meth:`AcceleratorModel._layer_events`)
  — no tensor is ever executed. This is what the experiment runners use
  by default; it prices a whole ImageNet network in milliseconds.
- **Functional ground truth** (:meth:`AcceleratorModel.run_model_functional`):
  concrete INT8 operands are synthesized at the layer's real GEMM shape
  (:mod:`repro.workloads.from_spec`) and executed on the cycle-level
  simulator (:mod:`repro.arch.systolic`) via the subclass's
  :meth:`AcceleratorModel.functional_sim_config` hook; the *measured*
  event counts price through the same energy model, making the two tiers
  directly comparable (see ``tests/test_cross_validation.py`` and
  ``benchmarks/bench_functional_vs_analytic.py`` for the agreement
  contract: SRAM bytes and MAC slots exact, fired MACs and energy within
  a few percent).

In both tiers the base class applies the memory-bound cap for
FC/depthwise layers (Sec. 8.3), prices events through the
:class:`~repro.energy.model.EnergyModel`, and aggregates whole-network
runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.arch.events import EventCounts
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.energy.model import AreaModel, EnergyBreakdown, EnergyModel
from repro.energy.tech import get_tech
from repro.models.specs import BLOCK_SIZE, LayerSpec, ModelSpec

__all__ = ["LayerResult", "AccelRunResult", "AcceleratorModel"]

# Software-managed SRAM fill bandwidth available to stream operands that
# do not fit on chip (weights of FC layers, mainly). Bytes per cycle.
DMA_BYTES_PER_CYCLE = 32


@dataclass
class LayerResult:
    """PPA of one layer on one accelerator."""

    layer: LayerSpec
    compute_cycles: int
    memory_cycles: int
    events: EventCounts
    breakdown: EnergyBreakdown

    @property
    def cycles(self) -> int:
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles

    @property
    def energy_pj(self) -> float:
        return self.breakdown.total_pj

    @property
    def energy_uj(self) -> float:
        return self.breakdown.total_uj


@dataclass
class AccelRunResult:
    """PPA of a whole network on one accelerator."""

    accelerator: str
    model: str
    tech: str
    clock_ghz: float
    layer_results: List[LayerResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.layer_results)

    @property
    def breakdown(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for r in self.layer_results:
            total = total + r.breakdown
        return total

    @property
    def energy_uj(self) -> float:
        return self.breakdown.total_uj

    @property
    def runtime_s(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9)

    @property
    def inferences_per_second(self) -> float:
        runtime = self.runtime_s
        return 1.0 / runtime if runtime > 0 else 0.0

    @property
    def inferences_per_joule(self) -> float:
        energy_j = self.energy_uj * 1e-6
        return 1.0 / energy_j if energy_j > 0 else 0.0

    @property
    def effective_tops(self) -> float:
        """Dense-equivalent throughput: 2 ops per dense MAC over runtime."""
        ops = 2.0 * sum(r.layer.macs for r in self.layer_results)
        runtime = self.runtime_s
        return ops / runtime / 1e12 if runtime > 0 else 0.0

    @property
    def effective_tops_per_watt(self) -> float:
        energy_j = self.energy_uj * 1e-6
        ops = 2.0 * sum(r.layer.macs for r in self.layer_results)
        return ops / energy_j / 1e12 if energy_j > 0 else 0.0

    def layer(self, name: str) -> LayerResult:
        for r in self.layer_results:
            if r.layer.name == name:
                return r
        raise KeyError(f"no layer {name!r} in run")


class AcceleratorModel:
    """Base class: subclasses implement ``_layer_events``."""

    name = "accelerator"
    hardware_macs = 2048
    buffer_bytes_per_mac = 6.0  # Table 1 (scalar SA default)
    sram_mb = 2.5
    mcus = 4
    has_dap = False

    def __init__(self, tech: str = "16nm", costs: CostModel = DEFAULT_COSTS):
        self.tech = tech
        self.costs = costs
        self.energy_model = EnergyModel(tech=tech, costs=costs)
        self.clock_ghz = get_tech(tech).clock_ghz

    # -------------------------------------------------------------- #

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        """Return (compute_cycles, events) for one layer. Subclass hook."""
        raise NotImplementedError

    def _memory_cycles(self, layer: LayerSpec) -> int:
        """Operand streaming floor for memory-bound layer kinds.

        Inference (batch 1) gives FC weights zero reuse and depthwise
        layers almost no reduction, so the DMA/SRAM fill bandwidth caps
        throughput identically across all SA variants (Sec. 8.3).
        """
        if not layer.memory_bound:
            return 0
        stream_bytes = self._weight_stream_bytes(layer) + layer.m * layer.k
        return math.ceil(stream_bytes / DMA_BYTES_PER_CYCLE)

    def _weight_stream_bytes(self, layer: LayerSpec) -> int:
        """Weight bytes streamed once (dense by default; DBB overrides)."""
        return layer.weight_bytes

    # -------------------------------------------------------------- #

    def run_layer(self, layer: LayerSpec) -> LayerResult:
        compute_cycles, events = self._layer_events(layer)
        memory_cycles = self._memory_cycles(layer)
        # The MCU-cluster background burns for the full (possibly
        # memory-stalled) duration.
        events.cycles = max(compute_cycles, memory_cycles)
        breakdown = self.energy_model.breakdown(events)
        return LayerResult(
            layer=layer,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            events=events,
            breakdown=breakdown,
        )

    def run_model(self, spec: ModelSpec, conv_only: bool = False
                  ) -> AccelRunResult:
        layers = spec.conv_layers if conv_only else spec.layers
        result = AccelRunResult(
            accelerator=self.name,
            model=spec.name,
            tech=self.tech,
            clock_ghz=self.clock_ghz,
        )
        for layer in layers:
            result.layer_results.append(self.run_layer(layer))
        return result

    # -------------------------------------------------------------- #
    # Functional tier: synthesized operands on the cycle simulator
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """Cycle-simulator config for this design point. Subclass hook;
        accelerators without a systolic functional model (e.g. the
        outer-product comparison points) leave it unimplemented."""
        raise NotImplementedError(
            f"{type(self).__name__} has no functional simulator")

    @property
    def supports_functional(self) -> bool:
        """True when this model can run the functional tier."""
        try:
            self.functional_sim_config()
        except NotImplementedError:
            return False
        return True

    def _functional_gemm_kwargs(self, layer: LayerSpec) -> dict:
        """Per-layer ``run_gemm`` knobs (A-DBB density, dense fallback)."""
        return {}

    def run_gemm_functional(self, a, w, **kwargs):
        """Run one concrete GEMM on the functional/cycle simulator.

        The simulator compresses any compressed-weight operand through the
        shared :func:`repro.core.gemm.compress_cached` memo, so sweeping
        the same workload across variants and density points compresses
        each weight tensor exactly once.
        """
        from repro.arch.systolic import SystolicArray

        return SystolicArray(self.functional_sim_config()).run_gemm(
            a, w, **kwargs)

    def run_layer_functional(
        self,
        layer: LayerSpec,
        seed: int = 0,
        max_m: Optional[int] = None,
        cache=None,
    ) -> LayerResult:
        """Execute one layer's GEMM on synthesized operands.

        Operands come from the shared byte-budget memo in
        :mod:`repro.workloads.from_spec` (one synthesis per layer shape /
        density / seed across an accelerator sweep). ``max_m`` caps the
        simulated output-pixel rows and linearly extrapolates the
        measured events back to the full layer — the ``quick`` CI mode of
        the full-model experiments; leave ``None`` for exact runs.
        """
        from repro.workloads.from_spec import operands_for_layer

        sub = layer
        if max_m is not None and layer.m > max_m:
            sub = replace(layer, m=max_m)
        a, w = operands_for_layer(sub, seed=seed, cache=cache)
        sim = self.run_gemm_functional(
            a, w, **self._functional_gemm_kwargs(layer))
        events = sim.events
        compute_cycles = sim.cycles
        if sub is not layer:
            factor = layer.m / sub.m
            events = events.scaled(factor)
            compute_cycles = int(round(compute_cycles * factor))
        memory_cycles = self._memory_cycles(layer)
        events.cycles = max(compute_cycles, memory_cycles)
        breakdown = self.energy_model.breakdown(events)
        return LayerResult(
            layer=layer,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            events=events,
            breakdown=breakdown,
        )

    def run_model_functional(
        self,
        spec: ModelSpec,
        conv_only: bool = False,
        seed: int = 0,
        max_m: Optional[int] = None,
        cache=None,
    ) -> AccelRunResult:
        """Functional-tier counterpart of :meth:`run_model`.

        Every selected layer synthesizes real INT8 operands and executes
        on the cycle simulator; results aggregate exactly like the
        analytic path, so ``run_model`` and ``run_model_functional`` are
        directly comparable run for run.
        """
        layers = spec.conv_layers if conv_only else spec.layers
        result = AccelRunResult(
            accelerator=self.name,
            model=spec.name,
            tech=self.tech,
            clock_ghz=self.clock_ghz,
        )
        for layer in layers:
            result.layer_results.append(self.run_layer_functional(
                layer, seed=seed, max_m=max_m, cache=cache))
        return result

    # -------------------------------------------------------------- #

    def area_mm2(self) -> float:
        return self._area_model().total_mm2

    def area_breakdown_mm2(self) -> dict:
        return self._area_model().breakdown_mm2()

    def _area_model(self) -> AreaModel:
        return AreaModel(
            macs=self.hardware_macs,
            buffer_bytes_per_mac=self.buffer_bytes_per_mac,
            sram_mb=self.sram_mb,
            mcus=self.mcus,
            has_dap=self.has_dap,
            tech=self.tech,
            costs=self.costs,
        )

    # -------------------------------------------------------------- #

    def microbench_layer(
        self,
        w_density: float,
        a_density: float,
        w_nnz: Optional[int] = None,
        a_nnz: Optional[int] = None,
        m: int = 1024,
        k: int = 1152,
        n: int = 256,
    ) -> LayerResult:
        """Run the Sec. 8.2 synthetic conv layer at given sparsity."""
        from repro.models.specs import LayerKind

        layer = LayerSpec(
            "microbench",
            LayerKind.CONV,
            m=m, k=k, n=n,
            w_nnz=w_nnz if w_nnz is not None
            else max(1, round(w_density * BLOCK_SIZE)),
            a_nnz=a_nnz if a_nnz is not None
            else max(1, round(a_density * BLOCK_SIZE)),
            weight_density=w_density,
            act_density=a_density,
        )
        return self.run_layer(layer)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tech={self.tech!r})"
