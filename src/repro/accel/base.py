"""Common accelerator-model machinery.

An :class:`AcceleratorModel` prices one :class:`LayerSpec` at a time in
either of two fidelity tiers:

- **Analytic fast path** (:meth:`AcceleratorModel.run_model`): the
  subclass provides closed-form compute cycles and hardware events from
  the layer's density parameters (:meth:`AcceleratorModel._layer_events`)
  — no tensor is ever executed. This is what the experiment runners use
  by default; it prices a whole ImageNet network in milliseconds.
- **Functional ground truth** (:meth:`AcceleratorModel.run_model_functional`):
  concrete INT8 operands are synthesized at the layer's real GEMM shape
  (:mod:`repro.workloads.from_spec`) and executed on the cycle-level
  simulator (:mod:`repro.arch.systolic`) via the subclass's
  :meth:`AcceleratorModel.functional_sim_config` hook; the *measured*
  event counts price through the same energy model, making the two tiers
  directly comparable (see ``tests/test_cross_validation.py`` and
  ``benchmarks/bench_functional_vs_analytic.py`` for the agreement
  contract: SRAM bytes and MAC slots exact, fired MACs and energy within
  a few percent).

In both tiers the base class runs the layer through the
memory-hierarchy model (:mod:`repro.arch.memory`): every layer gets an
exact per-operand-class DRAM profile and a fill-bandwidth bound, and
``cycles = max(compute, memory)``. At the default channel (32 B/cycle,
no row stalls) this reproduces the old flat DMA cap as a special case —
conv layers stay compute bound and FC/depthwise layers hit the Sec. 8.3
streaming floor — while making DRAM bandwidth a sweepable axis. Events
price through the :class:`~repro.energy.model.EnergyModel` (off-chip
bytes as the separate ``dram`` component) and aggregate into
whole-network runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.arch.events import EventCounts
from repro.arch.memory import (
    DRAMConfig,
    LayerMemoryProfile,
    LayerTraffic,
    MemorySystem,
    OperandStream,
    SRAMStaging,
    window_duplication,
)
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.energy.model import AreaModel, EnergyBreakdown, EnergyModel
from repro.energy.tech import get_tech
from repro.models.specs import BLOCK_SIZE, LayerSpec, ModelSpec
from repro.obs import trace as obs_trace

__all__ = ["LayerResult", "AccelRunResult", "AcceleratorModel"]


@dataclass
class LayerResult:
    """PPA of one layer on one accelerator."""

    layer: LayerSpec
    compute_cycles: int
    memory_cycles: int
    events: EventCounts
    breakdown: EnergyBreakdown
    memory: Optional[LayerMemoryProfile] = None

    @property
    def cycles(self) -> int:
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles

    @property
    def energy_pj(self) -> float:
        return self.breakdown.total_pj

    @property
    def energy_uj(self) -> float:
        return self.breakdown.total_uj


@dataclass
class AccelRunResult:
    """PPA of a whole network on one accelerator."""

    accelerator: str
    model: str
    tech: str
    clock_ghz: float
    layer_results: List[LayerResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.layer_results)

    @property
    def breakdown(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for r in self.layer_results:
            total = total + r.breakdown
        return total

    @property
    def energy_uj(self) -> float:
        return self.breakdown.total_uj

    @property
    def runtime_s(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9)

    @property
    def inferences_per_second(self) -> float:
        runtime = self.runtime_s
        return 1.0 / runtime if runtime > 0 else 0.0

    @property
    def inferences_per_joule(self) -> float:
        energy_j = self.energy_uj * 1e-6
        return 1.0 / energy_j if energy_j > 0 else 0.0

    @property
    def effective_tops(self) -> float:
        """Dense-equivalent throughput: 2 ops per dense MAC over runtime."""
        ops = 2.0 * sum(r.layer.macs for r in self.layer_results)
        runtime = self.runtime_s
        return ops / runtime / 1e12 if runtime > 0 else 0.0

    @property
    def effective_tops_per_watt(self) -> float:
        energy_j = self.energy_uj * 1e-6
        ops = 2.0 * sum(r.layer.macs for r in self.layer_results)
        return ops / energy_j / 1e12 if energy_j > 0 else 0.0

    def layer(self, name: str) -> LayerResult:
        for r in self.layer_results:
            if r.layer.name == name:
                return r
        raise KeyError(f"no layer {name!r} in run")


class AcceleratorModel:
    """Base class: subclasses implement ``_layer_events``."""

    name = "accelerator"
    hardware_macs = 2048
    buffer_bytes_per_mac = 6.0  # Table 1 (scalar SA default)
    sram_mb = 2.5
    mcus = 4
    has_dap = False
    #: Staging-buffer split of ``sram_mb`` (S2TA: 512 KB WB + 2 MB AB,
    #: Sec. 6.3 — a 0.2 / 0.8 split the other designs inherit pro rata).
    wb_fraction = 0.2

    def __init__(self, tech: str = "16nm", costs: CostModel = DEFAULT_COSTS,
                 dram: Optional[DRAMConfig] = None,
                 dram_gbps: Optional[float] = None):
        self.tech = tech
        self.costs = costs
        self.energy_model = EnergyModel(tech=tech, costs=costs)
        self.clock_ghz = get_tech(tech).clock_ghz
        if dram is not None and dram_gbps is not None:
            raise ValueError("pass either dram= or dram_gbps=, not both")
        self._dram = dram
        self._dram_gbps = dram_gbps
        self._memory: Optional[MemorySystem] = None

    # -------------------------------------------------------------- #

    @property
    def memory(self) -> MemorySystem:
        """The memory hierarchy at this design point.

        Built lazily so ``dram_gbps`` converts against the accelerator's
        *final* clock (some models override the node's nominal clock
        after construction, e.g. Eyeriss v2's 200 MHz).
        """
        if self._memory is None:
            dram = self._dram
            if dram is None:
                if self._dram_gbps is not None:
                    dram = DRAMConfig.from_bandwidth(self._dram_gbps,
                                                     self.clock_ghz)
                else:
                    dram = DRAMConfig()
            sram_bytes = int(self.sram_mb * 1024 * 1024)
            wb = max(1, int(sram_bytes * self.wb_fraction))
            self._memory = MemorySystem(
                dram=dram,
                sram=SRAMStaging(wb_bytes=wb, ab_bytes=sram_bytes - wb),
            )
        return self._memory

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        """Return (compute_cycles, events) for one layer. Subclass hook."""
        raise NotImplementedError

    # -------------------------------------------------------------- #
    # Memory-hierarchy bridge (shared by both fidelity tiers)
    # -------------------------------------------------------------- #

    def _tile_geometry(self, layer: LayerSpec) -> Tuple[int, int]:
        """Output-stationary tile counts ``(tiles_m, tiles_n)``.

        Systolic models expose ``eff_rows``/``eff_cols`` (scalar arrays:
        the array dims; TPE arrays: dims times the TPE outer product).
        Models without an output-stationary tiling (the outer-product
        comparison points) fall back to a single tile — they override
        :meth:`layer_traffic` wholesale anyway.
        """
        rows = getattr(self, "eff_rows", None)
        cols = getattr(self, "eff_cols", None)
        if rows and cols:
            return math.ceil(layer.m / rows), math.ceil(layer.n / cols)
        return 1, 1

    def _dram_block_layout(
        self, layer: LayerSpec,
    ) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Per-block ``(payload, mask)`` byte layout of (weights, acts).

        Splits each operand's DRAM stream into data versus DBB-metadata
        bytes; dense operands carry no sideband.
        """
        return (BLOCK_SIZE, 0), (BLOCK_SIZE, 0)

    def layer_traffic(self, layer: LayerSpec,
                      events: EventCounts) -> LayerTraffic:
        """One layer's DRAM streams, derived from its SRAM traffic.

        Both fidelity tiers route through this: the analytic tier passes
        its closed-form event counts, the functional tier the *measured*
        ones — and because the per-pass SRAM byte counters are exact
        across tiers (the cross-validation contract), the DRAM bytes are
        exact across tiers too. The activation stream divides by the
        im2col window duplication (DRAM holds the compact feature map;
        the AB address generators expand it on the fly).
        """
        tiles_m, tiles_n = self._tile_geometry(layer)
        w_pass = events.sram_w_read_bytes // tiles_m
        a_pass = -(-events.sram_a_read_bytes // tiles_n
                   // window_duplication(layer))
        (w_pay, w_mask), (a_pay, a_mask) = self._dram_block_layout(layer)
        w_meta = (w_pass * w_mask) // (w_pay + w_mask)
        a_meta = (a_pass * a_mask) // (a_pay + a_mask)
        return LayerTraffic(
            weights=OperandStream(w_pass - w_meta, w_meta, passes=tiles_m),
            acts=OperandStream(a_pass - a_meta, a_meta, passes=tiles_n),
            out_bytes=layer.m * layer.n,
            tiles_m=tiles_m,
            tiles_n=tiles_n,
            # Output-stationary: partial sums live in the PE accumulators
            # while operands *stream* through the staging halves, so the
            # reduction never splits along K and no psums spill (the
            # psum traffic class stays available for other dataflows).
            k_strip_bytes=0,
        )

    def _finalize_layer(self, layer: LayerSpec, compute_cycles: int,
                        events: EventCounts) -> LayerResult:
        """Shared tail of both tiers: memory profile, cap, pricing."""
        with obs_trace.span(layer.name, "finalize", accel=self.name):
            return self._finalize_layer_body(layer, compute_cycles,
                                             events)

    def _finalize_layer_body(self, layer: LayerSpec, compute_cycles: int,
                             events: EventCounts) -> LayerResult:
        profile = self.memory.profile(
            self.layer_traffic(layer, events), compute_cycles,
            name=layer.name)
        # The enforced cap: under the paper's evaluation semantics
        # (``cap_streaming_only``, the default) conv layers are assumed
        # staged ahead of compute and only the Sec. 8.3 zero-reuse
        # streams (FC weights, depthwise windows) hit the fill wall —
        # the old flat DMA cap as a special case. The profile always
        # carries the honest fill time for the roofline artifacts.
        if self.memory.dram.cap_streaming_only and not layer.memory_bound:
            memory_cycles = 0
        else:
            memory_cycles = profile.memory_cycles
        # The MCU-cluster background burns for the full (possibly
        # memory-stalled) duration.
        events.cycles = max(compute_cycles, memory_cycles)
        events.dram_read_bytes = profile.dram_read_bytes
        events.dram_write_bytes = profile.dram_write_bytes
        breakdown = self.energy_model.breakdown(events)
        return LayerResult(
            layer=layer,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            events=events,
            breakdown=breakdown,
            memory=profile,
        )

    # -------------------------------------------------------------- #

    def run_layer(self, layer: LayerSpec) -> LayerResult:
        compute_cycles, events = self._layer_events(layer)
        return self._finalize_layer(layer, compute_cycles, events)

    def run_model(self, spec: ModelSpec, conv_only: bool = False
                  ) -> AccelRunResult:
        layers = spec.conv_layers if conv_only else spec.layers
        result = AccelRunResult(
            accelerator=self.name,
            model=spec.name,
            tech=self.tech,
            clock_ghz=self.clock_ghz,
        )
        for layer in layers:
            result.layer_results.append(self.run_layer(layer))
        return result

    # -------------------------------------------------------------- #
    # Functional tier: synthesized operands on the cycle simulator
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """Cycle-simulator config for this design point. Subclass hook:
        the systolic family returns a
        :class:`~repro.arch.systolic.SystolicConfig`, the fixed-dataflow
        comparison points their own engine configs (and override
        :meth:`run_gemm_functional` to build the matching engine)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no functional simulator")

    @property
    def supports_functional(self) -> bool:
        """True when this model can run the functional tier."""
        try:
            self.functional_sim_config()
        except NotImplementedError:
            return False
        return True

    def _functional_gemm_kwargs(self, layer: LayerSpec) -> dict:
        """Per-layer ``run_gemm`` knobs (A-DBB density, dense fallback)."""
        return {}

    def _scale_functional_events(self, events: EventCounts,
                                 factor: float) -> EventCounts:
        """Extrapolate quick-mode (row-subsampled) events back to the
        full layer. The default scales every counter linearly; models
        whose weight streams are independent of the output-row count
        (the fixed-dataflow comparison points) override this to exempt
        the weight-side counters."""
        return events.scaled(factor)

    def run_gemm_functional(self, a, w, **kwargs):
        """Run one concrete GEMM on the functional/cycle simulator.

        The simulator compresses any compressed-weight operand through the
        shared :func:`repro.core.gemm.compress_cached` memo, so sweeping
        the same workload across variants and density points compresses
        each weight tensor exactly once.
        """
        from repro.arch.systolic import SystolicArray

        return SystolicArray(self.functional_sim_config()).run_gemm(
            a, w, **kwargs)

    def simulate_layer_functional(
        self,
        layer: LayerSpec,
        seed: int = 0,
        max_m: Optional[int] = None,
        cache=None,
    ) -> Tuple[int, EventCounts]:
        """Measured ``(compute_cycles, events)`` of one layer's GEMM on
        synthesized operands — the pre-finalization simulation payload.

        This is the unit of work the parallel runner
        (:mod:`repro.eval.runner`) fans out over worker processes and
        the result cache (:mod:`repro.eval.resultcache`) memoizes: it
        is a pure function of (layer spec, accelerator config, seed,
        ``max_m``), independent of which process runs it. Operands come
        from the byte-budget memo in :mod:`repro.workloads.from_spec`
        (one synthesis per layer shape / density / seed across an
        accelerator sweep). ``max_m`` caps the simulated output-pixel
        rows and linearly extrapolates the measured events back to the
        full layer — the ``quick`` CI mode of the full-model
        experiments; leave ``None`` for exact runs.
        """
        from repro.workloads.from_spec import operands_for_layer

        sub = layer
        if max_m is not None and layer.m > max_m:
            sub = replace(layer, m=max_m)
        a, w = operands_for_layer(sub, seed=seed, cache=cache)
        with obs_trace.span(layer.name, "simulate", accel=self.name):
            sim = self.run_gemm_functional(
                a, w, **self._functional_gemm_kwargs(layer))
        events = sim.events
        compute_cycles = sim.cycles
        if sub is not layer:
            factor = layer.m / sub.m
            events = self._scale_functional_events(events, factor)
            compute_cycles = int(round(compute_cycles * factor))
        return compute_cycles, events

    def run_layer_functional(
        self,
        layer: LayerSpec,
        seed: int = 0,
        max_m: Optional[int] = None,
        cache=None,
        result_cache=None,
    ) -> LayerResult:
        """Execute one layer's GEMM on synthesized operands.

        ``result_cache`` (a :class:`repro.eval.resultcache.ResultCache`)
        memoizes the simulation payload on disk; finalization always
        re-runs, so a cache hit is bit-equal to a cold simulation.

        The measured events feed the same memory model as the analytic
        tier; on exact runs (max_m=None) the per-pass SRAM counters are
        bit-equal across tiers, so the DRAM bytes cross-validate
        exactly (asserted in tests/test_cross_validation.py). Quick
        runs extrapolate the counters linearly, so their DRAM profile
        is the same few-percent approximation as everything else
        quick mode reports.
        """
        if result_cache is not None:
            key = result_cache.key(self, layer, seed=seed, max_m=max_m)
            hit = result_cache.get(key)
            if hit is not None:
                compute_cycles, events = hit
            else:
                compute_cycles, events = self.simulate_layer_functional(
                    layer, seed=seed, max_m=max_m, cache=cache)
                result_cache.put(key, compute_cycles, events)
        else:
            compute_cycles, events = self.simulate_layer_functional(
                layer, seed=seed, max_m=max_m, cache=cache)
        return self._finalize_layer(layer, compute_cycles, events)

    def run_model_functional(
        self,
        spec: ModelSpec,
        conv_only: bool = False,
        seed: int = 0,
        max_m: Optional[int] = None,
        cache=None,
        jobs: Optional[int] = None,
        result_cache=None,
    ) -> AccelRunResult:
        """Functional-tier counterpart of :meth:`run_model`.

        Every selected layer synthesizes real INT8 operands and executes
        on the cycle simulator; results aggregate exactly like the
        analytic path, so ``run_model`` and ``run_model_functional`` are
        directly comparable run for run. ``jobs``/``result_cache`` route
        the layer simulations through the parallel, memoized runner
        (:mod:`repro.eval.runner`); results are bit-equal to the serial
        path regardless of worker count.
        """
        from repro.eval.runner import functional_model_runs

        return functional_model_runs(
            [(self, spec)], conv_only=conv_only, seed=seed, max_m=max_m,
            jobs=jobs, result_cache=result_cache, operand_cache=cache)[0]

    # -------------------------------------------------------------- #

    def area_mm2(self) -> float:
        return self._area_model().total_mm2

    def area_breakdown_mm2(self) -> dict:
        return self._area_model().breakdown_mm2()

    def _area_model(self) -> AreaModel:
        return AreaModel(
            macs=self.hardware_macs,
            buffer_bytes_per_mac=self.buffer_bytes_per_mac,
            sram_mb=self.sram_mb,
            mcus=self.mcus,
            has_dap=self.has_dap,
            tech=self.tech,
            costs=self.costs,
        )

    # -------------------------------------------------------------- #

    def microbench_layer(
        self,
        w_density: float,
        a_density: float,
        w_nnz: Optional[int] = None,
        a_nnz: Optional[int] = None,
        m: int = 1024,
        k: int = 1152,
        n: int = 256,
    ) -> LayerResult:
        """Run the Sec. 8.2 synthetic conv layer at given sparsity."""
        from repro.models.specs import LayerKind

        layer = LayerSpec(
            "microbench",
            LayerKind.CONV,
            m=m, k=k, n=n,
            w_nnz=w_nnz if w_nnz is not None
            else max(1, round(w_density * BLOCK_SIZE)),
            a_nnz=a_nnz if a_nnz is not None
            else max(1, round(a_density * BLOCK_SIZE)),
            weight_density=w_density,
            act_density=a_density,
        )
        return self.run_layer(layer)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tech={self.tech!r})"
