"""Common accelerator-model machinery.

An :class:`AcceleratorModel` prices one :class:`LayerSpec` at a time:
the subclass provides the compute-cycle count and hardware events
(:meth:`AcceleratorModel._layer_events`), the base class applies the
memory-bound cap for FC/depthwise layers (Sec. 8.3), prices the events
through the :class:`~repro.energy.model.EnergyModel`, and aggregates
whole-network runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.arch.events import EventCounts
from repro.energy.costs import DEFAULT_COSTS, CostModel
from repro.energy.model import AreaModel, EnergyBreakdown, EnergyModel
from repro.energy.tech import get_tech
from repro.models.specs import BLOCK_SIZE, LayerSpec, ModelSpec

__all__ = ["LayerResult", "AccelRunResult", "AcceleratorModel"]

# Software-managed SRAM fill bandwidth available to stream operands that
# do not fit on chip (weights of FC layers, mainly). Bytes per cycle.
DMA_BYTES_PER_CYCLE = 32


@dataclass
class LayerResult:
    """PPA of one layer on one accelerator."""

    layer: LayerSpec
    compute_cycles: int
    memory_cycles: int
    events: EventCounts
    breakdown: EnergyBreakdown

    @property
    def cycles(self) -> int:
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def memory_bound(self) -> bool:
        return self.memory_cycles > self.compute_cycles

    @property
    def energy_pj(self) -> float:
        return self.breakdown.total_pj

    @property
    def energy_uj(self) -> float:
        return self.breakdown.total_uj


@dataclass
class AccelRunResult:
    """PPA of a whole network on one accelerator."""

    accelerator: str
    model: str
    tech: str
    clock_ghz: float
    layer_results: List[LayerResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.layer_results)

    @property
    def breakdown(self) -> EnergyBreakdown:
        total = EnergyBreakdown()
        for r in self.layer_results:
            total = total + r.breakdown
        return total

    @property
    def energy_uj(self) -> float:
        return self.breakdown.total_uj

    @property
    def runtime_s(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9)

    @property
    def inferences_per_second(self) -> float:
        runtime = self.runtime_s
        return 1.0 / runtime if runtime > 0 else 0.0

    @property
    def inferences_per_joule(self) -> float:
        energy_j = self.energy_uj * 1e-6
        return 1.0 / energy_j if energy_j > 0 else 0.0

    @property
    def effective_tops(self) -> float:
        """Dense-equivalent throughput: 2 ops per dense MAC over runtime."""
        ops = 2.0 * sum(r.layer.macs for r in self.layer_results)
        runtime = self.runtime_s
        return ops / runtime / 1e12 if runtime > 0 else 0.0

    @property
    def effective_tops_per_watt(self) -> float:
        energy_j = self.energy_uj * 1e-6
        ops = 2.0 * sum(r.layer.macs for r in self.layer_results)
        return ops / energy_j / 1e12 if energy_j > 0 else 0.0

    def layer(self, name: str) -> LayerResult:
        for r in self.layer_results:
            if r.layer.name == name:
                return r
        raise KeyError(f"no layer {name!r} in run")


class AcceleratorModel:
    """Base class: subclasses implement ``_layer_events``."""

    name = "accelerator"
    hardware_macs = 2048
    buffer_bytes_per_mac = 6.0  # Table 1 (scalar SA default)
    sram_mb = 2.5
    mcus = 4
    has_dap = False

    def __init__(self, tech: str = "16nm", costs: CostModel = DEFAULT_COSTS):
        self.tech = tech
        self.costs = costs
        self.energy_model = EnergyModel(tech=tech, costs=costs)
        self.clock_ghz = get_tech(tech).clock_ghz

    # -------------------------------------------------------------- #

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        """Return (compute_cycles, events) for one layer. Subclass hook."""
        raise NotImplementedError

    def _memory_cycles(self, layer: LayerSpec) -> int:
        """Operand streaming floor for memory-bound layer kinds.

        Inference (batch 1) gives FC weights zero reuse and depthwise
        layers almost no reduction, so the DMA/SRAM fill bandwidth caps
        throughput identically across all SA variants (Sec. 8.3).
        """
        if not layer.memory_bound:
            return 0
        stream_bytes = self._weight_stream_bytes(layer) + layer.m * layer.k
        return math.ceil(stream_bytes / DMA_BYTES_PER_CYCLE)

    def _weight_stream_bytes(self, layer: LayerSpec) -> int:
        """Weight bytes streamed once (dense by default; DBB overrides)."""
        return layer.weight_bytes

    # -------------------------------------------------------------- #

    def run_layer(self, layer: LayerSpec) -> LayerResult:
        compute_cycles, events = self._layer_events(layer)
        memory_cycles = self._memory_cycles(layer)
        # The MCU-cluster background burns for the full (possibly
        # memory-stalled) duration.
        events.cycles = max(compute_cycles, memory_cycles)
        breakdown = self.energy_model.breakdown(events)
        return LayerResult(
            layer=layer,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            events=events,
            breakdown=breakdown,
        )

    def run_model(self, spec: ModelSpec, conv_only: bool = False
                  ) -> AccelRunResult:
        layers = spec.conv_layers if conv_only else spec.layers
        result = AccelRunResult(
            accelerator=self.name,
            model=spec.name,
            tech=self.tech,
            clock_ghz=self.clock_ghz,
        )
        for layer in layers:
            result.layer_results.append(self.run_layer(layer))
        return result

    # -------------------------------------------------------------- #

    def area_mm2(self) -> float:
        return self._area_model().total_mm2

    def area_breakdown_mm2(self) -> dict:
        return self._area_model().breakdown_mm2()

    def _area_model(self) -> AreaModel:
        return AreaModel(
            macs=self.hardware_macs,
            buffer_bytes_per_mac=self.buffer_bytes_per_mac,
            sram_mb=self.sram_mb,
            mcus=self.mcus,
            has_dap=self.has_dap,
            tech=self.tech,
            costs=self.costs,
        )

    # -------------------------------------------------------------- #

    def microbench_layer(
        self,
        w_density: float,
        a_density: float,
        w_nnz: Optional[int] = None,
        a_nnz: Optional[int] = None,
        m: int = 1024,
        k: int = 1152,
        n: int = 256,
    ) -> LayerResult:
        """Run the Sec. 8.2 synthetic conv layer at given sparsity."""
        from repro.models.specs import LayerKind

        layer = LayerSpec(
            "microbench",
            LayerKind.CONV,
            m=m, k=k, n=n,
            w_nnz=w_nnz if w_nnz is not None
            else max(1, round(w_density * BLOCK_SIZE)),
            a_nnz=a_nnz if a_nnz is not None
            else max(1, round(a_density * BLOCK_SIZE)),
            weight_density=w_density,
            act_density=a_density,
        )
        return self.run_layer(layer)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tech={self.tech!r})"
