"""On-chip capacity and tiling analysis.

S2TA's operands live in software-managed, double-buffered SRAM: a
512 KB weight buffer and a 2 MB activation buffer (Sec. 6.3). This
module checks how a layer's (possibly DBB-compressed) operands map onto
those capacities under the output-stationary tiling, and quantifies the
off-chip (DMA) traffic when they do not fit — e.g. VGG-16's fc6 weights
(~98 MB dense) stream from DRAM every inference, which is why FC layers
are memory bound at batch 1 (Sec. 8.3).

This is *capacity* analysis tooling on top of the PPA models; the
timing and energy of the off-chip traffic it quantifies live in the
memory-hierarchy subsystem (:mod:`repro.arch.memory`), which every
accelerator model now runs per layer (per-operand-class DRAM bytes,
fill-bandwidth caps, roofline placement — see
``repro experiment roofline``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.memory import window_duplication
from repro.models.specs import BLOCK_SIZE, LayerSpec, ModelSpec

__all__ = ["TilingAnalysis", "analyze_layer", "analyze_model",
           "WB_BYTES", "AB_BYTES"]

WB_BYTES = 512 * 1024
AB_BYTES = 2 * 1024 * 1024


@dataclass
class TilingAnalysis:
    """How one layer's operands fit the on-chip buffers."""

    layer: LayerSpec
    weight_bytes_stored: int      # compressed weight footprint
    act_bytes_stored: int         # compressed input-activation footprint
    weights_fit: bool             # whole layer's weights in half the WB
    acts_fit: bool
    weight_dma_bytes: int         # off-chip weight traffic per inference
    act_dma_bytes: int

    @property
    def total_dma_bytes(self) -> int:
        return self.weight_dma_bytes + self.act_dma_bytes

    @property
    def fully_resident(self) -> bool:
        return self.weights_fit and self.acts_fit


def _compressed_weight_bytes(layer: LayerSpec) -> int:
    kb = math.ceil(layer.k / BLOCK_SIZE)
    if layer.w_nnz < BLOCK_SIZE:
        return layer.n * kb * (min(layer.w_nnz, 4) + 1)
    return layer.n * layer.k


def _compressed_act_bytes(layer: LayerSpec) -> int:
    # The AB stores the underlying feature map; the im2col expansion is
    # produced on the fly by the address generators (shared convention
    # with the DRAM traffic model in repro.arch.memory).
    footprint_k = layer.k // window_duplication(layer, streaming=False)
    kb = math.ceil(footprint_k / BLOCK_SIZE)
    if layer.a_nnz < BLOCK_SIZE:
        return layer.m * kb * (layer.a_nnz + 1)
    return layer.m * footprint_k


def analyze_layer(
    layer: LayerSpec,
    wb_bytes: int = WB_BYTES,
    ab_bytes: int = AB_BYTES,
    double_buffered: bool = True,
    eff_rows: int = 64,
    eff_cols: int = 32,
) -> TilingAnalysis:
    """Capacity analysis for one layer at a given array tile size.

    Double buffering halves the usable capacity (one half computes while
    the other fills). Weights that fit are DMA'd once; otherwise every
    output-row tile pass re-streams them from off-chip. Activations
    analogously, per output-column tile pass.
    """
    usable_wb = wb_bytes // 2 if double_buffered else wb_bytes
    usable_ab = ab_bytes // 2 if double_buffered else ab_bytes
    w_stored = _compressed_weight_bytes(layer)
    a_stored = _compressed_act_bytes(layer)
    weights_fit = w_stored <= usable_wb
    acts_fit = a_stored <= usable_ab
    tiles_m = math.ceil(layer.m / eff_rows)
    tiles_n = math.ceil(layer.n / eff_cols)
    weight_dma = w_stored if weights_fit else w_stored * tiles_m
    act_dma = a_stored if acts_fit else a_stored * tiles_n
    return TilingAnalysis(
        layer=layer,
        weight_bytes_stored=w_stored,
        act_bytes_stored=a_stored,
        weights_fit=weights_fit,
        acts_fit=acts_fit,
        weight_dma_bytes=weight_dma,
        act_dma_bytes=act_dma,
    )


def analyze_model(spec: ModelSpec, **kwargs) -> dict:
    """Per-layer analyses plus whole-model residency statistics."""
    analyses = {layer.name: analyze_layer(layer, **kwargs)
                for layer in spec.layers}
    resident = sum(1 for a in analyses.values() if a.fully_resident)
    return {
        "layers": analyses,
        "resident_layers": resident,
        "total_layers": len(analyses),
        "total_dma_bytes": sum(a.total_dma_bytes for a in analyses.values()),
    }
