"""S2TA accelerator models: S2TA-W and the time-unrolled S2TA-AW.

Both are TPE-array systolic designs at the paper's chosen design points
(Sec. 7): 2048 hardware MACs, 4 TOPS dense peak at 1 GHz in 16 nm.

- ``S2TAW`` — 4x8x4_4x8: a 4x8 grid of TPEs, each an outer product of
  A=4 activation blocks x C=4 weight blocks over DP4M8 dot-product
  datapaths (4 MACs each). Exploits 4/8 W-DBB for a fixed 2x speedup
  (Fig. 9c) plus ZVCG on the dense activations. This is the
  "A100-featured" baseline.
- ``S2TAAW`` — 8x4x4_8x8: an 8x8 grid of TPEs, each A=8 x C=4 DP1M4
  time-unrolled datapaths. Weight DBB halves weight traffic and gates
  mask-mismatch MACs; activation DBB serializes ``a_nnz`` cycles per
  block, so speedup is ``BZ / a_nnz`` (Fig. 9d), tuned per layer.

Layers whose weights are not pruned (``w_nnz == 8``, e.g. first conv
layers) run in dense-fallback mode: S2TA-W takes two passes per block,
S2TA-AW holds full blocks; both match the dense SA's throughput, as the
paper requires (Sec. 4, "fall back to dense operation").
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.accel.base import AcceleratorModel
from repro.arch.events import EventCounts
from repro.core.dbb import DBBSpec
from repro.models.specs import BLOCK_SIZE, LayerSpec

__all__ = ["S2TAW", "S2TAAW", "S2TAWA"]

_MASK_BYTES = 1  # BZ=8 positional bitmask


class S2TAW(AcceleratorModel):
    """S2TA-W: 4x8x4_4x8 DP4M8 TPE array (W-DBB + activation ZVCG).

    The geometry is parameterizable (used by the Sec. 7 design-space
    sweep); defaults are the paper's published design point.
    """

    name = "S2TA-W"
    rows = 4
    cols = 8
    tpe_a = 4
    tpe_c = 4
    datapath_nnz = 4  # DP4M8: 4 MACs per DP unit
    hardware_macs = 4 * 8 * 4 * 4 * 4  # 2048
    buffer_bytes_per_mac = 0.875  # Table 1

    def __init__(self, tech: str = "16nm", rows: int = 4, cols: int = 8,
                 tpe_a: int = 4, tpe_c: int = 4, datapath_nnz: int = 4,
                 **kwargs):
        super().__init__(tech=tech, **kwargs)
        if not 1 <= datapath_nnz <= BLOCK_SIZE:
            raise ValueError(
                f"datapath_nnz must be in [1, {BLOCK_SIZE}], "
                f"got {datapath_nnz}")
        self.rows = rows
        self.cols = cols
        self.tpe_a = tpe_a
        self.tpe_c = tpe_c
        # The DBB weight bound B: each DPBM8 dot-product unit holds B
        # MACs (the paper's design point is DP4M8). Swept by the DSE
        # engine; everything downstream (passes, block bytes, events)
        # reads the instance attribute.
        self.datapath_nnz = datapath_nnz
        self.hardware_macs = rows * cols * tpe_a * tpe_c * datapath_nnz
        self.buffer_bytes_per_mac = self._buffer_bytes(tpe_a, tpe_c)

    def _buffer_bytes(self, tpe_a: int, tpe_c: int) -> float:
        """Per-MAC buffer storage for a TPE geometry.

        The A dense activation blocks and C compressed weight blocks are
        shared across the TPE's A*C*4 MACs; each DP4M8 unit's 4 MACs
        share one accumulator. The structural estimate is normalized so
        the paper's design point reproduces Table 1's 0.875 B/MAC
        (the paper counts live single-entry registers only).
        """
        def estimate(a: int, c: int) -> float:
            operand_bytes = a * BLOCK_SIZE + c * (self.datapath_nnz + 1)
            macs = a * c * self.datapath_nnz
            return operand_bytes / macs + 4.0 / self.datapath_nnz
        return estimate(tpe_a, tpe_c) * (0.875 / estimate(4, 4))

    @property
    def eff_rows(self) -> int:
        return self.rows * self.tpe_a

    @property
    def eff_cols(self) -> int:
        return self.cols * self.tpe_c

    @property
    def skew(self) -> int:
        return self.rows + self.cols - 2

    def _w_passes(self, layer: LayerSpec) -> int:
        """Block passes: 1 when pruned to <= NNZ, 2 for dense fallback."""
        return 1 if layer.w_nnz <= self.datapath_nnz else 2

    def _w_block_bytes(self, layer: LayerSpec) -> int:
        if layer.w_nnz <= self.datapath_nnz:
            return self.datapath_nnz + _MASK_BYTES
        return BLOCK_SIZE  # dense fallback: uncompressed block

    def _weight_stream_bytes(self, layer: LayerSpec) -> int:
        kb = math.ceil(layer.k / BLOCK_SIZE)
        return layer.n * kb * self._w_block_bytes(layer)

    def _dram_block_layout(self, layer: LayerSpec):
        """Compressed weight blocks carry a 1-byte positional mask
        (DBB metadata on the DRAM bus); activations stream dense."""
        if layer.w_nnz <= self.datapath_nnz:
            return (self.datapath_nnz, _MASK_BYTES), (BLOCK_SIZE, 0)
        return (BLOCK_SIZE, 0), (BLOCK_SIZE, 0)

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        kb = math.ceil(layer.k / BLOCK_SIZE)
        passes = self._w_passes(layer)
        tiles_m = math.ceil(layer.m / self.eff_rows)
        tiles_n = math.ceil(layer.n / self.eff_cols)
        tiles = tiles_m * tiles_n
        compute_cycles = tiles * kb * passes + self.skew
        slots = (tiles * self.eff_rows * self.eff_cols
                 * kb * passes * self.datapath_nnz)
        fired = round(layer.macs * layer.w_density * layer.a_density)
        events = EventCounts()
        events.mac_ops = fired
        events.gated_mac_ops = max(0, slots - fired)
        events.mux_ops = layer.m * layer.n * kb * passes * self.datapath_nnz
        # DP4M8's 4 MACs reduce through an adder tree into one accumulator
        # update per (output, block pass).
        acc_slots = layer.m * layer.n * kb * passes
        acc_fired = min(acc_slots, fired)
        events.acc_reg_ops = acc_fired
        events.gated_acc_reg_ops = acc_slots - acc_fired
        # Operand hops with intra-TPE reuse. The dot-product TPE reuses
        # activations less than the outer-product one (Sec. 6.1 notes the
        # outer-product TPE is the more efficient due to increased data
        # reuse): the dense 8-wide activation block is broadcast to the
        # DP4M8 muxes, recovering only half of the C-way reuse.
        a_hop_bytes = tiles_n * self.cols * layer.m * layer.k
        w_hop_bytes = (tiles_m * self.rows * layer.n * kb
                       * self._w_block_bytes(layer))
        events.operand_reg_ops = (a_hop_bytes // max(1, self.tpe_c // 2)
                                  + w_hop_bytes // self.tpe_a)
        events.sram_a_read_bytes = layer.m * layer.k * tiles_n
        events.sram_w_read_bytes = self._weight_stream_bytes(layer) * tiles_m
        events.sram_a_write_bytes = layer.m * layer.n
        events.mcu_elementwise_ops = layer.m * layer.n
        return compute_cycles, events

    # -------------------------------------------------------------- #
    # Functional cross-check bridge
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """The cycle simulator's config for this design point."""
        from repro.arch.systolic import Mode, SystolicConfig

        return SystolicConfig(
            rows=self.rows, cols=self.cols, mode=Mode.WDBB,
            w_spec=DBBSpec(BLOCK_SIZE, self.datapath_nnz),
            tpe_a=self.tpe_a, tpe_c=self.tpe_c,
        )

    def _functional_gemm_kwargs(self, layer: LayerSpec) -> dict:
        """Unpruned layers (e.g. the first conv) run the hardware's
        two-pass dense-weight fallback, matching ``_w_passes``. The
        simulator compresses pruned weights through the shared
        :func:`repro.core.gemm.compress_cached` memo, so sweeping the
        same workload across variants (S2TA-W, S2TA-AW, density points)
        compresses each weight tensor exactly once."""
        return {"w_dense": layer.w_nnz > self.datapath_nnz}


class S2TAAW(AcceleratorModel):
    """S2TA-AW: time-unrolled 8x4x4_8x8 DP1M4 TPE array (joint A/W-DBB)."""

    name = "S2TA-AW"
    rows = 8
    cols = 8
    tpe_a = 8
    tpe_c = 4
    w_nnz_hw = 4  # DP1M4's 4:1 weight mux
    hardware_macs = 8 * 8 * 8 * 4  # 2048
    buffer_bytes_per_mac = 4.75  # Table 1
    has_dap = True

    def __init__(self, tech: str = "16nm", rows: int = 8, cols: int = 8,
                 tpe_a: int = 8, tpe_c: int = 4, w_nnz_hw: int = 4,
                 **kwargs):
        super().__init__(tech=tech, **kwargs)
        if not 1 <= w_nnz_hw <= BLOCK_SIZE:
            raise ValueError(
                f"w_nnz_hw must be in [1, {BLOCK_SIZE}], got {w_nnz_hw}")
        self.rows = rows
        self.cols = cols
        self.tpe_a = tpe_a
        self.tpe_c = tpe_c
        # The DBB weight bound B: each DP1M4 weight mux selects among B
        # stored non-zeros (B:1 mux; the paper's design point is B=4).
        # Time-unrolled, so the MAC count is independent of B.
        self.w_nnz_hw = w_nnz_hw
        self.hardware_macs = rows * cols * tpe_a * tpe_c
        self.buffer_bytes_per_mac = self._buffer_bytes(tpe_a, tpe_c)

    def _buffer_bytes(self, tpe_a: int, tpe_c: int) -> float:
        """Per-MAC buffers for a time-unrolled TPE geometry.

        Each DP1M4 holds a 32-bit accumulator; the serialized activation
        element (+ mask) and C compressed weight blocks are shared.
        Normalized so the paper's point matches Table 1's 4.75 B/MAC.
        """
        def estimate(a: int, c: int) -> float:
            operand_bytes = a * 2 + c * (self.w_nnz_hw + 1)
            return operand_bytes / (a * c) + 4.0
        return estimate(tpe_a, tpe_c) * (4.75 / estimate(8, 4))

    @property
    def eff_rows(self) -> int:
        return self.rows * self.tpe_a

    @property
    def eff_cols(self) -> int:
        return self.cols * self.tpe_c

    @property
    def skew(self) -> int:
        return self.rows + self.cols - 2

    def _steps(self, layer: LayerSpec) -> int:
        """Cycles per activation block: a_nnz, or BZ on dense bypass."""
        return layer.a_nnz if layer.a_nnz < BLOCK_SIZE else BLOCK_SIZE

    def _a_block_bytes(self, layer: LayerSpec) -> int:
        steps = self._steps(layer)
        if steps >= BLOCK_SIZE:
            return BLOCK_SIZE  # dense bypass: uncompressed
        return steps + _MASK_BYTES

    def _w_block_bytes(self, layer: LayerSpec) -> int:
        if layer.w_nnz <= self.w_nnz_hw:
            return self.w_nnz_hw + _MASK_BYTES
        return BLOCK_SIZE

    def _weight_stream_bytes(self, layer: LayerSpec) -> int:
        kb = math.ceil(layer.k / BLOCK_SIZE)
        return layer.n * kb * self._w_block_bytes(layer)

    def _dram_block_layout(self, layer: LayerSpec):
        """Both operands stream in compressed block form (payload +
        1-byte mask) unless the layer runs the dense fallback/bypass."""
        steps = self._steps(layer)
        w_layout = ((self.w_nnz_hw, _MASK_BYTES)
                    if layer.w_nnz <= self.w_nnz_hw else (BLOCK_SIZE, 0))
        a_layout = ((steps, _MASK_BYTES)
                    if steps < BLOCK_SIZE else (BLOCK_SIZE, 0))
        return w_layout, a_layout

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        kb = math.ceil(layer.k / BLOCK_SIZE)
        steps = self._steps(layer)
        tiles_m = math.ceil(layer.m / self.eff_rows)
        tiles_n = math.ceil(layer.n / self.eff_cols)
        tiles = tiles_m * tiles_n
        compute_cycles = (tiles * kb + self.skew) * steps
        slots = tiles * self.eff_rows * self.eff_cols * kb * steps
        # A MAC fires when the streamed activation's position matches a
        # stored non-zero weight: element densities capture both bounds.
        fired = round(layer.macs * layer.w_density * layer.a_density)
        fired = min(fired, slots)
        events = EventCounts()
        events.mac_ops = fired
        events.gated_mac_ops = slots - fired
        events.mux_ops = layer.m * layer.n * kb * steps
        # DP1M4: one accumulator RMW per streamed cycle, gated on miss.
        acc_slots = layer.m * layer.n * kb * steps
        acc_fired = min(acc_slots, fired)
        events.acc_reg_ops = acc_fired
        events.gated_acc_reg_ops = acc_slots - acc_fired
        a_block_bytes = self._a_block_bytes(layer)
        w_block_bytes = self._w_block_bytes(layer)
        a_hop_bytes = tiles_n * self.cols * layer.m * kb * a_block_bytes
        w_hop_bytes = tiles_m * self.rows * layer.n * kb * w_block_bytes
        # The serialized activation element broadcasts across the TPE's C
        # weight columns; beyond the DP1M4 mux width the broadcast needs
        # repeater stages, capping the free reuse at 4-wide.
        a_reuse = min(self.tpe_c, self.w_nnz_hw)
        events.operand_reg_ops = (a_hop_bytes // a_reuse
                                  + w_hop_bytes // self.tpe_a)
        events.sram_a_read_bytes = layer.m * kb * a_block_bytes * tiles_n
        events.sram_w_read_bytes = self._weight_stream_bytes(layer) * tiles_m
        events.sram_a_write_bytes = layer.m * kb * a_block_bytes
        events.mcu_elementwise_ops = layer.m * layer.n
        # DAP runs once per activation block produced (at the AB write
        # port), not per tile re-read; bypassed on dense layers.
        if steps < BLOCK_SIZE:
            events.dap_compare_ops = (
                layer.m * kb * (BLOCK_SIZE - 1) * steps
            )
        return compute_cycles, events

    # -------------------------------------------------------------- #
    # Functional cross-check bridge
    # -------------------------------------------------------------- #

    def functional_sim_config(self):
        """The cycle simulator's config for this design point."""
        from repro.arch.systolic import Mode, SystolicConfig

        return SystolicConfig(
            rows=self.rows, cols=self.cols, mode=Mode.AWDBB,
            w_spec=DBBSpec(BLOCK_SIZE, self.w_nnz_hw),
            a_spec=DBBSpec(BLOCK_SIZE, self.w_nnz_hw),
            tpe_a=self.tpe_a, tpe_c=self.tpe_c,
        )

    def _functional_gemm_kwargs(self, layer: LayerSpec) -> dict:
        """``a_nnz`` is the per-layer A-DBB cycle knob (dense bypass at
        ``BLOCK_SIZE``); unpruned weights stream uncompressed (dense
        fallback). The time-unrolled simulator needs no operand
        compression at all — its event counts are closed-form over
        non-zero counts — so sweeping ``a_nnz`` costs no compression
        work; only the W-DBB variant (:class:`S2TAW`) compresses
        weights."""
        return {"a_nnz": min(layer.a_nnz, BLOCK_SIZE),
                "w_dense": layer.w_nnz > self.w_nnz_hw}


class S2TAWA(AcceleratorModel):
    """Time-unrolled variable *weight* DBB with fixed activation DBB.

    The paper's footnote 2 (Sec. 8.4): "S2TA time-unrolled architecture
    can also be implemented to support variable weight DBB sparsity and
    fixed activation DBB sparsity." This is that dual design: weight
    block non-zeros are serialized over ``w_nnz`` cycles (so per-layer
    *weight* density is the cycle knob, speedup ``BZ / w_nnz``), while
    activations are DAP-pruned to a fixed 4/8 bound and unrolled
    spatially through 4:1 muxes.

    Used by the unrolling-axis ablation benchmark: it wins throughput on
    models whose weights are pruned harder than their activations
    (e.g. 3/8-weight VGG/ResNet), but it cannot harvest the wide
    per-layer *activation* density range that motivates S2TA-AW, and
    forcing a fixed 4/8 A-DBB on dense-activation layers costs accuracy
    the paper's per-layer tuning avoids.
    """

    name = "S2TA-WA"
    rows = 8
    cols = 8
    tpe_a = 4
    tpe_c = 8
    a_nnz_hw = 4  # fixed 4/8 activation DBB (4:1 activation mux)
    hardware_macs = 8 * 8 * 4 * 8  # 2048
    buffer_bytes_per_mac = 4.75
    has_dap = True

    def __init__(self, tech: str = "16nm", rows: int = 8, cols: int = 8,
                 tpe_a: int = 4, tpe_c: int = 8, **kwargs):
        super().__init__(tech=tech, **kwargs)
        self.rows = rows
        self.cols = cols
        self.tpe_a = tpe_a
        self.tpe_c = tpe_c
        self.hardware_macs = rows * cols * tpe_a * tpe_c

    @property
    def eff_rows(self) -> int:
        return self.rows * self.tpe_a

    @property
    def eff_cols(self) -> int:
        return self.cols * self.tpe_c

    @property
    def skew(self) -> int:
        return self.rows + self.cols - 2

    def _steps(self, layer: LayerSpec) -> int:
        """Cycles per weight block: w_nnz, or BZ on unpruned layers."""
        return layer.w_nnz if layer.w_nnz < BLOCK_SIZE else BLOCK_SIZE

    def _a_density(self, layer: LayerSpec) -> float:
        """Element activation density under the fixed 4/8 A-DBB bound."""
        return min(layer.a_density, self.a_nnz_hw / BLOCK_SIZE)

    def _w_block_bytes(self, layer: LayerSpec) -> int:
        steps = self._steps(layer)
        if steps >= BLOCK_SIZE:
            return BLOCK_SIZE
        return steps + _MASK_BYTES

    def _a_block_bytes(self) -> int:
        return self.a_nnz_hw + _MASK_BYTES

    def _weight_stream_bytes(self, layer: LayerSpec) -> int:
        kb = math.ceil(layer.k / BLOCK_SIZE)
        return layer.n * kb * self._w_block_bytes(layer)

    def _dram_block_layout(self, layer: LayerSpec):
        """Serialized weights and fixed-4/8 activations both stream
        compressed (payload + mask) on the DRAM bus."""
        steps = self._steps(layer)
        w_layout = ((steps, _MASK_BYTES) if steps < BLOCK_SIZE
                    else (BLOCK_SIZE, 0))
        return w_layout, (self.a_nnz_hw, _MASK_BYTES)

    def _layer_events(self, layer: LayerSpec) -> Tuple[int, EventCounts]:
        kb = math.ceil(layer.k / BLOCK_SIZE)
        steps = self._steps(layer)
        tiles_m = math.ceil(layer.m / self.eff_rows)
        tiles_n = math.ceil(layer.n / self.eff_cols)
        tiles = tiles_m * tiles_n
        compute_cycles = (tiles * kb + self.skew) * steps
        slots = tiles * self.eff_rows * self.eff_cols * kb * steps
        a_density = self._a_density(layer)
        fired = min(round(layer.macs * layer.w_density * a_density), slots)
        events = EventCounts()
        events.mac_ops = fired
        events.gated_mac_ops = slots - fired
        events.mux_ops = layer.m * layer.n * kb * steps
        acc_slots = layer.m * layer.n * kb * steps
        acc_fired = min(acc_slots, fired)
        events.acc_reg_ops = acc_fired
        events.gated_acc_reg_ops = acc_slots - acc_fired
        a_block_bytes = self._a_block_bytes()
        w_block_bytes = self._w_block_bytes(layer)
        a_hop_bytes = tiles_n * self.cols * layer.m * kb * a_block_bytes
        w_hop_bytes = tiles_m * self.rows * layer.n * kb * w_block_bytes
        w_reuse = min(self.tpe_a, self.a_nnz_hw)
        events.operand_reg_ops = (a_hop_bytes // self.tpe_c
                                  + w_hop_bytes // w_reuse)
        events.sram_a_read_bytes = layer.m * kb * a_block_bytes * tiles_n
        events.sram_w_read_bytes = self._weight_stream_bytes(layer) * tiles_m
        events.sram_a_write_bytes = layer.m * kb * a_block_bytes
        events.mcu_elementwise_ops = layer.m * layer.n
        # DAP always runs (fixed 4/8 bound on every layer).
        events.dap_compare_ops = (
            layer.m * kb * (BLOCK_SIZE - 1) * self.a_nnz_hw
        )
        return compute_cycles, events
