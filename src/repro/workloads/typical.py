"""The paper's "typical convolution layer".

Fig. 1, Fig. 3 and Fig. 10 all evaluate one representative mid-network
convolution: we use a VGG-ish conv3 shape (56x56 output, 3x3 kernel over
128 input channels, 256 filters), which matches the reduction length
(K = 1152) the paper's arrays are sized around.
"""

from __future__ import annotations

from repro.models.specs import BLOCK_SIZE, LayerKind, LayerSpec

__all__ = ["TYPICAL_CONV", "typical_conv_layer"]


def typical_conv_layer(
    w_density: float = 0.5,
    a_density: float = 0.5,
    name: str = "typical_conv",
) -> LayerSpec:
    """The typical conv at a given weight/activation density.

    ``w_nnz``/``a_nnz`` are derived from the densities (e.g. 50% -> 4/8,
    62.5% sparsity -> 3/8), matching how the paper states microbenchmark
    sparsity as DBB ratios.
    """
    return LayerSpec(
        name,
        LayerKind.CONV,
        m=56 * 56,
        k=1152,
        n=256,
        w_nnz=max(1, round(w_density * BLOCK_SIZE)),
        a_nnz=max(1, round(a_density * BLOCK_SIZE)),
        weight_density=w_density,
        act_density=a_density,
    )


#: Fig. 10's operating point: 50% (4/8) weights, 62.5% sparse (3/8) acts.
TYPICAL_CONV = typical_conv_layer(w_density=0.5, a_density=0.375)
