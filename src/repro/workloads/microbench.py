"""Synthetic microbenchmark workloads (Sec. 8.2, Fig. 9).

The paper sweeps synthetic DNN layers over controlled weight/activation
sparsity. :func:`sweep_layer` builds the analytic layer for a sweep
point; :func:`microbench_operands` materializes concrete INT8 operands
with exactly that sparsity structure for the functional simulator.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.dbb import DBBSpec
from repro.core.pruning import prune_weights_dbb
from repro.core.sparsity import random_dbb_tensor, random_unstructured
from repro.models.specs import BLOCK_SIZE, LayerKind, LayerSpec

__all__ = ["sweep_layer", "sparsity_sweep", "microbench_operands",
           "SWEEP_SPARSITIES"]

#: Fig. 9's x-axis: DBB sparsity levels 0%..87.5% (NNZ 8..1 of BZ=8).
SWEEP_SPARSITIES = (0.0, 0.25, 0.50, 0.625, 0.75, 0.875)


def sweep_layer(
    w_sparsity: float,
    a_sparsity: float,
    m: int = 1024,
    k: int = 1152,
    n: int = 256,
) -> LayerSpec:
    """One Fig. 9 sweep point as an analytic layer spec.

    Sparsity maps to DBB NNZ exactly (x% sparsity -> ``8 * (1 - x)`` NNZ,
    which is integral for the paper's sweep points).
    """
    for label, s in (("w", w_sparsity), ("a", a_sparsity)):
        if not 0.0 <= s < 1.0:
            raise ValueError(f"{label}_sparsity must be in [0, 1), got {s}")
    w_nnz = max(1, round((1.0 - w_sparsity) * BLOCK_SIZE))
    a_nnz = max(1, round((1.0 - a_sparsity) * BLOCK_SIZE))
    return LayerSpec(
        f"ubench_w{int(w_sparsity * 1000)}_a{int(a_sparsity * 1000)}",
        LayerKind.CONV,
        m=m, k=k, n=n,
        w_nnz=w_nnz,
        a_nnz=a_nnz,
        weight_density=1.0 - w_sparsity,
        act_density=1.0 - a_sparsity,
    )


def sparsity_sweep(
    a_sparsity: float, m: int = 1024, k: int = 1152, n: int = 256
) -> Iterator[LayerSpec]:
    """Fig. 9's weight-sparsity sweep at a fixed activation sparsity."""
    for w_sparsity in SWEEP_SPARSITIES:
        yield sweep_layer(w_sparsity, a_sparsity, m=m, k=k, n=n)


def microbench_operands(
    layer: LayerSpec,
    rng: Optional[np.random.Generator] = None,
    dbb_weights: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Concrete INT8 operands for a sweep layer.

    Weights are generated DBB-structured (or unstructured + pruned when
    ``dbb_weights``), activations unstructured at the layer's density —
    the same data regime the paper's testbenches drive.
    """
    rng = rng or np.random.default_rng(0)
    a = random_unstructured((layer.m, layer.k), layer.a_density, rng=rng)
    spec = DBBSpec(BLOCK_SIZE, layer.w_nnz)
    if layer.k % BLOCK_SIZE == 0:
        w = random_dbb_tensor((layer.n, layer.k), spec, rng=rng).T
    else:
        w_dense = random_unstructured((layer.n, layer.k), layer.w_density,
                                      rng=rng)
        pad = (-layer.k) % BLOCK_SIZE
        padded = np.concatenate(
            [w_dense, np.zeros((layer.n, pad), dtype=w_dense.dtype)], axis=1
        )
        w = prune_weights_dbb(padded, spec)[:, :layer.k].T
    if dbb_weights:
        return a, w
    w_unstructured = random_unstructured((layer.k, layer.n), layer.w_density,
                                         rng=rng)
    return a, w_unstructured
