"""Concrete operand synthesis from analytic :class:`LayerSpec`s.

The functional full-model pipeline (``AcceleratorModel.run_model_functional``)
needs real INT8 tensors for every layer of a benchmark network, matched to
the analytic density profile the performance model prices:

- the GEMM shape is the spec's ``m``/``k``/``n`` (the im2col lowering of
  :mod:`repro.nn.im2col` — ``k`` is the patch axis DBB blocks run along,
  and need not be a multiple of ``BZ``);
- weights satisfy the layer's W-DBB bound (``w_nnz`` per ``BZ`` block)
  with element density ``layer.w_density``;
- activations satisfy the layer's A-DBB bound (``a_nnz`` per block, so
  the simulator's DAP pass is a no-op and all four execution modes see
  the *same* element density ``layer.a_density``, exactly as the analytic
  models assume).

Density is hit *exactly in total*: the per-block non-zero counts are a
largest-remainder allocation of ``round(rows * width * density)``
non-zeros across blocks (random tie-breaking keeps the allocation
unbiased), with uniformly random positions inside each block and uniform
non-zero INT8 magnitudes. The exact total is what lets the fixed-dataflow
baselines (SparTen / Eyeriss v2 / SCNN) cross-validate their
sparsity-compressed SRAM and DRAM byte counters *bit-for-bit* between the
analytic and functional tiers: ``count_nonzero`` of a synthesized operand
equals the analytic models' ``round(elements * density)`` closed form
whenever ``density <= nnz_cap / block_size`` (above the cap the operand
saturates at the cap, as before).

Generated operands are memoized in :class:`OperandCache`, an LRU bounded
by a *byte budget* rather than an entry count (a single VGG conv layer's
activation matrix is ~29 MB; entry-count caches like ``lru_cache`` grow
unboundedly in bytes). Cached arrays are returned read-only and shared
across every accelerator variant in a sweep, so each layer's operands are
synthesized once per (shape, density, seed) point.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.models.specs import BLOCK_SIZE, LayerSpec
from repro.obs import trace as obs_trace

__all__ = [
    "blocked_density_operand",
    "spec_operands",
    "OperandCache",
    "operands_for_layer",
    "default_operand_cache",
]


def blocked_density_operand(
    rows: int,
    width: int,
    nnz_cap: int,
    density: float,
    rng: np.random.Generator,
    block_size: int = BLOCK_SIZE,
    dtype=np.int8,
) -> np.ndarray:
    """Random ``(rows, width)`` tensor: per-block NNZ cap + element density.

    Blocks run along the last axis; ``width`` need not be a multiple of
    ``block_size`` (the ragged tail block simply has fewer candidate
    positions). Every block holds at most ``nnz_cap`` non-zeros, and the
    total non-zero count over the valid ``rows * width`` region equals
    ``round(rows * width * density)`` *exactly* (largest-remainder
    allocation of the per-block real-valued targets, clipped to the cap —
    the exact total holds whenever ``density <= nnz_cap / block_size``;
    above it the tensor saturates at the cap). Random tie-breaking among
    equal fractional remainders keeps the allocation unbiased.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if not 1 <= nnz_cap <= block_size:
        raise ValueError(
            f"nnz_cap must be in [1, {block_size}], got {nnz_cap}")
    kb = -(-width // block_size)
    padded = kb * block_size
    # Valid (non-padding) positions per block along one row.
    valid = np.full(kb, block_size, dtype=np.int64)
    tail = width - (kb - 1) * block_size
    valid[-1] = tail
    valid = np.broadcast_to(valid, (rows, kb)).reshape(-1)
    # Largest-remainder allocation of the exact total across blocks
    # (same ``round`` expression as the analytic models' stored-byte
    # closed forms, so the two tiers agree bit-for-bit on nnz).
    cap = np.minimum(nnz_cap, valid)
    target = density * valid
    nnz = np.minimum(np.floor(target).astype(np.int64), cap)
    total = min(int(round(rows * width * density)), int(cap.sum()))
    deficit = total - int(nnz.sum())
    frac = target - np.floor(target)
    tiebreak = rng.random(valid.size)
    order = np.lexsort((tiebreak, -frac))
    while deficit > 0:
        room = order[(cap - nnz)[order] > 0]
        bump = room[:deficit]
        nnz[bump] += 1
        deficit -= bump.size
    # Choose nnz[b] positions per block among its valid ones: rank random
    # keys per block (invalid positions get +inf) and keep the smallest.
    keys = rng.random((valid.size, block_size), dtype=np.float32)
    keys[np.arange(block_size)[None, :] >= valid[:, None]] = np.inf
    order = np.argsort(keys, axis=1)
    chosen = np.arange(block_size, dtype=np.int64)[None, :] < nnz[:, None]
    mask = np.zeros_like(chosen)
    np.put_along_axis(mask, order, chosen, axis=1)
    magnitude = rng.integers(1, 128, size=mask.shape, dtype=np.int16)
    sign = rng.integers(0, 2, size=mask.shape, dtype=np.int16)
    # In-place (same RNG draws, same values as the where(mask, m*s, 0)
    # formulation — the seed-fixed operand streams must not change):
    sign *= 2
    sign -= 1
    np.multiply(magnitude, sign, out=magnitude)
    np.multiply(magnitude, mask, out=magnitude, casting="unsafe")
    out = magnitude.astype(dtype)
    return out.reshape(rows, padded)[:, :width]


def spec_operands(
    layer: LayerSpec,
    seed: int = 0,
    dtype=np.int8,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesize ``(A, W)`` INT8 operands for one analytic layer spec.

    ``A`` is ``(m, k)`` with blocks along ``k`` capped at ``a_nnz``;
    ``W`` is ``(k, n)`` whose transpose is W-DBB compliant at ``w_nnz``
    (i.e. compressible by the hardware's static weight path). Densities
    match ``layer.a_density`` / ``layer.w_density`` in expectation.
    """
    with obs_trace.span(layer.name, "synthesize",
                        m=layer.m, k=layer.k, n=layer.n, seed=seed):
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, layer.m, layer.k, layer.n,
                                    layer.w_nnz, layer.a_nnz]))
        w = blocked_density_operand(
            layer.n, layer.k, layer.w_nnz, min(layer.w_density, 1.0),
            rng, dtype=dtype).T
        a = blocked_density_operand(
            layer.m, layer.k, layer.a_nnz, min(layer.a_density, 1.0),
            rng, dtype=dtype)
        return a, w


class OperandCache:
    """Byte-budget LRU memo for synthesized layer operands.

    Keys on the fields that determine the generated tensors (GEMM shape,
    DBB bounds, densities, seed); evicts least-recently-used entries once
    the resident operand bytes exceed ``max_bytes``. Entries larger than
    the whole budget are synthesized but never retained. Cached arrays
    are marked read-only — they are shared across accelerator variants.

    **Multi-process semantics** (the parallel experiment runner,
    :mod:`repro.eval.runner`): the cache is *process-local*. Worker
    processes never share entries, budget accounting or hit/miss stats
    with the parent or each other — a ``fork``-started worker inherits a
    copy-on-write snapshot of the parent's entries (read-only arrays,
    shared physical pages until evicted) and diverges from there; a
    ``spawn``-started worker begins empty. The pool initializer calls
    :meth:`resize` in each worker so that every worker's budget is its
    share of the parent's total — the aggregate resident bytes across
    workers stay within one configured budget, and no cross-process
    locking is needed because no state is shared. Within one process the
    cache is additionally thread-safe (a lock guards the LRU structure).
    """

    def __init__(self, max_bytes: int = 512 * 1024 * 1024):
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" \
            = OrderedDict()
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.races = 0

    @staticmethod
    def _key(layer: LayerSpec, seed: int) -> tuple:
        return (layer.m, layer.k, layer.n, layer.w_nnz, layer.a_nnz,
                round(layer.w_density, 6), round(layer.a_density, 6), seed)

    def get(self, layer: LayerSpec, seed: int = 0
            ) -> Tuple[np.ndarray, np.ndarray]:
        key = self._key(layer, seed)
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return hit
            self.misses += 1
        # Synthesis runs outside the lock (it is the expensive part and
        # touches no shared state); a racing thread may synthesize the
        # same entry concurrently, in which case the first insert wins
        # (identical read-only arrays) and the loser's copy is dropped
        # without touching the byte accounting.
        a, w = spec_operands(layer, seed=seed)
        a.setflags(write=False)
        w.setflags(write=False)
        item_bytes = a.nbytes + w.nbytes
        with self._lock:
            raced = self._entries.get(key)
            if raced is not None:
                self._entries.move_to_end(key)
                self.races += 1
                return raced
            if item_bytes <= self.max_bytes:
                self._entries[key] = (a, w)
                self.current_bytes += item_bytes
                self._evict_to_budget()
        return a, w

    def _evict_to_budget(self) -> None:
        """Drop LRU entries until within budget (lock held by caller)."""
        while self.current_bytes > self.max_bytes and len(self._entries) > 1:
            _, (ea, ew) = self._entries.popitem(last=False)
            self.current_bytes -= ea.nbytes + ew.nbytes
            self.evictions += 1

    def resize(self, max_bytes: int) -> None:
        """Re-budget the cache (evicting LRU entries if shrinking) —
        how the parallel runner's pool initializer gives each worker its
        share of the parent's budget."""
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        with self._lock:
            self.max_bytes = max_bytes
            # A shrunk budget may strand a single oversized entry; the
            # loop below keeps at least one entry, so drop it explicitly
            # when even alone it exceeds the new budget.
            self._evict_to_budget()
            if self.current_bytes > self.max_bytes and self._entries:
                _, (ea, ew) = self._entries.popitem(last=False)
                self.current_bytes -= ea.nbytes + ew.nbytes
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0
            self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the counters without dropping entries — pool workers
        call this at init so fork-inherited parent counts never pollute
        the deltas they return with their task payloads."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.races = 0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "races": self.races,
            "entries": len(self._entries),
            "bytes": self.current_bytes,
        }

    def __len__(self) -> int:
        return len(self._entries)


_DEFAULT_CACHE = OperandCache()


def default_operand_cache() -> OperandCache:
    """The process-wide operand cache shared by the functional runners."""
    return _DEFAULT_CACHE


def operands_for_layer(
    layer: LayerSpec,
    seed: int = 0,
    cache: Optional[OperandCache] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized ``(A, W)`` operands for one layer (read-only arrays)."""
    cache = _DEFAULT_CACHE if cache is None else cache
    return cache.get(layer, seed=seed)
