"""Build accelerator workloads from executed-model traces.

The bridge between the functional substrate and the PPA models: run any
:class:`repro.nn.Sequential` on real inputs (optionally with DAP), and
convert the per-layer trace — measured GEMM shapes and densities — into
:class:`~repro.models.specs.LayerSpec` workloads the accelerator models
price. This is how a downstream user evaluates *their own* network on
S2TA without hand-writing a spec table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.dbb import DBBSpec
from repro.models.specs import BLOCK_SIZE, LayerKind, LayerSpec, ModelSpec
from repro.nn.layers import DepthwiseConv2d, Linear
from repro.nn.model import RunResult, Sequential

__all__ = ["spec_from_trace", "run_and_spec"]


def _kind_of(trace_kind: str) -> LayerKind:
    if trace_kind == "DepthwiseConv2d":
        return LayerKind.DWCONV
    if trace_kind == "Linear":
        return LayerKind.FC
    return LayerKind.CONV


def spec_from_trace(
    result: RunResult,
    name: str = "traced_model",
    w_nnz: int = 4,
    skip_weight_pruning: Optional[List[str]] = None,
) -> ModelSpec:
    """Convert one forward pass's trace into an analytic model spec.

    Activation densities and DAP bounds come from the measured trace
    (``dap_nnz`` when the pass ran with DAP, else the dense density);
    ``w_nnz`` declares the W-DBB bound the weights were (or will be)
    pruned to, with ``skip_weight_pruning`` naming excluded layers
    (default: the first GEMM layer, per the paper).
    """
    gemm_traces = [t for t in result.traces if t.gemm_shape is not None]
    if not gemm_traces:
        raise ValueError("trace contains no GEMM layers")
    if skip_weight_pruning is None:
        skip_weight_pruning = [gemm_traces[0].name]
    skip = set(skip_weight_pruning)
    layers = []
    for trace in gemm_traces:
        m, k, n = trace.gemm_shape
        kind = _kind_of(trace.kind)
        if trace.dap_nnz is not None:
            a_nnz = trace.dap_nnz
        else:
            # no DAP: dense bypass, density as measured
            a_nnz = BLOCK_SIZE
        pruned = trace.name not in skip and kind is not LayerKind.DWCONV
        layers.append(LayerSpec(
            trace.name,
            kind,
            m=m, k=k, n=n,
            w_nnz=w_nnz if pruned else BLOCK_SIZE,
            a_nnz=a_nnz,
            weight_density=None if pruned else 0.95,
            act_density=max(1e-3, trace.input_density),
        ))
    return ModelSpec(name=name, dataset="traced", layers=layers)


def run_and_spec(
    model: Sequential,
    x: np.ndarray,
    dap_spec: Optional[DBBSpec] = None,
    dap_nnz: Optional[Dict[str, int]] = None,
    w_nnz: int = 4,
) -> ModelSpec:
    """Run a model and return the workload spec of that execution."""
    result = model.forward(x, dap_spec=dap_spec, dap_nnz=dap_nnz)
    return spec_from_trace(result, name=model.name, w_nnz=w_nnz)
