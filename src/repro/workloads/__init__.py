"""Workload descriptions and generators.

- :mod:`repro.workloads.microbench`: the Sec. 8.2 synthetic sweep layers
  and concrete operand generators for the functional simulator.
- :mod:`repro.workloads.from_spec`: concrete INT8 operands synthesized
  from analytic :class:`~repro.models.specs.LayerSpec`s (the functional
  full-model pipeline), memoized under a byte budget.
- :mod:`repro.workloads.typical`: the "typical convolution layer" used
  by Fig. 1, Fig. 3 and Fig. 10.
"""

from repro.workloads.from_spec import (
    OperandCache,
    blocked_density_operand,
    default_operand_cache,
    operands_for_layer,
    spec_operands,
)
from repro.workloads.from_trace import run_and_spec, spec_from_trace
from repro.workloads.microbench import (
    microbench_operands,
    sparsity_sweep,
    sweep_layer,
)
from repro.workloads.typical import TYPICAL_CONV, typical_conv_layer

__all__ = [
    "sweep_layer",
    "sparsity_sweep",
    "microbench_operands",
    "blocked_density_operand",
    "spec_operands",
    "OperandCache",
    "operands_for_layer",
    "default_operand_cache",
    "TYPICAL_CONV",
    "typical_conv_layer",
    "spec_from_trace",
    "run_and_spec",
]
