"""Integer-only inference — the INT8 pipeline S2TA actually executes.

Post-training quantization of a float :class:`~repro.nn.model.Sequential`:
weights quantize symmetrically per layer, activation scales calibrate
from sample data, and inference then runs entirely in integers — INT8
operands, INT32 accumulation, fixed-point requantization between layers
(the M33 cluster's job on S2TA, Sec. 6.3). This is the representation
the DBB pipeline operates on: W-DBB pruning applies to the INT8 weights
and DAP to the INT8 activations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec
from repro.core.pruning import is_dbb_compliant, prune_weights_dbb
from repro.nn.layers import AvgPool2d, Conv2d, Flatten, Layer, Linear, MaxPool2d, ReLU
from repro.nn.model import Sequential
from repro.quant.int8 import (
    QuantParams,
    quantize,
    quantize_params,
    requantize,
    requantize_multiplier,
)

__all__ = ["QuantizedGemmLayer", "QuantizedSequential"]


@dataclass
class QuantizedGemmLayer:
    """One integer GEMM layer: INT8 weights, INT32 bias, requant params."""

    name: str
    weights_q: np.ndarray          # int8, (K, N)
    bias_q: Optional[np.ndarray]   # int32, (N,)
    multiplier: int
    shift: int
    source: Layer                  # the float layer (for lowering geometry)

    def gemm(self, a_q: np.ndarray) -> np.ndarray:
        """INT8 x INT8 -> INT32 accumulate -> requantized INT8."""
        acc = a_q.astype(np.int64) @ self.weights_q.astype(np.int64)
        if self.bias_q is not None:
            acc = acc + self.bias_q
        return requantize(acc, self.multiplier, self.shift)

    def prune_weights(self, spec: DBBSpec) -> None:
        """W-DBB pruning directly on the INT8 weights (column blocks)."""
        k = self.weights_q.shape[0]
        pad = (-k) % spec.block_size
        wt = self.weights_q.T
        if pad:
            wt = np.concatenate(
                [wt, np.zeros((wt.shape[0], pad), dtype=wt.dtype)], axis=1
            )
        self.weights_q = prune_weights_dbb(wt, spec)[:, :k].T

    def weights_compliant(self, spec: DBBSpec) -> bool:
        k = self.weights_q.shape[0]
        pad = (-k) % spec.block_size
        wt = self.weights_q.T
        if pad:
            wt = np.concatenate(
                [wt, np.zeros((wt.shape[0], pad), dtype=wt.dtype)], axis=1
            )
        return is_dbb_compliant(wt, spec)


class QuantizedSequential:
    """Integer-only executor for a calibrated float model."""

    def __init__(self, float_model: Sequential,
                 gemm_layers: List[QuantizedGemmLayer],
                 act_params: List[QuantParams],
                 input_params: QuantParams):
        self._float_model = float_model
        self.gemm_layers = {g.name: g for g in gemm_layers}
        self._act_params = dict(zip((g.name for g in gemm_layers),
                                    act_params))
        self.input_params = input_params

    # ---------------------------------------------------------------- #

    @classmethod
    def quantize_model(
        cls, model: Sequential, calibration_x: np.ndarray
    ) -> "QuantizedSequential":
        """Post-training quantization with activation calibration.

        Runs the float model once on ``calibration_x`` to observe each
        GEMM layer's input/output ranges, then freezes symmetric INT8
        scales and per-layer fixed-point requant multipliers.
        """
        # capture per-layer float inputs/outputs
        captures: List[Tuple[Layer, np.ndarray, np.ndarray]] = []
        x = calibration_x
        for layer in model.layers:
            y = layer.forward(x)
            captures.append((layer, x, y))
            x = y
        input_params = quantize_params(
            float(calibration_x.min()), float(calibration_x.max()))
        gemm_layers: List[QuantizedGemmLayer] = []
        act_params: List[QuantParams] = []
        for layer, layer_in, layer_out in captures:
            if not isinstance(layer, (Conv2d, Linear)):
                continue
            w = layer.weights
            w_params = quantize_params(float(w.min()), float(w.max()))
            in_params = quantize_params(
                float(layer_in.min()), float(layer_in.max()))
            out_params = quantize_params(
                float(layer_out.min()), float(layer_out.max()))
            weights_q = quantize(w, w_params)
            scale_in_w = in_params.scale * w_params.scale
            bias_q = None
            if layer.bias is not None:
                bias_q = np.round(layer.bias / scale_in_w).astype(np.int64)
            multiplier, shift = requantize_multiplier(
                scale_in_w / out_params.scale)
            gemm_layers.append(QuantizedGemmLayer(
                name=layer.name,
                weights_q=weights_q,
                bias_q=bias_q,
                multiplier=multiplier,
                shift=shift,
                source=layer,
            ))
            act_params.append(out_params)
        return cls(model, gemm_layers, act_params, input_params)

    # ---------------------------------------------------------------- #

    def prune_weights(self, spec: DBBSpec,
                      skip: Optional[List[str]] = None) -> None:
        """W-DBB pruning of every quantized GEMM layer."""
        skip = set(skip or [])
        for name, layer in self.gemm_layers.items():
            if name not in skip:
                layer.prune_weights(spec)

    def forward(
        self,
        x: np.ndarray,
        dap_spec: Optional[DBBSpec] = None,
        dap_nnz: Optional[int] = None,
    ) -> np.ndarray:
        """Integer-only inference; returns dequantized outputs.

        With ``dap_spec``, DAP prunes the INT8 activations entering every
        GEMM layer after the first — operating on quantized codes exactly
        as the hardware DAP array does at the AB write port.
        """
        q = quantize(x, self.input_params)
        first_gemm_seen = False
        for layer in self._float_model.layers:
            if isinstance(layer, (Conv2d, Linear)):
                qlayer = self.gemm_layers[layer.name]
                if dap_spec is not None and first_gemm_seen:
                    nnz = dap_nnz if dap_nnz is not None else dap_spec.max_nnz
                    q = dap_prune(q, dap_spec, nnz=nnz).pruned
                first_gemm_seen = True
                if isinstance(layer, Linear):
                    q = qlayer.gemm(q)
                else:
                    n = q.shape[0]
                    patches, oh, ow = layer.lower(q.astype(np.int64))
                    q = qlayer.gemm(patches).reshape(
                        n, oh, ow, layer.out_channels)
            elif isinstance(layer, ReLU):
                q = np.maximum(q, 0)
            elif isinstance(layer, MaxPool2d):
                q = layer.forward(q)
            elif isinstance(layer, AvgPool2d):
                # integer average with round-to-nearest
                q = np.rint(layer.forward(q.astype(np.float64))).astype(q.dtype)
            elif isinstance(layer, Flatten):
                q = layer.forward(q)
            else:
                raise NotImplementedError(
                    f"integer execution of {type(layer).__name__} "
                    f"({layer.name!r}) is not supported"
                )
        final_gemm = self._float_model.gemm_layers[-1]
        out_params = self._act_params[final_gemm.name]
        return (q.astype(np.float64)
                - out_params.zero_point) * out_params.scale
