"""im2col lowering of convolutions to GEMM.

Layout convention is NHWC (channels innermost), so that the im2col patch
axis ends with the input-channel dimension — exactly the axis the paper
blocks DBB tensors along (Fig. 5 blocks "along the channel dimension").
A lowered convolution is then ``(N*OH*OW, KH*KW*C) @ (KH*KW*C, F)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["conv_output_size", "im2col", "im2col_indices"]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for in={size}, k={kernel}, "
            f"s={stride}, p={padding}"
        )
    return out


def im2col_indices(
    height: int,
    width: int,
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Gather indices (rows, cols) into the padded image for each patch."""
    kh, kw = kernel
    oh = conv_output_size(height, kh, stride, padding)
    ow = conv_output_size(width, kw, stride, padding)
    base_r = np.repeat(np.arange(kh), kw)
    base_c = np.tile(np.arange(kw), kh)
    start_r = stride * np.repeat(np.arange(oh), ow)
    start_c = stride * np.tile(np.arange(ow), oh)
    rows = start_r[:, None] + base_r[None, :]
    cols = start_c[:, None] + base_c[None, :]
    return rows, cols, oh, ow


def im2col(
    images: np.ndarray,
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, int, int]:
    """Lower NHWC images to the GEMM activation matrix.

    Parameters
    ----------
    images: ``(N, H, W, C)`` input tensor.
    kernel: ``(KH, KW)`` window.
    stride, padding: convolution geometry (symmetric padding, zero fill).

    Returns
    -------
    (patches, oh, ow) where ``patches`` is ``(N*OH*OW, KH*KW*C)`` with the
    channel axis innermost (DBB blocking axis), and ``oh``/``ow`` are the
    output spatial dims.
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"expected NHWC input, got shape {images.shape}")
    n, h, w, c = images.shape
    if padding:
        images = np.pad(
            images,
            ((0, 0), (padding, padding), (padding, padding), (0, 0)),
            mode="constant",
        )
    rows, cols, oh, ow = im2col_indices(h, w, kernel, stride, padding)
    # patches: (N, OH*OW, KH*KW, C) -> (N*OH*OW, KH*KW*C)
    patches = images[:, rows, cols, :]
    return patches.reshape(n * oh * ow, -1), oh, ow
