"""Inference layers for the benchmark CNNs.

Layers are plain numpy and layout NHWC. GEMM-bearing layers (conv,
depthwise conv, linear) expose their lowered GEMM so the accelerator
models and the DBB pipeline can operate on exactly the matrices the
hardware would see. Weight tensors for conv layers are stored already
lowered as ``(KH*KW*C, F)`` with the channel axis innermost along the
reduction dim — the DBB blocking axis.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.dbb import DBBSpec
from repro.core.pruning import is_dbb_compliant, prune_weights_dbb
from repro.nn.im2col import conv_output_size, im2col

__all__ = [
    "Layer",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
]


class Layer:
    """Base inference layer."""

    name: str = "layer"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def has_gemm(self) -> bool:
        """True for layers lowered to GEMM on the accelerator."""
        return False

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Conv2d(Layer):
    """2-D convolution, NHWC, lowered to im2col GEMM.

    ``weights`` is ``(KH*KW*C_in, F)``; ``bias`` is ``(F,)`` or None.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: Tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        weights: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        name: str = "conv",
        rng: Optional[np.random.Generator] = None,
    ):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.name = name
        k = kernel[0] * kernel[1] * in_channels
        if weights is None:
            rng = rng or np.random.default_rng()
            weights = rng.normal(0.0, np.sqrt(2.0 / k), size=(k, out_channels))
        weights = np.asarray(weights)
        if weights.shape != (k, out_channels):
            raise ValueError(
                f"weights must be ({k}, {out_channels}), got {weights.shape}"
            )
        self.weights = weights
        self.bias = None if bias is None else np.asarray(bias)

    @property
    def has_gemm(self) -> bool:
        return True

    @property
    def reduction_dim(self) -> int:
        return self.weights.shape[0]

    def lower(self, x: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """im2col-lower the input: returns (A matrix, OH, OW)."""
        return im2col(x, self.kernel, self.stride, self.padding)

    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        a, oh, ow = self.lower(x)
        out = a @ self.weights
        if self.bias is not None:
            out = out + self.bias
        return out.reshape(n, oh, ow, self.out_channels)

    def gemm_shape(self, input_hw: Tuple[int, int], batch: int = 1
                   ) -> Tuple[int, int, int]:
        """(M, K, N) of the lowered GEMM for a given input size."""
        oh = conv_output_size(input_hw[0], self.kernel[0], self.stride, self.padding)
        ow = conv_output_size(input_hw[1], self.kernel[1], self.stride, self.padding)
        return batch * oh * ow, self.reduction_dim, self.out_channels

    def prune_weights(self, spec: DBBSpec) -> None:
        """Prune this layer's weights in place to a W-DBB bound.

        Blocks run along the reduction (channel) axis, i.e. down each
        weight column, so the pruned matrix is compressed column-wise —
        matching :func:`repro.core.gemm.compress_operands`.
        """
        k = self.reduction_dim
        pad = (-k) % spec.block_size
        wt = self.weights.T  # (F, K), blocks along last axis
        if pad:
            wt = np.concatenate(
                [wt, np.zeros((wt.shape[0], pad), dtype=wt.dtype)], axis=1
            )
        pruned = prune_weights_dbb(wt, spec)[:, :k].T
        self.weights = pruned.astype(self.weights.dtype)

    def weights_compliant(self, spec: DBBSpec) -> bool:
        k = self.reduction_dim
        pad = (-k) % spec.block_size
        wt = self.weights.T
        if pad:
            wt = np.concatenate(
                [wt, np.zeros((wt.shape[0], pad), dtype=wt.dtype)], axis=1
            )
        return is_dbb_compliant(wt, spec)


class Linear(Conv2d):
    """Fully connected layer as a 1x1 convolution over a 1x1 "image"."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weights: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        name: str = "fc",
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(
            in_channels=in_features,
            out_channels=out_features,
            kernel=(1, 1),
            weights=weights,
            bias=bias,
            name=name,
            rng=rng,
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"Linear expects (N, features), got {x.shape}")
        out = x @ self.weights
        if self.bias is not None:
            out = out + self.bias
        return out


class DepthwiseConv2d(Layer):
    """Depthwise 3x3-style convolution (one filter per channel), NHWC.

    ``weights`` is ``(KH, KW, C)``. Depthwise layers are memory bound on
    S2TA (Sec. 8.3); they are still pruned and executed, just modelled with
    a bandwidth cap by the performance model.
    """

    def __init__(
        self,
        channels: int,
        kernel: Tuple[int, int],
        stride: int = 1,
        padding: int = 0,
        weights: Optional[np.ndarray] = None,
        name: str = "dwconv",
        rng: Optional[np.random.Generator] = None,
    ):
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.name = name
        if weights is None:
            rng = rng or np.random.default_rng()
            fan = kernel[0] * kernel[1]
            weights = rng.normal(0.0, np.sqrt(2.0 / fan),
                                 size=(kernel[0], kernel[1], channels))
        weights = np.asarray(weights)
        if weights.shape != (kernel[0], kernel[1], channels):
            raise ValueError(
                f"weights must be {(kernel[0], kernel[1], channels)}, "
                f"got {weights.shape}"
            )
        self.weights = weights

    @property
    def has_gemm(self) -> bool:
        return True

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, h, w, c = x.shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {c}")
        patches, oh, ow = im2col(x, self.kernel, self.stride, self.padding)
        # patches: (N*OH*OW, KH*KW*C) -> (N*OH*OW, KH*KW, C)
        patches = patches.reshape(-1, self.kernel[0] * self.kernel[1], c)
        w_flat = self.weights.reshape(-1, c)
        out = np.einsum("pkc,kc->pc", patches, w_flat)
        return out.reshape(n, oh, ow, c)

    def gemm_shape(self, input_hw: Tuple[int, int], batch: int = 1
                   ) -> Tuple[int, int, int]:
        oh = conv_output_size(input_hw[0], self.kernel[0], self.stride, self.padding)
        ow = conv_output_size(input_hw[1], self.kernel[1], self.stride, self.padding)
        # Depthwise: per output element the reduction is KH*KW only.
        return batch * oh * ow * self.channels, self.kernel[0] * self.kernel[1], 1


class ReLU(Layer):
    def __init__(self, name: str = "relu"):
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0)


class _Pool2d(Layer):
    def __init__(self, kernel: int, stride: Optional[int] = None, name: str = "pool"):
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.name = name

    def _windows(self, x: np.ndarray) -> np.ndarray:
        n, h, w, c = x.shape
        oh = conv_output_size(h, self.kernel, self.stride, 0)
        ow = conv_output_size(w, self.kernel, self.stride, 0)
        out = np.empty((n, oh, ow, self.kernel * self.kernel, c), dtype=x.dtype)
        for i in range(oh):
            for j in range(ow):
                window = x[
                    :,
                    i * self.stride:i * self.stride + self.kernel,
                    j * self.stride:j * self.stride + self.kernel,
                    :,
                ]
                out[:, i, j] = window.reshape(n, -1, c)
        return out


class MaxPool2d(_Pool2d):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._windows(x).max(axis=3)


class AvgPool2d(_Pool2d):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._windows(x).mean(axis=3)


class Flatten(Layer):
    def __init__(self, name: str = "flatten"):
        self.name = name

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)
