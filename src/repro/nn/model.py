"""Sequential inference engine with DBB instrumentation.

Runs a layer stack while optionally applying the full S2TA data pipeline:

- static W-DBB pruning of every GEMM layer's weights (Sec. 4), and
- runtime DAP on the activations entering each GEMM layer (Sec. 5.1),
  with a per-layer NNZ override (the paper tunes A-DBB density per layer).

Each run produces :class:`LayerTrace` records with the densities and GEMM
shapes the performance model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dap import dap_prune
from repro.core.dbb import DBBSpec
from repro.core.sparsity import density
from repro.nn.layers import Conv2d, DepthwiseConv2d, Layer, Linear

__all__ = ["LayerTrace", "Sequential"]


@dataclass
class LayerTrace:
    """Per-layer instrumentation from one forward pass."""

    name: str
    kind: str
    input_density: float
    output_density: float
    gemm_shape: Optional[Tuple[int, int, int]] = None
    dap_nnz: Optional[int] = None
    dap_pruned_fraction: float = 0.0

    @property
    def macs(self) -> int:
        if self.gemm_shape is None:
            return 0
        m, k, n = self.gemm_shape
        return m * k * n


@dataclass
class RunResult:
    """Output tensor plus the per-layer trace of one forward pass."""

    output: np.ndarray
    traces: List[LayerTrace] = field(default_factory=list)

    def trace_by_name(self, name: str) -> LayerTrace:
        for trace in self.traces:
            if trace.name == name:
                return trace
        raise KeyError(f"no layer named {name!r} in trace")

    @property
    def total_macs(self) -> int:
        return sum(t.macs for t in self.traces)


class Sequential:
    """An ordered layer stack with optional DBB execution."""

    def __init__(self, layers: List[Layer], name: str = "model"):
        if not layers:
            raise ValueError("a model needs at least one layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValueError(f"layer names must be unique, got {names}")
        self.layers = list(layers)
        self.name = name

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, name: str) -> Layer:
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r}")

    @property
    def gemm_layers(self) -> List[Layer]:
        return [l for l in self.layers if l.has_gemm]

    def prune_weights(
        self,
        spec: DBBSpec,
        skip: Optional[List[str]] = None,
    ) -> None:
        """Apply W-DBB pruning to every prunable GEMM layer.

        ``skip`` lists layer names excluded from pruning; the paper always
        excludes the first conv layer (Table 3, note 2). Depthwise layers
        have no channel-axis reduction to block, so they are skipped too.
        """
        skip = set(skip or [])
        for layer in self.gemm_layers:
            if layer.name in skip or isinstance(layer, DepthwiseConv2d):
                continue
            layer.prune_weights(spec)

    def forward(
        self,
        x: np.ndarray,
        dap_spec: Optional[DBBSpec] = None,
        dap_nnz: Optional[Dict[str, int]] = None,
    ) -> RunResult:
        """Run inference, optionally applying DAP before each GEMM layer.

        ``dap_nnz`` maps layer name -> per-layer NNZ; a value equal to the
        block size means dense bypass. Layers not in the map use
        ``dap_spec.max_nnz``. The first GEMM layer is never DAP-pruned
        (its input is the network input, not a ReLU activation).
        """
        dap_nnz = dap_nnz or {}
        traces: List[LayerTrace] = []
        first_gemm_seen = False
        for layer in self.layers:
            input_density = density(x)
            nnz_used = None
            pruned_fraction = 0.0
            is_gemm = layer.has_gemm
            if is_gemm and dap_spec is not None and first_gemm_seen:
                nnz_used = dap_nnz.get(layer.name, dap_spec.max_nnz)
                if nnz_used < dap_spec.block_size:
                    result = dap_prune(x, dap_spec, nnz=nnz_used)
                    x = result.pruned
                    pruned_fraction = result.pruned_fraction
                    input_density = density(x)
            if is_gemm:
                first_gemm_seen = True
            gemm_shape = None
            if isinstance(layer, Linear):
                gemm_shape = (x.shape[0], layer.reduction_dim, layer.out_channels)
            elif isinstance(layer, (Conv2d, DepthwiseConv2d)):
                gemm_shape = layer.gemm_shape(x.shape[1:3], batch=x.shape[0])
            x = layer.forward(x)
            traces.append(
                LayerTrace(
                    name=layer.name,
                    kind=type(layer).__name__,
                    input_density=input_density,
                    output_density=density(x),
                    gemm_shape=gemm_shape,
                    dap_nnz=nnz_used,
                    dap_pruned_fraction=pruned_fraction,
                )
            )
        return RunResult(output=x, traces=traces)

    def __repr__(self) -> str:
        return f"Sequential(name={self.name!r}, layers={len(self.layers)})"
