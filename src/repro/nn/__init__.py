"""Numpy CNN inference substrate.

S2TA executes convolutions as GEMMs over im2col-lowered activations
(Sec. 6.1 "Networks are mapped onto the array using simple matrix tiling").
This package provides the lowering, the layer set needed by the benchmark
models (conv, depthwise conv, fully connected, pooling, ReLU), and a small
sequential inference engine with per-layer instrumentation hooks used to
collect activation-density statistics for the performance model.
"""

from repro.nn.im2col import conv_output_size, im2col
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.model import LayerTrace, Sequential
from repro.nn.quantized import QuantizedSequential

__all__ = [
    "QuantizedSequential",
    "im2col",
    "conv_output_size",
    "Layer",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "Flatten",
    "Sequential",
    "LayerTrace",
]
