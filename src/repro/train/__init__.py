"""DBB-aware training substrate.

The paper fine-tunes INT8 ImageNet models with (a) progressive per-block
magnitude weight pruning (Sec. 8.1 "Training for W-DBB") and (b) a DAP
layer in front of convolutions whose gradient is the Top-NNZ binary mask
— a straight-through estimator (Sec. 8.1 "Training for A-DBB").

ImageNet training is not available offline, so this package provides a
minimal reverse-mode autograd engine and runs the *same algorithms* on
proxy models/datasets (see DESIGN.md Sec. 2): the Table 3 claim being
reproduced is the recovery dynamic — pruning costs accuracy, DBB-aware
fine-tuning recovers it to within ~1 point of baseline.
"""

from repro.train.autograd import Tensor, cross_entropy
from repro.train.data import synthetic_classification, synthetic_images
from repro.train.finetune import FinetuneReport, accuracy, dbb_finetune, train
from repro.train.layers import (
    MLP,
    Conv2dModule,
    DAPLayer,
    Dense,
    FlattenModule,
    ReLULayer,
    Sequential,
    SmallCNN,
)
from repro.train.optim import SGD

__all__ = [
    "Tensor",
    "cross_entropy",
    "Dense",
    "Conv2dModule",
    "FlattenModule",
    "ReLULayer",
    "DAPLayer",
    "Sequential",
    "MLP",
    "SmallCNN",
    "synthetic_images",
    "SGD",
    "synthetic_classification",
    "train",
    "accuracy",
    "dbb_finetune",
    "FinetuneReport",
]
