"""Trainable layers for the DBB fine-tuning experiments.

``Dense`` carries an optional *weight keep-mask*: once W-DBB pruning
fixes which per-block positions survive, the mask is re-applied after
every optimizer step so pruned weights stay exactly zero while the
survivors keep learning — the standard magnitude-pruning fine-tune.

``DAPLayer`` applies Top-NNZ activation pruning in the forward pass and
the binary-mask straight-through estimator in the backward pass, mirror
of the inference-time DAP hardware (Sec. 8.1, "Training for A-DBB").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.dbb import DBBSpec
from repro.core.pruning import topk_block_mask
from repro.train.autograd import Tensor

__all__ = ["Module", "Dense", "ReLULayer", "DAPLayer", "Sequential", "MLP"]


class Module:
    """Base trainable module."""

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def parameters(self) -> List[Tensor]:
        return []

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Dense(Module):
    """Fully connected layer with optional W-DBB weight mask."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng()
        scale = np.sqrt(2.0 / in_features)
        self.weight = Tensor(rng.normal(0.0, scale,
                                        size=(in_features, out_features)),
                             requires_grad=True)
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)
        self.weight_mask: Optional[np.ndarray] = None

    def forward(self, x: Tensor) -> Tensor:
        return x.matmul(self.weight) + self.bias

    def parameters(self) -> List[Tensor]:
        return [self.weight, self.bias]

    def prune_to_dbb(self, spec: DBBSpec, keep: Optional[int] = None) -> None:
        """Fix the W-DBB keep-mask (blocks along the input-feature axis,
        i.e. down each weight column) and zero the pruned weights."""
        keep = spec.max_nnz if keep is None else keep
        k, n = self.weight.data.shape
        if k % spec.block_size:
            raise ValueError(
                f"in_features ({k}) must be a multiple of BZ="
                f"{spec.block_size} for W-DBB pruning"
            )
        columns = self.weight.data.T.reshape(-1, spec.block_size)
        mask = topk_block_mask(columns, keep)
        self.weight_mask = mask.reshape(n, k).T
        self.apply_weight_mask()

    def apply_weight_mask(self) -> None:
        """Re-zero pruned weights (called after each optimizer step)."""
        if self.weight_mask is not None:
            self.weight.data *= self.weight_mask

    def weight_density(self) -> float:
        return float(np.count_nonzero(self.weight.data)
                     / self.weight.data.size)


class ReLULayer(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class DAPLayer(Module):
    """Dynamic Activation Pruning with a straight-through estimator.

    Forward: keep the Top-``nnz`` magnitudes of every ``BZ`` block along
    the feature axis. Backward: gradients flow only through the kept
    positions. ``enabled`` lets fine-tuning schedules switch DAP on/off.
    """

    def __init__(self, spec: DBBSpec, nnz: Optional[int] = None,
                 enabled: bool = True):
        self.spec = spec
        self.nnz = spec.max_nnz if nnz is None else nnz
        if not 1 <= self.nnz <= spec.block_size:
            raise ValueError(
                f"nnz must be in [1, {spec.block_size}], got {self.nnz}"
            )
        self.enabled = enabled

    def forward(self, x: Tensor) -> Tensor:
        if not self.enabled or self.nnz >= self.spec.block_size:
            return x
        features = x.data.shape[-1]
        if features % self.spec.block_size:
            raise ValueError(
                f"features ({features}) must be a multiple of BZ="
                f"{self.spec.block_size}"
            )
        blocks = x.data.reshape(-1, self.spec.block_size)
        mask = topk_block_mask(blocks, self.nnz).reshape(x.data.shape)
        return x.apply_mask(mask)


class Conv2dModule(Module):
    """Trainable NHWC convolution with optional W-DBB weight mask.

    Weights are stored lowered as ``(KH*KW*C, F)`` — identical to the
    inference layers — so per-block pruning runs down each column with
    the channel axis innermost.
    """

    def __init__(self, in_channels: int, out_channels: int,
                 kernel=(3, 3), stride: int = 1, padding: int = 1,
                 rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng()
        k = kernel[0] * kernel[1] * in_channels
        scale = np.sqrt(2.0 / k)
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.weight = Tensor(rng.normal(0.0, scale, size=(k, out_channels)),
                             requires_grad=True)
        self.weight_mask: Optional[np.ndarray] = None

    def forward(self, x: Tensor) -> Tensor:
        return x.conv2d(self.weight, self.kernel, self.stride, self.padding)

    def parameters(self) -> List[Tensor]:
        return [self.weight]

    def prune_to_dbb(self, spec: DBBSpec, keep: Optional[int] = None) -> None:
        keep = spec.max_nnz if keep is None else keep
        k, n = self.weight.data.shape
        pad = (-k) % spec.block_size
        wt = self.weight.data.T
        if pad:
            wt = np.concatenate(
                [wt, np.zeros((n, pad), dtype=wt.dtype)], axis=1)
        mask = topk_block_mask(wt.reshape(-1, spec.block_size), keep)
        mask = mask.reshape(n, k + pad)[:, :k].T
        self.weight_mask = mask
        self.apply_weight_mask()

    def apply_weight_mask(self) -> None:
        if self.weight_mask is not None:
            self.weight.data *= self.weight_mask

    def weight_density(self) -> float:
        return float(np.count_nonzero(self.weight.data)
                     / self.weight.data.size)


class FlattenModule(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.data.shape[0], -1)


class Sequential(Module):
    def __init__(self, modules: List[Module]):
        if not modules:
            raise ValueError("need at least one module")
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for module in self.modules:
            params.extend(module.parameters())
        return params

    def dense_layers(self) -> List[Dense]:
        return [m for m in self.modules if isinstance(m, Dense)]

    def prunable_layers(self) -> List[Module]:
        """GEMM-bearing modules with W-DBB support (Dense and conv)."""
        return [m for m in self.modules
                if isinstance(m, (Dense, Conv2dModule))]

    def dap_layers(self) -> List[DAPLayer]:
        return [m for m in self.modules if isinstance(m, DAPLayer)]

    def apply_weight_masks(self) -> None:
        for layer in self.prunable_layers():
            layer.apply_weight_mask()


def SmallCNN(
    channels: int,
    classes: int,
    hw: int = 8,
    hidden_channels: int = 16,
    dap_spec: Optional[DBBSpec] = None,
    dap_nnz: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """A two-conv CNN proxy (stride-2 downsampling, no pooling).

    DAP sits in front of the second conv, matching the paper's placement
    of DAP before convolutions (never the input layer).
    """
    rng = rng or np.random.default_rng(0)
    modules: List[Module] = [
        Conv2dModule(channels, hidden_channels, rng=rng),
        ReLULayer(),
    ]
    if dap_spec is not None:
        modules.append(DAPLayer(dap_spec, nnz=dap_nnz))
    modules += [
        Conv2dModule(hidden_channels, hidden_channels, stride=2, rng=rng),
        ReLULayer(),
        FlattenModule(),
        Dense(hidden_channels * (hw // 2) ** 2, classes, rng=rng),
    ]
    return Sequential(modules)


def MLP(
    in_features: int,
    hidden: List[int],
    classes: int,
    dap_spec: Optional[DBBSpec] = None,
    dap_nnz: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """A ReLU MLP, optionally with DAP in front of each hidden GEMM.

    Mirrors the paper's placement: DAP sits before convolutions/GEMMs,
    never in front of the first layer (its input is the raw sample).
    """
    rng = rng or np.random.default_rng(0)
    modules: List[Module] = []
    widths = [in_features] + list(hidden)
    for i in range(len(hidden)):
        modules.append(Dense(widths[i], widths[i + 1], rng=rng))
        modules.append(ReLULayer())
        if dap_spec is not None:
            modules.append(DAPLayer(dap_spec, nnz=dap_nnz))
    modules.append(Dense(widths[-1], classes, rng=rng))
    return Sequential(modules)
