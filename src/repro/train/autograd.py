"""Minimal reverse-mode automatic differentiation on numpy arrays.

Supports exactly the operations the DBB fine-tuning experiments need:
matmul, broadcast add, elementwise multiply, ReLU, constant-mask
application (the DAP straight-through estimator), reductions and a
numerically stable softmax cross-entropy. Gradients are validated
against numerical differentiation in the test suite.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

__all__ = ["Tensor", "cross_entropy"]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce a gradient back to the shape it was broadcast from."""
    if grad.shape == shape:
        return grad
    # sum out prepended axes
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # sum along broadcast (size-1) axes
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with reverse-mode gradient tracking."""

    def __init__(self, data, requires_grad: bool = False,
                 _parents: Tuple["Tensor", ...] = (),
                 _backward: Optional[Callable[[np.ndarray], None]] = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents
        self._backward = _backward

    # ------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires,
                      _parents=parents if requires else (),
                      _backward=backward if requires else None)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------ #

    def __add__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    def __mul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ other.data.T)
            other._accumulate(self.data.T @ grad)

        return self._make(out_data, (self, other), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def apply_mask(self, mask: np.ndarray) -> "Tensor":
        """Elementwise multiply by a constant 0/1 mask.

        This is DAP's straight-through estimator: the forward pass zeroes
        pruned elements; the backward pass propagates gradients only
        through the kept (Top-NNZ) positions — exactly the paper's
        d(DAP)/da binary mask (Sec. 8.1).
        """
        mask = np.asarray(mask, dtype=np.float64)
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    def conv2d(self, weights: "Tensor", kernel: Tuple[int, int],
               stride: int = 1, padding: int = 0) -> "Tensor":
        """NHWC convolution via im2col, differentiable in x and weights.

        ``self`` is ``(N, H, W, C)``; ``weights`` is ``(KH*KW*C, F)`` with
        the channel axis innermost along the reduction — the same lowered
        layout the inference layers and the DBB blocking use.
        """
        from repro.nn.im2col import im2col, im2col_indices

        if self.data.ndim != 4:
            raise ValueError(f"conv2d expects NHWC input, got {self.shape}")
        n, h, w_dim, c = self.data.shape
        patches, oh, ow = im2col(self.data, kernel, stride, padding)
        out_data = (patches @ weights.data).reshape(
            n, oh, ow, weights.data.shape[1])
        rows, cols, _, _ = im2col_indices(h, w_dim, kernel, stride, padding)

        def backward(grad: np.ndarray) -> None:
            grad_flat = grad.reshape(n * oh * ow, -1)
            weights._accumulate(patches.T @ grad_flat)
            if self.requires_grad:
                # scatter-add the patch gradients back into the image
                grad_patches = (grad_flat @ weights.data.T).reshape(
                    n, oh * ow, kernel[0] * kernel[1], c)
                padded = np.zeros(
                    (n, h + 2 * padding, w_dim + 2 * padding, c))
                np.add.at(padded, (slice(None), rows, cols, slice(None)),
                          grad_patches)
                if padding:
                    padded = padded[:, padding:-padding, padding:-padding, :]
                self._accumulate(padded)

        return self._make(out_data, (self, weights), backward)

    def sum(self) -> "Tensor":
        out_data = np.asarray(self.data.sum())

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.full_like(self.data, float(grad)))

        return self._make(out_data, (self,), backward)

    def mean(self) -> "Tensor":
        out_data = np.asarray(self.data.mean())
        count = self.data.size

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.full_like(self.data, float(grad) / count))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------ #

    def backward(self) -> None:
        """Reverse-mode sweep from a scalar output."""
        if self.data.size != 1:
            raise ValueError(
                f"backward() needs a scalar output, got shape {self.shape}"
            )
        topo: List[Tensor] = []
        visited = set()

        def build(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return (f"Tensor(shape={self.shape}, "
                f"requires_grad={self.requires_grad})")


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy of ``(N, C)`` logits vs integer labels."""
    labels = np.asarray(labels)
    n = logits.data.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels must be ({n},), got {labels.shape}")
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    losses = -np.log(probs[np.arange(n), labels] + 1e-12)
    out_data = np.asarray(losses.mean())

    def backward(grad: np.ndarray) -> None:
        dlogits = probs.copy()
        dlogits[np.arange(n), labels] -= 1.0
        logits._accumulate(dlogits * (float(grad) / n))

    requires = logits.requires_grad
    return Tensor(out_data, requires_grad=requires,
                  _parents=(logits,) if requires else (),
                  _backward=backward if requires else None)
