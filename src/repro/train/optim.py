"""Optimizers for the fine-tuning experiments."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.train.autograd import Tensor

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters: List[Tensor], lr: float = 0.05,
                 momentum: float = 0.9):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            if self._velocity[i] is None:
                self._velocity[i] = np.zeros_like(param.data)
            self._velocity[i] = (
                self.momentum * self._velocity[i] - self.lr * param.grad
            )
            param.data += self._velocity[i]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()
