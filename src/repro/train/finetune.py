"""DBB fine-tuning loops — the Table 3 recovery experiment.

:func:`dbb_finetune` reproduces the paper's training recipe on a proxy
model/dataset:

1. train a dense baseline;
2. apply W-DBB per-block magnitude pruning and/or enable DAP layers —
   accuracy drops (the paper's example: MobileNetV1 71% -> 56.1% under
   4/8 DAP before fine-tuning);
3. fine-tune with the weight keep-masks enforced and DAP's
   straight-through estimator active — accuracy recovers to within
   about a point of baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.dbb import DBBSpec
from repro.train.autograd import Tensor, cross_entropy
from repro.train.data import Dataset
from repro.train.layers import Sequential
from repro.train.optim import SGD

__all__ = ["train", "accuracy", "dbb_finetune", "FinetuneReport"]


def accuracy(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    """Top-1 accuracy (%) of the model on one split."""
    logits = model(Tensor(x))
    predictions = logits.data.argmax(axis=1)
    return float(np.mean(predictions == y)) * 100.0


def train(
    model: Sequential,
    data: Dataset,
    epochs: int = 10,
    lr: float = 0.05,
    batch_size: int = 64,
    rng: Optional[np.random.Generator] = None,
    enforce_weight_masks: bool = False,
) -> List[float]:
    """Minibatch SGD; returns per-epoch test accuracy.

    With ``enforce_weight_masks`` the W-DBB keep-masks are re-applied
    after every step, so pruned weights stay exactly zero.
    """
    rng = rng or np.random.default_rng(0)
    optimizer = SGD(model.parameters(), lr=lr)
    history = []
    for _epoch in range(epochs):
        for xb, yb in data.batches(batch_size, rng):
            optimizer.zero_grad()
            loss = cross_entropy(model(Tensor(xb)), yb)
            loss.backward()
            optimizer.step()
            if enforce_weight_masks:
                model.apply_weight_masks()
        history.append(accuracy(model, data.x_test, data.y_test))
    return history


@dataclass
class FinetuneReport:
    """Accuracies through the prune-then-finetune pipeline (Table 3)."""

    baseline_acc: float
    pruned_acc: float          # right after pruning, before fine-tuning
    finetuned_acc: float
    w_ratio: Optional[str]     # e.g. "4/8", None if weights untouched
    a_ratio: Optional[str]     # e.g. "3/8", None if DAP disabled
    history: List[float] = field(default_factory=list)

    @property
    def drop_after_pruning(self) -> float:
        return self.baseline_acc - self.pruned_acc

    @property
    def final_loss(self) -> float:
        """Accuracy still missing after fine-tuning (the Table 3 delta)."""
        return self.baseline_acc - self.finetuned_acc

    @property
    def recovered(self) -> float:
        return self.finetuned_acc - self.pruned_acc


def dbb_finetune(
    model: Sequential,
    data: Dataset,
    w_spec: Optional[DBBSpec] = None,
    baseline_epochs: int = 12,
    finetune_epochs: int = 12,
    lr: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> FinetuneReport:
    """Run the full Table 3 pipeline on one model.

    The model's DAP layers (if any) start disabled for baseline
    training; ``w_spec`` selects weight pruning (first Dense layer
    excluded, as in the paper). Returns the three accuracies the paper
    tables: baseline, post-pruning, post-fine-tuning.
    """
    rng = rng or np.random.default_rng(0)
    dap_layers = model.dap_layers()
    for dap in dap_layers:
        dap.enabled = False
    train(model, data, epochs=baseline_epochs, lr=lr, rng=rng)
    baseline_acc = accuracy(model, data.x_test, data.y_test)

    a_ratio = None
    if dap_layers:
        for dap in dap_layers:
            dap.enabled = True
        a_ratio = f"{dap_layers[0].nnz}/{dap_layers[0].spec.block_size}"
    w_ratio = None
    if w_spec is not None:
        prunable = model.prunable_layers()
        for layer in prunable[1:]:  # first layer excluded (Table 3)
            layer.prune_to_dbb(w_spec)
        w_ratio = w_spec.ratio
    pruned_acc = accuracy(model, data.x_test, data.y_test)

    history = train(
        model, data, epochs=finetune_epochs, lr=lr * 0.5, rng=rng,
        enforce_weight_masks=w_spec is not None,
    )
    finetuned_acc = accuracy(model, data.x_test, data.y_test)
    return FinetuneReport(
        baseline_acc=baseline_acc,
        pruned_acc=pruned_acc,
        finetuned_acc=finetuned_acc,
        w_ratio=w_ratio,
        a_ratio=a_ratio,
        history=history,
    )
