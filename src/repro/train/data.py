"""Synthetic datasets for the fine-tuning proxy experiments.

A separable-but-not-trivial multi-class problem with *non-negative,
sparse-ish* features (post-ReLU-like statistics) so DAP's magnitude
ranking faces realistic data: most per-block mass in a few features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["Dataset", "synthetic_classification", "synthetic_images"]


@dataclass
class Dataset:
    """Train/test split of a synthetic classification problem."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    @property
    def features(self) -> int:
        return self.x_train.shape[1]

    @property
    def classes(self) -> int:
        return int(self.y_train.max()) + 1

    def batches(self, batch_size: int, rng: np.random.Generator):
        """Shuffled minibatches over the training split."""
        order = rng.permutation(len(self.x_train))
        for start in range(0, len(order), batch_size):
            idx = order[start:start + batch_size]
            yield self.x_train[idx], self.y_train[idx]


def synthetic_classification(
    samples: int = 1600,
    features: int = 64,
    classes: int = 12,
    noise: float = 1.0,
    test_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Gaussian class prototypes + noise, rectified to ReLU-like inputs.

    Each class activates ~40% of the features with moderate magnitudes
    against comparable noise; a small MLP baselines in the low-90s%,
    leaving headroom to observe pruning damage and fine-tuning recovery
    (the Table 3 dynamic) without being trivially separable.
    """
    if features % 8:
        raise ValueError(f"features must be a multiple of BZ=8, got {features}")
    rng = rng or np.random.default_rng(0)
    prototypes = np.zeros((classes, features))
    for c in range(classes):
        active = rng.choice(features, size=max(4, int(features * 0.4)),
                            replace=False)
        prototypes[c, active] = rng.uniform(0.5, 1.5, size=active.size)
    labels = rng.integers(0, classes, size=samples)
    x = prototypes[labels] + rng.normal(0.0, noise, size=(samples, features))
    x = np.maximum(x, 0.0)
    split = int(samples * (1.0 - test_fraction))
    return Dataset(
        x_train=x[:split], y_train=labels[:split],
        x_test=x[split:], y_test=labels[split:],
    )


def synthetic_images(
    samples: int = 800,
    hw: int = 8,
    channels: int = 8,
    classes: int = 6,
    noise: float = 0.8,
    test_fraction: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """NHWC image classification proxy for the CNN fine-tuning runs.

    Each class has a spatially-structured prototype (a blob of active
    channels at a class-specific location); samples are rectified noisy
    copies. Flattened arrays are reshaped by the caller's CNN modules,
    so ``x_*`` here keep the NHWC shape.
    """
    if channels % 8:
        raise ValueError(f"channels must be a multiple of BZ=8, got {channels}")
    rng = rng or np.random.default_rng(0)
    prototypes = np.zeros((classes, hw, hw, channels))
    for c in range(classes):
        cy, cx = rng.integers(1, hw - 1, size=2)
        active = rng.choice(channels, size=max(2, channels // 3),
                            replace=False)
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                prototypes[c, (cy + dy) % hw, (cx + dx) % hw, active] = (
                    rng.uniform(0.8, 1.8))
    labels = rng.integers(0, classes, size=samples)
    x = prototypes[labels] + rng.normal(0.0, noise,
                                        size=(samples, hw, hw, channels))
    x = np.maximum(x, 0.0)
    split = int(samples * (1.0 - test_fraction))
    return Dataset(
        x_train=x[:split], y_train=labels[:split],
        x_test=x[split:], y_test=labels[split:],
    )
