"""Symmetric/asymmetric INT8 per-tensor quantization.

Follows the standard integer-only inference recipe used by INT8 mobile
deployments (and by the paper's quantized benchmark models):

- weights: symmetric, zero_point = 0;
- activations: asymmetric or symmetric, per tensor;
- accumulation: INT32;
- requantization between layers: INT32 fixed-point multiplier + right
  shift with round-to-nearest (no floating point at inference time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "INT8_MIN",
    "INT8_MAX",
    "QuantParams",
    "QuantizedTensor",
    "quantize_params",
    "quantize",
    "dequantize",
    "saturating_cast",
    "requantize_multiplier",
    "requantize",
]

INT8_MIN = -128
INT8_MAX = 127


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor affine quantization: ``real = scale * (q - zero_point)``."""

    scale: float
    zero_point: int = 0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if not INT8_MIN <= self.zero_point <= INT8_MAX:
            raise ValueError(f"zero_point out of INT8 range: {self.zero_point}")

    @property
    def is_symmetric(self) -> bool:
        return self.zero_point == 0


def quantize_params(
    real_min: float, real_max: float, symmetric: bool = True
) -> QuantParams:
    """Derive quantization parameters from an observed real-value range.

    Symmetric mode (used for weights, and for activations here since ReLU
    outputs quantize well symmetrically with the zero kept exact) maps
    ``max(|min|, |max|)`` to 127. Asymmetric mode maps [min, max] affinely
    onto [-128, 127] with the zero representable exactly.
    """
    if real_min > real_max:
        raise ValueError(f"empty range [{real_min}, {real_max}]")
    if symmetric:
        bound = max(abs(real_min), abs(real_max), 1e-12)
        return QuantParams(scale=bound / INT8_MAX, zero_point=0)
    real_min = min(real_min, 0.0)
    real_max = max(real_max, 0.0)
    scale = max((real_max - real_min) / (INT8_MAX - INT8_MIN), 1e-12)
    zero_point = int(round(INT8_MIN - real_min / scale))
    zero_point = int(np.clip(zero_point, INT8_MIN, INT8_MAX))
    return QuantParams(scale=scale, zero_point=zero_point)


def saturating_cast(values: np.ndarray, dtype=np.int8) -> np.ndarray:
    """Round-to-nearest-even then clip to the dtype's range (hardware sat)."""
    info = np.iinfo(dtype)
    return np.clip(np.rint(values), info.min, info.max).astype(dtype)


def quantize(real: np.ndarray, params: QuantParams) -> np.ndarray:
    """Real tensor -> INT8 codes."""
    return saturating_cast(np.asarray(real, dtype=np.float64) / params.scale
                           + params.zero_point)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """INT8 codes -> real tensor."""
    return (np.asarray(q, dtype=np.float64) - params.zero_point) * params.scale


def requantize_multiplier(real_multiplier: float) -> Tuple[int, int]:
    """Decompose a real multiplier into (int32_multiplier, right_shift).

    ``real ~= m / 2**31 * 2**-shift`` with ``m`` in [2^30, 2^31). This is the
    standard integer-only requantization used between INT8 layers.
    """
    if real_multiplier <= 0:
        raise ValueError(f"multiplier must be positive, got {real_multiplier}")
    shift = 0
    m = real_multiplier
    while m < 0.5:
        m *= 2.0
        shift += 1
    while m >= 1.0:
        m /= 2.0
        shift -= 1
    q = int(round(m * (1 << 31)))
    if q == (1 << 31):  # rounding overflow
        q //= 2
        shift -= 1
    return q, shift


def requantize(
    acc: np.ndarray,
    multiplier: int,
    shift: int,
    zero_point: int = 0,
) -> np.ndarray:
    """INT32 accumulator -> INT8 output via fixed-point multiply + shift.

    Implements round-to-nearest on both the 31-bit multiply and the final
    right shift, followed by zero-point addition and saturation — exactly
    the integer pipeline an INT8 accelerator's output stage performs (on
    S2TA this runs on the Cortex-M33 SIMD cluster, Sec. 6.3).
    """
    acc = np.asarray(acc, dtype=np.int64)
    prod = acc * np.int64(multiplier)
    rounded = (prod + (1 << 30)) >> 31
    if shift > 0:
        rounding = np.int64(1) << (shift - 1)
        rounded = (rounded + rounding) >> shift
    elif shift < 0:
        rounded = rounded << (-shift)
    return saturating_cast(rounded + zero_point)


class QuantizedTensor:
    """An INT8 tensor together with its quantization parameters."""

    def __init__(self, q: np.ndarray, params: QuantParams):
        q = np.asarray(q)
        if q.dtype != np.int8:
            raise ValueError(f"expected int8 codes, got {q.dtype}")
        self.q = q
        self.params = params

    @classmethod
    def from_real(cls, real: np.ndarray, symmetric: bool = True) -> "QuantizedTensor":
        real = np.asarray(real, dtype=np.float64)
        params = quantize_params(float(real.min()), float(real.max()),
                                 symmetric=symmetric)
        return cls(quantize(real, params), params)

    @property
    def shape(self):
        return self.q.shape

    def to_real(self) -> np.ndarray:
        return dequantize(self.q, self.params)

    def quantization_error(self, real: np.ndarray) -> float:
        """RMS reconstruction error against a reference real tensor."""
        diff = self.to_real() - np.asarray(real, dtype=np.float64)
        return float(np.sqrt(np.mean(diff**2)))

    def __repr__(self) -> str:
        return (f"QuantizedTensor(shape={self.q.shape}, "
                f"scale={self.params.scale:.4g}, zp={self.params.zero_point})")
