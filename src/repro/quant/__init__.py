"""INT8 quantization substrate.

The paper targets INT8 inference, "the most widely used" mobile deployment
datatype (Sec. 1). This package provides symmetric/asymmetric per-tensor
quantization, the fixed-point requantization used between layers (integer
multiplier + right shift, as in real INT8 accelerators), and a quantized
tensor wrapper.
"""

from repro.quant.int8 import (
    INT8_MAX,
    INT8_MIN,
    QuantParams,
    QuantizedTensor,
    dequantize,
    quantize,
    quantize_params,
    requantize,
    requantize_multiplier,
    saturating_cast,
)

__all__ = [
    "INT8_MAX",
    "INT8_MIN",
    "QuantParams",
    "QuantizedTensor",
    "quantize",
    "dequantize",
    "quantize_params",
    "requantize",
    "requantize_multiplier",
    "saturating_cast",
]
