"""Structural netlist generation — the RTL-generator analogue.

The paper's methodology generates synthesizable Verilog for each design
point (Sec. 7). Synthesis is out of scope here, but the *structural*
output — the module hierarchy, instance counts and port widths the
generator would emit — is reproduced as text. This is what the
design-space sweep hands to the (modelled) EDA flow, and it doubles as
a human-readable datasheet for a configuration.
"""

from __future__ import annotations

from typing import List

from repro.design.space import DesignPoint
from repro.models.specs import BLOCK_SIZE

__all__ = ["generate_structure"]


def _dp_unit(point: DesignPoint) -> str:
    if point.time_unrolled:
        return f"DP1M{point.weight_nnz}"
    return f"DP{point.weight_nnz}M{BLOCK_SIZE}"


def generate_structure(point: DesignPoint) -> str:
    """Emit the module-hierarchy summary for one design point.

    The format is a stable, parseable indented tree; each line is
    ``<instances>x <module> <params>``.
    """
    dp = _dp_unit(point)
    macs_per_dp = 1 if point.time_unrolled else point.weight_nnz
    dps_per_tpe = point.tpe_a * point.tpe_c
    tpes = point.rows * point.cols
    act_port_bits = point.tpe_a * (BLOCK_SIZE + point.weight_nnz) * 8 // BLOCK_SIZE
    w_port_bits = point.tpe_c * (point.weight_nnz * 8 + BLOCK_SIZE)
    lines: List[str] = [
        f"module s2ta_top  // {point.notation}"
        f"{' time-unrolled' if point.time_unrolled else ' dot-product'}",
        f"  1x weight_sram  bytes=524288 ports=1 double_buffered=1",
        f"  1x activation_sram  bytes=2097152 ports=1 double_buffered=1",
        f"  1x dap_array  stages=5 comparators_per_stage={BLOCK_SIZE - 1}",
        f"  4x cortex_m33  ctrl_sram_bytes=65536 simd=1",
        f"  1x tpe_array  rows={point.rows} cols={point.cols}",
        f"    {tpes}x tpe  a={point.tpe_a} b={point.weight_nnz} "
        f"c={point.tpe_c} act_port_bits={act_port_bits} "
        f"w_port_bits={w_port_bits}",
        f"      {dps_per_tpe}x {dp.lower()}  macs={macs_per_dp} "
        f"mux_width={BLOCK_SIZE if not point.time_unrolled else point.weight_nnz} "
        f"acc_bits=32",
        f"  // total hardware MACs: {point.hardware_macs}",
    ]
    return "\n".join(lines)
