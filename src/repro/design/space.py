"""AxBxC_MxN design-space enumeration and PPA evaluation (Sec. 7).

A design point fixes the TPE outer-product dims (A, C), the array grid
(M, N) and the datapath style (time-unrolled DP1M4 vs dot-product
DP4M8, i.e. B=4 weight NNZ in both cases). The paper constrains the
space to 4 TOPS peak dense throughput (2048 MACs at 1 GHz in 16 nm),
sweeps, keeps the area-vs-power frontier, and picks the lowest-power
point: the time-unrolled 8x4x4_8x8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.accel.s2ta import S2TAAW, S2TAW
from repro.models.specs import LayerSpec
from repro.workloads.typical import typical_conv_layer

__all__ = [
    "DesignPoint",
    "PPA",
    "enumerate_design_space",
    "evaluate_point",
    "pareto_frontier",
    "select_lowest_power",
    "TARGET_MACS",
]

# 4 TOPS peak dense at 1 GHz (2 ops/MAC) = 2048 MACs.
TARGET_MACS = 2048

_GRID_DIMS = (1, 2, 4, 8, 16, 32, 64, 128)
_TPE_DIMS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class DesignPoint:
    """One AxBxC_MxN configuration."""

    tpe_a: int
    tpe_c: int
    rows: int
    cols: int
    time_unrolled: bool = True  # DP1M4 (else dot-product DP4M8)
    weight_nnz: int = 4         # B

    @property
    def notation(self) -> str:
        """The paper's AxBxC_MxN notation."""
        return (f"{self.tpe_a}x{self.weight_nnz}x{self.tpe_c}"
                f"_{self.rows}x{self.cols}")

    @property
    def hardware_macs(self) -> int:
        per_tpe = self.tpe_a * self.tpe_c
        if not self.time_unrolled:
            per_tpe *= self.weight_nnz
        return self.rows * self.cols * per_tpe

    @property
    def is_scalar(self) -> bool:
        return self.tpe_a == 1 and self.tpe_c == 1

    @property
    def clock_ghz(self) -> float:
        """Achievable clock: larger TPEs lengthen the operand broadcast
        and reduction paths, "marginally reducing clock frequency"
        (Sec. 6.1). ~4% derate per TPE dim step beyond the paper's
        8+4 design point."""
        excess = max(0, self.tpe_a + self.tpe_c - 12)
        return 1.0 / (1.0 + 0.04 * excess)

    @property
    def peak_tops(self) -> float:
        """Peak dense throughput at the achievable clock."""
        return 2.0 * self.hardware_macs * self.clock_ghz / 1e3

    @property
    def meets_throughput(self) -> bool:
        """The paper's hard constraint: 4 TOPS peak dense (Sec. 7)."""
        return self.peak_tops >= 4.0 - 1e-9

    def build(self, tech: str = "16nm", **kwargs):
        """Instantiate the accelerator model for this point.

        Extra keyword arguments (``costs``, ``dram_gbps``, ...) pass
        through to the accelerator constructor — the DSE engine uses
        this to sweep the memory-system axes around a design point.
        """
        if self.time_unrolled:
            return S2TAAW(tech=tech, rows=self.rows, cols=self.cols,
                          tpe_a=self.tpe_a, tpe_c=self.tpe_c,
                          w_nnz_hw=self.weight_nnz, **kwargs)
        return S2TAW(tech=tech, rows=self.rows, cols=self.cols,
                     tpe_a=self.tpe_a, tpe_c=self.tpe_c,
                     datapath_nnz=self.weight_nnz, **kwargs)


@dataclass(frozen=True)
class PPA:
    """Evaluated power/performance/area of a design point."""

    point: DesignPoint
    power_mw: float
    area_mm2: float
    cycles: int
    energy_uj: float

    def dominates(self, other: "PPA") -> bool:
        """Pareto dominance on (power, area) — lower is better."""
        return (self.power_mw <= other.power_mw
                and self.area_mm2 <= other.area_mm2
                and (self.power_mw < other.power_mw
                     or self.area_mm2 < other.area_mm2))


def enumerate_design_space(
    target_macs: int = TARGET_MACS,
    time_unrolled: bool = True,
    max_tpe: int = 16,
    max_aspect: float = 4.0,
    weight_nnz: int = 4,
) -> Iterator[DesignPoint]:
    """All configurations hitting the MAC budget exactly.

    ``max_aspect`` bounds the array and TPE aspect ratios — extremely
    skewed arrays are excluded as they would not close timing (the
    paper notes larger TPEs marginally reduce clock frequency).
    ``weight_nnz`` is the DBB weight bound B: time-unrolled datapaths
    serialize it (one MAC per DP unit regardless of B), dot-product
    datapaths instantiate B MACs per unit (DP4M8 at the default B=4).
    """
    mac_multiplier = 1 if time_unrolled else weight_nnz
    for tpe_a in _TPE_DIMS:
        for tpe_c in _TPE_DIMS:
            if tpe_a > max_tpe or tpe_c > max_tpe:
                continue
            per_tpe = tpe_a * tpe_c * mac_multiplier
            if target_macs % per_tpe:
                continue
            grid = target_macs // per_tpe
            for rows in _GRID_DIMS:
                if grid % rows:
                    continue
                cols = grid // rows
                if cols not in _GRID_DIMS:
                    continue
                if max(rows / cols, cols / rows) > max_aspect:
                    continue
                if tpe_a > 1 and tpe_c > 1:
                    if max(tpe_a / tpe_c, tpe_c / tpe_a) > max_aspect:
                        continue
                point = DesignPoint(tpe_a=tpe_a, tpe_c=tpe_c,
                                    rows=rows, cols=cols,
                                    time_unrolled=time_unrolled,
                                    weight_nnz=weight_nnz)
                if point.meets_throughput:
                    yield point


def evaluate_point(
    point: DesignPoint,
    layer: Optional[LayerSpec] = None,
    tech: str = "16nm",
) -> PPA:
    """Run the reference workload on a design point and report PPA."""
    layer = layer or typical_conv_layer(0.5, 0.5)
    accel = point.build(tech=tech)
    accel.clock_ghz = accel.clock_ghz * point.clock_ghz  # TPE derate
    result = accel.run_layer(layer)
    runtime_s = result.cycles / (accel.clock_ghz * 1e9)
    power_mw = (result.energy_pj * 1e-12) / runtime_s * 1e3 if runtime_s else 0.0
    return PPA(
        point=point,
        power_mw=power_mw,
        area_mm2=accel.area_mm2(),
        cycles=result.cycles,
        energy_uj=result.breakdown.total_uj,
    )


def pareto_frontier(evaluations: List[PPA]) -> List[PPA]:
    """Non-dominated points on the area-vs-power plane.

    Exact ties survive (dominance needs a strict improvement in at
    least one objective) and the returned order is a pure function of
    the evaluations, independent of input order.
    """
    frontier = [
        ppa for ppa in evaluations
        if not any(other.dominates(ppa) for other in evaluations)
    ]
    return sorted(frontier,
                  key=lambda p: (p.power_mw, p.area_mm2, p.point.notation))


def select_lowest_power(
    evaluations: List[PPA], area_budget_mm2: float = math.inf
) -> PPA:
    """The paper's selection rule: lowest power within the area budget.

    Power ties break toward the smaller die, then the notation, so the
    pick is deterministic regardless of enumeration order.
    """
    feasible = [p for p in evaluations if p.area_mm2 <= area_budget_mm2]
    if not feasible:
        raise ValueError(
            f"no design fits the {area_budget_mm2} mm^2 budget"
        )
    return min(feasible,
               key=lambda p: (p.power_mw, p.area_mm2, p.point.notation))
